"""Adaptive batching under backlog (§7.3).

Paper: when a query falls behind (downtime, load spike), Structured
Streaming "will automatically execute longer epochs in order to catch up
with the input streams", then returns to low latency — administrators
can restart/upgrade without fear of queues melting down.

Reproduction: a query goes "offline" while input accumulates; on
restart, the first epoch is orders of magnitude larger than steady-state
epochs, the backlog drains, and epoch sizes return to the trickle rate.
"""

from __future__ import annotations

import pytest

from repro.sql import functions as F
from repro.sql.session import Session
from repro.sources.memory import MemoryStream
from repro.sql.types import StructType

from benchmarks.reporting import emit

SCHEMA = StructType((("v", "long"),))
TRICKLE = 100
BACKLOG = 50_000


@pytest.mark.benchmark(group="adaptive")
def test_adaptive_batching_catches_up(benchmark, tmp_path):
    session = Session()
    stream = MemoryStream(SCHEMA)
    df = session.read_stream.memory(stream).where(F.col("v") >= 0)

    def run_scenario():
        query = (df.write_stream.format("memory").query_name("adaptive")
                 .output_mode("append").start(str(tmp_path / "ckpt-run")))
        # Steady state: small epochs.
        for _ in range(3):
            stream.add_data([{"v": 1}] * TRICKLE)
            query.process_all_available()
        # "Offline": a large backlog accumulates (e.g. a cluster upgrade).
        stream.add_data([{"v": 1}] * BACKLOG)
        # Back online: catch up, then steady state again.
        query.process_all_available()
        for _ in range(3):
            stream.add_data([{"v": 1}] * TRICKLE)
            query.process_all_available()
        return query

    query = benchmark.pedantic(run_scenario, rounds=1, iterations=1)
    sizes = [p.input_rows for p in query.recent_progress]

    steady_before = sizes[:3]
    catch_up = max(sizes)
    steady_after = sizes[-3:]
    lines = [
        "Adaptive batching (§7.3): epoch input sizes around a backlog",
        f"epoch sizes: {sizes}",
        f"steady state before: {steady_before}",
        f"catch-up epoch:      {catch_up} rows "
        f"({catch_up / TRICKLE:.0f}x the steady epoch)",
        f"steady state after:  {steady_after}",
    ]
    emit("adaptive_batching", lines)

    assert all(s == TRICKLE for s in steady_before)
    assert catch_up == BACKLOG          # one big epoch absorbs the backlog
    assert all(s == TRICKLE for s in steady_after)


@pytest.mark.benchmark(group="adaptive")
def test_catch_up_throughput_near_batch_rate(benchmark, tmp_path):
    """§7.3: during catch-up the engine achieves "similar throughput to
    Spark's batch jobs" — the backlogged epoch runs at drain speed, far
    above the trickle arrival rate."""
    session = Session()
    stream = MemoryStream(SCHEMA)
    df = session.read_stream.memory(stream).where(F.col("v") >= 0)
    stream.add_data([{"v": 1}] * BACKLOG)
    query = (df.write_stream.format("memory").query_name("catchup")
             .output_mode("append").start(str(tmp_path / "ckpt")))

    def drain():
        query.process_all_available()
        return BACKLOG

    benchmark.pedantic(drain, rounds=1, iterations=1)
    rate = BACKLOG / benchmark.stats.stats.min
    emit("adaptive_catchup_rate", [
        f"catch-up drain rate: {rate:,.0f} records/s "
        f"(vs trickle arrival of ~{TRICKLE}/s epochs)",
    ])
    assert rate > 10_000
