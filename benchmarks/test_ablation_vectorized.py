"""Ablation — where does the throughput come from? (§9.1)

Paper: "This particular Structured Streaming query is implemented using
just DataFrame operations with no UDF code.  The performance thus comes
solely from Spark SQL's built in execution optimizations, including
storing data in a compact binary format and runtime code generation."

Reproduction ablation: the *same* expression tree from the Yahoo!
pipeline evaluated (a) via the compiled vectorized path over columnar
batches (our codegen analogue) vs (b) interpreted row-at-a-time
(``eval_row`` in a Python loop) — the execution model difference the
paper credits for the win.
"""

from __future__ import annotations

import pytest

from repro.sql import expressions as E
from repro.sql.batch import RecordBatch
from repro.sql.codegen import compile_expression
from repro.workloads.yahoo import YAHOO_EVENT_SCHEMA, YahooWorkload

from benchmarks.reporting import emit

N = 200_000

_rates = {}


def _pipeline_expression():
    """The benchmark's filter predicate + projection arithmetic."""
    is_view = E.Comparison(E.ColumnRef("event_type"), E.Literal("view"), "==")
    in_hour = E.Comparison(E.ColumnRef("event_time"), E.Literal(3600.0), "<")
    return E.BooleanOp(is_view, in_hour, "and")


@pytest.fixture(scope="module")
def event_batch():
    workload = YahooWorkload()
    arrays = workload.event_arrays(N, duration=60.0)
    return RecordBatch.from_columns(YAHOO_EVENT_SCHEMA, **arrays)


@pytest.mark.benchmark(group="ablation-vectorized")
def test_compiled_vectorized_path(benchmark, event_batch):
    expr = _pipeline_expression()
    fn = compile_expression(expr, YAHOO_EVENT_SCHEMA)

    def run():
        return int(fn(event_batch).sum())

    matches = benchmark(run)
    assert 0 < matches < N
    _rates["vectorized"] = N / benchmark.stats.stats.min


@pytest.mark.benchmark(group="ablation-vectorized")
def test_interpreted_row_path(benchmark, event_batch):
    expr = _pipeline_expression()
    rows = event_batch.to_rows()

    def run():
        return sum(1 for row in rows if expr.eval_row(row))

    matches = benchmark(run)
    assert 0 < matches < N
    _rates["interpreted"] = N / benchmark.stats.stats.min


@pytest.mark.benchmark(group="ablation-vectorized")
def test_zz_ablation_report(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    speedup = _rates["vectorized"] / _rates["interpreted"]
    emit("ablation_vectorized", [
        "Ablation: compiled vectorized vs interpreted row-at-a-time",
        f"vectorized (codegen analogue): {_rates['vectorized']:>14,.0f} rows/s",
        f"interpreted (eval_row loop):   {_rates['interpreted']:>14,.0f} rows/s",
        f"speedup: {speedup:.1f}x — the execution-engine effect §9.1 credits",
    ])
    assert speedup > 5
