"""Ablation — where does the throughput come from? (§9.1)

Paper: "This particular Structured Streaming query is implemented using
just DataFrame operations with no UDF code.  The performance thus comes
solely from Spark SQL's built in execution optimizations, including
storing data in a compact binary format and runtime code generation."

Reproduction ablation, three execution strategies over the *same* Yahoo!
stateless pipeline (filter views → filter in-hour → project ad_id/time):

(a) whole-plan fused — the plan compiled once
    (:mod:`repro.sql.plancompiler`), filters combined into one mask,
    projection applied in the same stage: the whole-stage-codegen
    analogue (§5.3);
(b) per-batch compilation — the pre-compiler executor
    (``execute_interpreted``) walks the plan and calls
    ``compile_expression`` on every batch: vectorized kernels, but
    plan-time work on the hot path;
(c) interpreted row-at-a-time — ``eval_row`` in a Python loop, the
    execution model the paper's §9.1 comparison systems use per record.

Plus the original expression-level pair isolating just the predicate.
"""

from __future__ import annotations

import pytest

from repro.sql import expressions as E
from repro.sql import logical as L
from repro.sql.batch import RecordBatch
from repro.sql.codegen import compile_expression
from repro.sql.physical import execute_interpreted
from repro.sql.plancompiler import compile_plan
from repro.workloads.yahoo import YAHOO_EVENT_SCHEMA, YahooWorkload

from benchmarks.reporting import emit

N = 200_000

_rates = {}


def _pipeline_expression():
    """The benchmark's filter predicate + projection arithmetic."""
    is_view = E.Comparison(E.ColumnRef("event_type"), E.Literal("view"), "==")
    in_hour = E.Comparison(E.ColumnRef("event_time"), E.Literal(3600.0), "<")
    return E.BooleanOp(is_view, in_hour, "and")


def _pipeline_plan():
    """The Yahoo! stateless chain as a user writes it: two ``where``
    calls, then the projection feeding the join/aggregate."""
    scan = L.Scan(YAHOO_EVENT_SCHEMA, None, False, name="events")
    views = L.Filter(
        E.Comparison(E.ColumnRef("event_type"), E.Literal("view"), "=="), scan)
    in_hour = L.Filter(
        E.Comparison(E.ColumnRef("event_time"), E.Literal(3600.0), "<"), views)
    project = L.Project(
        [E.ColumnRef("ad_id"), E.ColumnRef("event_time")], in_hour)
    return project, scan


@pytest.fixture(scope="module")
def event_batch():
    workload = YahooWorkload()
    arrays = workload.event_arrays(N, duration=60.0)
    return RecordBatch.from_columns(YAHOO_EVENT_SCHEMA, **arrays)


@pytest.mark.benchmark(group="ablation-vectorized")
def test_compiled_vectorized_path(benchmark, event_batch):
    expr = _pipeline_expression()
    fn = compile_expression(expr, YAHOO_EVENT_SCHEMA)

    def run():
        return int(fn(event_batch).sum())

    matches = benchmark(run)
    assert 0 < matches < N
    _rates["vectorized"] = N / benchmark.stats.stats.min


@pytest.mark.benchmark(group="ablation-vectorized")
def test_interpreted_row_path(benchmark, event_batch):
    expr = _pipeline_expression()
    rows = event_batch.to_rows()

    def run():
        return sum(1 for row in rows if expr.eval_row(row))

    matches = benchmark(run)
    assert 0 < matches < N
    _rates["interpreted"] = N / benchmark.stats.stats.min


@pytest.mark.benchmark(group="ablation-vectorized")
def test_whole_plan_fused_path(benchmark, event_batch):
    plan, scan = _pipeline_plan()
    compiled = compile_plan(plan)  # once, outside the measured region
    overrides = {id(scan): event_batch}

    def run():
        return compiled(overrides).num_rows

    out_rows = benchmark(run)
    assert 0 < out_rows < N
    _rates["fused"] = N / benchmark.stats.stats.min


@pytest.mark.benchmark(group="ablation-vectorized")
def test_per_batch_compile_path(benchmark, event_batch):
    plan, scan = _pipeline_plan()
    overrides = {id(scan): event_batch}

    def run():
        return execute_interpreted(plan, overrides).num_rows

    out_rows = benchmark(run)
    assert 0 < out_rows < N
    _rates["per_batch"] = N / benchmark.stats.stats.min


@pytest.mark.benchmark(group="ablation-vectorized")
def test_interpreted_plan_path(benchmark, event_batch):
    plan, _scan = _pipeline_plan()
    cond_views = plan.child.child.condition
    cond_hour = plan.child.condition
    rows = event_batch.to_rows()

    def run():
        out = []
        for row in rows:
            if cond_views.eval_row(row) and cond_hour.eval_row(row):
                out.append((row["ad_id"], row["event_time"]))
        return len(out)

    out_rows = benchmark(run)
    assert 0 < out_rows < N
    _rates["rows"] = N / benchmark.stats.stats.min


@pytest.mark.benchmark(group="ablation-vectorized")
def test_zz_ablation_report(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    speedup = _rates["vectorized"] / _rates["interpreted"]
    fused_vs_per_batch = _rates["fused"] / _rates["per_batch"]
    fused_vs_rows = _rates["fused"] / _rates["rows"]
    emit("ablation_vectorized", [
        "Ablation: execution strategies on the Yahoo! stateless pipeline",
        "",
        "Whole pipeline (filter -> filter -> project), rows/s:",
        f"  whole-plan fused (compile once): {_rates['fused']:>14,.0f}",
        f"  per-batch compilation:           {_rates['per_batch']:>14,.0f}",
        f"  interpreted rows (eval_row):     {_rates['rows']:>14,.0f}",
        f"  fused vs per-batch: {fused_vs_per_batch:.1f}x   "
        f"fused vs rows: {fused_vs_rows:.0f}x",
        "",
        "Predicate only, rows/s:",
        f"  vectorized (codegen analogue): {_rates['vectorized']:>14,.0f}",
        f"  interpreted (eval_row loop):   {_rates['interpreted']:>14,.0f}",
        f"  speedup: {speedup:.1f}x — the execution-engine effect §9.1 credits",
    ])
    assert speedup > 5
    assert fused_vs_per_batch > 1.0
    assert fused_vs_rows > 5
