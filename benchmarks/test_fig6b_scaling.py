"""Figure 6b — Yahoo! benchmark throughput scaling with cluster size (§9.2).

Paper (c3.2xlarge nodes, 8 cores each, one Kafka partition per core):

    1 node   11.5 M records/s
    5 nodes  ~63  M records/s
    10 nodes ~115 M records/s
    20 nodes 225  M records/s   ("scales close to linearly")

Reproduction: the per-core rate of the real Structured Streaming engine
is measured on this machine; multi-node throughput comes from the
calibrated cluster performance model (a laptop cannot host 160 cores —
see DESIGN.md substitutions).  The claim under test is the *shape*:
near-linear scaling, >=85% parallel efficiency at 20 nodes.
"""

from __future__ import annotations

import os
import time

import pytest

from repro.cluster import TaskScheduler
from repro.cluster.perfmodel import ClusterPerformanceModel
from repro.sql.session import Session
from repro.workloads.yahoo import structured_streaming_query

from benchmarks.reporting import emit, retract

N = 400_000
NODE_COUNTS = (1, 5, 10, 20)
PAPER_SERIES = {1: 11.5e6, 5: 63e6, 10: 115e6, 20: 225e6}
WORKER_COUNTS = (1, 2, 4, 8)
SWEEP_SHARDS = 8


def _drain(broker, workload) -> int:
    session = Session()
    query = structured_streaming_query(session, broker, "events", workload)
    handle = (query.write_stream.format("memory").query_name("fig6b")
              .output_mode("update").start())
    handle.process_all_available()
    return N


@pytest.mark.benchmark(group="fig6b")
def test_scaling_series(benchmark, columnar_events, workload):
    processed = benchmark.pedantic(
        _drain, args=(columnar_events, workload), rounds=3, iterations=1)
    per_core = processed / benchmark.stats.stats.min
    benchmark.extra_info["per_core_records_per_second"] = per_core

    model = ClusterPerformanceModel(per_core, cores_per_node=8)
    series = model.sweep(NODE_COUNTS)

    lines = [
        "Figure 6b — throughput vs cluster size (Yahoo! benchmark)",
        f"measured per-core rate: {per_core:,.0f} records/s",
        f"{'nodes':>6}{'modeled rec/s':>18}{'speedup':>10}{'paper rec/s':>14}",
    ]
    for nodes, rate in series:
        lines.append(
            f"{nodes:>6}{rate:>15,.0f}/s{model.speedup(nodes):>9.1f}x"
            f"{PAPER_SERIES[nodes]:>13,.0f}/s"
        )
    efficiency = model.speedup(20) / 20
    lines.append(f"parallel efficiency at 20 nodes: {efficiency:.1%} "
                 "(paper: ~98%)")
    emit("fig6b_scaling", lines, data={
        "per_core_records_per_second": per_core,
        "modeled_records_per_second": {str(n): r for n, r in series},
        "paper_records_per_second": {str(n): r
                                     for n, r in PAPER_SERIES.items()},
        "efficiency_at_20_nodes": efficiency,
    })

    # Shape assertions: monotone, near-linear.
    rates = [rate for _n, rate in series]
    assert rates == sorted(rates)
    assert efficiency >= 0.85
    # The paper's 20-vs-1 ratio is 225/11.5 ~ 19.6x.
    assert 16.0 <= model.speedup(20) <= 20.0


# ---------------------------------------------------------------------------
# Measured process-worker sweep over the hash-partitioned epoch (§6.1-§6.2)
# ---------------------------------------------------------------------------

def _drain_partitioned(broker, workload, scheduler) -> float:
    """One full run of the Yahoo pipeline through the partitioned engine;
    returns the epoch wall time."""
    session = Session()
    query = structured_streaming_query(session, broker, "events", workload)
    handle = (query.write_stream.format("memory").query_name("fig6b-sweep")
              .output_mode("update")
              .option("scheduler", scheduler)
              .option("num_shards", SWEEP_SHARDS)
              .start())
    started = time.perf_counter()
    handle.process_all_available()
    return time.perf_counter() - started


@pytest.mark.benchmark(group="fig6b")
def test_worker_sweep_process_executor(benchmark, columnar_events, workload):
    """Measured epoch throughput vs *process*-worker count.

    Unlike the node series above (which must model cluster sizes this
    machine cannot host), the worker sweep is now a real measurement:
    each worker count runs the full Yahoo pipeline on the process
    executor — forked workers, shared-memory input batches, state-delta
    shipping — and reports wall time plus the pool's IPC accounting.
    The ≥1.6x speedup floor at 4 workers only applies on a host that
    actually has ≥4 cores; a 1-core container still runs the sweep and
    records the (flat) measured series.
    """
    smoke = os.environ.get("FIG6B_SMOKE") == "1"
    worker_counts = (1, 2) if smoke else WORKER_COUNTS
    rounds = 1 if smoke else 3
    measured = {}
    reports = {}

    def sweep():
        for workers in worker_counts:
            scheduler = TaskScheduler(workers, executor="process",
                                      speculation=False)
            try:
                best_wall, best_reports = None, None
                for _ in range(rounds):
                    before = len(scheduler.stage_reports)
                    wall = _drain_partitioned(
                        columnar_events, workload, scheduler)
                    if best_wall is None or wall < best_wall:
                        best_wall = wall
                        best_reports = scheduler.stage_reports[before:]
                measured[workers] = best_wall
                reports[workers] = best_reports
            finally:
                scheduler.shutdown()
        return len(measured)

    benchmark.pedantic(sweep, rounds=1, iterations=1)

    def _pool_stats(stage_reports):
        ipc = sum(r.get("executor", {}).get("ipc_bytes", 0)
                  for r in stage_reports)
        ship = sum(r.get("executor", {}).get("ship_seconds", 0.0)
                   for r in stage_reports)
        merge = sum(r.get("executor", {}).get("merge_seconds", 0.0)
                    for r in stage_reports)
        return ipc, ship, merge

    cores = os.cpu_count() or 1
    lines = [
        "Figure 6b (extension) — measured epoch throughput vs process "
        f"workers, hash-partitioned Yahoo! pipeline ({SWEEP_SHARDS} "
        f"shards, {N:,} events/epoch)",
        f"host cores: {cores}"
        + (" (speedup floor applies at >=4 cores only)" if cores < 4 else ""),
        f"{'workers':>8}{'measured ms':>13}{'rec/s':>14}{'speedup':>9}"
        f"{'ipc MB':>9}{'ship ms':>9}",
    ]
    series = {}
    for workers in worker_counts:
        ipc, ship, _merge = _pool_stats(reports[workers])
        speedup = measured[1] / measured[workers]
        series[workers] = {
            "wall_ms": measured[workers] * 1000,
            "records_per_second": N / measured[workers],
            "speedup_vs_1": speedup,
            "ipc_bytes": ipc,
            "ship_seconds": ship,
        }
        lines.append(
            f"{workers:>8}{measured[workers] * 1000:>11.1f}ms"
            f"{N / measured[workers]:>14,.0f}{speedup:>8.2f}x"
            f"{ipc / 1e6:>9.1f}{ship * 1000:>9.1f}"
        )
    at4 = measured[1] / measured[4] if 4 in measured else None
    if at4 is not None:
        lines.append(
            f"4-worker epoch speedup: {at4:.2f}x "
            f"(floor 1.6x, enforced on >=4-core hosts; this host: {cores})")
    # A 1-core host cannot exhibit multicore speedup — its sub-1.0
    # "speedups" are contention artifacts, and recording them into
    # bench_latest.json would read as a scaling regression to anyone
    # diffing snapshots.  Keep the human-readable table, skip the data.
    if cores > 1:
        emit("fig6b_worker_sweep", lines, data={
            "executor": "process",
            "events_per_epoch": N,
            "num_shards": SWEEP_SHARDS,
            "series": series,
        })
    else:
        lines.append("1-core host: series not recorded into "
                     "bench_latest.json (speedups would be meaningless)")
        emit("fig6b_worker_sweep", lines)
        retract("fig6b_worker_sweep")

    benchmark.extra_info["measured_wall_ms"] = {
        w: measured[w] * 1000 for w in worker_counts}
    if at4 is not None:
        benchmark.extra_info["measured_speedup_at_4"] = at4

    # Every run must have actually gone through the pool.
    for workers in worker_counts:
        assert any(
            r.get("executor", {}).get("type") == "process"
            for r in reports[workers]
        ), f"no process stage reports at {workers} workers"
    # The speedup floor is a genuine multicore claim: only a host with
    # >=4 cores can exhibit it (GIL-free processes, but 1 CPU is 1 CPU).
    if cores >= 4 and not smoke:
        assert at4 >= 1.6
        assert measured[2] <= measured[1] * 1.05
