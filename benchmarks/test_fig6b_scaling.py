"""Figure 6b — Yahoo! benchmark throughput scaling with cluster size (§9.2).

Paper (c3.2xlarge nodes, 8 cores each, one Kafka partition per core):

    1 node   11.5 M records/s
    5 nodes  ~63  M records/s
    10 nodes ~115 M records/s
    20 nodes 225  M records/s   ("scales close to linearly")

Reproduction: the per-core rate of the real Structured Streaming engine
is measured on this machine; multi-node throughput comes from the
calibrated cluster performance model (a laptop cannot host 160 cores —
see DESIGN.md substitutions).  The claim under test is the *shape*:
near-linear scaling, >=85% parallel efficiency at 20 nodes.
"""

from __future__ import annotations

import pytest

from repro.cluster.perfmodel import ClusterPerformanceModel
from repro.sql.session import Session
from repro.workloads.yahoo import structured_streaming_query

from benchmarks.reporting import emit

N = 400_000
NODE_COUNTS = (1, 5, 10, 20)
PAPER_SERIES = {1: 11.5e6, 5: 63e6, 10: 115e6, 20: 225e6}


def _drain(broker, workload) -> int:
    session = Session()
    query = structured_streaming_query(session, broker, "events", workload)
    handle = (query.write_stream.format("memory").query_name("fig6b")
              .output_mode("update").start())
    handle.process_all_available()
    return N


@pytest.mark.benchmark(group="fig6b")
def test_scaling_series(benchmark, columnar_events, workload):
    processed = benchmark.pedantic(
        _drain, args=(columnar_events, workload), rounds=3, iterations=1)
    per_core = processed / benchmark.stats.stats.min
    benchmark.extra_info["per_core_records_per_second"] = per_core

    model = ClusterPerformanceModel(per_core, cores_per_node=8)
    series = model.sweep(NODE_COUNTS)

    lines = [
        "Figure 6b — throughput vs cluster size (Yahoo! benchmark)",
        f"measured per-core rate: {per_core:,.0f} records/s",
        f"{'nodes':>6}{'modeled rec/s':>18}{'speedup':>10}{'paper rec/s':>14}",
    ]
    for nodes, rate in series:
        lines.append(
            f"{nodes:>6}{rate:>15,.0f}/s{model.speedup(nodes):>9.1f}x"
            f"{PAPER_SERIES[nodes]:>13,.0f}/s"
        )
    efficiency = model.speedup(20) / 20
    lines.append(f"parallel efficiency at 20 nodes: {efficiency:.1%} "
                 "(paper: ~98%)")
    emit("fig6b_scaling", lines)

    # Shape assertions: monotone, near-linear.
    rates = [rate for _n, rate in series]
    assert rates == sorted(rates)
    assert efficiency >= 0.85
    # The paper's 20-vs-1 ratio is 225/11.5 ~ 19.6x.
    assert 16.0 <= model.speedup(20) <= 20.0
