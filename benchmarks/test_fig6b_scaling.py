"""Figure 6b — Yahoo! benchmark throughput scaling with cluster size (§9.2).

Paper (c3.2xlarge nodes, 8 cores each, one Kafka partition per core):

    1 node   11.5 M records/s
    5 nodes  ~63  M records/s
    10 nodes ~115 M records/s
    20 nodes 225  M records/s   ("scales close to linearly")

Reproduction: the per-core rate of the real Structured Streaming engine
is measured on this machine; multi-node throughput comes from the
calibrated cluster performance model (a laptop cannot host 160 cores —
see DESIGN.md substitutions).  The claim under test is the *shape*:
near-linear scaling, >=85% parallel efficiency at 20 nodes.
"""

from __future__ import annotations

import os
import time

import pytest

from repro.cluster import TaskScheduler
from repro.cluster.perfmodel import ClusterPerformanceModel
from repro.sql.session import Session
from repro.workloads.yahoo import structured_streaming_query

from benchmarks.reporting import emit

N = 400_000
NODE_COUNTS = (1, 5, 10, 20)
PAPER_SERIES = {1: 11.5e6, 5: 63e6, 10: 115e6, 20: 225e6}
WORKER_COUNTS = (1, 2, 4, 8)
SWEEP_SHARDS = 8


def _drain(broker, workload) -> int:
    session = Session()
    query = structured_streaming_query(session, broker, "events", workload)
    handle = (query.write_stream.format("memory").query_name("fig6b")
              .output_mode("update").start())
    handle.process_all_available()
    return N


@pytest.mark.benchmark(group="fig6b")
def test_scaling_series(benchmark, columnar_events, workload):
    processed = benchmark.pedantic(
        _drain, args=(columnar_events, workload), rounds=3, iterations=1)
    per_core = processed / benchmark.stats.stats.min
    benchmark.extra_info["per_core_records_per_second"] = per_core

    model = ClusterPerformanceModel(per_core, cores_per_node=8)
    series = model.sweep(NODE_COUNTS)

    lines = [
        "Figure 6b — throughput vs cluster size (Yahoo! benchmark)",
        f"measured per-core rate: {per_core:,.0f} records/s",
        f"{'nodes':>6}{'modeled rec/s':>18}{'speedup':>10}{'paper rec/s':>14}",
    ]
    for nodes, rate in series:
        lines.append(
            f"{nodes:>6}{rate:>15,.0f}/s{model.speedup(nodes):>9.1f}x"
            f"{PAPER_SERIES[nodes]:>13,.0f}/s"
        )
    efficiency = model.speedup(20) / 20
    lines.append(f"parallel efficiency at 20 nodes: {efficiency:.1%} "
                 "(paper: ~98%)")
    emit("fig6b_scaling", lines)

    # Shape assertions: monotone, near-linear.
    rates = [rate for _n, rate in series]
    assert rates == sorted(rates)
    assert efficiency >= 0.85
    # The paper's 20-vs-1 ratio is 225/11.5 ~ 19.6x.
    assert 16.0 <= model.speedup(20) <= 20.0


# ---------------------------------------------------------------------------
# Worker sweep over the hash-partitioned epoch (§6.1-§6.2)
# ---------------------------------------------------------------------------

def _drain_partitioned(broker, workload, scheduler) -> float:
    """One full run of the Yahoo pipeline through the partitioned engine;
    returns the epoch wall time."""
    session = Session()
    query = structured_streaming_query(session, broker, "events", workload)
    handle = (query.write_stream.format("memory").query_name("fig6b-sweep")
              .output_mode("update")
              .option("scheduler", scheduler)
              .option("num_shards", SWEEP_SHARDS)
              .start())
    started = time.perf_counter()
    handle.process_all_available()
    return time.perf_counter() - started


def _makespan(durations, workers: int) -> float:
    """LPT list-scheduling makespan of the measured tasks on k workers."""
    loads = [0.0] * workers
    for seconds in sorted(durations, reverse=True):
        loads[loads.index(min(loads))] += seconds
    return max(loads)


def _projected_epoch_seconds(wall, stage_reports, workers: int) -> float:
    """Epoch time at k workers from measured per-shard task durations:
    the serial residual (everything outside scheduler tasks) plus each
    stage's k-worker makespan.  Stages run sequentially in an epoch, so
    makespans add."""
    task_time = sum(s["seconds"] for r in stage_reports for s in r["tasks"])
    residual = max(wall - task_time, 0.0)
    return residual + sum(
        _makespan([s["seconds"] for s in report["tasks"]], workers)
        for report in stage_reports
    )


@pytest.mark.benchmark(group="fig6b")
def test_worker_sweep_partitioned_epoch(benchmark, columnar_events, workload):
    """Epoch throughput vs worker count for the hash-partitioned engine.

    Per-shard task wall times are measured from real runs (the
    scheduler's stage reports); the k-worker series is their LPT
    makespan on k workers plus the measured serial residual — the same
    measure-then-model substitution DESIGN.md documents for the node
    sweep above, since this container exposes a single core
    (os.cpu_count() == 1) and cannot exhibit thread speedup directly.
    Measured single-core wall times are reported alongside.
    """
    measured = {}
    reports = {}

    def sweep():
        for workers in WORKER_COUNTS:
            scheduler = TaskScheduler(workers, speculation=False)
            try:
                best_wall, best_reports = None, None
                for _ in range(3):
                    before = len(scheduler.stage_reports)
                    wall = _drain_partitioned(
                        columnar_events, workload, scheduler)
                    if best_wall is None or wall < best_wall:
                        best_wall = wall
                        best_reports = scheduler.stage_reports[before:]
                measured[workers] = best_wall
                reports[workers] = best_reports
            finally:
                scheduler.shutdown()
        return len(measured)

    benchmark.pedantic(sweep, rounds=1, iterations=1)

    # Project every worker count from the 1-worker run's task timings
    # (uncontended: tasks never interleave, so per-task walls are clean).
    base_wall, base_reports = measured[1], reports[1]
    projected = {
        workers: _projected_epoch_seconds(base_wall, base_reports, workers)
        for workers in WORKER_COUNTS
    }

    lines = [
        "Figure 6b (extension) — epoch throughput vs workers, "
        f"hash-partitioned Yahoo! pipeline ({SWEEP_SHARDS} shards, "
        f"{N:,} events/epoch)",
        f"host cores: {os.cpu_count()} (k-worker series projected from "
        "measured per-shard task times; see DESIGN.md)",
        f"{'workers':>8}{'measured ms':>13}{'projected ms':>14}"
        f"{'proj rec/s':>14}{'speedup':>9}",
    ]
    for workers in WORKER_COUNTS:
        speedup = projected[1] / projected[workers]
        lines.append(
            f"{workers:>8}{measured[workers] * 1000:>11.1f}ms"
            f"{projected[workers] * 1000:>12.1f}ms"
            f"{N / projected[workers]:>14,.0f}{speedup:>8.2f}x"
        )
    lines.append(
        f"4-worker epoch speedup: {projected[1] / projected[4]:.2f}x "
        "(acceptance floor: 1.5x)")
    emit("fig6b_worker_sweep", lines)

    benchmark.extra_info["projected_speedup_at_4"] = projected[1] / projected[4]
    benchmark.extra_info["measured_wall_ms"] = {
        w: measured[w] * 1000 for w in WORKER_COUNTS}

    # The partitioned decomposition must actually expose parallelism:
    # >1.5x epoch throughput at 4 workers vs 1 on the windowed
    # aggregation pipeline, and monotone through 8.
    assert projected[1] / projected[4] > 1.5
    assert projected[2] <= projected[1]
    assert projected[8] <= projected[4]
