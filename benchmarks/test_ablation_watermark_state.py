"""Ablation — watermarks bound state size (§4.3.1).

Paper: "Allowing arbitrarily late data might require storing arbitrarily
large state. For example, if we count data by 1-minute event time
window, the system needs to remember a count for every 1-minute window
since the application began."

Reproduction ablation: the same windowed count runs with and without a
watermark over a stream whose event time advances steadily.  Without a
watermark, state keys grow linearly with elapsed event time; with one,
the engine evicts closed windows and state stays flat.
"""

from __future__ import annotations

import pytest

from repro.sql import functions as F
from repro.sql.session import Session
from repro.sql.types import StructType
from repro.sources.memory import MemoryStream

from benchmarks.reporting import emit

SCHEMA = StructType((("t", "timestamp"), ("k", "long")))
EPOCHS = 40
WINDOWS_PER_EPOCH = 5
ROWS_PER_EPOCH = 200


def _run(with_watermark: bool, tmp_path, tag: str):
    session = Session()
    stream = MemoryStream(SCHEMA)
    df = session.read_stream.memory(stream)
    if with_watermark:
        df = df.with_watermark("t", "30 seconds")
    counts = df.group_by(F.window("t", "10s")).count()
    query = (counts.write_stream.format("memory").query_name(tag)
             .output_mode("update").start(str(tmp_path / tag)))

    state_sizes = []
    for epoch in range(EPOCHS):
        base = epoch * WINDOWS_PER_EPOCH * 10.0
        stream.add_data([
            {"t": base + (i % (WINDOWS_PER_EPOCH * 10)), "k": i}
            for i in range(ROWS_PER_EPOCH)
        ])
        query.process_all_available()
        state_sizes.append(query.engine.state_store.total_keys())
    return state_sizes


@pytest.mark.benchmark(group="ablation-watermark")
def test_watermark_bounds_state(benchmark, tmp_path):
    results = {}

    def run_both():
        results["without"] = _run(False, tmp_path, "no-wm")
        results["with"] = _run(True, tmp_path, "wm")
        return EPOCHS

    benchmark.pedantic(run_both, rounds=1, iterations=1)
    without = results["without"]
    with_wm = results["with"]

    lines = [
        "Ablation: watermarks bound streaming state (§4.3.1)",
        f"windowed count over {EPOCHS} epochs, event time advancing "
        f"{WINDOWS_PER_EPOCH} windows/epoch",
        f"{'epoch':>8}{'keys w/o watermark':>20}{'keys with watermark':>22}",
    ]
    for epoch in (4, 9, 19, 39):
        lines.append(f"{epoch + 1:>8}{without[epoch]:>20}{with_wm[epoch]:>22}")
    lines.append(
        f"growth w/o watermark: {without[-1] / without[4]:.1f}x over the run; "
        f"with watermark: {with_wm[-1] / max(with_wm[4], 1):.1f}x (flat)"
    )
    emit("ablation_watermark_state", lines)

    # Without a watermark: state grows with every new window, forever.
    assert without[-1] > without[len(without) // 2] > without[4]
    assert without[-1] == EPOCHS * WINDOWS_PER_EPOCH
    # With one: bounded by windows within the lateness horizon.
    assert max(with_wm[5:]) <= 2 * WINDOWS_PER_EPOCH + 4
