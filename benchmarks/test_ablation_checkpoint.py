"""Ablation — incremental (delta) vs full-snapshot state checkpoints (§6.1).

Paper: stateful operators "checkpoint their state periodically and
asynchronously to the state store, using incremental checkpoints when
possible", and checkpoints "do not need to happen on every epoch".

Reproduction ablation: a windowed aggregation with many keys where each
epoch touches only a few.  Delta checkpoints write only the touched
keys; snapshot-every-version writes the whole map.  The report also
shows the recovery-time side of the tradeoff.
"""

from __future__ import annotations

import time

import pytest

from repro.streaming.state import OperatorStateHandle

from benchmarks.reporting import emit

NUM_KEYS = 5_000
KEYS_PER_EPOCH = 50
EPOCHS = 30

_results = {}


def _seed(handle):
    for i in range(NUM_KEYS):
        handle.put(("campaign", i), [i, float(i)])


def _run_epochs(handle, start_version: int):
    for epoch in range(EPOCHS):
        for i in range(KEYS_PER_EPOCH):
            key = ("campaign", (epoch * KEYS_PER_EPOCH + i) % NUM_KEYS)
            handle.put(key, [epoch, float(i)])
        handle.commit(start_version + epoch)


@pytest.mark.benchmark(group="ablation-checkpoint")
def test_delta_checkpointing(benchmark, tmp_path):
    def run():
        handle = OperatorStateHandle(
            str(tmp_path / f"delta-{time.monotonic_ns()}"),
            snapshot_interval=1_000_000,  # effectively never snapshot
        )
        _seed(handle)
        handle.commit(0)  # version 0 is always a snapshot (the base)
        _run_epochs(handle, 1)
        return handle

    handle = benchmark.pedantic(run, rounds=3, iterations=1)
    _results["delta_seconds"] = benchmark.stats.stats.min
    _results["delta_handle_dir"] = handle._directory


@pytest.mark.benchmark(group="ablation-checkpoint")
def test_snapshot_every_epoch(benchmark, tmp_path):
    def run():
        handle = OperatorStateHandle(
            str(tmp_path / f"snap-{time.monotonic_ns()}"),
            snapshot_interval=1,  # full snapshot every version
        )
        _seed(handle)
        handle.commit(0)
        _run_epochs(handle, 1)
        return handle

    benchmark.pedantic(run, rounds=3, iterations=1)
    _results["snapshot_seconds"] = benchmark.stats.stats.min


@pytest.mark.benchmark(group="ablation-checkpoint")
def test_zz_checkpoint_report(benchmark, tmp_path):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    delta = _results["delta_seconds"]
    snapshot = _results["snapshot_seconds"]

    # Recovery cost of the long delta chain (the tradeoff's other side).
    started = time.perf_counter()
    fresh = OperatorStateHandle(_results["delta_handle_dir"],
                                snapshot_interval=1_000_000)
    fresh.restore(EPOCHS)
    recovery = time.perf_counter() - started
    assert len(fresh) == NUM_KEYS

    emit("ablation_checkpoint", [
        "Ablation: incremental delta vs snapshot-per-epoch checkpoints",
        f"{NUM_KEYS} keys in state, {KEYS_PER_EPOCH} touched per epoch, "
        f"{EPOCHS} epochs",
        f"delta checkpointing:   {delta:.3f}s total",
        f"snapshot every epoch:  {snapshot:.3f}s total "
        f"({snapshot / delta:.1f}x more expensive)",
        f"recovery over the {EPOCHS}-delta chain: {recovery * 1000:.1f} ms",
        "(§6.1: incremental checkpoints keep per-epoch cost proportional "
        "to changed keys; periodic snapshots bound recovery replay)",
    ])
    assert snapshot > delta * 3
