"""Run-once trigger cost savings (§7.3).

Paper: customers run a single epoch of a streaming job every few hours
instead of a 24/7 cluster, cutting cost "in one case, up to 10x" while
keeping the engine's transactional input/output tracking.

Reproduction: the processing rate fed into the cost model is *measured*
by actually running the run-once ETL pattern end to end (each invocation
is a fresh engine resuming from the WAL); the savings table then follows
from per-second billing arithmetic.
"""

from __future__ import annotations

import os

import pytest

from repro.bus import Broker
from repro.cluster.costmodel import DeploymentCostModel
from repro.sql import functions as F
from repro.sql.session import Session

from benchmarks.reporting import emit

SCHEMA = (("device", "string"), ("reading", "double"), ("t", "timestamp"))
HOUR = 3600.0
MONTH = 30 * 24 * HOUR
BACKLOG = 100_000


def _one_run(session, broker, checkpoint, sink_rows):
    events = session.read_stream.kafka(broker, "logs", SCHEMA)
    cleaned = events.where(F.col("reading") >= 0)
    query = (cleaned.write_stream
             .foreach(lambda e, rows, mode: sink_rows.extend(rows))
             .output_mode("append").trigger(once=True).start(checkpoint))
    query.await_termination()
    return query


@pytest.mark.benchmark(group="runonce")
def test_run_once_savings(benchmark, tmp_path):
    broker = Broker()
    topic = broker.create_topic("logs", 1)
    session = Session()
    checkpoint = str(tmp_path / "ckpt")
    sink_rows = []

    def scheduled_invocation():
        # A few hours of backlog accumulated since the last run.
        topic.publish_to(0, [
            {"device": f"d{i % 50}", "reading": float(i % 100 - 5), "t": float(i)}
            for i in range(BACKLOG)
        ])
        _one_run(session, broker, checkpoint, sink_rows)
        return BACKLOG

    processed = benchmark.pedantic(scheduled_invocation, rounds=3, iterations=1)
    rate = processed / benchmark.stats.stats.min

    # Each run picked up exactly where the previous stopped: no row is
    # processed twice across invocations (the WAL's transactionality).
    assert len(sink_rows) == 3 * BACKLOG * 95 // 100

    model = DeploymentCostModel(
        arrival_rate_records_per_second=1_000,
        processing_rate_records_per_second=rate,
        nodes=4, startup_seconds=120.0,
    )
    lines = [
        "Run-once trigger cost savings (§7.3)",
        f"measured ETL processing rate: {rate:,.0f} records/s",
        f"{'interval':>10}{'savings vs 24/7':>18}{'max staleness':>16}",
    ]
    ratios = {}
    for hours in (1, 4, 12, 24):
        ratios[hours] = model.savings_ratio(MONTH, hours * HOUR)
        lines.append(
            f"{hours:>8}h {ratios[hours]:>15.1f}x"
            f"{model.max_latency(hours * HOUR) / HOUR:>14.2f}h"
        )
    lines.append("(paper: up to 10x for low-volume applications)")
    emit("run_once_cost", lines)

    assert max(ratios.values()) >= 10  # the paper's headline is reachable
    assert ratios[24] > ratios[1]      # rarer runs save more
