"""Run-once trigger cost savings (§7.3).

Paper: customers run a single epoch of a streaming job every few hours
instead of a 24/7 cluster, cutting cost "in one case, up to 10x" while
keeping the engine's transactional input/output tracking.

Reproduction: the processing rate fed into the cost model is *measured*
by actually running the run-once ETL pattern end to end (each invocation
is a fresh engine resuming from the WAL); the savings table then follows
from per-second billing arithmetic.
"""

from __future__ import annotations

import os
import time

import pytest

from repro.bus import Broker
from repro.cluster.costmodel import DeploymentCostModel
from repro.sql import functions as F
from repro.sql.session import Session
from repro.sql.types import StructType
from repro.sources.memory import MemoryStream

from benchmarks.reporting import emit

SCHEMA = (("device", "string"), ("reading", "double"), ("t", "timestamp"))
HOUR = 3600.0
MONTH = 30 * 24 * HOUR
BACKLOG = 100_000


def _one_run(session, broker, checkpoint, sink_rows):
    events = session.read_stream.kafka(broker, "logs", SCHEMA)
    cleaned = events.where(F.col("reading") >= 0)
    query = (cleaned.write_stream
             .foreach(lambda e, rows, mode: sink_rows.extend(rows))
             .output_mode("append").trigger(once=True).start(checkpoint))
    query.await_termination()
    return query


@pytest.mark.benchmark(group="runonce")
def test_run_once_savings(benchmark, tmp_path):
    broker = Broker()
    topic = broker.create_topic("logs", 1)
    session = Session()
    checkpoint = str(tmp_path / "ckpt")
    sink_rows = []

    def scheduled_invocation():
        # A few hours of backlog accumulated since the last run.
        topic.publish_to(0, [
            {"device": f"d{i % 50}", "reading": float(i % 100 - 5), "t": float(i)}
            for i in range(BACKLOG)
        ])
        _one_run(session, broker, checkpoint, sink_rows)
        return BACKLOG

    processed = benchmark.pedantic(scheduled_invocation, rounds=3, iterations=1)
    rate = processed / benchmark.stats.stats.min

    # Each run picked up exactly where the previous stopped: no row is
    # processed twice across invocations (the WAL's transactionality).
    assert len(sink_rows) == 3 * BACKLOG * 95 // 100

    model = DeploymentCostModel(
        arrival_rate_records_per_second=1_000,
        processing_rate_records_per_second=rate,
        nodes=4, startup_seconds=120.0,
    )
    lines = [
        "Run-once trigger cost savings (§7.3)",
        f"measured ETL processing rate: {rate:,.0f} records/s",
        f"{'interval':>10}{'savings vs 24/7':>18}{'max staleness':>16}",
    ]
    ratios = {}
    for hours in (1, 4, 12, 24):
        ratios[hours] = model.savings_ratio(MONTH, hours * HOUR)
        lines.append(
            f"{hours:>8}h {ratios[hours]:>15.1f}x"
            f"{model.max_latency(hours * HOUR) / HOUR:>14.2f}h"
        )
    lines.append("(paper: up to 10x for low-volume applications)")
    emit("run_once_cost", lines)

    assert max(ratios.values()) >= 10  # the paper's headline is reachable
    assert ratios[24] > ratios[1]      # rarer runs save more


# ----------------------------------------------------------------------
# Pipelined epochs: small-epoch overhead, sequential vs pipelined
# ----------------------------------------------------------------------
PIPELINE_EPOCHS = 150


def _epoch_pipeline_arm(pipeline: str, epochs: int = PIPELINE_EPOCHS):
    """Drain an ``epochs``-deep backlog one record per epoch (the
    fsync-bound regime where per-epoch protocol overhead dominates);
    returns (epochs_per_second, p50_ms, p99_ms)."""
    session = Session()
    stream = MemoryStream(StructType((("k", "string"), ("v", "long"))))
    stream.add_data([{"k": f"k{i % 5}", "v": i} for i in range(epochs)])
    query = (session.read_stream.memory(stream)
             .group_by("k").agg(F.sum("v").alias("total"))
             .write_stream.format("memory").query_name(f"pipe-{pipeline}")
             .output_mode("update")
             .option("pipeline", pipeline)
             .option("max_records_per_epoch", 1).start())
    started = time.perf_counter()
    progresses = query.engine.run_available()
    wall = time.perf_counter() - started
    query.stop()
    assert len(progresses) == epochs
    durations = sorted(p.duration_seconds for p in progresses)
    p50 = durations[len(durations) // 2] * 1000
    p99 = durations[int(len(durations) * 0.99)] * 1000
    return epochs / wall, p50, p99


@pytest.mark.benchmark(group="runonce")
def test_pipelined_epoch_throughput(benchmark):
    """Pipelined mode (async state flusher + group-commit WAL + source
    prefetch) must beat the sequential Figure-4 loop by >=1.3x on
    small stateful epochs, where the three per-epoch fsyncs dominate."""
    measured = {}

    def sweep():
        # Best of two runs per arm damps filesystem noise.
        for pipeline in ("off", "on"):
            runs = [_epoch_pipeline_arm(pipeline) for _ in range(2)]
            measured[pipeline] = max(runs, key=lambda r: r[0])
        return len(measured)

    benchmark.pedantic(sweep, rounds=1, iterations=1)
    eps_off, p50_off, p99_off = measured["off"]
    eps_on, p50_on, p99_on = measured["on"]
    speedup = eps_on / eps_off

    lines = [
        "Pipelined epochs — small-epoch throughput, sequential vs "
        f"pipelined ({PIPELINE_EPOCHS} one-record stateful epochs)",
        f"{'mode':>12}{'epochs/s':>11}{'p50':>9}{'p99':>9}",
        f"{'sequential':>12}{eps_off:>11,.0f}{p50_off:>7.2f}ms"
        f"{p99_off:>7.2f}ms",
        f"{'pipelined':>12}{eps_on:>11,.0f}{p50_on:>7.2f}ms"
        f"{p99_on:>7.2f}ms",
        f"speedup: {speedup:.2f}x (floor 1.3x)",
    ]
    emit("pipelined_epochs", lines, data={
        "epochs": PIPELINE_EPOCHS,
        "sequential": {"epochs_per_second": eps_off,
                       "p50_ms": p50_off, "p99_ms": p99_off},
        "pipelined": {"epochs_per_second": eps_on,
                      "p50_ms": p50_on, "p99_ms": p99_on},
        "speedup": speedup,
    })
    benchmark.extra_info["pipelined_speedup"] = speedup
    assert speedup >= 1.3, (
        f"pipelined epochs only {speedup:.2f}x over sequential")
