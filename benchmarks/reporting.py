"""Benchmark report output.

pytest captures stdout, so the per-figure tables (the rows/series the
paper reports) are written both to ``benchmarks/results/<name>.txt`` and
to the real stdout (``sys.__stdout__``), making them visible in a plain
``pytest benchmarks/ --benchmark-only`` run.

Reports that also pass ``data=`` get merged into
``benchmarks/results/bench_latest.json`` — one consolidated,
machine-readable snapshot of the latest benchmark run (what
``make bench-smoke`` publishes for CI artifacts and regression diffing).
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import time

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")
LATEST_JSON = os.path.join(RESULTS_DIR, "bench_latest.json")


def _git_sha() -> str | None:
    """The repo's current commit, or None outside a git checkout."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=os.path.dirname(os.path.abspath(__file__)),
            capture_output=True, text=True, timeout=5,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else None


def retract(name: str) -> None:
    """Remove a suite's entry from bench_latest.json (if present).

    Used when a run decides its numbers are not meaningful on this host
    (e.g. multicore speedups on a 1-core box): simply not emitting would
    leave a stale entry from an earlier host in the snapshot.
    """
    try:
        with open(LATEST_JSON) as f:
            merged = json.load(f)
    except (OSError, ValueError):
        return
    if name not in merged:
        return
    del merged[name]
    tmp = LATEST_JSON + ".tmp"
    with open(tmp, "w") as f:
        json.dump(merged, f, indent=2, sort_keys=True)
    os.replace(tmp, LATEST_JSON)


def emit(name: str, lines, data=None, recorded_at: float = None) -> None:
    """Write a benchmark report to results/<name>.txt and the console;
    with ``data``, also merge ``{name: data}`` into bench_latest.json.

    Each recorded suite entry is stamped with the host's core count, the
    git commit it ran at, and a timestamp (``recorded_at`` when the
    caller measured one, else now) — without these, a snapshot recorded
    on a 1-core CI box is indistinguishable from a 16-core dev machine
    and regression diffs compare apples to oranges.  The merge is
    idempotent per suite key: re-running a suite replaces only its own
    entry and leaves every other suite's untouched.
    """
    os.makedirs(RESULTS_DIR, exist_ok=True)
    text = "\n".join(lines) + "\n"
    with open(os.path.join(RESULTS_DIR, f"{name}.txt"), "w") as f:
        f.write(text)
    if data is not None:
        entry = dict(data)
        entry.setdefault("host_cores", os.cpu_count() or 1)
        entry.setdefault("recorded_at", recorded_at if recorded_at is not None
                         else time.time())
        sha = _git_sha()
        if sha is not None:
            entry.setdefault("git_sha", sha)
        merged = {}
        try:
            with open(LATEST_JSON) as f:
                merged = json.load(f)
        except (OSError, ValueError):
            pass
        merged[name] = entry
        tmp = LATEST_JSON + ".tmp"
        with open(tmp, "w") as f:
            json.dump(merged, f, indent=2, sort_keys=True)
        os.replace(tmp, LATEST_JSON)
    sys.__stdout__.write(f"\n===== {name} =====\n{text}")
    sys.__stdout__.flush()
