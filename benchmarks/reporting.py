"""Benchmark report output.

pytest captures stdout, so the per-figure tables (the rows/series the
paper reports) are written both to ``benchmarks/results/<name>.txt`` and
to the real stdout (``sys.__stdout__``), making them visible in a plain
``pytest benchmarks/ --benchmark-only`` run.
"""

from __future__ import annotations

import os
import sys

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def emit(name: str, lines) -> None:
    """Write a benchmark report to results/<name>.txt and the console."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    text = "\n".join(lines) + "\n"
    with open(os.path.join(RESULTS_DIR, f"{name}.txt"), "w") as f:
        f.write(text)
    sys.__stdout__.write(f"\n===== {name} =====\n{text}")
    sys.__stdout__.flush()
