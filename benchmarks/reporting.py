"""Benchmark report output.

pytest captures stdout, so the per-figure tables (the rows/series the
paper reports) are written both to ``benchmarks/results/<name>.txt`` and
to the real stdout (``sys.__stdout__``), making them visible in a plain
``pytest benchmarks/ --benchmark-only`` run.

Reports that also pass ``data=`` get merged into
``benchmarks/results/bench_latest.json`` — one consolidated,
machine-readable snapshot of the latest benchmark run (what
``make bench-smoke`` publishes for CI artifacts and regression diffing).
"""

from __future__ import annotations

import json
import os
import sys

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")
LATEST_JSON = os.path.join(RESULTS_DIR, "bench_latest.json")


def emit(name: str, lines, data=None) -> None:
    """Write a benchmark report to results/<name>.txt and the console;
    with ``data``, also merge ``{name: data}`` into bench_latest.json."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    text = "\n".join(lines) + "\n"
    with open(os.path.join(RESULTS_DIR, f"{name}.txt"), "w") as f:
        f.write(text)
    if data is not None:
        merged = {}
        try:
            with open(LATEST_JSON) as f:
                merged = json.load(f)
        except (OSError, ValueError):
            pass
        merged[name] = data
        tmp = LATEST_JSON + ".tmp"
        with open(tmp, "w") as f:
            json.dump(merged, f, indent=2, sort_keys=True)
        os.replace(tmp, LATEST_JSON)
    sys.__stdout__.write(f"\n===== {name} =====\n{text}")
    sys.__stdout__.flush()
