"""State-scaling ablation — epoch cost is O(delta), not O(total state).

The paper claims each epoch costs "time proportional to new data, never
to the whole stream" (§5.2, §6.1).  This bench grows buffered state to
~50k keys under a constant per-epoch delta and checks that epoch latency
stays flat:

* a windowed aggregation whose watermark lags far behind (state
  accumulates; eviction checks run every epoch), and
* a within-bound stream–stream join (both sides buffer every row).

Before the expiry-indexed eviction + probe-based join, both were linear
in accumulated state (the eviction full-scan and the rebuild of all
buffered rows into RecordBatches each epoch); see
``benchmarks/results/state_scaling.txt`` for the before/after numbers.

Run with ``STATE_SCALING_SMOKE=1`` for a small sanity-gate variant (used
by ``make bench-smoke``): same code paths, tiny sizes, no ratio assert.
"""

from __future__ import annotations

import gc
import os
import statistics
import time

import pytest

from repro.sql import functions as F
from repro.sql.session import Session
from repro.sql.types import StructType
from repro.sources.memory import MemoryStream

from benchmarks.reporting import emit

SMOKE = os.environ.get("STATE_SCALING_SMOKE") == "1"
#: (epochs, per-epoch delta) — full mode reaches >50k buffered keys.
AGG_EPOCHS, AGG_KEYS_PER_EPOCH = (8, 250) if SMOKE else (22, 2500)
JOIN_EPOCHS, JOIN_ROWS_PER_EPOCH = (8, 100) if SMOKE else (26, 1000)
#: Tiered-backend run: epochs × new keys/epoch reaches 10M keys in full
#: mode — far beyond what the dict backend's RSS could hold here.
TIERED_EPOCHS, TIERED_KEYS_PER_EPOCH = (6, 5000) if SMOKE else (50, 200_000)
TIERED_OVERWRITES_PER_EPOCH = 200 if SMOKE else 2000
TIERED_MEMTABLE_BYTES = 64 * 1024 * 1024
#: RSS ceiling for the full 10M-key run: the 64MB memtable budget
#: (logical bytes; Python object overhead is ~3x that), per-run bloom
#: filters + sparse indexes (~30MB at 10M keys), and interpreter slack.
#: The dict backend measures ~330 bytes/key (see the emitted report), so
#: 10M keys would need ~3.3GB — this bound is an order of magnitude under.
TIERED_RSS_BOUND = 512 * 1024 * 1024

#: Pre-optimization epoch latencies measured on this container with the
#: full-scan eviction and batch-rebuilding join, same workload shapes:
#: (state keys, epoch ms) samples from the linear-cost baseline.
BEFORE = {
    "aggregate": [(2500, 42.9), (5000, 52.1), (10000, 72.9),
                  (25000, 104.6), (50000, 145.2), (55000, 159.5)],
    "join": [(2000, 47.8), (4000, 73.7), (10000, 159.6),
             (24000, 408.1), (50000, 1069.5), (52000, 1111.8)],
}


def _timed_epochs(stream_feeds, query):
    """Feed one epoch at a time; return [(state_keys, seconds)]."""
    timings = []
    gc.collect()
    gc.disable()
    try:
        for feed in stream_feeds:
            feed()
            started = time.perf_counter()
            query.process_all_available()
            timings.append((
                query.engine.state_store.total_keys(),
                time.perf_counter() - started,
            ))
    finally:
        gc.enable()
    return timings


def run_agg(tmp_path):
    """Windowed count; watermark far behind so state only accumulates."""
    session = Session()
    stream = MemoryStream(StructType((("t", "timestamp"), ("k", "long"))))
    df = session.read_stream.memory(stream).with_watermark("t", "1000000000s")
    counts = df.group_by(F.window("t", "10s"), "k").count()
    query = (counts.write_stream.format("memory").query_name("scaling-agg")
             .output_mode("update").start(str(tmp_path / "agg")))

    def feed(epoch):
        def add():
            stream.add_data([
                {"t": epoch * 10.0, "k": epoch * AGG_KEYS_PER_EPOCH + i}
                for i in range(AGG_KEYS_PER_EPOCH)
            ])
        return add

    return _timed_epochs([feed(e) for e in range(AGG_EPOCHS)], query)


def run_join(tmp_path):
    """Within-bound stream–stream join; every row stays buffered."""
    session = Session()
    ls = MemoryStream(StructType((("k", "long"), ("t", "timestamp"))))
    rs = MemoryStream(StructType((("k", "long"), ("t2", "timestamp"))))
    left = session.read_stream.memory(ls).with_watermark("t", "1000000000s")
    right = session.read_stream.memory(rs).with_watermark("t2", "1000000000s")
    joined = left.join(right, on="k", within=("t", "t2", "5s"))
    query = (joined.write_stream.format("memory").query_name("scaling-join")
             .output_mode("append").start(str(tmp_path / "join")))

    def feed(epoch):
        def add():
            base_key = epoch * JOIN_ROWS_PER_EPOCH
            ls.add_data([{"k": base_key + i, "t": epoch * 10.0}
                         for i in range(JOIN_ROWS_PER_EPOCH)])
            rs.add_data([{"k": base_key + i, "t2": epoch * 10.0 + 1.0}
                         for i in range(JOIN_ROWS_PER_EPOCH)])
        return add

    return _timed_epochs([feed(e) for e in range(JOIN_EPOCHS)], query)


def _window_medians(timings):
    """Median epoch ms over an early window (~1/10 of final state) and a
    late window (final state), skipping warmup epochs."""
    count = len(timings)
    early = [s for _, s in timings[1:5]]
    late = [s for _, s in timings[count - 5:count - 1]]
    return (statistics.median(early) * 1000.0,
            statistics.median(late) * 1000.0)


@pytest.mark.benchmark(group="state-scaling")
def test_epoch_latency_flat_as_state_grows(benchmark, tmp_path):
    results = {}

    def run_both():
        results["agg"] = run_agg(tmp_path)
        results["join"] = run_join(tmp_path)
        return len(results["agg"]) + len(results["join"])

    benchmark.pedantic(run_both, rounds=1, iterations=1)

    agg, join = results["agg"], results["join"]
    agg_early, agg_late = _window_medians(agg)
    join_early, join_late = _window_medians(join)
    agg_growth = agg_late / agg_early
    join_growth = join_late / join_early

    lines = [
        "State scaling: epoch latency vs buffered state (§5.2/§6.1 "
        "delta-proportionality)",
        f"windowed aggregate: +{AGG_KEYS_PER_EPOCH} keys/epoch, "
        f"{AGG_EPOCHS} epochs -> {agg[-1][0]} keys",
        f"stream-stream join (within bound): "
        f"+{2 * JOIN_ROWS_PER_EPOCH} rows/epoch, "
        f"{JOIN_EPOCHS} epochs -> {join[-1][0]} buffered rows",
        "",
        f"{'workload':>12}{'state 1x':>12}{'state 10x':>12}{'growth':>9}",
    ]
    for name, early, late, growth in (
        ("aggregate", agg_early, agg_late, agg_growth),
        ("join", join_early, join_late, join_growth),
    ):
        lines.append(
            f"{name:>12}{early:>10.1f}ms{late:>10.1f}ms{growth:>8.2f}x")
    lines += [
        "",
        "before indexed eviction + probe join (same shapes; full-scan "
        "eviction, buffered state rebuilt per epoch):",
    ]
    for name, samples in BEFORE.items():
        series = ", ".join(f"{keys / 1000:g}k: {ms:.0f}ms"
                           for keys, ms in samples)
        lines.append(f"{name:>12}  {series}")
    lines.append(
        "  (aggregate 5k->50k keys: 2.8x; join 4k->52k rows: 15.1x)")

    emit("state_scaling", lines, data={
        "smoke": SMOKE,
        "aggregate": {"early_ms": agg_early, "late_ms": agg_late,
                      "growth": agg_growth},
        "join": {"early_ms": join_early, "late_ms": join_late,
                 "growth": join_growth},
    })
    if not SMOKE:
        # The acceptance bar: 10x more buffered state, <=1.5x epoch time.
        assert agg_growth <= 1.5, f"aggregate epoch latency grew {agg_growth:.2f}x"
        assert join_growth <= 1.5, f"join epoch latency grew {join_growth:.2f}x"

    # Sanity in both modes: state actually accumulated as designed.
    assert agg[-1][0] == AGG_EPOCHS * AGG_KEYS_PER_EPOCH
    assert join[-1][0] == 2 * JOIN_EPOCHS * JOIN_ROWS_PER_EPOCH


# ----------------------------------------------------------------------
# Tiered backend: 10M keys under a bounded memtable (ISSUE 7 acceptance)
# ----------------------------------------------------------------------
def _rss_bytes() -> int:
    with open("/proc/self/status", encoding="utf-8") as f:
        for line in f:
            if line.startswith("VmRSS:"):
                return int(line.split()[1]) * 1024
    raise RuntimeError("VmRSS not found")


def _dict_bytes_per_key(n: int = 200_000) -> float:
    """Measured dict-backend memory per key, for the comparison line."""
    from repro.streaming.state import OperatorStateHandle
    import tempfile

    gc.collect()
    before = _rss_bytes()
    handle = OperatorStateHandle(tempfile.mkdtemp(), num_shards=1)
    for i in range(n):
        handle.put(i, [i % 7])
    gc.collect()
    per_key = (_rss_bytes() - before) / n
    del handle
    gc.collect()
    return per_key


@pytest.mark.benchmark(group="state-scaling")
def test_tiered_backend_bounded_rss_and_flat_epochs(benchmark, tmp_path):
    """10M+ keys through the tiered handle: RSS stays bounded by the
    memtable budget + fixed probe-structure overhead, per-epoch latency
    stays flat, and each commit writes bytes proportional to the
    epoch's delta — never to total state."""
    from repro.storage import list_files
    from repro.streaming.state_lsm import TieredOperatorStateHandle

    dict_per_key = _dict_bytes_per_key(20_000 if SMOKE else 200_000)
    gc.collect()
    rss_start = _rss_bytes()
    handle = TieredOperatorStateHandle(
        str(tmp_path / "op"), num_shards=1,
        memtable_bytes=TIERED_MEMTABLE_BYTES)
    runs_dir = str(tmp_path / "op" / "runs")
    epochs = []  # (total_keys, seconds, rss, flush_bytes, compact_bytes)

    def run_epochs():
        for epoch in range(TIERED_EPOCHS):
            base = epoch * TIERED_KEYS_PER_EPOCH
            first_seq = handle._next_seq
            started = time.perf_counter()
            for i in range(base, base + TIERED_KEYS_PER_EPOCH):
                handle.put(i, [i % 7])
            for i in range(0, base, max(1, base // TIERED_OVERWRITES_PER_EPOCH or 1)):
                handle.put(i, [-1])
            handle.commit(epoch + 1)
            elapsed = time.perf_counter() - started
            sizes = {
                int(name.split(".")[0]): os.path.getsize(
                    os.path.join(runs_dir, name))
                for name in list_files(runs_dir, ".run")
            }
            flush_bytes = sizes.get(first_seq, 0)
            compact_bytes = sum(b for s, b in sizes.items() if s > first_seq)
            if epoch % 5 == 4:
                handle.prune(epoch + 1)
            gc.collect()
            epochs.append((len(handle), elapsed, _rss_bytes(),
                           flush_bytes, compact_bytes))
        return len(epochs)

    benchmark.pedantic(run_epochs, rounds=1, iterations=1)

    total_keys = TIERED_EPOCHS * TIERED_KEYS_PER_EPOCH
    assert len(handle) == total_keys
    # spot-probe correctness at full size, and time the point lookups
    probe_started = time.perf_counter()
    probes = 2000
    for i in range(0, total_keys, max(1, total_keys // probes)):
        assert handle.get(i) is not None
    probe_us = (time.perf_counter() - probe_started) / probes * 1e6

    rss_delta = max(r for _, _, r, _, _ in epochs) - rss_start
    early = [s for _, s, _, _, _ in epochs[4:9]]
    late = [s for _, s, _, _, _ in epochs[-5:]]
    growth = statistics.median(late) / statistics.median(early)
    flush_early = statistics.median([f for *_, f, _ in epochs[4:9]])
    flush_late = statistics.median([f for *_, f, _ in epochs[-5:]])
    compact_total = sum(c for *_, c in epochs)
    flush_total = sum(f for *_, f, _ in epochs)

    lines = [
        "Tiered state backend: 10M-key run under a 64MB memtable budget",
        f"keys: {total_keys} ({TIERED_KEYS_PER_EPOCH}/epoch x "
        f"{TIERED_EPOCHS} epochs, +{TIERED_OVERWRITES_PER_EPOCH} "
        "overwrites/epoch), values [int]",
        f"peak RSS delta: {rss_delta / 2**20:.0f}MB "
        f"(bound {TIERED_RSS_BOUND / 2**20:.0f}MB; dict backend measured "
        f"{dict_per_key:.0f}B/key -> ~{dict_per_key * total_keys / 2**30:.1f}"
        "GB at this size)",
        f"epoch latency: {statistics.median(early) * 1000:.0f}ms at "
        f"{epochs[4][0] / 1e6:.1f}M keys -> {statistics.median(late) * 1000:.0f}"
        f"ms at {epochs[-1][0] / 1e6:.1f}M keys ({growth:.2f}x)",
        f"commit delta bytes: {flush_early / 2**20:.1f}MB early -> "
        f"{flush_late / 2**20:.1f}MB late (state grew "
        f"{epochs[-1][0] / epochs[4][0]:.0f}x)",
        f"compaction I/O: {compact_total / 2**20:.0f}MB total vs "
        f"{flush_total / 2**20:.0f}MB flushed "
        f"(write amplification {1 + compact_total / max(1, flush_total):.1f}x)",
        f"point probe at full size: {probe_us:.0f}us/get, "
        f"{len(handle._runs)} live runs",
    ]
    emit("state_scaling_tiered", lines, data={
        "smoke": SMOKE,
        "total_keys": total_keys,
        "rss_delta_bytes": rss_delta,
        "dict_bytes_per_key": dict_per_key,
        "epoch_growth": growth,
        "flush_bytes_early": flush_early,
        "flush_bytes_late": flush_late,
        "compaction_bytes": compact_total,
        "probe_us": probe_us,
        "live_runs": len(handle._runs),
    })
    if not SMOKE:
        assert rss_delta < TIERED_RSS_BOUND, (
            f"RSS grew {rss_delta / 2**20:.0f}MB — state is not tiered out"
        )
        # 10x more total state between the early and late windows must
        # not show up in epoch time (no O(total-state) term)...
        assert growth <= 1.8, f"epoch latency grew {growth:.2f}x"
        # ...nor in the bytes a delta commit writes.
        assert flush_late <= 2.0 * flush_early, (
            f"commit bytes grew {flush_late / max(1, flush_early):.1f}x; "
            "snapshots are no longer delta-proportional"
        )
