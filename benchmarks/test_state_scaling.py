"""State-scaling ablation — epoch cost is O(delta), not O(total state).

The paper claims each epoch costs "time proportional to new data, never
to the whole stream" (§5.2, §6.1).  This bench grows buffered state to
~50k keys under a constant per-epoch delta and checks that epoch latency
stays flat:

* a windowed aggregation whose watermark lags far behind (state
  accumulates; eviction checks run every epoch), and
* a within-bound stream–stream join (both sides buffer every row).

Before the expiry-indexed eviction + probe-based join, both were linear
in accumulated state (the eviction full-scan and the rebuild of all
buffered rows into RecordBatches each epoch); see
``benchmarks/results/state_scaling.txt`` for the before/after numbers.

Run with ``STATE_SCALING_SMOKE=1`` for a small sanity-gate variant (used
by ``make bench-smoke``): same code paths, tiny sizes, no ratio assert.
"""

from __future__ import annotations

import gc
import os
import statistics
import time

import pytest

from repro.sql import functions as F
from repro.sql.session import Session
from repro.sql.types import StructType
from repro.sources.memory import MemoryStream

from benchmarks.reporting import emit

SMOKE = os.environ.get("STATE_SCALING_SMOKE") == "1"
#: (epochs, per-epoch delta) — full mode reaches >50k buffered keys.
AGG_EPOCHS, AGG_KEYS_PER_EPOCH = (8, 250) if SMOKE else (22, 2500)
JOIN_EPOCHS, JOIN_ROWS_PER_EPOCH = (8, 100) if SMOKE else (26, 1000)

#: Pre-optimization epoch latencies measured on this container with the
#: full-scan eviction and batch-rebuilding join, same workload shapes:
#: (state keys, epoch ms) samples from the linear-cost baseline.
BEFORE = {
    "aggregate": [(2500, 42.9), (5000, 52.1), (10000, 72.9),
                  (25000, 104.6), (50000, 145.2), (55000, 159.5)],
    "join": [(2000, 47.8), (4000, 73.7), (10000, 159.6),
             (24000, 408.1), (50000, 1069.5), (52000, 1111.8)],
}


def _timed_epochs(stream_feeds, query):
    """Feed one epoch at a time; return [(state_keys, seconds)]."""
    timings = []
    gc.collect()
    gc.disable()
    try:
        for feed in stream_feeds:
            feed()
            started = time.perf_counter()
            query.process_all_available()
            timings.append((
                query.engine.state_store.total_keys(),
                time.perf_counter() - started,
            ))
    finally:
        gc.enable()
    return timings


def run_agg(tmp_path):
    """Windowed count; watermark far behind so state only accumulates."""
    session = Session()
    stream = MemoryStream(StructType((("t", "timestamp"), ("k", "long"))))
    df = session.read_stream.memory(stream).with_watermark("t", "1000000000s")
    counts = df.group_by(F.window("t", "10s"), "k").count()
    query = (counts.write_stream.format("memory").query_name("scaling-agg")
             .output_mode("update").start(str(tmp_path / "agg")))

    def feed(epoch):
        def add():
            stream.add_data([
                {"t": epoch * 10.0, "k": epoch * AGG_KEYS_PER_EPOCH + i}
                for i in range(AGG_KEYS_PER_EPOCH)
            ])
        return add

    return _timed_epochs([feed(e) for e in range(AGG_EPOCHS)], query)


def run_join(tmp_path):
    """Within-bound stream–stream join; every row stays buffered."""
    session = Session()
    ls = MemoryStream(StructType((("k", "long"), ("t", "timestamp"))))
    rs = MemoryStream(StructType((("k", "long"), ("t2", "timestamp"))))
    left = session.read_stream.memory(ls).with_watermark("t", "1000000000s")
    right = session.read_stream.memory(rs).with_watermark("t2", "1000000000s")
    joined = left.join(right, on="k", within=("t", "t2", "5s"))
    query = (joined.write_stream.format("memory").query_name("scaling-join")
             .output_mode("append").start(str(tmp_path / "join")))

    def feed(epoch):
        def add():
            base_key = epoch * JOIN_ROWS_PER_EPOCH
            ls.add_data([{"k": base_key + i, "t": epoch * 10.0}
                         for i in range(JOIN_ROWS_PER_EPOCH)])
            rs.add_data([{"k": base_key + i, "t2": epoch * 10.0 + 1.0}
                         for i in range(JOIN_ROWS_PER_EPOCH)])
        return add

    return _timed_epochs([feed(e) for e in range(JOIN_EPOCHS)], query)


def _window_medians(timings):
    """Median epoch ms over an early window (~1/10 of final state) and a
    late window (final state), skipping warmup epochs."""
    count = len(timings)
    early = [s for _, s in timings[1:5]]
    late = [s for _, s in timings[count - 5:count - 1]]
    return (statistics.median(early) * 1000.0,
            statistics.median(late) * 1000.0)


@pytest.mark.benchmark(group="state-scaling")
def test_epoch_latency_flat_as_state_grows(benchmark, tmp_path):
    results = {}

    def run_both():
        results["agg"] = run_agg(tmp_path)
        results["join"] = run_join(tmp_path)
        return len(results["agg"]) + len(results["join"])

    benchmark.pedantic(run_both, rounds=1, iterations=1)

    agg, join = results["agg"], results["join"]
    agg_early, agg_late = _window_medians(agg)
    join_early, join_late = _window_medians(join)
    agg_growth = agg_late / agg_early
    join_growth = join_late / join_early

    lines = [
        "State scaling: epoch latency vs buffered state (§5.2/§6.1 "
        "delta-proportionality)",
        f"windowed aggregate: +{AGG_KEYS_PER_EPOCH} keys/epoch, "
        f"{AGG_EPOCHS} epochs -> {agg[-1][0]} keys",
        f"stream-stream join (within bound): "
        f"+{2 * JOIN_ROWS_PER_EPOCH} rows/epoch, "
        f"{JOIN_EPOCHS} epochs -> {join[-1][0]} buffered rows",
        "",
        f"{'workload':>12}{'state 1x':>12}{'state 10x':>12}{'growth':>9}",
    ]
    for name, early, late, growth in (
        ("aggregate", agg_early, agg_late, agg_growth),
        ("join", join_early, join_late, join_growth),
    ):
        lines.append(
            f"{name:>12}{early:>10.1f}ms{late:>10.1f}ms{growth:>8.2f}x")
    lines += [
        "",
        "before indexed eviction + probe join (same shapes; full-scan "
        "eviction, buffered state rebuilt per epoch):",
    ]
    for name, samples in BEFORE.items():
        series = ", ".join(f"{keys / 1000:g}k: {ms:.0f}ms"
                           for keys, ms in samples)
        lines.append(f"{name:>12}  {series}")
    lines.append(
        "  (aggregate 5k->50k keys: 2.8x; join 4k->52k rows: 15.1x)")

    emit("state_scaling", lines, data={
        "smoke": SMOKE,
        "aggregate": {"early_ms": agg_early, "late_ms": agg_late,
                      "growth": agg_growth},
        "join": {"early_ms": join_early, "late_ms": join_late,
                 "growth": join_growth},
    })
    if not SMOKE:
        # The acceptance bar: 10x more buffered state, <=1.5x epoch time.
        assert agg_growth <= 1.5, f"aggregate epoch latency grew {agg_growth:.2f}x"
        assert join_growth <= 1.5, f"join epoch latency grew {join_growth:.2f}x"

    # Sanity in both modes: state actually accumulated as designed.
    assert agg[-1][0] == AGG_EPOCHS * AGG_KEYS_PER_EPOCH
    assert join[-1][0] == 2 * JOIN_EPOCHS * JOIN_ROWS_PER_EPOCH
