"""Figure 6a — Yahoo! benchmark throughput vs other systems (§9.1).

Paper (5 nodes x 8 cores = 40 cores):

    Kafka Streams          0.7  M records/s
    Apache Flink          33    M records/s
    Structured Streaming  65    M records/s   (2x Flink, ~90x KS)

Reproduction: each engine's *single-core* throughput is measured by
actually executing it on the same published workload; the 40-core
figures come from the calibrated cluster model (the scaling mechanism
validated separately in Fig 6b).  The expected *shape*: Structured
Streaming wins over the Flink-style engine by a small integer factor,
and beats the Kafka-Streams-style engine by well over an order of
magnitude.
"""

from __future__ import annotations

import pytest

from repro.baselines.operator_engine import (
    FilterOperator,
    FlinkStyleEngine,
    KeyByBoundary,
    ProjectOperator,
    TableJoinOperator,
    WindowedCountOperator,
)
from repro.baselines.record_engine import (
    FilterStage,
    KafkaStreamsStyleEngine,
    MapStage,
    TableJoinStage,
    WindowedCountStage,
)
from repro.cluster.perfmodel import ClusterPerformanceModel
from repro.observability import metrics, tracing
from repro.sql.session import Session
from repro.workloads.yahoo import WINDOW_SECONDS, structured_streaming_query

from benchmarks.reporting import emit

N_FAST = 400_000
N_SLOW = 40_000
PAPER = {"structured_streaming": 65e6, "flink": 33e6, "kafka_streams": 0.7e6}

_measured = {}


def _run_structured_streaming(broker, workload) -> int:
    session = Session()
    query = structured_streaming_query(session, broker, "events", workload)
    handle = (query.write_stream.format("memory").query_name("fig6a")
              .output_mode("update").start())
    handle.process_all_available()
    assert handle.engine.sink.rows(), "no output produced"
    return N_FAST


def _run_structured_streaming_instrumented(broker, workload) -> int:
    """The same workload with metrics + tracing live — the overhead arm."""
    with metrics.enabled(), tracing.enabled():
        return _run_structured_streaming(broker, workload)


def _run_flink_style(broker, workload) -> int:
    counter = WindowedCountOperator("campaign_id", "event_time", WINDOW_SECONDS)
    engine = FlinkStyleEngine(broker, [
        FilterOperator(lambda r: r["event_type"] == "view"),
        ProjectOperator(("ad_id", "event_time")),
        TableJoinOperator(workload.campaign_lookup(), "ad_id", "campaign_id"),
        KeyByBoundary("campaign_id"),
        counter,
    ])
    processed = engine.run("events")
    assert counter.counts
    return processed


def _run_kafka_streams_style(broker, workload) -> int:
    engine = KafkaStreamsStyleEngine(broker, name=f"ks-{id(object())}")
    engine.add_stage(FilterStage(lambda r: r["event_type"] == "view"))
    engine.add_stage(MapStage(
        lambda r: {"ad_id": r["ad_id"], "event_time": r["event_time"]}))
    engine.add_stage(TableJoinStage(
        workload.campaign_lookup(), "ad_id", "campaign_id"))
    engine.add_stage(WindowedCountStage(
        "campaign_id", "event_time", WINDOW_SECONDS,
        engine.changelog_topic(f"c{id(object())}")))
    return engine.run("events", f"out-{id(object())}")


@pytest.mark.benchmark(group="fig6a")
def test_structured_streaming_throughput(benchmark, columnar_events, workload):
    result = benchmark.pedantic(
        _run_structured_streaming, args=(columnar_events, workload),
        rounds=3, iterations=1)
    rate = result / benchmark.stats.stats.min
    _measured["structured_streaming"] = rate
    benchmark.extra_info["records_per_second"] = rate


@pytest.mark.benchmark(group="fig6a")
def test_structured_streaming_instrumented_throughput(
        benchmark, columnar_events, workload):
    """Observability overhead: the full Yahoo pipeline with metrics and
    span tracing enabled must stay within a few percent of the plain
    run (the acceptance bar for the always-on monitoring of §7.4)."""
    result = benchmark.pedantic(
        _run_structured_streaming_instrumented, args=(columnar_events, workload),
        rounds=3, iterations=1)
    rate = result / benchmark.stats.stats.min
    _measured["structured_streaming_instrumented"] = rate
    benchmark.extra_info["records_per_second"] = rate


@pytest.mark.benchmark(group="fig6a")
def test_flink_style_throughput(benchmark, columnar_events, workload):
    result = benchmark.pedantic(
        _run_flink_style, args=(columnar_events, workload),
        rounds=3, iterations=1)
    rate = result / benchmark.stats.stats.min
    _measured["flink"] = rate
    benchmark.extra_info["records_per_second"] = rate


@pytest.mark.benchmark(group="fig6a")
def test_kafka_streams_style_throughput(benchmark, row_events_small, workload):
    result = benchmark.pedantic(
        _run_kafka_streams_style, args=(row_events_small, workload),
        rounds=3, iterations=1)
    rate = result / benchmark.stats.stats.min
    _measured["kafka_streams"] = rate
    benchmark.extra_info["records_per_second"] = rate


@pytest.mark.benchmark(group="fig6a")
def test_zz_fig6a_report(benchmark):
    """Assemble the Figure 6a table from the measured rates.

    (Named zz_ so it runs after the measurements; benchmark fixture
    used trivially to keep --benchmark-only from skipping it.)
    """
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    assert set(_measured) == {"structured_streaming",
                              "structured_streaming_instrumented",
                              "flink", "kafka_streams"}

    model_cores = 40  # 5 nodes x 8 cores, as in the paper
    lines = [
        "Figure 6a — Yahoo! Streaming Benchmark, max throughput",
        f"{'system':<22}{'measured/core':>16}{'modeled 40-core':>18}{'paper':>12}",
    ]
    modeled = {}
    for system in ("kafka_streams", "flink", "structured_streaming"):
        per_core = _measured[system]
        model = ClusterPerformanceModel(per_core, cores_per_node=8)
        modeled[system] = model.max_throughput(5)
        lines.append(
            f"{system:<22}{per_core:>13,.0f}/s{modeled[system]:>15,.0f}/s"
            f"{PAPER[system]:>11,.0f}/s"
        )
    ss_flink = modeled["structured_streaming"] / modeled["flink"]
    ss_ks = modeled["structured_streaming"] / modeled["kafka_streams"]
    plain = _measured["structured_streaming"]
    instrumented = _measured["structured_streaming_instrumented"]
    overhead_pct = 100.0 * (1.0 - instrumented / plain)
    lines += [
        f"ratio SS/Flink-style: {ss_flink:.2f}x   (paper: 2.0x)",
        f"ratio SS/KS-style:    {ss_ks:.1f}x   (paper: ~90x)",
        f"observability on (metrics+trace): {instrumented:,.0f}/s per core "
        f"({overhead_pct:+.1f}% overhead vs off)",
        f"(modeled on {model_cores} cores; mechanisms, not magnitudes, "
        "are the claim — see EXPERIMENTS.md)",
    ]
    emit("fig6a_yahoo_throughput", lines)

    # Observability must be cheap: the instrumented arm stays within a
    # small slice of the plain run (3% is the design bar; the assert
    # leaves headroom for shared-CI timer noise).
    assert instrumented >= 0.85 * plain, (
        f"instrumentation overhead {overhead_pct:.1f}% exceeds budget")

    # The paper's shape: SS wins over Flink by a small factor and over
    # Kafka Streams by a very large one.
    assert ss_flink > 1.3, f"Structured Streaming should beat Flink-style, got {ss_flink}"
    assert ss_ks > 15, f"Structured Streaming should crush KS-style, got {ss_ks}"
    assert modeled["flink"] > modeled["kafka_streams"]
