"""Figure 7 — continuous processing latency vs input rate (§9.3).

Paper (4-core server, map job reading from Kafka): continuous mode holds
millisecond-scale latency across input rates up to near its maximum
stable throughput (e.g. <10 ms at half max), while microbatch mode's
latency is orders of magnitude higher (hundreds of ms to seconds); the
dashed line marks microbatch's max throughput, slightly below
continuous mode's because of task-scheduling overhead per epoch.

Reproduction: a publisher thread feeds a one-partition topic at a target
rate; each record carries its publish time, and a latency-probing sink
records delivery lag.  The same map query runs under both engines.
"""

from __future__ import annotations

import statistics
import threading
import time

import pytest

from repro.bus import Broker
from repro.sinks.base import Sink
from repro.sql import functions as F
from repro.sql.session import Session

from benchmarks.reporting import emit

SCHEMA = (("publish_time", "timestamp"), ("value", "long"))
RATES = (500, 2_000, 8_000, 20_000)
MEASURE_SECONDS = 1.0


class LatencyProbeSink(Sink):
    """Records per-row delivery latency (now - publish_time)."""

    def __init__(self):
        self.latencies = []
        self._lock = threading.Lock()
        self.key_names = []

    def append_rows(self, rows):
        now = time.monotonic()
        with self._lock:
            for row in rows:
                self.latencies.append(now - row["publish_time"])

    def add_batch(self, epoch_id, batch, mode):
        self.append_rows(batch.to_rows())


def publish_at_rate(topic, rate: float, seconds: float):
    """Publish records at ``rate``/s in 5 ms micro-batches (as a steady
    producer would), stamping each with its publish time."""
    interval = 0.005
    per_tick = max(1, int(rate * interval))
    end = time.monotonic() + seconds
    value = 0
    while time.monotonic() < end:
        tick_start = time.monotonic()
        rows = [{"publish_time": time.monotonic(), "value": value + i}
                for i in range(per_tick)]
        topic.publish_to(0, rows)
        value += per_tick
        sleep = interval - (time.monotonic() - tick_start)
        if sleep > 0:
            time.sleep(sleep)
    return value


def _map_query(session, broker):
    return (session.read_stream.kafka(broker, "stream", SCHEMA)
            .where(F.col("value") >= 0)
            .select("publish_time", (F.col("value") * 2).alias("doubled"))
            .drop("doubled")
            .with_column("publish_time", F.col("publish_time")))


def _measure_continuous_latency(rate: float) -> float:
    broker = Broker()
    topic = broker.create_topic("stream", 1)
    session = Session()
    sink = LatencyProbeSink()
    query = (_map_query(session, broker).write_stream.sink(sink)
             .trigger(continuous="200ms").start())
    try:
        publish_at_rate(topic, rate, MEASURE_SECONDS)
        deadline = time.monotonic() + 3
        while time.monotonic() < deadline and len(sink.latencies) < 10:
            time.sleep(0.01)
        # Drop warm-up records.
        samples = sink.latencies[len(sink.latencies) // 5:]
        return statistics.median(samples) if samples else float("inf")
    finally:
        query.stop()


def _max_throughput_continuous(n: int = 300_000) -> float:
    broker = Broker()
    topic = broker.create_topic("stream", 1)
    now = time.monotonic()
    topic.publish_to(0, [{"publish_time": now, "value": i} for i in range(n)])
    session = Session()
    sink = LatencyProbeSink()
    query = (_map_query(session, broker).write_stream.sink(sink)
             .trigger(continuous="500ms").start())
    started = time.monotonic()
    try:
        query.engine.run_available()
        return n / (time.monotonic() - started)
    finally:
        query.stop()


def _max_throughput_microbatch(n: int = 300_000) -> float:
    broker = Broker()
    topic = broker.create_topic("stream", 1)
    now = time.monotonic()
    topic.publish_to(0, [{"publish_time": now, "value": i} for i in range(n)])
    session = Session()
    sink = LatencyProbeSink()
    query = (_map_query(session, broker).write_stream.sink(sink)
             .output_mode("append").start())
    started = time.monotonic()
    query.process_all_available()
    return n / (time.monotonic() - started)


def _microbatch_latency(trigger_interval: float = 0.1,
                        pipeline: str = "off") -> float:
    broker = Broker()
    topic = broker.create_topic("stream", 1)
    session = Session()
    sink = LatencyProbeSink()
    query = (_map_query(session, broker).write_stream.sink(sink)
             .output_mode("append")
             .option("pipeline", pipeline)
             .trigger(interval=trigger_interval).start())
    try:
        publish_at_rate(topic, 500, 1.0)
        deadline = time.monotonic() + 3
        while time.monotonic() < deadline and len(sink.latencies) < 10:
            time.sleep(0.01)
        samples = sink.latencies[len(sink.latencies) // 5:]
        return statistics.median(samples) if samples else float("inf")
    finally:
        query.stop()


@pytest.mark.benchmark(group="fig7")
def test_continuous_latency_vs_input_rate(benchmark):
    latencies = {}

    def sweep():
        for rate in RATES:
            latencies[rate] = _measure_continuous_latency(rate)
        return len(RATES)

    benchmark.pedantic(sweep, rounds=1, iterations=1)

    continuous_max = _max_throughput_continuous()
    microbatch_max = _max_throughput_microbatch()
    microbatch_lat = _microbatch_latency()
    microbatch_lat_pipelined = _microbatch_latency(pipeline="on")

    lines = [
        "Figure 7 — continuous processing latency vs input rate",
        f"{'input rate':>12}{'median latency':>18}",
    ]
    for rate in RATES:
        lines.append(f"{rate:>10}/s{latencies[rate] * 1000:>15.1f} ms")
    lines += [
        f"continuous max stable throughput: {continuous_max:,.0f} rec/s",
        f"microbatch max throughput (dashed line): {microbatch_max:,.0f} rec/s",
        f"microbatch end-to-end latency (100ms trigger): "
        f"{microbatch_lat * 1000:,.1f} ms",
        f"microbatch end-to-end latency (100ms trigger, pipelined): "
        f"{microbatch_lat_pipelined * 1000:,.1f} ms",
        "(paper: continuous <10 ms at half max rate; microbatch 100-1000 ms)",
    ]
    emit("fig7_continuous_latency", lines, data={
        "continuous_latency_ms": {str(r): latencies[r] * 1000 for r in RATES},
        "continuous_max_records_per_second": continuous_max,
        "microbatch_max_records_per_second": microbatch_max,
        "microbatch_latency_ms": {
            "sequential": microbatch_lat * 1000,
            "pipelined": microbatch_lat_pipelined * 1000,
        },
    })

    # Shape: low flat latency across the sweep...
    for rate in RATES:
        assert latencies[rate] < 0.25, f"latency too high at {rate}/s"
    # ...and far below microbatch's trigger-bound latency.
    assert statistics.median(latencies.values()) < microbatch_lat
    benchmark.extra_info.update({
        "latencies_ms": {r: latencies[r] * 1000 for r in RATES},
        "continuous_max": continuous_max,
        "microbatch_max": microbatch_max,
        "microbatch_latency_ms": microbatch_lat * 1000,
        "microbatch_latency_pipelined_ms": microbatch_lat_pipelined * 1000,
    })
