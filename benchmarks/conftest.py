"""Shared benchmark fixtures: pre-published Yahoo! workloads."""

from __future__ import annotations

import pytest

from repro.bus import Broker
from repro.workloads.yahoo import YahooWorkload


@pytest.fixture(scope="session")
def workload():
    return YahooWorkload()


@pytest.fixture(scope="session")
def columnar_events(workload):
    """A broker with 400k events published as columnar segments, as a
    vectorized Kafka reader would fetch them."""
    broker = Broker()
    workload.publish_columnar(broker, "events", 400_000, partitions=4,
                              duration=60.0)
    return broker


@pytest.fixture(scope="session")
def row_events_small(workload):
    """A broker with 40k row-dict events (for the slow KS-like engine)."""
    broker = Broker()
    workload.publish_columnar(broker, "events", 40_000, partitions=4,
                              duration=60.0)
    return broker
