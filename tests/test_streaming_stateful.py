"""Custom stateful processing: map/flat_map_groups_with_state (§4.3.2).

Includes the paper's Figure 3 sessionization pattern with both timeout
kinds, and the batch-mode behaviour ("the update function will only be
called once").
"""

import pytest

from repro.sql.types import StructType
from repro.streaming.stateful import GroupState, normalize_func_output

from tests.conftest import make_stream, rows_set, start_memory_query

EVENTS = (("user", "string"), ("page", "long"))
OUT = (("user", "string"), ("events", "long"))


def counting_func(key, rows, state):
    total = state.get_option(0) + sum(1 for _ in rows)
    state.update(total)
    return {"events": total}


class TestGroupStateObject:
    def test_get_without_state_raises(self):
        state = GroupState()
        assert not state.exists
        with pytest.raises(KeyError):
            state.get()

    def test_get_option_default(self):
        assert GroupState().get_option(42) == 42

    def test_update_and_get(self):
        state = GroupState()
        state.update({"a": 1})
        assert state.exists
        assert state.get() == {"a": 1}

    def test_update_none_rejected(self):
        with pytest.raises(ValueError):
            GroupState().update(None)

    def test_remove(self):
        state = GroupState(value=1, exists=True)
        state.remove()
        assert not state.exists
        assert state._outcome()["removed"]

    def test_timeout_duration_needs_processing_conf(self):
        state = GroupState(processing_time=100.0, timeout_conf="none")
        with pytest.raises(RuntimeError):
            state.set_timeout_duration("10s")

    def test_timeout_duration_computes_deadline(self):
        state = GroupState(processing_time=100.0, timeout_conf="processing_time")
        state.set_timeout_duration("30s")
        assert state._outcome()["timeout_timestamp"] == 130.0

    def test_event_time_timeout_must_beat_watermark(self):
        state = GroupState(watermark=50.0, timeout_conf="event_time")
        with pytest.raises(ValueError):
            state.set_timeout_timestamp(40.0)
        state.set_timeout_timestamp(60.0)

    def test_clock_accessors(self):
        state = GroupState(watermark=5.0, processing_time=9.0)
        assert state.current_watermark == 5.0
        assert state.current_processing_time == 9.0


class TestNormalizeOutput:
    def test_map_returns_single_row_with_keys(self):
        rows = normalize_func_output({"n": 3}, False, ["user"], ("u1",))
        assert rows == [{"user": "u1", "n": 3}]

    def test_map_none_returns_nothing(self):
        assert normalize_func_output(None, False, ["user"], ("u1",)) == []

    def test_map_non_dict_rejected(self):
        with pytest.raises(TypeError):
            normalize_func_output(3, False, ["user"], ("u1",))

    def test_flat_returns_many(self):
        rows = normalize_func_output(
            [{"n": 1}, {"n": 2}], True, ["user"], ("u1",))
        assert len(rows) == 2
        assert all(r["user"] == "u1" for r in rows)

    def test_flat_none_is_empty(self):
        assert normalize_func_output(None, True, ["user"], ("u1",)) == []


class TestMapGroupsWithState:
    def test_counts_across_epochs(self, session):
        stream = make_stream(EVENTS)
        df = (session.read_stream.memory(stream)
              .group_by_key("user").map_groups_with_state(counting_func, OUT))
        query = start_memory_query(df, "update", "out")
        stream.add_data([{"user": "u1", "page": 1}, {"user": "u1", "page": 2},
                         {"user": "u2", "page": 3}])
        query.process_all_available()
        stream.add_data([{"user": "u1", "page": 4}])
        query.process_all_available()
        assert rows_set(query.engine.sink.rows()) == rows_set([
            {"user": "u1", "events": 3}, {"user": "u2", "events": 1}])

    def test_state_removal(self, session):
        def remove_at_three(key, rows, state):
            total = state.get_option(0) + sum(1 for _ in rows)
            if total >= 3:
                state.remove()
                return {"events": -1}
            state.update(total)
            return {"events": total}

        stream = make_stream(EVENTS)
        df = (session.read_stream.memory(stream)
              .group_by_key("user").map_groups_with_state(remove_at_three, OUT))
        query = start_memory_query(df, "update", "out")
        stream.add_data([{"user": "u1", "page": 1}] * 3)
        query.process_all_available()
        assert query.engine.state_store.total_keys() == 0
        stream.add_data([{"user": "u1", "page": 1}])
        query.process_all_available()
        # fresh state after removal
        assert query.engine.sink.rows()[0]["events"] == 1

    def test_requires_update_mode(self, session):
        stream = make_stream(EVENTS)
        df = (session.read_stream.memory(stream)
              .group_by_key("user").map_groups_with_state(counting_func, OUT))
        with pytest.raises(Exception, match="update"):
            start_memory_query(df, "append", "out")

    def test_processing_time_timeout_fires_without_data(self, session):
        clock = [1000.0]

        def session_func(key, rows, state):
            if state.has_timed_out:
                total = state.get_option(0)
                state.remove()
                return {"events": -total}  # negative marks a closed session
            total = state.get_option(0) + sum(1 for _ in rows)
            state.update(total)
            state.set_timeout_duration("30s")
            return {"events": total}

        stream = make_stream(EVENTS)
        df = (session.read_stream.memory(stream)
              .group_by_key("user")
              .map_groups_with_state(session_func, OUT, timeout="processing_time"))
        query = start_memory_query(df, "update", "out")
        query.engine.clock = lambda: clock[0]

        stream.add_data([{"user": "u1", "page": 1}])
        query.process_all_available()
        clock[0] += 60  # beyond the 30s timeout, no new data for u1
        stream.add_data([{"user": "u2", "page": 1}])
        query.process_all_available()
        rows = {r["user"]: r["events"] for r in query.engine.sink.rows()}
        assert rows["u1"] == -1  # session closed by timeout
        assert query.engine.state_store.handle("mgws-0").get(("u1",)) is None

    def test_timeout_fires_even_with_empty_input(self, session):
        clock = [0.0]

        def fn(key, rows, state):
            if state.has_timed_out:
                state.remove()
                return {"events": 99}
            state.update(1)
            state.set_timeout_duration("10s")
            return {"events": 1}

        stream = make_stream(EVENTS)
        emitted = []
        df = (session.read_stream.memory(stream)
              .group_by_key("user")
              .map_groups_with_state(fn, OUT, timeout="processing_time"))
        query = (df.write_stream
                 .foreach(lambda e, rows, mode: emitted.extend(rows))
                 .output_mode("update").start())
        query.engine.clock = lambda: clock[0]
        stream.add_data([{"user": "u1", "page": 1}])
        query.process_all_available()
        clock[0] = 100.0
        # No new data at all: the pending timeout alone triggers an epoch.
        progress = query.run_epoch()
        assert progress is not None
        assert {r["events"] for r in emitted} == {1, 99}

    def test_event_time_timeout_with_watermark(self, session):
        schema = (("user", "string"), ("t", "timestamp"))

        def fn(key, rows, state):
            if state.has_timed_out:
                state.remove()
                return {"events": -1}
            rows = list(rows)
            state.update(len(rows))
            last = max(r["t"] for r in rows)
            state.set_timeout_timestamp(last + 10.0)
            return {"events": len(rows)}

        stream = make_stream(schema)
        emitted = []
        df = (session.read_stream.memory(stream)
              .with_watermark("t", "0s")
              .group_by_key("user")
              .map_groups_with_state(fn, OUT, timeout="event_time"))
        query = (df.write_stream
                 .foreach(lambda e, rows, mode: emitted.extend(rows))
                 .output_mode("update").start())
        stream.add_data([{"user": "u1", "t": 1.0}])
        query.process_all_available()
        stream.add_data([{"user": "u2", "t": 50.0}])
        query.process_all_available()  # watermark advances to 1, then 50
        stream.add_data([{"user": "u2", "t": 60.0}])
        query.process_all_available()  # watermark 50 > 11: u1 times out
        rows = [r for r in emitted if r["user"] == "u1"]
        assert {r["events"] for r in rows} == {1, -1}


class TestFlatMapGroupsWithState:
    def test_multiple_outputs_per_key(self, session):
        def explode(key, rows, state):
            return [{"events": r["page"]} for r in rows]

        stream = make_stream(EVENTS)
        df = (session.read_stream.memory(stream)
              .group_by_key("user").flat_map_groups_with_state(explode, OUT))
        query = start_memory_query(df, "append", "out")
        stream.add_data([{"user": "u1", "page": 1}, {"user": "u1", "page": 2}])
        query.process_all_available()
        assert len(query.engine.sink.rows()) == 2

    def test_zero_outputs_allowed(self, session):
        stream = make_stream(EVENTS)
        df = (session.read_stream.memory(stream)
              .group_by_key("user")
              .flat_map_groups_with_state(lambda k, r, s: None, OUT))
        query = start_memory_query(df, "append", "out")
        stream.add_data([{"user": "u1", "page": 1}])
        query.process_all_available()
        assert query.engine.sink.rows() == []


class TestBatchMode:
    """§4.3.2: both operators also work in batch jobs — one call per key."""

    def test_map_groups_in_batch(self, session):
        df = session.create_dataframe(
            [{"user": "u1", "page": 1}, {"user": "u1", "page": 2},
             {"user": "u2", "page": 3}], EVENTS)
        out = (df.group_by_key("user")
               .map_groups_with_state(counting_func, OUT).collect())
        assert rows_set(out) == rows_set([
            {"user": "u1", "events": 2}, {"user": "u2", "events": 1}])

    def test_flat_map_groups_in_batch(self, session):
        df = session.create_dataframe([{"user": "u1", "page": 5}], EVENTS)
        out = (df.group_by_key("user")
               .flat_map_groups_with_state(
                   lambda k, rows, s: [{"events": r["page"]} for r in rows], OUT)
               .collect())
        assert out == [{"user": "u1", "events": 5}]

    def test_composite_key_batch(self, session):
        schema = (("a", "string"), ("b", "long"), ("v", "long"))
        df = session.create_dataframe(
            [{"a": "x", "b": 1, "v": 10}, {"a": "x", "b": 1, "v": 20}], schema)
        out_schema = StructType((("a", "string"), ("b", "long"), ("total", "long")))

        def fn(key, rows, state):
            return {"total": sum(r["v"] for r in rows)}

        out = df.group_by_key("a", "b").map_groups_with_state(fn, out_schema).collect()
        assert out == [{"a": "x", "b": 1, "total": 30}]
