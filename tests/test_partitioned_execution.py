"""Hash-partitioned parallel epoch execution (§6.1–§6.2).

The partitioned execution layer must be *invisible* in every observable
output: sink rows, checkpoint bytes, and recovery behaviour may not
depend on the shard count, the worker count, or scheduler timing.  These
tests pin that contract:

* the vectorized hash kernel agrees with its scalar path row-for-row;
* N-shard execution (serial or scheduler-driven) produces byte-identical
  sink output and checkpoint files to single-shard execution;
* a checkpoint written at N shards restores exactly at M shards
  (state rescaling via deterministic key re-hashing);
* hypothesis drives random batches/keys/shard counts through the same
  invariants.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.cluster import TaskScheduler
from repro.sql import functions as F
from repro.sql.batch import (
    RecordBatch,
    hash_partition,
    partition_by_assignment,
    shard_assignments,
    shard_of_key,
    stable_hash_key,
    stable_hash_value,
)
from repro.sql.types import StructType
from repro.streaming.state import OperatorStateHandle

from tests.conftest import make_stream, rows_set, start_memory_query
from tests.test_checkpoint_format import read_state_files

pytestmark = pytest.mark.usefixtures("shm_guard")


# ---------------------------------------------------------------------------
# Hash kernel
# ---------------------------------------------------------------------------

hashable_values = st.one_of(
    st.integers(min_value=-(2 ** 62), max_value=2 ** 62),
    st.floats(allow_nan=False, allow_infinity=False, width=64),
    st.booleans(),
    st.text(max_size=12),
    st.none(),
)


class TestHashKernel:
    @given(st.lists(hashable_values, min_size=1, max_size=4))
    def test_scalar_matches_vectorized(self, key):
        """The per-key scalar hash and the columnar batch hash agree —
        state rescaling (scalar) and epoch partitioning (vector) must
        route every key identically."""
        arrays = []
        for v in key:
            if isinstance(v, bool):
                arrays.append(np.array([v], dtype=bool))
            elif isinstance(v, int):
                arrays.append(np.array([v], dtype=np.int64))
            elif isinstance(v, float):
                arrays.append(np.array([v], dtype=np.float64))
            else:
                arrays.append(np.array([v], dtype=object))
        assign = shard_assignments(arrays, 7)
        assert int(assign[0]) == shard_of_key(tuple(key), 7)

    def test_hash_is_stable_across_calls(self):
        assert stable_hash_key(("a", 1.5)) == stable_hash_key(("a", 1.5))
        assert stable_hash_value("x") != stable_hash_value("y")

    def test_partition_covers_every_row_exactly_once(self):
        batch = RecordBatch.from_rows(
            [{"k": i % 5, "v": float(i)} for i in range(97)],
            StructType((("k", "long"), ("v", "double"))),
        )
        parts, indices = hash_partition(batch, ["k"], 4)
        assert sum(p.num_rows for p in parts) == batch.num_rows
        together = np.sort(np.concatenate(indices))
        assert together.tolist() == list(range(97))
        # Same key never lands in two shards.
        for part in parts:
            for k in np.unique(part.columns["k"]):
                home = shard_of_key((int(k),), 4)
                assert parts[home].num_rows > 0

    def test_single_shard_assignment_is_all_zero(self):
        assign = shard_assignments([np.arange(10)], 1)
        assert not assign.any()

    def test_partition_by_assignment_roundtrip(self):
        batch = RecordBatch.from_rows(
            [{"k": i} for i in range(10)], StructType((("k", "long"),)))
        assign = np.array([i % 3 for i in range(10)], dtype=np.int64)
        parts, indices = partition_by_assignment(batch, assign, 3)
        for shard, idx in enumerate(indices):
            assert (assign[idx] == shard).all()


# ---------------------------------------------------------------------------
# Pipeline equivalence: sink rows + checkpoint bytes shard-invariant
# ---------------------------------------------------------------------------

AGG_EPOCHS = [
    [{"t": float(i), "k": f"k{i % 7}"} for i in range(40)],
    [{"t": 40.0 + i, "k": f"k{i % 5}"} for i in range(25)],
    [{"t": 200.0, "k": "late-watermark-push"}],
    [{"t": 205.0 + i, "k": f"k{i % 3}"} for i in range(9)],
]


def run_windowed_agg(session_cls, checkpoint, num_shards, scheduler=None,
                     epochs=AGG_EPOCHS):
    session = session_cls()
    stream = make_stream([("t", "timestamp"), ("k", "string")])
    df = session.read_stream.memory(stream).with_watermark("t", "50s")
    counts = df.group_by(F.window("t", "10s"), "k").count()
    # The state-file byte comparisons pin the dict backend: tiered run
    # files are cut wherever the memtable happens to fill, and per-shard
    # arrival order moves those boundaries — by design, only the dict
    # delta/snapshot format is byte-identical across shard counts.  (The
    # tiered format's own determinism golden — replay produces the same
    # runs — lives in tests/test_state_tiered.py.)
    options = {"num_shards": num_shards, "state_backend": "dict"}
    if scheduler is not None:
        options["scheduler"] = scheduler
    query = start_memory_query(counts, "update", "parteq", checkpoint,
                               **options)
    outputs = []
    for rows in epochs:
        stream.add_data(rows)
        query.process_all_available()
        outputs.append(list(query.engine.sink.rows()))
    query.stop()
    return outputs


class TestShardCountInvariance:
    def _reference(self, tmp_path):
        from repro.sql.session import Session

        ref_dir = str(tmp_path / "ref")
        out = run_windowed_agg(Session, ref_dir, 1)
        return out, read_state_files(ref_dir)

    @pytest.mark.parametrize("num_shards", [2, 3, 4, 8])
    def test_agg_output_and_checkpoint_bytes(self, tmp_path, num_shards):
        from repro.sql.session import Session

        ref_out, ref_files = self._reference(tmp_path)
        shard_dir = str(tmp_path / f"s{num_shards}")
        out = run_windowed_agg(Session, shard_dir, num_shards)
        assert out == ref_out
        assert read_state_files(shard_dir) == ref_files

    def test_agg_with_scheduler_matches_serial(self, tmp_path):
        """Parallel task execution (4 shards × 4 workers, speculation on)
        produces exactly the serial single-shard bytes."""
        from repro.sql.session import Session

        ref_out, ref_files = self._reference(tmp_path)
        scheduler = TaskScheduler(4, speculation=True,
                                  speculation_min_seconds=0.01)
        try:
            par_dir = str(tmp_path / "par")
            out = run_windowed_agg(Session, par_dir, 4, scheduler=scheduler)
            assert out == ref_out
            assert read_state_files(par_dir) == ref_files
        finally:
            scheduler.shutdown()

    def test_scheduler_reports_task_metrics(self, tmp_path):
        from repro.sql.session import Session

        scheduler = TaskScheduler(2, speculation=False)
        try:
            run_windowed_agg(Session, str(tmp_path / "m"), 4,
                             scheduler=scheduler)
            report = scheduler.last_stage_report
            assert report is not None
            assert report["num_tasks"] >= 1
            for stats in report["tasks"]:
                assert stats["seconds"] >= 0
                assert stats["attempts"] >= 1
            metrics = scheduler.stage_metrics()
            assert metrics["num_stages"] >= 1
            assert metrics["task_seconds_p50"] is not None
            assert metrics["task_seconds_max"] >= metrics["task_seconds_p50"]
        finally:
            scheduler.shutdown()

    def test_dedup_invariant(self, tmp_path):
        from repro.sql.session import Session

        def run(num_shards):
            session = Session()
            stream = make_stream([("k", "long"), ("t", "timestamp")])
            df = (session.read_stream.memory(stream)
                  .with_watermark("t", "10s").drop_duplicates(["k"]))
            query = start_memory_query(
                df, "append", "dedup", str(tmp_path / f"d{num_shards}"),
                num_shards=num_shards, state_backend="dict")
            outputs = []
            for rows in [
                [{"k": i % 6, "t": float(i)} for i in range(20)],
                [{"k": i % 11, "t": 20.0 + i} for i in range(22)],
                [{"k": 99, "t": 100.0}],
            ]:
                stream.add_data(rows)
                query.process_all_available()
                outputs.append(list(query.engine.sink.rows()))
            query.stop()
            return outputs, read_state_files(str(tmp_path / f"d{num_shards}"))

        ref = run(1)
        for n in (2, 5):
            assert run(n) == ref

    def test_join_invariant(self, tmp_path):
        from repro.sql.session import Session

        def run(num_shards):
            session = Session()
            ls = make_stream([("k", "long"), ("t", "timestamp"), ("l", "string")])
            rs = make_stream([("k", "long"), ("t2", "timestamp"), ("r", "string")])
            left = session.read_stream.memory(ls).with_watermark("t", "30s")
            right = session.read_stream.memory(rs).with_watermark("t2", "30s")
            joined = left.join(right, on="k")
            query = start_memory_query(
                joined, "append", "join", str(tmp_path / f"j{num_shards}"),
                num_shards=num_shards, state_backend="dict")
            outputs = []
            steps = [
                (ls, [{"k": i % 8, "t": float(i), "l": f"l{i}"} for i in range(16)]),
                (rs, [{"k": i % 8, "t2": float(i), "r": f"r{i}"} for i in range(12)]),
                (ls, [{"k": 3, "t": 20.0, "l": "again"}]),
                (rs, [{"k": 99, "t2": 100.0, "r": "expire"}]),
            ]
            for stream, rows in steps:
                stream.add_data(rows)
                query.process_all_available()
                outputs.append(list(query.engine.sink.rows()))
            query.stop()
            return outputs, read_state_files(str(tmp_path / f"j{num_shards}"))

        ref = run(1)
        for n in (2, 4):
            assert run(n) == ref


# ---------------------------------------------------------------------------
# State rescaling: restore an N-shard checkpoint at M shards
# ---------------------------------------------------------------------------

class TestStateRescaling:
    @pytest.mark.parametrize("n,m", [(1, 4), (4, 1), (3, 5), (8, 2)])
    def test_handle_rescale_exact(self, tmp_path, n, m):
        src = OperatorStateHandle(str(tmp_path / "h"), num_shards=n)
        src.set_expiry(lambda key, value: value["v"])
        for i in range(50):
            src.put((f"k{i}", i % 3), {"v": float(i)})
        src.commit(0)

        dst = OperatorStateHandle(str(tmp_path / "h"), num_shards=m)
        dst.restore(0)
        dst.set_expiry(lambda key, value: value["v"])
        assert sorted(dst.items()) == sorted(src.items())
        assert dst.next_expiry() == src.next_expiry()
        assert dst.pop_expired(25.0) == src.pop_expired(25.0)

    @pytest.mark.parametrize("n,m", [(1, 4), (4, 2), (2, 8)])
    def test_query_restart_rescaled(self, tmp_path, n, m):
        """Stop a query running at N shards, restart the same checkpoint
        at M shards: continued output matches an uninterrupted 1-shard
        run over the full input."""
        from repro.sql.session import Session

        first, rest = AGG_EPOCHS[:2], AGG_EPOCHS[2:]
        # The reference also restarts at the split (the memory sink is
        # reborn empty on restart); only the shard count differs.
        ref_dir = str(tmp_path / "ref")
        run_windowed_agg(Session, ref_dir, 1, epochs=first)
        ref_cont = run_windowed_agg(Session, ref_dir, 1, epochs=rest)

        rescale_dir = str(tmp_path / "rescale")
        run_windowed_agg(Session, rescale_dir, n, epochs=first)
        out = run_windowed_agg(Session, rescale_dir, m, epochs=rest)
        assert out == ref_cont
        assert read_state_files(rescale_dir) == read_state_files(ref_dir)


# ---------------------------------------------------------------------------
# Property-based: random batches / keys / shard counts
# ---------------------------------------------------------------------------

keys = st.sampled_from(["a", "b", "c", "d", "e", "f"])
rows = st.builds(lambda k, t: {"k": k, "t": float(t)},
                 keys, st.integers(min_value=0, max_value=120))
epoch_lists = st.lists(st.lists(rows, min_size=0, max_size=25),
                       min_size=1, max_size=4)


@pytest.mark.slow
@given(epochs=epoch_lists,
       n=st.integers(min_value=2, max_value=8),
       m=st.integers(min_value=1, max_value=8))
def test_property_shard_and_rescale_equivalence(tmp_path_factory, epochs, n, m):
    """For random inputs and shard counts: N-shard output == 1-shard
    output, and an N-shard checkpoint restored at M shards continues
    identically to a 1-shard checkpoint restored at 1 shard."""
    from repro.sql.session import Session

    tmp = tmp_path_factory.mktemp("prop")

    def run(directory, num_shards, eps):
        return run_windowed_agg(Session, str(tmp / directory), num_shards,
                                epochs=eps)

    ref = run("reffull", 1, epochs)
    assert run("shard", n, epochs) == ref
    assert (read_state_files(str(tmp / "shard"))
            == read_state_files(str(tmp / "reffull")))

    split = max(1, len(epochs) // 2)
    run("ref", 1, epochs[:split])
    ref_cont = run("ref", 1, epochs[split:])
    run("rescale", n, epochs[:split])
    continued = run("rescale", m, epochs[split:])
    assert continued == ref_cont
    assert (read_state_files(str(tmp / "rescale"))
            == read_state_files(str(tmp / "ref")))


# ---------------------------------------------------------------------------
# run_shard_tasks: scheduler path == inline path
# ---------------------------------------------------------------------------

def test_run_shard_tasks_orders_and_skips_none():
    from repro.streaming.operators import EpochContext, run_shard_tasks
    from repro.streaming.watermark import WatermarkTracker

    scheduler = TaskScheduler(3, speculation=False)
    try:
        ctx = EpochContext(epoch_id=0, inputs={}, watermarks=WatermarkTracker({}),
                           processing_time=0.0, output_mode="append",
                           scheduler=scheduler)
        fns = [lambda i=i: i * 10 for i in range(5)]
        fns[2] = None
        results = run_shard_tasks(ctx, ("t", 1), fns)
        assert results == [0, 10, None, 30, 40]
        inline = EpochContext(epoch_id=0, inputs={},
                              watermarks=WatermarkTracker({}),
                              processing_time=0.0, output_mode="append")
        assert run_shard_tasks(inline, ("t", 1), fns) == results
    finally:
        scheduler.shutdown()
