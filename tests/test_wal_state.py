"""Tests for the write-ahead log and versioned state store (§6.1)."""

import os

import pytest

from repro.streaming.state import OperatorStateHandle, StateStore, decode_key, encode_key
from repro.streaming.wal import WriteAheadLog


class TestWriteAheadLog:
    @pytest.fixture
    def wal(self, tmp_path):
        return WriteAheadLog(str(tmp_path / "ckpt"))

    def test_empty_log(self, wal):
        assert wal.latest_logged_epoch() is None
        assert wal.latest_committed_epoch() is None
        assert wal.logged_epochs() == []

    def test_offsets_roundtrip(self, wal):
        entry = {"sources": {"s": {"start": {"0": 0}, "end": {"0": 5}}}}
        wal.write_offsets(0, entry)
        read = wal.read_offsets(0)
        assert read["sources"] == entry["sources"]
        assert read["epoch"] == 0

    def test_commit_tracking(self, wal):
        wal.write_offsets(0, {"sources": {}})
        assert not wal.is_committed(0)
        wal.write_commit(0)
        assert wal.is_committed(0)
        assert wal.latest_committed_epoch() == 0

    def test_commit_extra_payload(self, wal):
        wal.write_commit(1, {"watermarks": {"watermarks": {"t": 5.0}}})
        assert wal.read_commit(1)["watermarks"]["watermarks"]["t"] == 5.0

    def test_latest_logged_vs_committed(self, wal):
        wal.write_offsets(0, {"sources": {}})
        wal.write_commit(0)
        wal.write_offsets(1, {"sources": {}})
        assert wal.latest_logged_epoch() == 1
        assert wal.latest_committed_epoch() == 0

    def test_rollback_removes_later_entries(self, wal):
        for epoch in range(4):
            wal.write_offsets(epoch, {"sources": {}})
            wal.write_commit(epoch)
        wal.rollback_to(1)
        assert wal.logged_epochs() == [0, 1]
        assert wal.committed_epochs() == [0, 1]

    def test_rollback_to_beginning(self, wal):
        wal.write_offsets(0, {"sources": {}})
        wal.rollback_to(-1)
        assert wal.logged_epochs() == []

    def test_metadata_written_once(self, wal):
        wal.write_metadata({"output_mode": "append"})
        wal.write_metadata({"output_mode": "complete"})
        assert wal.read_metadata()["output_mode"] == "append"

    def test_entries_are_human_readable_json(self, wal, tmp_path):
        wal.write_offsets(0, {"sources": {"s": {"start": {"0": 0}, "end": {"0": 2}}}})
        path = os.path.join(str(tmp_path / "ckpt"), "offsets", "0000000000.json")
        with open(path) as f:
            text = f.read()
        assert '"epoch": 0' in text  # pretty-printed, inspectable (§7.2)


class TestKeyEncoding:
    @pytest.mark.parametrize("key", ["a", 5, 2.5, ("a", 1), (1.0, 2.0, "x"), True])
    def test_roundtrip(self, key):
        assert decode_key(encode_key(key)) == key

    def test_tuples_become_canonical(self):
        assert encode_key(("a", 1)) == '["a", 1]'


class TestOperatorStateHandle:
    @pytest.fixture
    def handle(self, tmp_path):
        return OperatorStateHandle(str(tmp_path / "op"), snapshot_interval=3)

    def test_put_get_remove(self, handle):
        handle.put("k", {"n": 1})
        assert handle.get("k") == {"n": 1}
        assert handle.contains("k")
        handle.remove("k")
        assert handle.get("k") is None
        assert len(handle) == 0

    def test_items_decode_keys(self, handle):
        handle.put(("a", 1), 10)
        assert list(handle.items()) == [(("a", 1), 10)]
        assert list(handle.keys()) == [("a", 1)]

    def test_get_default(self, handle):
        assert handle.get("missing", 42) == 42

    def test_commit_restore_roundtrip(self, handle, tmp_path):
        handle.put("a", 1)
        handle.commit(0)
        handle.put("b", 2)
        handle.commit(1)
        fresh = OperatorStateHandle(str(tmp_path / "op"), snapshot_interval=3)
        fresh.restore(1)
        assert fresh.get("a") == 1 and fresh.get("b") == 2

    def test_restore_earlier_version(self, handle, tmp_path):
        handle.put("a", 1)
        handle.commit(0)
        handle.put("a", 2)
        handle.commit(1)
        fresh = OperatorStateHandle(str(tmp_path / "op"), snapshot_interval=3)
        fresh.restore(0)
        assert fresh.get("a") == 1

    def test_deltas_record_removals(self, handle, tmp_path):
        handle.put("a", 1)
        handle.put("b", 2)
        handle.commit(0)
        handle.remove("a")
        handle.commit(1)
        fresh = OperatorStateHandle(str(tmp_path / "op"), snapshot_interval=3)
        fresh.restore(1)
        assert fresh.get("a") is None and fresh.get("b") == 2

    def test_snapshot_interval_produces_snapshots(self, handle, tmp_path):
        for version in range(7):
            handle.put(f"k{version}", version)
            handle.commit(version)
        names = os.listdir(str(tmp_path / "op"))
        snapshots = [n for n in names if ".snapshot." in n]
        deltas = [n for n in names if ".delta." in n]
        assert len(snapshots) == 3  # versions 0, 3, 6
        assert len(deltas) == 4

    def test_restore_uses_nearest_snapshot_plus_deltas(self, handle, tmp_path):
        for version in range(7):
            handle.put(f"k{version}", version)
            handle.commit(version)
        fresh = OperatorStateHandle(str(tmp_path / "op"), snapshot_interval=3)
        restored = fresh.restore(5)
        assert restored == 5
        assert fresh.get("k5") == 5
        assert fresh.get("k6") is None

    def test_restore_none_gives_empty(self, handle):
        handle.put("a", 1)
        assert handle.restore(None) is None
        assert len(handle) == 0

    def test_restore_returns_floor_version(self, handle, tmp_path):
        handle.put("a", 1)
        handle.commit(2)
        fresh = OperatorStateHandle(str(tmp_path / "op"), snapshot_interval=3)
        assert fresh.restore(7) == 2  # newest checkpoint <= 7

    def test_sparse_versions_replay_correctly(self, handle, tmp_path):
        # Checkpoint intervals > 1 produce version gaps; deltas are
        # relative to the previous commit, so restore still works.
        handle.put("a", 1)
        handle.commit(0)
        handle.put("b", 2)
        handle.put("c", 3)
        handle.commit(4)  # gap: versions 1-3 never committed
        fresh = OperatorStateHandle(str(tmp_path / "op"), snapshot_interval=100)
        assert fresh.restore(4) == 4
        assert fresh.get("c") == 3

    def test_commit_metrics(self, handle):
        handle.put("a", 1)
        metrics = handle.commit(1)  # version 1: delta
        assert metrics["keys_written"] == 1
        assert metrics["num_keys"] == 1


class TestExpiryIndex:
    """The heap-backed expiry index behind watermark eviction."""

    @pytest.fixture
    def handle(self, tmp_path):
        handle = OperatorStateHandle(str(tmp_path / "op"), snapshot_interval=3)
        handle.set_expiry(lambda _key, value: value)
        return handle

    def test_pop_expired_returns_only_due_keys(self, handle):
        handle.put("a", 5.0)
        handle.put("b", 10.0)
        handle.put("c", 1.0)
        popped = handle.pop_expired(5.0)
        assert sorted(popped) == [("a", 5.0), ("c", 1.0)]
        assert handle.next_expiry() == 10.0
        # Popped keys stay in the store until the caller removes them.
        assert handle.get("a") == 5.0

    def test_overwrite_supersedes_old_expiry(self, handle):
        handle.put("a", 1.0)
        handle.put("a", 100.0)  # stale heap entry for 1.0 remains
        assert handle.pop_expired(50.0) == []
        assert handle.next_expiry() == 100.0

    def test_removed_keys_never_pop(self, handle):
        handle.put("a", 1.0)
        handle.remove("a")
        assert handle.next_expiry() is None
        assert handle.pop_expired(1e9) == []

    def test_none_expiry_unindexes(self, handle):
        handle.put("a", 2.0)
        handle.set_expiry(lambda _key, value: None if value < 0 else value)
        handle.put("a", -1.0)
        assert handle.next_expiry() is None

    def test_reindex_defers_without_dirtying(self, handle):
        handle.put("a", 3.0)
        handle.commit(0)
        assert handle.pop_expired(3.0) == [("a", 3.0)]
        handle.reindex("a")
        assert handle.next_expiry() == 3.0
        # reindex is index-only: the next delta must be empty.
        metrics = handle.commit(1)
        assert metrics["keys_written"] == 0

    def test_restore_rebuilds_index(self, handle, tmp_path):
        handle.put("a", 1.0)
        handle.put("b", 7.0)
        handle.commit(0)
        fresh = OperatorStateHandle(str(tmp_path / "op"), snapshot_interval=3)
        fresh.set_expiry(lambda _key, value: value)
        fresh.restore(0)
        assert fresh.next_expiry() == 1.0
        assert fresh.pop_expired(2.0) == [("a", 1.0)]

    def test_key_cache_distinguishes_equal_hash_types(self, tmp_path):
        # 1, 1.0 and True hash identically but encode differently; the
        # interned-key cache must not alias them.
        handle = OperatorStateHandle(str(tmp_path / "op"))
        handle.put(1, "int")
        handle.put(1.0, "float")
        handle.put(True, "bool")
        handle.put((1,), "int-tuple")
        handle.put((1.0,), "float-tuple")
        assert handle.get(1) == "int"
        assert handle.get(1.0) == "float"
        assert handle.get(True) == "bool"
        assert handle.get((1,)) == "int-tuple"
        assert handle.get((1.0,)) == "float-tuple"
        assert len(handle) == 5


class TestStateStore:
    def test_handles_are_cached(self, tmp_path):
        store = StateStore(str(tmp_path))
        assert store.handle("agg-0") is store.handle("agg-0")

    def test_commit_and_restore_all(self, tmp_path):
        store = StateStore(str(tmp_path))
        store.handle("a").put("x", 1)
        store.handle("b").put("y", 2)
        store.commit_all(0)

        fresh = StateStore(str(tmp_path))
        fresh.handle("a")
        fresh.handle("b")
        assert fresh.restore_all(0) == 0
        assert fresh.handle("a").get("x") == 1
        assert fresh.handle("b").get("y") == 2

    def test_restore_all_empty_when_no_checkpoints(self, tmp_path):
        store = StateStore(str(tmp_path))
        store.handle("a")
        assert store.restore_all(5) is None

    def test_total_keys(self, tmp_path):
        store = StateStore(str(tmp_path))
        store.handle("a").put("x", 1)
        store.handle("b").put("y", 2)
        store.handle("b").put("z", 3)
        assert store.total_keys() == 3

    def test_latest_complete_version(self, tmp_path):
        store = StateStore(str(tmp_path))
        store.handle("a").put("x", 1)
        store.commit_all(0)
        store.handle("a").put("x", 2)
        store.commit_all(1)
        assert store.latest_complete_version() == 1
