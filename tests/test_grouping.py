"""Unit tests for group encoding (repro.sql.grouping)."""

import numpy as np
import pytest

from repro.sql.grouping import encode_groups


class TestSingleNumericKey:
    def test_codes_and_uniques(self):
        codes, uniques = encode_groups([np.array([5, 3, 5, 7])])
        assert len(uniques) == 3
        decoded = [uniques[c] for c in codes]
        assert decoded == [(5,), (3,), (5,), (7,)]

    def test_float_keys(self):
        codes, uniques = encode_groups([np.array([1.5, 1.5, 2.5])])
        assert len(uniques) == 2
        assert codes[0] == codes[1] != codes[2]


class TestMultipleNumericKeys:
    def test_composite_keys(self):
        a = np.array([1, 1, 2, 1])
        b = np.array([10.0, 20.0, 10.0, 10.0])
        codes, uniques = encode_groups([a, b])
        assert len(uniques) == 3
        assert codes[0] == codes[3]
        assert codes[0] != codes[1] != codes[2]

    def test_unique_tuples_match_rows(self):
        a = np.array([7, 8])
        b = np.array([1.0, 2.0])
        codes, uniques = encode_groups([a, b])
        assert set(uniques) == {(7, 1.0), (8, 2.0)}


class TestObjectKeys:
    def test_string_keys(self):
        codes, uniques = encode_groups([np.array(["x", "y", "x"], dtype=object)])
        assert [uniques[c] for c in codes] == [("x",), ("y",), ("x",)]

    def test_mixed_string_numeric(self):
        s = np.array(["a", "a", "b"], dtype=object)
        n = np.array([1, 2, 1])
        codes, uniques = encode_groups([s, n])
        assert len(uniques) == 3
        assert uniques[codes[0]] == ("a", 1)

    def test_first_seen_order_for_object_path(self):
        codes, uniques = encode_groups([np.array(["z", "a", "z"], dtype=object)])
        assert uniques == [("z",), ("a",)]


class TestEdgeCases:
    def test_empty_input(self):
        codes, uniques = encode_groups([np.empty(0, dtype=np.int64)])
        assert len(codes) == 0
        assert uniques == []

    def test_no_arrays_raises(self):
        with pytest.raises(ValueError):
            encode_groups([])

    def test_codes_are_dense(self):
        codes, uniques = encode_groups([np.array([100, 200, 100, 300])])
        assert set(codes.tolist()) == {0, 1, 2}
        assert len(uniques) == 3
