"""Streaming deduplication with and without watermark-bounded state."""

import pytest

from tests.conftest import make_stream, start_memory_query

SCHEMA = (("id", "long"), ("t", "timestamp"), ("payload", "string"))


def dedup_query(session, stream, watermark=None, subset=("id",)):
    df = session.read_stream.memory(stream)
    if watermark is not None:
        df = df.with_watermark("t", watermark)
    return df.drop_duplicates(list(subset))


class TestBasicDedup:
    def test_within_one_epoch(self, session):
        stream = make_stream(SCHEMA)
        query = start_memory_query(dedup_query(session, stream), "append", "out")
        stream.add_data([
            {"id": 1, "t": 1.0, "payload": "first"},
            {"id": 1, "t": 2.0, "payload": "dup"},
            {"id": 2, "t": 3.0, "payload": "other"},
        ])
        query.process_all_available()
        assert [r["payload"] for r in query.engine.sink.rows()] == ["first", "other"]

    def test_across_epochs(self, session):
        stream = make_stream(SCHEMA)
        query = start_memory_query(dedup_query(session, stream), "append", "out")
        stream.add_data([{"id": 1, "t": 1.0, "payload": "a"}])
        query.process_all_available()
        stream.add_data([{"id": 1, "t": 9.0, "payload": "dup"},
                         {"id": 3, "t": 9.5, "payload": "b"}])
        query.process_all_available()
        assert [r["id"] for r in query.engine.sink.rows()] == [1, 3]

    def test_state_grows_without_watermark(self, session):
        stream = make_stream(SCHEMA)
        query = start_memory_query(dedup_query(session, stream), "append", "out")
        stream.add_data([{"id": i, "t": float(i), "payload": "x"} for i in range(10)])
        query.process_all_available()
        assert query.engine.state_store.total_keys() == 10

    def test_full_row_distinct(self, session):
        stream = make_stream(SCHEMA)
        df = session.read_stream.memory(stream).distinct()
        query = start_memory_query(df, "append", "out")
        stream.add_data([
            {"id": 1, "t": 1.0, "payload": "a"},
            {"id": 1, "t": 1.0, "payload": "a"},
            {"id": 1, "t": 1.0, "payload": "b"},
        ])
        query.process_all_available()
        assert len(query.engine.sink.rows()) == 2


class TestWatermarkedDedup:
    def test_state_evicted_below_watermark(self, session):
        stream = make_stream(SCHEMA)
        query = start_memory_query(
            dedup_query(session, stream, watermark="5s", subset=("id", "t")),
            "append", "out")
        stream.add_data([{"id": 1, "t": 1.0, "payload": "a"}])
        query.process_all_available()
        stream.add_data([{"id": 2, "t": 50.0, "payload": "b"}])
        query.process_all_available()
        stream.add_data([{"id": 3, "t": 51.0, "payload": "c"}])
        query.process_all_available()
        # id=1/t=1 entry is far below the watermark (45): evicted.
        remaining = list(query.engine.state_store.handle("dedup-0").keys())
        assert all(key[1] > 40 for key in remaining)

    def test_late_duplicate_dropped_even_after_eviction(self, session):
        stream = make_stream(SCHEMA)
        query = start_memory_query(
            dedup_query(session, stream, watermark="5s", subset=("id", "t")),
            "append", "out")
        stream.add_data([{"id": 1, "t": 1.0, "payload": "a"}])
        query.process_all_available()
        stream.add_data([{"id": 2, "t": 50.0, "payload": "b"}])
        query.process_all_available()
        stream.add_data([{"id": 3, "t": 51.0, "payload": "c"}])
        query.process_all_available()
        # A record below the watermark cannot be re-admitted.
        stream.add_data([{"id": 1, "t": 1.0, "payload": "late-dup"}])
        progress = query.process_all_available()
        assert progress[-1].late_rows_dropped == 1
        payloads = [r["payload"] for r in query.engine.sink.rows()]
        assert "late-dup" not in payloads

    def test_every_late_row_counted_not_just_distinct_keys(self, session):
        stream = make_stream(SCHEMA)
        query = start_memory_query(
            dedup_query(session, stream, watermark="5s", subset=("id", "t")),
            "append", "out")
        stream.add_data([{"id": 1, "t": 50.0, "payload": "a"}])
        query.process_all_available()
        stream.add_data([{"id": 2, "t": 51.0, "payload": "b"}])
        query.process_all_available()
        # Four late rows over two distinct keys: all four must be counted.
        stream.add_data([
            {"id": 9, "t": 1.0, "payload": "late"},
            {"id": 9, "t": 1.0, "payload": "late"},
            {"id": 9, "t": 1.0, "payload": "late"},
            {"id": 8, "t": 2.0, "payload": "late"},
        ])
        progress = query.process_all_available()
        assert progress[-1].late_rows_dropped == 4
        assert [r["id"] for r in query.engine.sink.rows()] == [1, 2]
