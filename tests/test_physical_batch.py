"""Edge-case tests for the batch physical executor (repro.sql.physical)."""

import numpy as np
import pytest

from repro.sql import expressions as E
from repro.sql import logical as L
from repro.sql.batch import RecordBatch
from repro.sql.physical import execute
from repro.sql.session import _InMemoryProvider
from repro.sql.types import StructType

SCHEMA = StructType((("k", "long"), ("v", "double"), ("s", "string")))


def scan(rows, schema=SCHEMA):
    return L.Scan(
        schema, _InMemoryProvider([RecordBatch.from_rows(rows, schema)]),
        False, name="t",
    )


ROWS = [
    {"k": 2, "v": 1.5, "s": "b"},
    {"k": 1, "v": 2.5, "s": "a"},
    {"k": 2, "v": 3.5, "s": "b"},
]


class TestScan:
    def test_missing_provider_raises(self):
        plan = L.Scan(SCHEMA, None, False, name="empty")
        with pytest.raises(RuntimeError, match="no data"):
            execute(plan)

    def test_override_by_identity(self):
        plan = L.Scan(SCHEMA, None, False, name="o")
        batch = RecordBatch.from_rows(ROWS, SCHEMA)
        assert execute(plan, {id(plan): batch}).num_rows == 3

    def test_multi_batch_provider_concatenated(self):
        batches = [
            RecordBatch.from_rows(ROWS[:1], SCHEMA),
            RecordBatch.from_rows(ROWS[1:], SCHEMA),
        ]
        plan = L.Scan(SCHEMA, _InMemoryProvider(batches), False)
        assert execute(plan).num_rows == 3


class TestEmptyInputs:
    def test_aggregate_on_empty(self):
        plan = L.Aggregate([E.ColumnRef("s")], [(E.Count(None), "n")], scan([]))
        assert execute(plan).num_rows == 0

    def test_windowed_aggregate_on_empty(self):
        w = E.WindowExpr(E.ColumnRef("v"), 10.0)
        plan = L.Aggregate([w], [(E.Count(None), "n")], scan([]))
        out = execute(plan)
        assert out.num_rows == 0
        assert out.schema.names == ["window_start", "window_end", "n"]

    def test_join_empty_sides(self):
        right_schema = StructType((("k", "long"), ("r", "double")))
        plan = L.Join(scan([]), scan([], right_schema), on="k")
        assert execute(plan).num_rows == 0

    def test_sort_empty(self):
        plan = L.Sort([("k", True)], scan([]))
        assert execute(plan).num_rows == 0

    def test_dedup_empty(self):
        plan = L.Deduplicate(["k"], scan([]))
        assert execute(plan).num_rows == 0


class TestSortSemantics:
    def test_multi_key_mixed_direction(self):
        plan = L.Sort([("k", True), ("v", False)], scan(ROWS))
        out = execute(plan).to_rows()
        assert [(r["k"], r["v"]) for r in out] == [(1, 2.5), (2, 3.5), (2, 1.5)]

    def test_string_descending(self):
        plan = L.Sort([("s", False)], scan(ROWS))
        assert [r["s"] for r in execute(plan).to_rows()] == ["b", "b", "a"]

    def test_limit_larger_than_input(self):
        plan = L.Limit(100, scan(ROWS))
        assert execute(plan).num_rows == 3

    def test_limit_zero(self):
        plan = L.Limit(0, scan(ROWS))
        assert execute(plan).num_rows == 0


class TestUnionAndWatermark:
    def test_union_reorders_right_columns(self):
        reordered = StructType((("k", "long"), ("v", "double"), ("s", "string")))
        plan = L.Union(scan(ROWS), scan(ROWS, reordered))
        assert execute(plan).num_rows == 6

    def test_watermark_is_noop_in_batch(self):
        plan = L.WithWatermark("v", "10s", scan(ROWS))
        assert execute(plan).to_rows() == execute(scan(ROWS)).to_rows()


class TestAggregateCornerCases:
    def test_single_group_many_aggs(self):
        plan = L.Aggregate(
            [E.Literal(1).alias("g")],
            [(E.Count(None), "n"), (E.Sum(E.ColumnRef("v")), "s"),
             (E.Min(E.ColumnRef("s")), "lo"), (E.Max(E.ColumnRef("k")), "hi")],
            scan(ROWS),
        )
        (row,) = execute(plan).to_rows()
        assert (row["n"], row["s"], row["lo"], row["hi"]) == (3, 7.5, "a", 2)

    def test_group_by_expression(self):
        plan = L.Aggregate(
            [(E.ColumnRef("k") % 2).alias("parity")],
            [(E.Count(None), "n")],
            scan(ROWS),
        )
        out = {r["parity"]: r["n"] for r in execute(plan).to_rows()}
        assert out == {0: 2, 1: 1}

    def test_null_aggregate_results_materialize(self):
        rows = [{"k": 1, "v": None, "s": "a"}]
        plan = L.Aggregate(
            [E.ColumnRef("k")], [(E.Sum(E.ColumnRef("v")), "s")], scan(rows))
        assert execute(plan).to_rows() == [{"k": 1, "s": None}]

    def test_sliding_window_aggregate_counts(self):
        schema = StructType((("t", "timestamp"),))
        rows = [{"t": 2.0}, {"t": 7.0}]
        w = E.WindowExpr(E.ColumnRef("t"), 10.0, 5.0)
        plan = L.Aggregate([w], [(E.Count(None), "n")], scan(rows, schema))
        out = {r["window_start"]: r["n"] for r in execute(plan).to_rows()}
        assert out == {-5.0: 1, 0.0: 2, 5.0: 1}


class TestProjectionCoercion:
    def test_integer_expression_keeps_long_dtype(self):
        plan = L.Project([(E.ColumnRef("k") + 1).alias("k1")], scan(ROWS))
        assert execute(plan).column("k1").dtype == np.int64

    def test_division_produces_float(self):
        plan = L.Project([(E.ColumnRef("k") / 2).alias("h")], scan(ROWS))
        assert execute(plan).column("h").dtype == np.float64
