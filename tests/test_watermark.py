"""Tests for watermark semantics (§4.3.1)."""

import pytest

from repro.streaming.watermark import WatermarkTracker


class TestBasicSemantics:
    def test_unset_until_data_seen(self):
        tracker = WatermarkTracker({"t": 10.0})
        assert tracker.current("t") is None

    def test_max_minus_delay(self):
        tracker = WatermarkTracker({"t": 10.0})
        tracker.observe("t", 100.0)
        tracker.advance()
        assert tracker.current("t") == 90.0

    def test_takes_effect_only_after_advance(self):
        # The watermark for epoch N comes from data in epochs < N.
        tracker = WatermarkTracker({"t": 10.0})
        tracker.observe("t", 100.0)
        assert tracker.current("t") is None
        tracker.advance()
        assert tracker.current("t") == 90.0

    def test_monotonic_under_out_of_order_data(self):
        tracker = WatermarkTracker({"t": 10.0})
        tracker.observe("t", 100.0)
        tracker.advance()
        tracker.observe("t", 50.0)  # late data must not move it back
        tracker.advance()
        assert tracker.current("t") == 90.0

    def test_max_observation_wins_within_epoch(self):
        tracker = WatermarkTracker({"t": 5.0})
        tracker.observe("t", 30.0)
        tracker.observe("t", 20.0)
        tracker.advance()
        assert tracker.current("t") == 25.0

    def test_unknown_column_ignored(self):
        tracker = WatermarkTracker({"t": 5.0})
        tracker.observe("other", 100.0)
        tracker.advance()
        assert tracker.current("t") is None

    def test_columns_listing(self):
        tracker = WatermarkTracker({"b": 1.0, "a": 2.0})
        assert tracker.columns == ["a", "b"]


class TestGlobalMinimum:
    def test_none_when_no_watermarks(self):
        assert WatermarkTracker({}).global_minimum() is None

    def test_none_until_all_columns_seen(self):
        tracker = WatermarkTracker({"a": 1.0, "b": 1.0})
        tracker.observe("a", 10.0)
        tracker.advance()
        assert tracker.global_minimum() is None

    def test_minimum_across_columns(self):
        tracker = WatermarkTracker({"a": 1.0, "b": 1.0})
        tracker.observe("a", 10.0)
        tracker.observe("b", 5.0)
        tracker.advance()
        assert tracker.global_minimum() == 4.0


class TestPersistence:
    def test_json_roundtrip(self):
        tracker = WatermarkTracker({"t": 10.0})
        tracker.observe("t", 100.0)
        tracker.advance()
        tracker.observe("t", 120.0)  # un-advanced observation persists too

        restored = WatermarkTracker({"t": 10.0})
        restored.load_json(tracker.to_json())
        assert restored.current("t") == 90.0
        restored.advance()
        assert restored.current("t") == 110.0

    def test_backlog_robustness(self):
        # §4.3.1: if processing falls behind, the watermark stalls with
        # the data actually seen, so nothing within the threshold drops.
        tracker = WatermarkTracker({"t": 10.0})
        tracker.observe("t", 50.0)
        tracker.advance()
        before = tracker.current("t")
        for _ in range(5):  # idle epochs with no new data
            tracker.advance()
        assert tracker.current("t") == before
