"""Correctness tests for the baseline engines and the Yahoo! workload.

All three engines (Structured Streaming, Flink-like, Kafka-Streams-like)
must produce identical windowed counts — performance differs, results
must not (§9.1).
"""

import pytest

from repro.bus import Broker
from repro.baselines.operator_engine import (
    FilterOperator,
    FlinkStyleEngine,
    KeyByBoundary,
    ProjectOperator,
    TableJoinOperator,
    WindowedCountOperator,
)
from repro.baselines.record_engine import (
    FilterStage,
    KafkaStreamsStyleEngine,
    MapStage,
    TableJoinStage,
    WindowedCountStage,
)
from repro.workloads.yahoo import (
    WINDOW_SECONDS,
    YahooWorkload,
    structured_streaming_query,
)


@pytest.fixture
def workload():
    return YahooWorkload(num_campaigns=10, ads_per_campaign=5, seed=3)


@pytest.fixture
def published(workload):
    broker = Broker()
    rows = workload.event_rows(2_000, duration=60.0)
    workload.publish(broker, "events", rows, partitions=3)
    return broker, rows


class TestWorkloadGenerator:
    def test_campaign_mapping_consistent(self, workload):
        lookup = workload.campaign_lookup()
        for row in workload.campaign_rows():
            assert lookup[row["ad_id"]] == row["campaign_id"]

    def test_event_fields(self, workload):
        rows = workload.event_rows(10)
        for row in rows:
            assert set(row) == {"user_id", "page_id", "ad_id", "ad_type",
                                "event_type", "event_time"}
            assert 0 <= row["ad_id"] < workload.num_ads

    def test_event_times_sorted(self, workload):
        rows = workload.event_rows(100)
        times = [r["event_time"] for r in rows]
        assert times == sorted(times)

    def test_deterministic_with_seed(self):
        a = YahooWorkload(seed=5).event_rows(20)
        b = YahooWorkload(seed=5).event_rows(20)
        assert a == b

    def test_reference_counts_only_views(self, workload):
        rows = [
            {"ad_id": 0, "event_type": "view", "event_time": 1.0},
            {"ad_id": 0, "event_type": "click", "event_time": 2.0},
        ]
        ref = workload.reference_counts(rows)
        assert sum(ref.values()) == 1

    def test_publish_columnar_round_trips(self, workload):
        broker = Broker()
        workload.publish_columnar(broker, "ev", 100, partitions=2)
        assert broker.topic("ev").total_records() == 100


class TestEnginesAgree:
    def _flink_counts(self, broker, workload):
        counter = WindowedCountOperator("campaign_id", "event_time", WINDOW_SECONDS)
        engine = FlinkStyleEngine(broker, [
            FilterOperator(lambda r: r["event_type"] == "view"),
            ProjectOperator(("ad_id", "event_time")),
            TableJoinOperator(workload.campaign_lookup(), "ad_id", "campaign_id"),
            KeyByBoundary("campaign_id"),
            counter,
        ])
        engine.run("events")
        return dict(counter.counts)

    def _ks_counts(self, broker, workload):
        engine = KafkaStreamsStyleEngine(broker, name="ks-test")
        engine.add_stage(FilterStage(lambda r: r["event_type"] == "view"))
        engine.add_stage(MapStage(
            lambda r: {"ad_id": r["ad_id"], "event_time": r["event_time"]}))
        engine.add_stage(TableJoinStage(
            workload.campaign_lookup(), "ad_id", "campaign_id"))
        counter = WindowedCountStage(
            "campaign_id", "event_time", WINDOW_SECONDS,
            engine.changelog_topic("counts"))
        engine.add_stage(counter)
        engine.run("events", "ks-out")
        return {(int(k[0]), k[1]): v for k, v in counter.counts.items()}

    def _ss_counts(self, session, broker, workload):
        query = structured_streaming_query(session, broker, "events", workload)
        handle = (query.write_stream.format("memory").query_name("y")
                  .output_mode("update").start())
        handle.process_all_available()
        return {(r["campaign_id"], r["window_start"]): r["count"]
                for r in handle.engine.sink.rows()}

    def test_all_three_match_reference(self, session, workload, published):
        broker, rows = published
        reference = workload.reference_counts(rows)
        assert self._ss_counts(session, broker, workload) == reference
        assert self._flink_counts(broker, workload) == reference
        assert self._ks_counts(broker, workload) == reference

    def test_ss_append_mode_emits_final_windows(self, session, workload):
        broker = Broker()
        rows = workload.event_rows(500, duration=30.0)
        workload.publish(broker, "events", rows, partitions=2)
        query = structured_streaming_query(
            session, broker, "events", workload, watermark_delay="5 seconds")
        handle = (query.write_stream.format("memory").query_name("ya")
                  .output_mode("append").start())
        handle.process_all_available()
        # Push the watermark far forward so every real window closes.
        # Padding must be 'view' events: the watermark is observed after
        # the filter, as in the real pipeline.
        for t in (10_000.0, 10_001.0):
            workload.publish(broker, "events",
                             [{"user_id": 0, "page_id": 0, "ad_id": 0,
                               "ad_type": "banner", "event_type": "view",
                               "event_time": t}], partitions=2)
            handle.process_all_available()
        got = {(r["campaign_id"], r["window_start"]): r["count"]
               for r in handle.engine.sink.rows()
               if r["window_start"] < 1_000.0}
        assert got == workload.reference_counts(rows)

    def test_changelog_published_per_update(self, workload):
        """The KS-like engine's fault-tolerance cost: one changelog record
        per state update."""
        broker = Broker()
        rows = [{"user_id": 0, "page_id": 0, "ad_id": 0, "ad_type": "b",
                 "event_type": "view", "event_time": 1.0}] * 5
        broker.create_topic("events").publish_to(0, rows)
        engine = KafkaStreamsStyleEngine(broker, name="ks-c")
        engine.add_stage(FilterStage(lambda r: True))
        changelog = engine.changelog_topic("x")
        engine.add_stage(WindowedCountStage(
            "ad_id", "event_time", WINDOW_SECONDS, changelog))
        engine.run("events", "out")
        assert changelog.total_records() == 5
