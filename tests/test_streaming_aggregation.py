"""Streaming aggregation across output modes, windows and watermarks
(§4.2, §4.3.1, §5.2)."""

import pytest

from repro.sql import functions as F

from tests.conftest import make_stream, rows_set, start_memory_query

EVENT = (("t", "timestamp"), ("k", "string"), ("v", "double"))


def windowed_counts(session, stream, delay="10 seconds", size="10s"):
    return (session.read_stream.memory(stream)
            .with_watermark("t", delay)
            .group_by(F.window("t", size))
            .count())


class TestCompleteMode:
    def test_whole_table_every_epoch(self, session):
        stream = make_stream((("k", "string"),))
        df = session.read_stream.memory(stream).group_by("k").count()
        query = start_memory_query(df, "complete", "out")
        stream.add_data([{"k": "a"}])
        query.process_all_available()
        stream.add_data([{"k": "b"}])
        query.process_all_available()
        assert rows_set(query.engine.sink.rows()) == rows_set([
            {"k": "a", "count": 1}, {"k": "b", "count": 1}])

    def test_counts_accumulate(self, session):
        stream = make_stream((("k", "string"),))
        df = session.read_stream.memory(stream).group_by("k").count()
        query = start_memory_query(df, "complete", "out")
        for _ in range(3):
            stream.add_data([{"k": "a"}])
            query.process_all_available()
        assert query.engine.sink.rows() == [{"k": "a", "count": 3}]

    def test_sorted_complete_output(self, session):
        stream = make_stream((("k", "string"),))
        df = (session.read_stream.memory(stream)
              .group_by("k").count().order_by("-count"))
        query = start_memory_query(df, "complete", "out")
        stream.add_data([{"k": "a"}, {"k": "b"}, {"k": "a"}])
        query.process_all_available()
        assert [r["k"] for r in query.engine.sink.rows()] == ["a", "b"]

    def test_limit_in_complete_mode(self, session):
        stream = make_stream((("k", "string"),))
        df = (session.read_stream.memory(stream)
              .group_by("k").count().order_by("-count").limit(1))
        query = start_memory_query(df, "complete", "out")
        stream.add_data([{"k": "a"}, {"k": "b"}, {"k": "a"}])
        query.process_all_available()
        assert query.engine.sink.rows() == [{"k": "a", "count": 2}]


class TestUpdateMode:
    def test_only_changed_keys_emitted(self, session):
        stream = make_stream((("k", "string"),))
        df = session.read_stream.memory(stream).group_by("k").count()
        query = start_memory_query(df, "update", "out")
        sink = query.engine.sink
        stream.add_data([{"k": "a"}, {"k": "b"}])
        query.process_all_available()
        stream.add_data([{"k": "a"}])
        query.process_all_available()
        # sink merged by key: a=2, b=1
        assert rows_set(sink.rows()) == rows_set([
            {"k": "a", "count": 2}, {"k": "b", "count": 1}])

    def test_update_epoch_emission_is_delta_only(self, session):
        stream = make_stream((("k", "string"),))
        df = session.read_stream.memory(stream).group_by("k").count()
        emitted = []
        query = (df.write_stream
                 .foreach(lambda e, rows, mode: emitted.append((e, rows)))
                 .output_mode("update").start())
        stream.add_data([{"k": "a"}, {"k": "b"}])
        query.process_all_available()
        stream.add_data([{"k": "b"}])
        query.process_all_available()
        assert len(emitted[0][1]) == 2
        assert emitted[1][1] == [{"k": "b", "count": 2}]

    def test_multiple_aggregates_per_key(self, session):
        stream = make_stream(EVENT)
        df = (session.read_stream.memory(stream)
              .group_by("k")
              .agg(F.count().alias("n"), F.avg("v").alias("mean"),
                   F.min("v").alias("lo"), F.max("v").alias("hi")))
        query = start_memory_query(df, "update", "out")
        stream.add_data([{"t": 0.0, "k": "a", "v": 2.0}])
        query.process_all_available()
        stream.add_data([{"t": 1.0, "k": "a", "v": 6.0}])
        query.process_all_available()
        (row,) = query.engine.sink.rows()
        assert (row["n"], row["mean"], row["lo"], row["hi"]) == (2, 4.0, 2.0, 6.0)


class TestAppendModeWithWatermark:
    def test_nothing_emitted_before_watermark(self, session):
        stream = make_stream(EVENT)
        query = start_memory_query(windowed_counts(session, stream), "append", "out")
        stream.add_data([{"t": 5.0, "k": "a", "v": 1.0}])
        query.process_all_available()
        assert query.engine.sink.rows() == []

    def test_window_emitted_once_after_watermark_passes(self, session):
        stream = make_stream(EVENT)
        query = start_memory_query(windowed_counts(session, stream), "append", "out")
        stream.add_data([{"t": 5.0, "k": "a", "v": 1.0},
                         {"t": 7.0, "k": "a", "v": 1.0}])
        query.process_all_available()
        # max t = 7 -> watermark 0 after this epoch; window [0,10) open.
        stream.add_data([{"t": 25.0, "k": "a", "v": 1.0}])
        query.process_all_available()
        # watermark now 15 (effective next epoch)
        stream.add_data([{"t": 26.0, "k": "a", "v": 1.0}])
        query.process_all_available()
        assert query.engine.sink.rows() == [
            {"window_start": 0.0, "window_end": 10.0, "count": 2}]

    def test_late_data_dropped_after_emission(self, session):
        stream = make_stream(EVENT)
        query = start_memory_query(windowed_counts(session, stream), "append", "out")
        stream.add_data([{"t": 5.0, "k": "a", "v": 1.0}])
        query.process_all_available()
        stream.add_data([{"t": 25.0, "k": "a", "v": 1.0}])
        query.process_all_available()
        stream.add_data([{"t": 26.0, "k": "a", "v": 1.0}])
        query.process_all_available()  # [0,10) emitted with count 1
        stream.add_data([{"t": 6.0, "k": "a", "v": 1.0},  # too late
                         {"t": 40.0, "k": "a", "v": 1.0}])
        progress = query.process_all_available()
        assert progress[-1].late_rows_dropped == 1
        emitted = [r for r in query.engine.sink.rows() if r["window_start"] == 0.0]
        assert emitted == [{"window_start": 0.0, "window_end": 10.0, "count": 1}]

    def test_state_evicted_after_emission(self, session):
        stream = make_stream(EVENT)
        query = start_memory_query(windowed_counts(session, stream), "append", "out")
        stream.add_data([{"t": 5.0, "k": "a", "v": 1.0}])
        query.process_all_available()
        keys_before = query.engine.state_store.total_keys()
        stream.add_data([{"t": 25.0, "k": "a", "v": 1.0}])
        query.process_all_available()
        stream.add_data([{"t": 26.0, "k": "a", "v": 1.0}])
        query.process_all_available()
        assert keys_before == 1
        # [0,10) evicted; [20,30) still open
        assert query.engine.state_store.total_keys() == 1

    def test_group_by_watermarked_column_directly(self, session):
        stream = make_stream(EVENT)
        df = (session.read_stream.memory(stream)
              .with_watermark("t", "5 seconds")
              .group_by("t").count())
        query = start_memory_query(df, "append", "out")
        stream.add_data([{"t": 1.0, "k": "a", "v": 1.0}])
        query.process_all_available()
        stream.add_data([{"t": 10.0, "k": "a", "v": 1.0}])
        query.process_all_available()
        stream.add_data([{"t": 11.0, "k": "a", "v": 1.0}])
        query.process_all_available()
        # watermark reached 5 -> t=1 finalized
        assert {r["t"]: r["count"] for r in query.engine.sink.rows()} == {1.0: 1}


class TestUpdateModeEviction:
    def test_watermark_bounds_state_in_update_mode(self, session):
        stream = make_stream(EVENT)
        query = start_memory_query(windowed_counts(session, stream), "update", "out")
        for t in (5.0, 25.0, 45.0, 65.0):
            stream.add_data([{"t": t, "k": "a", "v": 1.0}])
            query.process_all_available()
        # Old windows must be evicted, not retained forever (§4.3.1).
        assert query.engine.state_store.total_keys() <= 2


class TestSlidingWindows:
    def test_record_counted_in_multiple_windows(self, session):
        stream = make_stream(EVENT)
        df = (session.read_stream.memory(stream)
              .group_by(F.window("t", "10s", "5s"))
              .count())
        query = start_memory_query(df, "update", "out")
        stream.add_data([{"t": 7.0, "k": "a", "v": 1.0}])
        query.process_all_available()
        starts = sorted(r["window_start"] for r in query.engine.sink.rows())
        assert starts == [0.0, 5.0]

    def test_sliding_counts_match_batch(self, session):
        rows = [{"t": float(t), "k": "a", "v": 1.0} for t in (1, 4, 6, 11, 13)]
        batch = session.create_dataframe(rows, EVENT)
        expected = rows_set(
            batch.group_by(F.window("t", "10s", "5s")).count().collect())

        stream = make_stream(EVENT)
        df = (session.read_stream.memory(stream)
              .group_by(F.window("t", "10s", "5s")).count())
        query = start_memory_query(df, "complete", "out")
        for row in rows:
            stream.add_data([row])
            query.process_all_available()
        assert rows_set(query.engine.sink.rows()) == expected


class TestCompositeKeys:
    def test_key_plus_window(self, session):
        stream = make_stream(EVENT)
        df = (session.read_stream.memory(stream)
              .with_watermark("t", "10s")
              .group_by(F.col("k"), F.window("t", "10s"))
              .count())
        query = start_memory_query(df, "update", "out")
        stream.add_data([
            {"t": 1.0, "k": "a", "v": 1.0},
            {"t": 2.0, "k": "b", "v": 1.0},
            {"t": 12.0, "k": "a", "v": 1.0},
        ])
        query.process_all_available()
        got = {(r["k"], r["window_start"]): r["count"]
               for r in query.engine.sink.rows()}
        assert got == {("a", 0.0): 1, ("b", 0.0): 1, ("a", 10.0): 1}
