"""Unit tests for the type system (repro.sql.types)."""

import numpy as np
import pytest

from repro.sql import types as T


class TestSingletonsAndEquality:
    def test_same_class_instances_equal(self):
        assert T.IntegerType() == T.INTEGER

    def test_different_types_not_equal(self):
        assert T.IntegerType() != T.StringType()

    def test_hashable_as_dict_keys(self):
        d = {T.LONG: 1, T.STRING: 2}
        assert d[T.LongType()] == 1

    def test_simple_name(self):
        assert T.TIMESTAMP.simple_name == "timestamp"
        assert T.BOOLEAN.simple_name == "boolean"

    def test_repr(self):
        assert repr(T.DOUBLE) == "DoubleType"


class TestTypeFromName:
    @pytest.mark.parametrize("name,expected", [
        ("int", T.INTEGER), ("integer", T.INTEGER), ("long", T.LONG),
        ("bigint", T.LONG), ("double", T.DOUBLE), ("float", T.DOUBLE),
        ("string", T.STRING), ("boolean", T.BOOLEAN), ("bool", T.BOOLEAN),
        ("timestamp", T.TIMESTAMP),
    ])
    def test_known_names(self, name, expected):
        assert T.type_from_name(name) == expected

    def test_case_and_whitespace_insensitive(self):
        assert T.type_from_name("  String ") == T.STRING

    def test_unknown_name_raises(self):
        with pytest.raises(ValueError, match="unknown data type"):
            T.type_from_name("decimal")


class TestInference:
    def test_bool_before_int(self):
        # bool is a subclass of int in Python; inference must not confuse them.
        assert T.infer_type(True) == T.BOOLEAN

    def test_int(self):
        assert T.infer_type(42) == T.LONG

    def test_float(self):
        assert T.infer_type(1.5) == T.DOUBLE

    def test_str(self):
        assert T.infer_type("x") == T.STRING

    def test_numpy_scalars(self):
        assert T.infer_type(np.int64(3)) == T.LONG
        assert T.infer_type(np.float64(3.5)) == T.DOUBLE

    def test_uninferable_raises(self):
        with pytest.raises(TypeError):
            T.infer_type(object())


class TestCommonType:
    def test_same_type(self):
        assert T.common_type(T.LONG, T.LONG) == T.LONG

    def test_int_double_widens(self):
        assert T.common_type(T.LONG, T.DOUBLE) == T.DOUBLE

    def test_int_int_stays_long(self):
        assert T.common_type(T.INTEGER, T.LONG) == T.LONG

    def test_timestamp_numeric(self):
        assert T.common_type(T.TIMESTAMP, T.LONG) == T.DOUBLE

    def test_string_numeric_raises(self):
        with pytest.raises(TypeError, match="incompatible"):
            T.common_type(T.STRING, T.LONG)


class TestAccepts:
    def test_none_always_accepted(self):
        assert T.STRING.accepts(None)
        assert T.LONG.accepts(None)

    def test_string_accepts_str_only(self):
        assert T.STRING.accepts("a")
        assert not T.STRING.accepts(3)

    def test_double_accepts_int(self):
        assert T.DOUBLE.accepts(3)


class TestStructType:
    def test_tuple_spec_construction(self):
        schema = T.StructType((("a", "long"), ("b", T.STRING)))
        assert schema.names == ["a", "b"]
        assert schema.type_of("b") == T.STRING

    def test_nullable_flag_in_spec(self):
        schema = T.StructType((("a", "long", False),))
        assert not schema.field("a").nullable

    def test_invalid_spec_raises(self):
        with pytest.raises(TypeError):
            T.StructType(("bad",))

    def test_contains_and_field(self):
        schema = T.schema_of(a="long", b="string")
        assert "a" in schema
        assert "z" not in schema
        with pytest.raises(KeyError):
            schema.field("z")

    def test_add_returns_new_schema(self):
        schema = T.schema_of(a="long")
        extended = schema.add("b", "string")
        assert extended.names == ["a", "b"]
        assert schema.names == ["a"]

    def test_select_preserves_requested_order(self):
        schema = T.schema_of(a="long", b="string", c="double")
        assert schema.select(["c", "a"]).names == ["c", "a"]

    def test_merge_disjoint(self):
        merged = T.schema_of(a="long").merge(T.schema_of(b="string"))
        assert merged.names == ["a", "b"]

    def test_merge_duplicate_raises(self):
        with pytest.raises(ValueError, match="duplicate"):
            T.schema_of(a="long").merge(T.schema_of(a="string"))

    def test_len_and_iter(self):
        schema = T.schema_of(a="long", b="string")
        assert len(schema) == 2
        assert [f.name for f in schema] == ["a", "b"]
