"""Tests for session windows, scheduler-integrated epochs, time travel."""

import pytest

from repro.cluster import FailureInjector, TaskScheduler
from repro.sinks.file import TransactionalFileSink
from repro.sql import functions as F
from repro.sql.batch import RecordBatch
from repro.sql.types import StructType
from repro.streaming.sessions import session_windows

from tests.conftest import make_stream, start_memory_query

EVENTS = (("user", "string"), ("t", "timestamp"))


def sessions_query(session, stream, gap="30 seconds", watermark="0s"):
    df = session.read_stream.memory(stream).with_watermark("t", watermark)
    return session_windows(df, ["user"], "t", gap)


class TestSessionWindows:
    def test_single_session_counts_events(self, session):
        stream = make_stream(EVENTS)
        query = start_memory_query(sessions_query(session, stream), "append", "out")
        stream.add_data([{"user": "u1", "t": 1.0}, {"user": "u1", "t": 10.0}])
        query.process_all_available()
        assert query.engine.sink.rows() == []  # session still open
        # Watermark passes 10 + 30: session closes via timeout.
        stream.add_data([{"user": "u2", "t": 100.0}])
        query.process_all_available()
        stream.add_data([{"user": "u2", "t": 101.0}])
        query.process_all_available()
        closed = [r for r in query.engine.sink.rows() if r["user"] == "u1"]
        assert closed == [{"user": "u1", "session_start": 1.0,
                           "session_end": 10.0, "events": 2}]

    def test_gap_splits_sessions_within_epoch(self, session):
        stream = make_stream(EVENTS)
        query = start_memory_query(sessions_query(session, stream), "append", "out")
        stream.add_data([
            {"user": "u1", "t": 1.0}, {"user": "u1", "t": 5.0},
            {"user": "u1", "t": 100.0},  # > 30s after 5.0: new session
            {"user": "u1", "t": 200.0},
        ])
        query.process_all_available()
        # Sessions 1 and 2 are provably over (watermark is still behind,
        # but the in-epoch fold closes them when the next event jumps).
        rows = query.engine.sink.rows()
        assert {(r["session_start"], r["events"]) for r in rows} == {
            (1.0, 2), (100.0, 1)}

    def test_session_extends_across_epochs(self, session):
        stream = make_stream(EVENTS)
        query = start_memory_query(sessions_query(session, stream), "append", "out")
        stream.add_data([{"user": "u1", "t": 1.0}])
        query.process_all_available()
        stream.add_data([{"user": "u1", "t": 20.0}])  # within the gap
        query.process_all_available()
        assert query.engine.sink.rows() == []
        state = query.engine.state_store.handle("mgws-0").get(("u1",))
        assert state["s"]["n"] == 2

    def test_per_key_isolation(self, session):
        stream = make_stream(EVENTS)
        query = start_memory_query(sessions_query(session, stream), "append", "out")
        stream.add_data([{"user": "u1", "t": 1.0}, {"user": "u2", "t": 2.0}])
        query.process_all_available()
        assert query.engine.state_store.total_keys() == 2

    def test_out_of_order_within_gap_merges(self, session):
        stream = make_stream(EVENTS)
        query = start_memory_query(
            sessions_query(session, stream, watermark="50s"), "append", "out")
        stream.add_data([{"user": "u1", "t": 10.0}])
        query.process_all_available()
        stream.add_data([{"user": "u1", "t": 5.0}])  # late but within gap
        query.process_all_available()
        state = query.engine.state_store.handle("mgws-0").get(("u1",))
        assert state["s"] == {"start": 5.0, "end": 10.0, "n": 2}


class TestSchedulerIntegratedEngine:
    def _start(self, session, stream, scheduler, checkpoint):
        df = session.read_stream.memory(stream).where(F.col("v") >= 0)
        return (df.write_stream.format("memory").query_name("par")
                .option("scheduler", scheduler)
                .output_mode("append").start(checkpoint))

    def test_epoch_runs_via_tasks(self, session, checkpoint):
        scheduler = TaskScheduler(2, speculation=False)
        try:
            stream = make_stream((("v", "long"),))
            query = self._start(session, stream, scheduler, checkpoint)
            stream.add_data([{"v": i} for i in range(10)])
            query.process_all_available()
            assert len(query.engine.sink.rows()) == 10
        finally:
            scheduler.shutdown()

    def test_mid_epoch_task_failure_recovers(self, session, checkpoint):
        """A fetch task fails once; the scheduler retries just that task
        and the epoch completes exactly-once (§6.2 fine-grained recovery)."""
        injector = FailureInjector({("source-0", "0"): 1})
        scheduler = TaskScheduler(2, speculation=False, injectors=[injector])
        try:
            stream = make_stream((("v", "long"),))
            query = self._start(session, stream, scheduler, checkpoint)
            stream.add_data([{"v": 1}, {"v": 2}])
            query.process_all_available()
            assert injector.injected  # the failure really happened
            assert [r["v"] for r in query.engine.sink.rows()] == [1, 2]
        finally:
            scheduler.shutdown()

    def test_multi_partition_kafka_fetch_parallel(self, session, checkpoint):
        from repro.bus import Broker

        scheduler = TaskScheduler(4, speculation=False)
        try:
            broker = Broker()
            topic = broker.create_topic("t", 4)
            for p in range(4):
                topic.publish_to(p, [{"v": p * 10 + i} for i in range(5)])
            df = session.read_stream.kafka(broker, "t", (("v", "long"),))
            query = (df.write_stream.format("memory").query_name("k")
                     .option("scheduler", scheduler)
                     .output_mode("append").start(checkpoint))
            query.process_all_available()
            assert len(query.engine.sink.rows()) == 20
        finally:
            scheduler.shutdown()


class TestTimeTravel:
    def test_read_as_of_epoch(self, tmp_path):
        schema = StructType((("v", "long"),))
        sink = TransactionalFileSink(str(tmp_path / "t"))
        for epoch in range(3):
            sink.add_batch(epoch, RecordBatch.from_rows([{"v": epoch}], schema),
                           "append")
        assert sink.read_rows(as_of_epoch=1) == [{"v": 0}, {"v": 1}]
        assert sink.read_rows() == [{"v": 0}, {"v": 1}, {"v": 2}]

    def test_time_travel_respects_complete_mode(self, tmp_path):
        schema = StructType((("v", "long"),))
        sink = TransactionalFileSink(str(tmp_path / "t"))
        sink.add_batch(0, RecordBatch.from_rows([{"v": 0}], schema), "complete")
        sink.add_batch(1, RecordBatch.from_rows([{"v": 1}], schema), "complete")
        assert sink.read_rows(as_of_epoch=0) == [{"v": 0}]
        assert sink.read_rows(as_of_epoch=1) == [{"v": 1}]
