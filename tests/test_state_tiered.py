"""Tiered (LSM) state backend: equivalence with the dict backend,
on-disk format goldens, and crash-window determinism.

The equivalence property is the backend's contract: any sequence of
``put``/``remove``/``pop_expired`` (with commits, restores and N→M
shard rescaling interleaved) observes identical state through either
backend.  One asymmetry is inherent and canonicalized away here: a
spilled value round-trips through JSON (tuples become lists) *earlier*
than the dict backend's (which round-trips at its first restore), so
comparisons go through a JSON canonicalization — the same equivalence
class every caller already must respect to survive a restart.
"""

from __future__ import annotations

import hashlib
import json
import os

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.storage import read_json
from repro.streaming.state import OperatorStateHandle, StateStore
from repro.streaming.state_lsm import (
    COMPACT_FANIN,
    TOMBSTONE,
    SortedRun,
    TieredOperatorStateHandle,
    _bloom_hash,
    _MISS,
)
from repro.testing.faults import CrashPoint, Fault, FaultInjector, injected

from tests.conftest import make_stream, rows_set, start_memory_query


def canon(value):
    return json.loads(json.dumps(value, sort_keys=True))


def tiered(directory, shards=1, budget=256, interval=10):
    return TieredOperatorStateHandle(
        str(directory), snapshot_interval=interval, num_shards=shards,
        memtable_bytes=budget)


# ----------------------------------------------------------------------
# Point lookups, spill, and the probe structures
# ----------------------------------------------------------------------
def test_spill_and_probe_through_runs(tmp_path):
    h = tiered(tmp_path / "op", shards=3, budget=300)
    for i in range(120):
        h.put(("k", i), {"n": i})
    assert len(h._runs) > 1, "budget never forced a spill"
    for i in range(120):
        assert h.get(("k", i)) == {"n": i}
    assert h.get(("k", 999)) is None
    assert len(h) == 120
    assert sorted(h.keys()) == sorted(("k", i) for i in range(120))


def test_remove_masks_spilled_value(tmp_path):
    h = tiered(tmp_path / "op", budget=200)
    for i in range(40):
        h.put(i, [i])
    h.remove(3)
    assert h.get(3) is None and not h.contains(3)
    assert len(h) == 39
    assert 3 not in dict(h.items())
    h.remove(3)  # idempotent: no double-decrement
    assert len(h) == 39
    h.put(3, [99])  # re-put over a tombstone
    assert h.get(3) == [99] and len(h) == 40


def test_overwrite_newest_run_wins(tmp_path):
    h = tiered(tmp_path / "op", budget=200)
    for round_ in range(3):
        for i in range(25):
            h.put(i, {"round": round_, "i": i})
    assert len(h) == 25
    assert all(h.get(i)["round"] == 2 for i in range(25))


def test_sorted_run_probe_structures(tmp_path):
    items = [(json.dumps(f"key{i:04d}"), {"v": i}) for i in range(500)]
    run = SortedRun.create(str(tmp_path), 0, items)
    assert run.count == 500
    assert len(run._index_keys) == 500 // 64 + 1  # sparse, not per-key
    for encoded, value in items:
        assert run.get(encoded, *_bloom_hash(encoded)) == value
    missing = json.dumps("nope")
    assert run.get(missing, *_bloom_hash(missing)) is _MISS
    # fences reject without touching the bloom or the file
    below = json.dumps("aaa")
    assert run.get(below, *_bloom_hash(below)) is _MISS
    assert [k for k, _ in run.scan()] == [k for k, _ in items]
    run.close()


def test_bloom_filter_has_no_false_negatives(tmp_path):
    items = [(json.dumps([i, "x" * (i % 7)]), i) for i in range(1000)]
    run = SortedRun.create(str(tmp_path), 0, sorted(items))
    hits = sum(run._bloom_contains(*_bloom_hash(e)) for e, _ in items)
    assert hits == len(items)
    absent = [json.dumps([i, "absent"]) for i in range(2000, 4000)]
    false_pos = sum(run._bloom_contains(*_bloom_hash(e)) for e in absent)
    assert false_pos < len(absent) * 0.05  # ~0.15% expected at 14 bits/key
    run.close()


# ----------------------------------------------------------------------
# Compaction
# ----------------------------------------------------------------------
def test_compaction_bounds_run_count_and_preserves_state(tmp_path):
    h = tiered(tmp_path / "op", budget=180)
    for i in range(300):
        h.put(i % 60, {"v": i})
    assert len(h._runs) < COMPACT_FANIN * 4, (
        f"{len(h._runs)} runs survived; compaction never bounded the set"
    )
    assert len(h) == 60
    assert all(h.get(k) == {"v": max(i for i in range(300) if i % 60 == k)}
               for k in range(60))


def test_compaction_drops_tombstones_only_at_oldest_run(tmp_path):
    h = tiered(tmp_path / "op", budget=150)
    for i in range(40):
        h.put(i, [i])
    for i in range(40):
        h.remove(i)
    for i in range(100, 160):
        h.put(i, [i])  # churn to force full-depth compactions
    assert len(h) == 60
    assert all(h.get(i) is None for i in range(40))
    # once every merge reached the oldest run, no tombstone survives
    if len(h._runs) == 1:
        assert all(v is not TOMBSTONE for _, v in h._runs[0].scan())


# ----------------------------------------------------------------------
# Commit / restore / prune
# ----------------------------------------------------------------------
def test_commit_cost_tracks_delta_not_total_state(tmp_path):
    h = tiered(tmp_path / "op", budget=10_000)
    for i in range(500):
        h.put(i, [i])
    first = h.commit(1)
    h.put(0, [-1])
    second = h.commit(2)
    assert first["keys_written"] == 500
    assert second["keys_written"] == 1
    # the delta commit reuses every earlier run file untouched
    m1 = read_json(str(tmp_path / "op" / "0000000001.manifest.json"))
    m2 = read_json(str(tmp_path / "op" / "0000000002.manifest.json"))
    reused = {(r["seq"], r["sha256"]) for r in m1["runs"]}
    assert reused <= {(r["seq"], r["sha256"]) for r in m2["runs"]}
    new_runs = [r for r in m2["runs"]
                if (r["seq"], r["sha256"]) not in reused]
    assert sum(r["count"] for r in new_runs) == 1


def test_restore_rescales_and_prune_keeps_referenced_runs(tmp_path):
    h = tiered(tmp_path / "op", shards=2, budget=250)
    for i in range(80):
        h.put(("u", i), {"n": i})
    h.commit(1)
    for i in range(40):
        h.remove(("u", i))
    h.commit(2)

    h5 = tiered(tmp_path / "op", shards=5, budget=250)
    assert h5.restore(2) == 2
    assert len(h5) == 40
    assert h5.get(("u", 70)) == {"n": 70} and h5.get(("u", 10)) is None
    # rollback to version 1 still possible before pruning
    h1 = tiered(tmp_path / "op", shards=1, budget=10_000)
    assert h1.restore(1) == 1 and len(h1) == 80

    h5.prune(2)
    manifest = read_json(str(tmp_path / "op" / "0000000002.manifest.json"))
    on_disk = {int(n.split(".")[0])
               for n in os.listdir(tmp_path / "op" / "runs")
               if n.endswith(".run")}
    assert on_disk == {r["seq"] for r in manifest["runs"]}
    assert not os.path.exists(tmp_path / "op" / "0000000001.manifest.json")
    h6 = tiered(tmp_path / "op", shards=3, budget=250)
    assert h6.restore(2) == 2 and len(h6) == 40


def test_manifest_sha_matches_run_file_contents(tmp_path):
    h = tiered(tmp_path / "op", budget=200)
    for i in range(50):
        h.put(i, {"v": i})
    h.commit(7)
    manifest = read_json(str(tmp_path / "op" / "0000000007.manifest.json"))
    assert manifest["runs"], "commit produced no runs"
    for entry in manifest["runs"]:
        path = tmp_path / "op" / "runs" / f"{entry['seq']:08d}.run"
        digest = hashlib.sha256(path.read_bytes()).hexdigest()
        assert digest == entry["sha256"]


def test_tiered_reads_dict_checkpoints_and_vice_versa(tmp_path):
    hd = OperatorStateHandle(str(tmp_path / "op"), snapshot_interval=2,
                             num_shards=2)
    for i in range(30):
        hd.put(i, i * 2)
    hd.commit(2)            # snapshot
    hd.put(1, -1)
    hd.remove(2)
    hd.commit(3)            # delta
    ht = tiered(tmp_path / "op", shards=3, budget=150)
    assert ht.restore(3) == 3
    assert ht.get(1) == -1 and ht.get(2) is None and len(ht) == 29
    ht.put(99, [1])         # spills the inherited legacy state
    ht.commit(4)
    # ...and the dict backend still restores its own older versions
    hd2 = OperatorStateHandle(str(tmp_path / "op"), num_shards=1)
    assert hd2.restore(3) == 3 and hd2.get(1) == -1 and len(hd2) == 29


def test_store_backend_selection(tmp_path, monkeypatch):
    store = StateStore(str(tmp_path / "a"), backend="tiered",
                       memtable_bytes=123)
    handle = store.handle("op")
    assert isinstance(handle, TieredOperatorStateHandle)
    assert handle.memtable_bytes == 123
    monkeypatch.setenv("REPRO_STATE_BACKEND", "tiered")
    assert isinstance(StateStore(str(tmp_path / "b")).handle("op"),
                      TieredOperatorStateHandle)
    monkeypatch.delenv("REPRO_STATE_BACKEND")
    assert not isinstance(StateStore(str(tmp_path / "c")).handle("op"),
                          TieredOperatorStateHandle)
    with pytest.raises(ValueError):
        StateStore(str(tmp_path / "d"), backend="rocksdb")


# ----------------------------------------------------------------------
# Crash windows
# ----------------------------------------------------------------------
def _fill(handle, n=60):
    for i in range(n):
        handle.put(i, {"v": i})


def _checkpoint_bytes(directory):
    out = {}
    for root, _dirs, files in os.walk(directory):
        for name in files:
            path = os.path.join(root, name)
            out[os.path.relpath(path, directory)] = open(path, "rb").read()
    return out


def test_flush_crash_recovers_byte_identical(tmp_path):
    golden_dir, crash_dir = tmp_path / "golden", tmp_path / "crash"
    golden = tiered(golden_dir, budget=200)
    _fill(golden)
    golden.commit(1)

    crashed = tiered(crash_dir, budget=200)
    with injected(FaultInjector([Fault("state.flush_crash", occurrence=2)])):
        with pytest.raises(CrashPoint):
            _fill(crashed)
    # restart: orphaned runs are GC'd at construction, replay reproduces
    # the same flush boundaries, and the commit lands byte-identical
    restarted = tiered(crash_dir, budget=200)
    restarted.restore(restarted.latest_version())
    _fill(restarted)
    restarted.commit(1)
    assert _checkpoint_bytes(crash_dir) == _checkpoint_bytes(golden_dir)


def test_compaction_crash_recovers_byte_identical(tmp_path):
    golden_dir, crash_dir = tmp_path / "golden", tmp_path / "crash"
    golden = tiered(golden_dir, budget=150)
    _fill(golden, 80)
    golden.commit(1)

    crashed = tiered(crash_dir, budget=150)
    with injected(FaultInjector([Fault("state.compaction_crash",
                                       occurrence=1)])):
        with pytest.raises(CrashPoint):
            _fill(crashed, 80)
    restarted = tiered(crash_dir, budget=150)
    restarted.restore(restarted.latest_version())
    _fill(restarted, 80)
    restarted.commit(1)
    assert _checkpoint_bytes(crash_dir) == _checkpoint_bytes(golden_dir)


# ----------------------------------------------------------------------
# On-disk format golden (any drift here is a recovery break)
# ----------------------------------------------------------------------
TIERED_GOLDEN = {
    "0000000001.manifest.json": (
        '{\n  "kind": "manifest",\n  "live_keys": 3,\n  "next_seq": 2,\n'
        '  "runs": [\n    {\n      "count": 2,\n      "seq": 0,\n'
        '      "sha256": "a8c0bbb12f36e9ce56be51fe41bb978d03699fcd388'
        '9dddee7ab52b7307b3f89"\n    },\n    {\n      "count": 1,\n'
        '      "seq": 1,\n      "sha256": "f4a03fbe41a150905a5a8765d62'
        'ec9d6bdb277ddcf9a87a635f549c252234d01"\n    }\n  ]\n}'
    ),
    "0000000002.manifest.json": (
        '{\n  "kind": "manifest",\n  "live_keys": 2,\n  "next_seq": 3,\n'
        '  "runs": [\n    {\n      "count": 2,\n      "seq": 0,\n'
        '      "sha256": "a8c0bbb12f36e9ce56be51fe41bb978d03699fcd388'
        '9dddee7ab52b7307b3f89"\n    },\n    {\n      "count": 1,\n'
        '      "seq": 1,\n      "sha256": "f4a03fbe41a150905a5a8765d62'
        'ec9d6bdb277ddcf9a87a635f549c252234d01"\n    },\n    {\n'
        '      "count": 2,\n      "seq": 2,\n      "sha256": "9ca87cc0'
        '7591525919a429157a95c3b8b57d41718fde1b1a14a86aee7b7d7407"\n'
        '    }\n  ]\n}'
    ),
    "runs/00000000.run": '["\\"a\\"", [1]]\n["\\"b\\"", [2]]\n',
    "runs/00000001.run": '["\\"c\\"", [3]]\n',
    # commit 2's run: one overwrite plus one tombstone line for "b"
    "runs/00000002.run": '["\\"a\\"", [9]]\n["\\"b\\""]\n',
}


def test_tiered_checkpoint_format_golden(tmp_path):
    h = tiered(tmp_path / "op", shards=1, budget=220)
    h.put("a", [1])
    h.put("b", [2])
    h.put("c", [3])
    h.commit(1)
    h.put("a", [9])
    h.remove("b")
    h.commit(2)
    found = {}
    for root, _dirs, files in os.walk(tmp_path / "op"):
        for name in files:
            path = os.path.join(root, name)
            rel = os.path.relpath(path, tmp_path / "op")
            if rel.endswith(".meta"):
                continue  # derived from the .run bytes (sha is pinned)
            found[rel] = open(path, encoding="utf-8").read()
    assert found == TIERED_GOLDEN
    meta = read_json(str(tmp_path / "op" / "runs" / "00000000.meta"))
    assert meta["count"] == 2 and meta["index_keys"] == ['"a"']
    assert meta["min_key"] == '"a"' and meta["max_key"] == '"b"'
    assert meta["sha256"] == hashlib.sha256(
        (tmp_path / "op" / "runs" / "00000000.run").read_bytes()).hexdigest()


# ----------------------------------------------------------------------
# Property: dict and tiered backends are observationally identical
# ----------------------------------------------------------------------
KEYS = st.one_of(
    st.integers(0, 15),
    st.tuples(st.sampled_from(["u", "v"]), st.integers(0, 6)),
)
VALUES = st.fixed_dictionaries({
    "t": st.integers(0, 50),
    "payload": st.lists(st.integers(-5, 5), max_size=3),
})
OPS = st.lists(
    st.one_of(
        st.tuples(st.just("put"), KEYS, VALUES),
        st.tuples(st.just("remove"), KEYS),
        st.tuples(st.just("pop"), st.integers(0, 50)),
        st.tuples(st.just("cycle"), st.integers(1, 4), st.integers(1, 4)),
    ),
    min_size=5, max_size=60,
)


def _expiry(_key, value):
    return value["t"]


@given(ops=OPS, budget=st.integers(64, 600), shards=st.integers(1, 4))
def test_dict_and_tiered_observationally_identical(ops, budget, shards,
                                                   tmp_path_factory):
    root = tmp_path_factory.mktemp("equiv")
    dict_h = OperatorStateHandle(str(root / "dict"), snapshot_interval=3,
                                 num_shards=shards)
    tier_h = tiered(root / "tier", shards=shards, budget=budget, interval=3)
    dict_h.set_expiry(_expiry)
    tier_h.set_expiry(_expiry)
    version = 0
    for op in ops:
        if op[0] == "put":
            dict_h.put(op[1], op[2])
            tier_h.put(op[1], op[2])
        elif op[0] == "remove":
            dict_h.remove(op[1])
            tier_h.remove(op[1])
        elif op[0] == "pop":
            assert canon(dict_h.pop_expired(op[1])) == \
                canon(tier_h.pop_expired(op[1]))
        else:  # commit + reopen at new shard counts (N→M rescale)
            version += 1
            dict_h.commit(version)
            tier_h.commit(version)
            dict_h = OperatorStateHandle(str(root / "dict"),
                                         snapshot_interval=3,
                                         num_shards=op[1])
            tier_h = tiered(root / "tier", shards=op[2], budget=budget,
                            interval=3)
            dict_h.set_expiry(_expiry)
            tier_h.set_expiry(_expiry)
            assert dict_h.restore(version) == tier_h.restore(version)
        assert len(dict_h) == len(tier_h)
    assert canon(sorted(dict_h.items(), key=lambda kv: str(kv[0]))) == \
        canon(sorted(tier_h.items(), key=lambda kv: str(kv[0])))
    assert canon(dict_h.next_expiry()) == canon(tier_h.next_expiry())


# ----------------------------------------------------------------------
# Engine-level: identical sink output across backends
# ----------------------------------------------------------------------
def _drive_agg(backend, checkpoint, budget=None):
    stream = make_stream([("t", "timestamp"), ("k", "string")])
    from repro.sql.session import Session
    from repro.sql import functions as F

    session = Session()
    df = (session.read_stream.memory(stream).with_watermark("t", "20s")
          .group_by(F.window("t", "10s"), "k").count())
    options = {"state_backend": backend, "num_shards": 3}
    if budget is not None:
        options["state_memtable_bytes"] = budget
    query = start_memory_query(df, "append", f"bk-{backend}", checkpoint,
                               **options)
    for chunk in range(6):
        stream.add_data([
            {"t": float(chunk * 10 + j), "k": f"k{j % 4}"}
            for j in range(8)
        ])
        query.process_all_available()
    return query


def test_engine_sink_output_identical_across_backends(tmp_path):
    queries = {
        backend: _drive_agg(backend, str(tmp_path / backend), budget)
        for backend, budget in (("dict", None), ("tiered", 256))
    }
    sinks = {}
    for backend, query in queries.items():
        sinks[backend] = rows_set(query.engine.sink.rows())
        query.stop()
    assert sinks["dict"] == sinks["tiered"]
    assert sinks["dict"], "workload emitted nothing; test is vacuous"
