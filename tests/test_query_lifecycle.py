"""Query lifecycle: threaded interval triggers, the query manager,
structured event logs, streaming explain."""

import json
import os
import time

import pytest

from repro.sql import functions as F

from tests.conftest import make_stream, start_memory_query


def wait_until(predicate, timeout=5.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.01)
    return False


class TestThreadedIntervalTrigger:
    def test_interval_trigger_processes_in_background(self, session):
        stream = make_stream((("v", "long"),))
        df = session.read_stream.memory(stream)
        query = (df.write_stream.format("memory").query_name("bg")
                 .trigger(interval="20ms").start())
        try:
            stream.add_data([{"v": 1}])
            sink = query.engine.sink
            assert wait_until(lambda: len(sink.rows()) == 1)
            stream.add_data([{"v": 2}])
            assert wait_until(lambda: len(sink.rows()) == 2)
        finally:
            query.stop()
        assert not query.is_active

    def test_stop_terminates_loop(self, session):
        stream = make_stream((("v", "long"),))
        query = (session.read_stream.memory(stream).write_stream
                 .format("memory").query_name("s").trigger(interval="10ms").start())
        assert query.is_active
        query.stop()
        assert not query.is_active
        assert query.await_termination(timeout=1)

    def test_exception_in_query_surfaces(self, session):
        stream = make_stream((("v", "long"),))
        def explode(v):
            raise ValueError("bad record")

        boom = F.udf(explode, "long")
        df = session.read_stream.memory(stream).select(boom(F.col("v")).alias("x"))
        query = (df.write_stream.format("memory").query_name("boom")
                 .trigger(interval="10ms").start())
        stream.add_data([{"v": 1}])
        assert wait_until(lambda: not query.is_active)
        with pytest.raises(ValueError, match="bad record"):
            query.await_termination(timeout=1)
        assert isinstance(query.exception, ValueError)

    def test_process_all_available_with_thread(self, session):
        stream = make_stream((("v", "long"),))
        query = (session.read_stream.memory(stream).write_stream
                 .format("memory").query_name("p").trigger(interval="10ms").start())
        try:
            stream.add_data([{"v": i} for i in range(5)])
            query.process_all_available()
            assert len(query.engine.sink.rows()) == 5
        finally:
            query.stop()

    def test_run_epoch_rejected_on_threaded_query(self, session):
        stream = make_stream((("v", "long"),))
        query = (session.read_stream.memory(stream).write_stream
                 .format("memory").query_name("r").trigger(interval="10ms").start())
        try:
            with pytest.raises(RuntimeError, match="own thread"):
                query.run_epoch()
        finally:
            query.stop()


class TestQueryManager:
    def test_started_queries_registered(self, session):
        stream = make_stream((("v", "long"),))
        q1 = start_memory_query(session.read_stream.memory(stream), "append", "q1")
        q2 = start_memory_query(session.read_stream.memory(stream), "append", "q2")
        assert {q.name for q in session.streams.active} == {"q1", "q2"}
        del q1, q2

    def test_get_by_name(self, session):
        stream = make_stream((("v", "long"),))
        start_memory_query(session.read_stream.memory(stream), "append", "named")
        assert session.streams.get("named").name == "named"
        with pytest.raises(KeyError):
            session.streams.get("missing")

    def test_stop_all(self, session):
        stream = make_stream((("v", "long"),))
        for name in ("a", "b"):
            (session.read_stream.memory(stream).write_stream
             .format("memory").query_name(name).trigger(interval="10ms").start())
        assert len(session.streams.active) == 2
        session.streams.stop_all()
        assert session.streams.active == []

    def test_manual_query_leaves_active_on_stop(self, session):
        stream = make_stream((("v", "long"),))
        query = start_memory_query(session.read_stream.memory(stream), "append", "m")
        assert query in session.streams.active
        query.stop()
        assert query not in session.streams.active

    def test_await_any_termination(self, session):
        stream = make_stream((("v", "long"),))
        query = (session.read_stream.memory(stream).write_stream
                 .format("memory").query_name("t").trigger(once=True)
                 .start(use_thread=True))
        assert session.streams.await_any_termination(timeout=5)
        del query


class TestEventLog:
    def test_progress_written_as_json_lines(self, session, checkpoint):
        stream = make_stream((("v", "long"),))
        query = start_memory_query(
            session.read_stream.memory(stream), "append", "ev", checkpoint)
        stream.add_data([{"v": 1}])
        query.process_all_available()
        stream.add_data([{"v": 2}])
        query.process_all_available()
        path = os.path.join(checkpoint, "events.jsonl")
        with open(path) as f:
            events = [json.loads(line) for line in f]
        assert [e["epoch"] for e in events] == [0, 1]
        assert all("numInputRows" in e for e in events)

    def test_event_log_survives_restart(self, session, checkpoint):
        stream = make_stream((("v", "long"),))
        q1 = start_memory_query(
            session.read_stream.memory(stream), "append", "ev2", checkpoint)
        stream.add_data([{"v": 1}])
        q1.process_all_available()
        q2 = (session.read_stream.memory(stream).write_stream
              .sink(q1.engine.sink).output_mode("append").start(checkpoint))
        stream.add_data([{"v": 2}])
        q2.process_all_available()
        with open(os.path.join(checkpoint, "events.jsonl")) as f:
            events = [json.loads(line) for line in f]
        assert [e["epoch"] for e in events] == [0, 1]

    def test_single_append_handle_closed_on_stop(self, session, checkpoint):
        stream = make_stream((("v", "long"),))
        query = start_memory_query(
            session.read_stream.memory(stream), "append", "ev3", checkpoint)
        handle = query.engine._event_log
        stream.add_data([{"v": 1}])
        query.process_all_available()
        stream.add_data([{"v": 2}])
        query.process_all_available()
        # Same handle across epochs (no reopen per epoch), closed on stop.
        assert query.engine._event_log is handle and not handle.closed
        query.stop()
        assert handle.closed
        query.stop()  # idempotent


class TestStreamingExplain:
    def test_explain_shows_incremental_operators(self, session, capsys):
        stream = make_stream((("t", "timestamp"), ("k", "string")))
        df = (session.read_stream.memory(stream)
              .with_watermark("t", "10s")
              .where(F.col("k") != "skip")
              .group_by(F.window("t", "10s")).count())
        query = start_memory_query(df, "append", "x")
        text = query.explain()
        assert "StatefulAggregateOp [stateful]" in text
        assert "WatermarkTrackOp" in text
        assert "StreamScan [source-0]" in text
        assert "StatefulAggregateOp" in capsys.readouterr().out

    def test_join_plan_shows_both_sides(self, session):
        a = make_stream((("k", "long"), ("t", "timestamp")))
        b = make_stream((("k", "long"), ("t2", "timestamp")))
        df = (session.read_stream.memory(a).with_watermark("t", "5s")
              .join(session.read_stream.memory(b).with_watermark("t2", "5s"),
                    on="k"))
        query = start_memory_query(df, "append", "j")
        text = query.engine.plan.root.explain_string()
        assert text.count("StreamScan") == 2
        assert "StreamStreamJoinOp" in text
