"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import os

import pytest
from hypothesis import settings

from repro.sql.session import Session
from repro.sql.types import StructType
from repro.sources.memory import MemoryStream

# ---------------------------------------------------------------------------
# Hypothesis profiles: one knob for how hard property tests try.
#
#   ci      (default) - moderate example counts, what the suite gates on
#   dev     - a handful of examples for fast local iteration
#   nightly - deep search for soak runs
#
# Select with HYPOTHESIS_PROFILE=dev|ci|nightly.  Individual tests should
# NOT carry their own @settings(max_examples=...) — the profile governs —
# except where a test documents a deliberate cost ceiling (process-pool
# tests spawn real worker processes per example).
# ---------------------------------------------------------------------------
settings.register_profile("ci", max_examples=20, deadline=None)
settings.register_profile("dev", max_examples=5, deadline=None)
settings.register_profile("nightly", max_examples=200, deadline=None)
settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "ci"))


def _shm_files() -> set:
    if not os.path.isdir("/dev/shm"):
        return set()
    return {name for name in os.listdir("/dev/shm") if name.startswith("repro-")}


@pytest.fixture
def shm_guard():
    """Assert a test leaks no shared-memory segments.

    Checks both this process's live-segment registry and /dev/shm
    itself, so leaks from worker processes (which create nothing, but
    could in a regression) and unreleased SharedBatch encodes all fail
    the owning test rather than poisoning the host until reboot.
    """
    from repro.sql.batch import live_shm_segments

    before = _shm_files()
    yield
    assert live_shm_segments() == [], (
        f"leaked SharedBatch segments: {live_shm_segments()}")
    leaked = _shm_files() - before
    assert not leaked, f"leaked /dev/shm segments: {sorted(leaked)}"


@pytest.fixture
def session() -> Session:
    return Session()


@pytest.fixture
def checkpoint(tmp_path) -> str:
    return str(tmp_path / "checkpoint")


def make_stream(fields) -> MemoryStream:
    """A MemoryStream with a tuple-spec schema."""
    return MemoryStream(StructType(tuple(fields)))


def rows_set(rows) -> set:
    """Rows as a set of sorted-item tuples for order-insensitive compare."""
    return {tuple(sorted(r.items())) for r in rows}


def start_memory_query(df, mode: str, name: str, checkpoint_dir: str = None, **options):
    """Start a manually driven streaming query into a MemorySink."""
    writer = df.write_stream.format("memory").query_name(name).output_mode(mode)
    for key, value in options.items():
        writer = writer.option(key, value)
    return writer.start(checkpoint_dir)
