"""Tests for the IoT workload (watermark stress), query listeners,
extended explain, and the progress reporter."""

import pytest

from repro.sql import functions as F
from repro.streaming.progress import EpochProgress, ProgressReporter
from repro.workloads.iot import IOT_SCHEMA, IotWorkload

from tests.conftest import make_stream, start_memory_query


class TestIotWorkload:
    def test_arrival_order_diverges_from_event_order(self):
        workload = IotWorkload(seed=1)
        rows = workload.readings(500, max_delay=20.0)
        event_times = [r["event_time"] for r in rows]
        assert event_times != sorted(event_times)  # out of order arrivals

    def test_no_delay_means_in_order(self):
        rows = IotWorkload(seed=2).readings(100, max_delay=0.0)
        times = [r["event_time"] for r in rows]
        assert times == sorted(times)

    def test_jitter_within_watermark_loses_nothing(self, session):
        """Lateness below the threshold: every record counted (§4.3.1's
        'all events that arrived within at most T seconds ... will still
        be processed')."""
        workload = IotWorkload(seed=3)
        rows = workload.readings(2_000, duration=200.0, max_delay=8.0)
        reference = workload.reference_window_counts(rows, 10.0)

        stream = make_stream(IOT_SCHEMA)
        df = (session.read_stream.memory(stream)
              .with_watermark("event_time", "10 seconds")
              .group_by(F.window("event_time", "10s")).count())
        query = start_memory_query(df, "update", "iot")
        for start in range(0, len(rows), 250):  # arrival-ordered epochs
            stream.add_data(rows[start:start + 250])
            query.process_all_available()
        got = {r["window_start"]: r["count"] for r in query.engine.sink.rows()}
        assert got == reference
        assert sum(p.late_rows_dropped for p in query.recent_progress) == 0

    def test_stragglers_beyond_watermark_drop(self, session):
        workload = IotWorkload(seed=4)
        rows = workload.readings(2_000, duration=200.0, max_delay=2.0,
                                 late_fraction=0.05, late_by=100.0)
        stream = make_stream(IOT_SCHEMA)
        df = (session.read_stream.memory(stream)
              .with_watermark("event_time", "5 seconds")
              .group_by(F.window("event_time", "10s")).count())
        query = start_memory_query(df, "update", "iot2")
        for start in range(0, len(rows), 100):
            stream.add_data(rows[start:start + 100])
            query.process_all_available()
        dropped = sum(p.late_rows_dropped for p in query.recent_progress)
        assert dropped > 0  # the 100s-late stragglers fell below the mark
        counted = sum(r["count"] for r in query.engine.sink.rows())
        assert counted + dropped == len(rows)  # every record accounted for

    def test_device_stats_reference(self):
        workload = IotWorkload(num_devices=3, seed=5)
        rows = workload.readings(300)
        stats = workload.reference_device_stats(rows)
        assert sum(n for n, _mean in stats.values()) == 300


class TestQueryListeners:
    def test_on_progress_fires(self, session):
        stream = make_stream((("v", "long"),))
        query = start_memory_query(session.read_stream.memory(stream),
                                   "append", "l1")
        events = []

        class Listener:
            def on_progress(self, progress):
                events.append(progress.epoch_id)

        query.add_listener(Listener())
        stream.add_data([{"v": 1}])
        query.process_all_available()
        assert events == [0]

    def test_on_terminated_fires_on_stop(self, session):
        stream = make_stream((("v", "long"),))
        query = start_memory_query(session.read_stream.memory(stream),
                                   "append", "l2")
        ended = []

        class Listener:
            def on_terminated(self, q, exc):
                ended.append((q.name, exc))

        query.add_listener(Listener())
        query.stop()
        assert ended == [("l2", None)]

    def test_on_terminated_carries_exception(self, session):
        import time

        stream = make_stream((("v", "long"),))
        boom = F.udf(lambda v: (_ for _ in ()).throw(ValueError("bad")), "long")
        df = session.read_stream.memory(stream).select(boom(F.col("v")).alias("x"))
        query = (df.write_stream.format("memory").query_name("l3")
                 .trigger(interval="10ms").start())
        seen = []

        class Listener:
            def on_terminated(self, q, exc):
                seen.append(type(exc).__name__)

        query.add_listener(Listener())
        stream.add_data([{"v": 1}])
        deadline = time.monotonic() + 5
        while time.monotonic() < deadline and not seen:
            time.sleep(0.01)
        assert seen == ["ValueError"]

    def test_listener_error_does_not_break_stop(self, session):
        stream = make_stream((("v", "long"),))
        query = start_memory_query(session.read_stream.memory(stream),
                                   "append", "l4")

        class BadListener:
            def on_terminated(self, q, exc):
                raise RuntimeError("listener bug")

        query.add_listener(BadListener())
        query.stop()  # must not raise
        assert not query.is_active


class TestExtendedExplain:
    def test_shows_both_plans(self, session, capsys):
        df = session.create_dataframe([{"a": 1, "b": 2.0}])
        query = df.select("a", "b").where(F.col("a") > 0)
        text = query.explain(extended=True)
        assert "== Analyzed logical plan ==" in text
        assert "== Optimized logical plan ==" in text
        # Pushdown visible: filter below projection in the optimized plan.
        optimized_part = text.split("== Optimized logical plan ==")[1]
        assert optimized_part.index("Project") < optimized_part.index("Filter")


class TestProgressReporter:
    def _progress(self, epoch):
        return EpochProgress(
            epoch_id=epoch, trigger_time=0.0, duration_seconds=1.0,
            input_rows=10, output_rows=5, backlog_rows=0, state_keys=0,
            late_rows_dropped=0)

    def test_bounded_history(self):
        reporter = ProgressReporter(capacity=3)
        for epoch in range(5):
            reporter.record(self._progress(epoch))
        assert [p.epoch_id for p in reporter.recent] == [2, 3, 4]
        assert reporter.last.epoch_id == 4

    def test_rate_computation(self):
        assert self._progress(0).input_rows_per_second == 10.0
        zero = EpochProgress(0, 0.0, 0.0, 10, 5, 0, 0, 0)
        assert zero.input_rows_per_second == 0.0

    def test_empty_reporter(self):
        reporter = ProgressReporter()
        assert reporter.last is None
        assert reporter.recent == []
