"""Direct unit tests for incremental operators with hand-built epoch
contexts — exercising edge branches the engine paths rarely hit."""

import numpy as np
import pytest

from repro.sql import expressions as E
from repro.sql import logical as L
from repro.sql.batch import RecordBatch
from repro.sql.types import StructType
from repro.streaming import operators as ops
from repro.streaming.state import OperatorStateHandle
from repro.streaming.watermark import WatermarkTracker

SCHEMA = StructType((("k", "string"), ("t", "timestamp"), ("v", "double")))


def ctx(inputs=None, mode="update", watermarks=None, epoch=0,
        processing_time=1000.0, first=False):
    return ops.EpochContext(
        epoch_id=epoch,
        inputs=inputs or {},
        watermarks=watermarks or WatermarkTracker({}),
        processing_time=processing_time,
        output_mode=mode,
        is_first_epoch=first,
    )


def batch(rows):
    return RecordBatch.from_rows(rows, SCHEMA)


def scan_op(name="source-0"):
    return ops.StreamScanOp(name, SCHEMA)


def tracker(column="t", delay=0.0, watermark=None):
    wm = WatermarkTracker({column: delay})
    if watermark is not None:
        wm.load_json({"max_seen": {}, "watermarks": {column: watermark}})
    return wm


class TestScanAndStatic:
    def test_scan_missing_input_is_empty(self):
        out = scan_op().process(ctx())
        assert out.num_rows == 0
        assert out.schema == SCHEMA

    def test_scan_counts_metrics(self):
        context = ctx({"source-0": batch([{"k": "a", "t": 1.0, "v": 1.0}])})
        scan_op().process(context)
        assert context.metrics["rows_processed"] == 1

    def test_static_op_materializes_once(self, session):
        df = session.create_dataframe([{"k": "a", "t": 0.0, "v": 1.0}], SCHEMA)
        static = ops.StaticOp(df.plan)
        first = static.materialize()
        assert static.materialize() is first  # cached


class TestStatefulAggregateBranches:
    def _agg_op(self, tmp_path, watermark_column=None, window=True):
        grouping = [E.ColumnRef("k")]
        if window:
            grouping.append(E.WindowExpr(E.ColumnRef("t"), 10.0))
        node = L.Aggregate(
            grouping, [(E.Count(None), "n")],
            L.Scan(SCHEMA, None, True, name="s"),
        )
        handle = OperatorStateHandle(str(tmp_path / "agg"))
        return ops.StatefulAggregateOp(
            node, scan_op(), handle, watermark_column=watermark_column)

    def test_update_mode_emits_only_changed(self, tmp_path):
        op = self._agg_op(tmp_path)
        op.process(ctx({"source-0": batch([{"k": "a", "t": 1.0, "v": 0.0}])}))
        out = op.process(ctx(
            {"source-0": batch([{"k": "b", "t": 1.0, "v": 0.0}])}, epoch=1))
        assert out.num_rows == 1
        assert out.to_rows()[0]["k"] == "b"

    def test_complete_mode_emits_everything_even_unchanged(self, tmp_path):
        op = self._agg_op(tmp_path)
        op.process(ctx({"source-0": batch([{"k": "a", "t": 1.0, "v": 0.0}])},
                       mode="complete"))
        out = op.process(ctx(
            {"source-0": batch([{"k": "b", "t": 1.0, "v": 0.0}])},
            mode="complete", epoch=1))
        assert out.num_rows == 2

    def test_empty_epoch_update_mode_emits_nothing(self, tmp_path):
        op = self._agg_op(tmp_path)
        out = op.process(ctx())
        assert out.num_rows == 0

    def test_append_holds_until_watermark(self, tmp_path):
        op = self._agg_op(tmp_path, watermark_column="t")
        wm = tracker(watermark=None)
        out = op.process(ctx(
            {"source-0": batch([{"k": "a", "t": 1.0, "v": 0.0}])},
            mode="append", watermarks=wm))
        assert out.num_rows == 0
        # Watermark passes the window end: emitted and evicted.
        wm2 = tracker(watermark=50.0)
        out2 = op.process(ctx(mode="append", watermarks=wm2, epoch=1))
        assert out2.to_rows() == [
            {"k": "a", "window_start": 0.0, "window_end": 10.0, "n": 1}]
        assert len(op.state) == 0

    def test_late_rows_dropped_and_counted(self, tmp_path):
        op = self._agg_op(tmp_path, watermark_column="t")
        wm = tracker(watermark=50.0)
        context = ctx(
            {"source-0": batch([{"k": "a", "t": 1.0, "v": 0.0},   # late
                                {"k": "a", "t": 60.0, "v": 0.0}])},
            mode="update", watermarks=wm)
        out = op.process(context)
        assert context.metrics["late_rows_dropped"] == 1
        assert out.to_rows()[0]["window_start"] == 60.0

    def test_key_expiry_plain_event_time_key(self, tmp_path):
        grouping = [E.ColumnRef("t")]
        node = L.Aggregate(grouping, [(E.Count(None), "n")],
                           L.Scan(SCHEMA, None, True, name="s"))
        handle = OperatorStateHandle(str(tmp_path / "agg2"))
        op = ops.StatefulAggregateOp(node, scan_op(), handle,
                                     watermark_column="t")
        assert op._key_expiry((5.0,)) == 5.0


class TestDedupBranches:
    def _dedup_op(self, tmp_path, subset, watermark_column=None):
        node = L.Deduplicate(subset, L.Scan(SCHEMA, None, True, name="s"))
        handle = OperatorStateHandle(str(tmp_path / "dd"))
        return ops.StreamingDedupOp(node, scan_op(), handle,
                                    watermark_column=watermark_column)

    def test_duplicate_within_batch_kept_once(self, tmp_path):
        op = self._dedup_op(tmp_path, ["k"])
        out = op.process(ctx({"source-0": batch(
            [{"k": "a", "t": 1.0, "v": 1.0}, {"k": "a", "t": 2.0, "v": 2.0}])}))
        assert out.num_rows == 1
        assert out.to_rows()[0]["v"] == 1.0

    def test_watermark_column_outside_subset_ignored(self, tmp_path):
        op = self._dedup_op(tmp_path, ["k"], watermark_column="t")
        assert op.watermark_column is None  # t not in subset: no eviction

    def test_empty_input(self, tmp_path):
        op = self._dedup_op(tmp_path, ["k"])
        assert op.process(ctx()).num_rows == 0


class TestUnionBranches:
    def test_static_side_only_on_first_epoch(self, session):
        static_df = session.create_dataframe(
            [{"k": "s", "t": 0.0, "v": 0.0}], SCHEMA)
        op = ops.UnionOp(scan_op(), ops.StaticOp(static_df.plan),
                         left_static=False, right_static=True, schema=SCHEMA)
        first = op.process(ctx(
            {"source-0": batch([{"k": "a", "t": 1.0, "v": 1.0}])}, first=True))
        assert first.num_rows == 2
        later = op.process(ctx(
            {"source-0": batch([{"k": "b", "t": 2.0, "v": 2.0}])}, epoch=1))
        assert later.num_rows == 1

    def test_both_streams_every_epoch(self):
        op = ops.UnionOp(scan_op("source-0"), scan_op("source-1"),
                         left_static=False, right_static=False, schema=SCHEMA)
        out = op.process(ctx({
            "source-0": batch([{"k": "a", "t": 1.0, "v": 1.0}]),
            "source-1": batch([{"k": "b", "t": 2.0, "v": 2.0}]),
        }))
        assert out.num_rows == 2


class TestMapGroupsBranches:
    OUT = StructType((("k", "string"), ("n", "long")))

    def _op(self, tmp_path, func, timeout="none"):
        node = L.MapGroupsWithState(
            ["k"], func, self.OUT, L.Scan(SCHEMA, None, True, name="s"),
            flat=False, timeout=timeout)
        handle = OperatorStateHandle(str(tmp_path / "mg"))
        return ops.MapGroupsWithStateOp(node, scan_op(), handle)

    def test_none_return_emits_nothing(self, tmp_path):
        op = self._op(tmp_path, lambda k, rows, state: None)
        out = op.process(ctx({"source-0": batch(
            [{"k": "a", "t": 1.0, "v": 1.0}])}))
        assert out.num_rows == 0

    def test_timeout_cleared_before_timed_out_call(self, tmp_path):
        observed = []

        def func(key, rows_iter, state):
            rows_list = list(rows_iter)
            if state.has_timed_out:
                observed.append("timeout")
                state.remove()
                return {"n": -1}
            state.update(1)
            state.set_timeout_duration("10s")
            return {"n": 1}

        op = self._op(tmp_path, func, timeout="processing_time")
        op.process(ctx({"source-0": batch(
            [{"k": "a", "t": 1.0, "v": 1.0}])}, processing_time=100.0))
        assert op.has_pending_timeout(200.0)
        assert not op.has_pending_timeout(105.0)
        out = op.process(ctx(processing_time=200.0, epoch=1))
        assert observed == ["timeout"]
        assert out.to_rows() == [{"k": "a", "n": -1}]
        assert len(op.state) == 0

    def test_key_with_new_data_not_timed_out(self, tmp_path):
        calls = []

        def func(key, rows_iter, state):
            calls.append(state.has_timed_out)
            state.update(1)
            state.set_timeout_duration("10s")
            return {"n": 1}

        op = self._op(tmp_path, func, timeout="processing_time")
        op.process(ctx({"source-0": batch(
            [{"k": "a", "t": 1.0, "v": 1.0}])}, processing_time=100.0))
        # Data for 'a' arrives after its timeout expired: it gets a normal
        # call (has_timed_out False), not a timeout call.
        op.process(ctx({"source-0": batch(
            [{"k": "a", "t": 2.0, "v": 1.0}])}, processing_time=500.0, epoch=1))
        assert calls == [False, False]


class TestCompleteModePostOp:
    def test_sorts_each_emission(self, tmp_path):
        grouping = [E.ColumnRef("k")]
        agg_node = L.Aggregate(grouping, [(E.Count(None), "n")],
                               L.Scan(SCHEMA, None, True, name="s"))
        handle = OperatorStateHandle(str(tmp_path / "a"))
        agg = ops.StatefulAggregateOp(agg_node, scan_op(), handle)
        sort_node = L.Sort([("n", False)], agg_node)
        post = ops.CompleteModePostOp(sort_node, agg)
        out = post.process(ctx({"source-0": batch([
            {"k": "a", "t": 1.0, "v": 0.0},
            {"k": "b", "t": 1.0, "v": 0.0},
            {"k": "a", "t": 2.0, "v": 0.0},
        ])}, mode="complete"))
        assert [r["k"] for r in out.to_rows()] == ["a", "b"]
