"""Pipelined epoch execution: async state flusher, group-commit WAL,
source prefetch.

The sequential engine is the golden reference — pipelined mode must
produce byte-identical checkpoints and sink output across backends and
executors, while doing strictly fewer fsyncs.  Background-thread
failures must surface through the same ``StreamingQuery.exception`` /
raise surfaces a synchronous failure uses.
"""

from __future__ import annotations

import os

import pytest

from repro.observability import metrics
from repro.sinks.file import TransactionalFileSink
from repro.sinks.memory import MemorySink
from repro.sql import functions as F
from repro.sql.session import Session
from repro.sources.memory import MemoryStream
from repro.sql.types import StructType
from repro.streaming.wal import WriteAheadLog
from repro.testing.faults import CrashPoint, Fault, FaultInjector, injected
from repro.testing.harness import checkpoint_fingerprint

from tests.conftest import make_stream, rows_set

SCHEMA = (("k", "string"), ("v", "long"))


def _agg_df(session, stream):
    return (session.read_stream.memory(stream)
            .group_by("k").agg(F.sum("v").alias("total")))


def _drive(query, stream, epochs, rows_per_epoch=3):
    for i in range(epochs):
        stream.add_data([
            {"k": f"k{j % 4}", "v": i * rows_per_epoch + j}
            for j in range(rows_per_epoch)
        ])
        query.process_all_available()


def _run_agg(tmp_path, pipeline, tag, epochs=10, **options):
    session = Session()
    stream = make_stream(SCHEMA)
    cp = str(tmp_path / f"cp-{tag}")
    writer = (_agg_df(session, stream).write_stream.format("memory")
              .query_name(f"q-{tag}").output_mode("update")
              .option("pipeline", pipeline))
    for key, value in options.items():
        writer = writer.option(key, value)
    query = writer.start(cp)
    _drive(query, stream, epochs)
    query.stop()
    return checkpoint_fingerprint(cp), rows_set(query.engine.sink.rows())


class TestByteIdentity:
    """Sink rows and every checkpoint byte match the sequential run."""

    def test_dict_backend(self, tmp_path):
        fp_off, rows_off = _run_agg(tmp_path, "off", "seq")
        fp_on, rows_on = _run_agg(tmp_path, "on", "pipe")
        assert rows_on == rows_off
        assert fp_on == fp_off

    def test_tiered_backend(self, tmp_path):
        opts = {"state_backend": "tiered", "state_memtable_bytes": 256}
        fp_off, rows_off = _run_agg(tmp_path, "off", "seq", **opts)
        fp_on, rows_on = _run_agg(tmp_path, "on", "pipe", **opts)
        assert rows_on == rows_off
        assert fp_on == fp_off

    def test_process_executor(self, tmp_path, shm_guard):
        opts = {"executor": "process", "num_workers": 2}
        fp_off, rows_off = _run_agg(tmp_path, "off", "seq", **opts)
        fp_on, rows_on = _run_agg(tmp_path, "on", "pipe", **opts)
        assert rows_on == rows_off
        assert fp_on == fp_off

    def test_file_sink(self, tmp_path):
        """Sink-file fsyncs are also deferred to the group; the table's
        bytes (data + manifests) must still match exactly."""
        results = {}
        for pipeline in ("off", "on"):
            session = Session()
            stream = make_stream(SCHEMA)
            cp = str(tmp_path / f"cp-{pipeline}")
            out = str(tmp_path / f"table-{pipeline}")
            query = (session.read_stream.memory(stream)
                     .where(F.col("v") >= 0)
                     .write_stream.format("file").option("path", out)
                     .option("pipeline", pipeline)
                     .output_mode("append").start(cp))
            _drive(query, stream, 8)
            query.stop()
            results[pipeline] = (
                checkpoint_fingerprint(cp),
                checkpoint_fingerprint(out),
                TransactionalFileSink(out).read_rows(),
            )
        assert results["on"][2] == results["off"][2]
        assert results["on"][0] == results["off"][0]
        assert results["on"][1] == results["off"][1]

    def test_restart_across_modes(self, tmp_path):
        """A checkpoint written pipelined restarts sequentially (and
        vice versa): the on-disk format is mode-independent."""
        session = Session()
        stream = make_stream(SCHEMA)
        cp = str(tmp_path / "cp")
        df = _agg_df(session, stream)
        sink = MemorySink()
        q1 = (df.write_stream.sink(sink).output_mode("update")
              .option("pipeline", "on").start(cp))
        _drive(q1, stream, 5)
        q1.stop()
        q2 = (df.write_stream.sink(sink).output_mode("update")
              .option("pipeline", "off").start(cp))
        _drive(q2, stream, 5)
        q2.stop()
        totals = {r["k"]: r["total"] for r in sink.rows()}
        # _drive restarts its value sequence per run: two runs of 5
        # epochs x 3 rows each contribute v = i*3+j for i in 0..4.
        expected = {}
        for _ in range(2):
            for i in range(5):
                for j in range(3):
                    key = f"k{j % 4}"
                    expected[key] = expected.get(key, 0) + i * 3 + j
        assert totals == expected


class TestFsyncReduction:
    def test_pipelined_epochs_fsync_less(self, tmp_path):
        """The acceptance gate: strictly fewer fsyncs per epoch, via the
        ``storage.fsyncs`` counter over the same stateful workload."""
        counts = {}
        for pipeline in ("off", "on"):
            with metrics.enabled():
                session = Session()
                stream = make_stream(SCHEMA)
                cp = str(tmp_path / f"cp-{pipeline}")
                stream.add_data([{"k": f"k{i % 4}", "v": i}
                                 for i in range(40)])
                query = (_agg_df(session, stream).write_stream
                         .format("memory").query_name(f"f-{pipeline}")
                         .output_mode("update")
                         .option("pipeline", pipeline)
                         .option("max_records_per_epoch", 1).start(cp))
                query.process_all_available()
                query.stop()
                counts[pipeline] = metrics.snapshot().get("storage.fsyncs", 0)
        assert counts["on"] < counts["off"], counts
        # Sequential: >= 2 WAL file fsyncs + 1 state file fsync per
        # epoch.  Pipelined: directory fsyncs amortized over
        # WAL_SYNC_EVERY epochs (plus state-dir rounds) — well under
        # half, not a marginal win.
        assert counts["on"] <= counts["off"] * 0.5, counts


class TestAsyncErrorSurfacing:
    def test_flusher_crash_reaches_query_exception(self, tmp_path):
        session = Session()
        stream = make_stream(SCHEMA)
        cp = str(tmp_path / "cp")
        query = (_agg_df(session, stream).write_stream.format("memory")
                 .query_name("flush-err").output_mode("update")
                 .option("pipeline", "on").start(cp))
        injector = FaultInjector([Fault("state.async_flush_crash")])
        stream.add_data([{"k": "a", "v": 1}])
        with injected(injector):
            with pytest.raises(CrashPoint):
                query.process_all_available()
        assert injector.fired
        # stop() must not re-raise the already-surfaced error, and the
        # checkpoint must recover: the lagging state is replayed.
        query.stop()
        restarted = (_agg_df(session, stream).write_stream.format("memory")
                     .query_name("flush-err-2").output_mode("update")
                     .option("pipeline", "on").start(cp))
        stream.add_data([{"k": "a", "v": 2}])
        restarted.process_all_available()
        restarted.stop()
        totals = {r["k"]: r["total"] for r in restarted.engine.sink.rows()}
        assert totals == {"a": 3}

    def test_prefetcher_crash_reaches_engine(self, tmp_path):
        session = Session()
        stream = make_stream(SCHEMA)
        cp = str(tmp_path / "cp")
        query = (_agg_df(session, stream).write_stream.format("memory")
                 .query_name("prefetch-err").output_mode("update")
                 .option("pipeline", "on").start(cp))
        injector = FaultInjector([Fault("prefetch.crash")])
        with injected(injector):
            with pytest.raises(CrashPoint):
                for i in range(4):
                    stream.add_data([{"k": "a", "v": i}])
                    query.process_all_available()
        assert injector.fired
        query.stop()

    def test_flusher_crash_sets_threaded_query_exception(self, tmp_path):
        """Under an interval trigger the error lands on the driver
        thread's loop and must come back out of ``exception``."""
        import time

        session = Session()
        stream = make_stream(SCHEMA)
        cp = str(tmp_path / "cp")
        injector = FaultInjector([Fault("state.async_flush_crash")])
        with injected(injector):
            query = (_agg_df(session, stream).write_stream.format("memory")
                     .query_name("thr-err").output_mode("update")
                     .option("pipeline", "on")
                     .trigger(interval=0.01).start(cp))
            deadline = time.monotonic() + 10
            while time.monotonic() < deadline and query.exception is None:
                stream.add_data([{"k": "a", "v": 1}])
                time.sleep(0.02)
        assert isinstance(query.exception, CrashPoint)
        query.stop()


class TestDrainSemantics:
    def test_stop_materializes_state(self, tmp_path):
        """After stop(), no state write may still be queued: the restored
        engine must see the newest committed version."""
        session = Session()
        stream = make_stream(SCHEMA)
        cp = str(tmp_path / "cp")
        query = (_agg_df(session, stream).write_stream.format("memory")
                 .query_name("drain").output_mode("update")
                 .option("pipeline", "on").start(cp))
        _drive(query, stream, 6)
        last = query.engine.next_epoch - 1
        query.stop()
        state_root = os.path.join(cp, "state")
        versions = set()
        for op_dir in os.listdir(state_root):
            for name in os.listdir(os.path.join(state_root, op_dir)):
                if name.endswith(".json"):
                    versions.add(int(name.split(".")[0]))
        assert last in versions, (last, sorted(versions))

    def test_idle_drain_after_process_all_available(self, tmp_path):
        """process_all_available() alone (no stop) already leaves the
        checkpoint fully materialized — the idle epoch drains."""
        session = Session()
        stream = make_stream(SCHEMA)
        cp = str(tmp_path / "cp")
        query = (_agg_df(session, stream).write_stream.format("memory")
                 .query_name("idle").output_mode("update")
                 .option("pipeline", "on").start(cp))
        _drive(query, stream, 4)
        fp_live = checkpoint_fingerprint(cp)
        query.stop()
        fp_stopped = checkpoint_fingerprint(cp)
        assert {k: v for k, v in fp_live.items() if "events" not in k} == \
               {k: v for k, v in fp_stopped.items() if "events" not in k}


class TestTornGroupCommit:
    def _torn_commit_run(self, tmp_path, pipeline, tag):
        """Tear the newest commit entry mid-write (epoch 0), then
        restart and finish; returns (repaired paths, final totals)."""
        session = Session()
        stream = make_stream(SCHEMA)
        cp = str(tmp_path / f"cp-{tag}")
        sink = MemorySink()
        df = _agg_df(session, stream)

        def build():
            return (df.write_stream.sink(sink).output_mode("update")
                    .option("pipeline", pipeline).start(cp))

        query = build()
        point = ("wal.group_commit_crash" if pipeline == "on"
                 else "storage.fsync")
        injector = FaultInjector([
            Fault(point, occurrence=None, times=1, action="torn",
                  match=lambda ctx: f"commits{os.sep}" in ctx["path"]),
        ])
        stream.add_data([{"k": "a", "v": 1}])
        with injected(injector):
            with pytest.raises(CrashPoint):
                query.process_all_available()
        assert injector.fired
        try:
            query.stop()
        except CrashPoint:
            pass
        restarted = build()
        repaired = list(restarted.engine.wal.repaired)
        for v in (4, 5):
            stream.add_data([{"k": "a", "v": v}])
            restarted.process_all_available()
        restarted.stop()
        totals = {r["k"]: r["total"] for r in sink.rows()}
        return repaired, totals

    def test_torn_newest_commit_quarantined_like_sequential(self, tmp_path):
        """A commit entry torn inside the deferred-fsync window must
        quarantine via repair_torn_tail exactly as the sequential torn
        write does: one repaired commit entry, exactly-once output."""
        rep_seq, totals_seq = self._torn_commit_run(tmp_path, "off", "seq")
        rep_pipe, totals_pipe = self._torn_commit_run(tmp_path, "on", "pipe")
        assert len(rep_seq) == 1 and "commits" in rep_seq[0]
        assert len(rep_pipe) == 1 and "commits" in rep_pipe[0]
        # Epoch 0 (v=1) is re-run after its commit entry was quarantined;
        # the idempotent sink absorbs the redelivery: 1 + 4 + 5.
        assert totals_seq == totals_pipe == {"a": 10}

    def test_torn_offsets_via_group_path(self, tmp_path):
        """Same protocol for the offsets log: the batched write's torn
        tail is treated as never written."""
        session = Session()
        stream = make_stream(SCHEMA)
        cp = str(tmp_path / "cp")
        sink = MemorySink()
        df = _agg_df(session, stream)
        query = (df.write_stream.sink(sink).output_mode("update")
                 .option("pipeline", "on").start(cp))
        injector = FaultInjector([
            Fault("wal.group_commit_crash", occurrence=None, times=1,
                  action="torn",
                  match=lambda ctx: f"offsets{os.sep}" in ctx["path"]),
        ])
        with injected(injector):
            with pytest.raises(CrashPoint):
                stream.add_data([{"k": "a", "v": 1}])
                query.process_all_available()
        try:
            query.stop()
        except CrashPoint:
            pass
        wal = WriteAheadLog(cp)
        assert len(wal.repaired) == 1
        assert wal.logged_epochs() == []


class TestPrefetch:
    def test_prefetch_hits_on_backlog(self, tmp_path):
        """With a backlog capped into many epochs, epoch N+1's read is
        served by the prefetcher, not the inline path."""
        with metrics.enabled():
            session = Session()
            stream = make_stream(SCHEMA)
            cp = str(tmp_path / "cp")
            stream.add_data([{"k": f"k{i % 4}", "v": i} for i in range(30)])
            query = (_agg_df(session, stream).write_stream.format("memory")
                     .query_name("hits").output_mode("update")
                     .option("pipeline", "on")
                     .option("max_records_per_epoch", 1).start(cp))
            query.process_all_available()
            query.stop()
            snap = metrics.snapshot()
        assert snap.get("pipeline.prefetch_hits", 0) > 0
        assert query.engine.next_epoch == 30


class TestListenerContainment:
    """A raising listener must never take the query down — including in
    the most concurrent configuration (pipelined epochs on the process
    executor), where progress fires from the driver loop while the async
    flusher can be failing concurrently."""

    def test_listener_errors_contained_pipelined_process(
            self, tmp_path, shm_guard):
        session = Session()
        stream = make_stream(SCHEMA)
        cp = str(tmp_path / "cp")
        query = (_agg_df(session, stream).write_stream.format("memory")
                 .query_name("bad-listener").output_mode("update")
                 .option("pipeline", "on")
                 .option("executor", "process").option("num_workers", 2)
                 .start(cp))

        class BadListener:
            progress_calls = 0

            def on_progress(self, progress):
                BadListener.progress_calls += 1
                raise RuntimeError("bad on_progress")

            def on_terminated(self, query, exception):
                raise RuntimeError("bad on_terminated")

        query.add_listener(BadListener())
        stream.add_data([{"k": "a", "v": 1}])
        # The listener raised on every epoch, was counted, and the epoch
        # still committed its output.
        query.process_all_available()
        assert BadListener.progress_calls >= 1
        assert query.engine.progress.listener_errors >= 1
        assert {r["k"]: r["total"] for r in query.engine.sink.rows()} == \
            {"a": 1}

        # Now the async flusher dies: the *engine* error must surface to
        # the caller (not be eaten alongside the listener's), and the
        # failing on_terminated must not mask it either.
        injector = FaultInjector([Fault("state.async_flush_crash")])
        stream.add_data([{"k": "a", "v": 2}])
        with injected(injector):
            with pytest.raises(CrashPoint):
                query.process_all_available()
        assert injector.fired
        query.stop()  # already-surfaced error: no re-raise
        assert query.listener_errors >= 1  # on_terminated failures counted

        # The crash left a postmortem naming the flusher's error.
        from repro.observability.flightrec import load_postmortem
        doc = load_postmortem(cp)
        assert doc is not None and doc["crash"]["type"] == "CrashPoint"
