"""Process-executor correctness: thread ≡ process, byte for byte.

The process pool (``cluster/process_pool.py``) must be *invisible* in
every observable output: for any stateful plan, sink rows and
checkpoint bytes must be identical to the thread executor's, for any
worker count — the driver stays authoritative over all state writes.
On top of that contract, these tests pin the recovery machinery
(worker death → respawn + re-restore; hung worker → deadline kill),
the option/env plumbing, and the per-stage executor report.
"""

from __future__ import annotations

import os
import signal
import time

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.cluster.scheduler import TaskScheduler
from repro.sinks.memory import MemorySink
from repro.sql import functions as F
from repro.sql.session import Session
from repro.testing.faults import Fault, FaultInjector, injected
from repro.testing.harness import checkpoint_fingerprint

from tests.conftest import make_stream

pytestmark = pytest.mark.usefixtures("shm_guard")


# ----------------------------------------------------------------------
# Workloads: one of each stateful operator family
# ----------------------------------------------------------------------
def _run_agg(executor, workers, root, chunks, shards=4):
    session = Session()
    stream = make_stream((("k", "string"), ("v", "long"), ("t", "timestamp")))
    df = (session.read_stream.memory(stream)
          .with_watermark("t", "5s")
          .group_by(F.window("t", "10s"), F.col("k")).count())
    return _drive(df, stream, None, executor, workers, root, chunks, shards)


def _run_dedup(executor, workers, root, chunks, shards=4):
    session = Session()
    stream = make_stream((("k", "string"), ("v", "long"), ("t", "timestamp")))
    df = (session.read_stream.memory(stream)
          .with_watermark("t", "5s")
          .drop_duplicates(["k", "t"]))
    return _drive(df, stream, None, executor, workers, root, chunks, shards)


def _run_join(executor, workers, root, chunks, shards=4):
    session = Session()
    ls = make_stream((("k", "long"), ("t", "timestamp"), ("l", "string")))
    rs = make_stream((("k", "long"), ("t2", "timestamp"), ("r", "string")))
    left = Session().read_stream  # noqa: F841 -- keep sessions distinct
    df = (session.read_stream.memory(ls).with_watermark("t", "100s")
          .join(session.read_stream.memory(rs).with_watermark("t2", "100s"),
                on="k", within=("t", "t2", "1000s")))
    return _drive(df, ls, rs, executor, workers, root, chunks, shards)


def _drive(df, stream, right_stream, executor, workers, root, chunks, shards):
    sink = MemorySink()
    checkpoint = os.path.join(root, "cp")
    writer = (df.write_stream.sink(sink).output_mode("append")
              .option("num_shards", shards))
    scheduler = None
    if executor == "process":
        scheduler = TaskScheduler(workers, executor="process",
                                  speculation=False)
    elif executor == "thread":
        scheduler = TaskScheduler(workers, speculation=False)
    if scheduler is not None:
        writer = writer.option("scheduler", scheduler)
    query = writer.start(checkpoint)
    try:
        for chunk in chunks:
            if right_stream is not None:
                left_rows = [r for r in chunk if "l" in r]
                right_rows = [r for r in chunk if "r" in r]
                if left_rows:
                    stream.add_data(left_rows)
                if right_rows:
                    right_stream.add_data(right_rows)
            else:
                stream.add_data(chunk)
            query.process_all_available()
    finally:
        query.stop()
        if scheduler is not None:
            scheduler.shutdown()
    return sink.rows(), checkpoint_fingerprint(checkpoint), scheduler


_AGG_CHUNKS = [
    [{"k": f"k{i % 5}", "v": i, "t": float((i % 40) + 10 * (i % 3))}
     for i in range(lo, lo + 30)]
    for lo in range(0, 120, 30)
]
_DEDUP_CHUNKS = [
    [{"k": f"k{i % 4}", "v": i, "t": float(i % 25)} for i in range(lo, lo + 20)]
    for lo in range(0, 80, 20)
]
_JOIN_CHUNKS = [
    [{"k": k, "t": float(e), "l": f"l{e}-{k}"} for k in range(e, e + 3)]
    + [{"k": k, "t2": float(e) + 0.5, "r": f"r{e}-{k}"} for k in range(e, e + 3)]
    for e in range(4)
]
_WORKLOADS = {
    "agg": (_run_agg, _AGG_CHUNKS),
    "dedup": (_run_dedup, _DEDUP_CHUNKS),
    "join": (_run_join, _JOIN_CHUNKS),
}


# ----------------------------------------------------------------------
# Thread ≡ process equivalence
# ----------------------------------------------------------------------
@pytest.mark.parametrize("kind", sorted(_WORKLOADS))
def test_process_matches_thread(kind, tmp_path):
    run, chunks = _WORKLOADS[kind]
    rows_t, fp_t, _ = run("thread", 2, str(tmp_path / "t"), chunks)
    rows_p, fp_p, _ = run("process", 2, str(tmp_path / "p"), chunks)
    assert rows_t == rows_p
    assert fp_t == fp_p
    assert rows_t  # the workload must actually emit something


def test_checkpoint_invariant_across_worker_counts(tmp_path):
    """Checkpoint bytes may not depend on executor type or worker count."""
    fingerprints = []
    rows = []
    inline_rows, inline_fp, _ = _run_agg(
        None, 1, str(tmp_path / "inline"), _AGG_CHUNKS)
    for workers in (1, 2, 3):
        r, fp, _ = _run_agg("process", workers,
                            str(tmp_path / f"w{workers}"), _AGG_CHUNKS)
        fingerprints.append(fp)
        rows.append(r)
    assert all(fp == inline_fp for fp in fingerprints)
    assert all(r == inline_rows for r in rows)


@settings(max_examples=6, deadline=None,
          suppress_health_check=[HealthCheck.too_slow,
                                 HealthCheck.function_scoped_fixture])
@given(
    kind=st.sampled_from(["agg", "dedup", "join"]),
    workers=st.integers(min_value=1, max_value=3),
    data=st.data(),
)
def test_random_plans_thread_process_identical(kind, workers, data, tmp_path):
    """Random stateful plans: thread and process runs are byte-identical."""
    if kind == "join":
        chunks = _JOIN_CHUNKS[:data.draw(st.integers(2, 4), label="epochs")]
    else:
        n_chunks = data.draw(st.integers(2, 4), label="epochs")
        chunks = [
            [
                {
                    "k": f"k{data.draw(st.integers(0, 5))}",
                    "v": i,
                    "t": float(data.draw(st.integers(0, 60))),
                }
                for i in range(data.draw(st.integers(1, 12), label="rows"))
            ]
            for _ in range(n_chunks)
        ]
    run, _ = _WORKLOADS[kind]
    token = f"{kind}-{workers}-{time.monotonic_ns()}"
    rows_t, fp_t, _ = run("thread", workers, str(tmp_path / f"t{token}"), chunks)
    rows_p, fp_p, _ = run("process", workers, str(tmp_path / f"p{token}"), chunks)
    assert rows_t == rows_p
    assert fp_t == fp_p


# ----------------------------------------------------------------------
# Worker-death recovery
# ----------------------------------------------------------------------
def test_injected_worker_crash_respawns_and_completes(tmp_path):
    injector = FaultInjector([
        Fault("worker.crash_mid_task", occurrence=1, action="crash"),
    ])
    with injected(injector):
        rows_p, fp_p, scheduler = _run_agg(
            "process", 2, str(tmp_path / "p"), _AGG_CHUNKS)
    assert scheduler.process_pool.worker_deaths >= 1
    assert injector.fired  # merged back from the worker before it died
    rows_t, fp_t, _ = _run_agg("thread", 2, str(tmp_path / "t"), _AGG_CHUNKS)
    assert rows_p == rows_t
    assert fp_p == fp_t


@pytest.mark.slow
def test_hung_worker_killed_at_deadline_and_respawned(tmp_path):
    injector = FaultInjector([
        Fault("worker.hang", occurrence=2, action="hang", seconds=30.0),
    ])
    sched = TaskScheduler(2, executor="process", speculation=False,
                          task_timeout=0.5)
    session = Session()
    stream = make_stream((("k", "string"), ("v", "long"), ("t", "timestamp")))
    df = (session.read_stream.memory(stream)
          .with_watermark("t", "5s")
          .group_by(F.window("t", "10s"), F.col("k")).count())
    sink = MemorySink()
    query = (df.write_stream.sink(sink).output_mode("append")
             .option("num_shards", 4).option("scheduler", sched)
             .start(str(tmp_path / "cp")))
    started = time.monotonic()
    try:
        with injected(injector):
            for chunk in _AGG_CHUNKS:
                stream.add_data(chunk)
                query.process_all_available()
    finally:
        query.stop()
        sched.shutdown()
    assert sched.process_pool.worker_deaths >= 1
    # The deadline path, not the 30s sleep, resolved the hang.
    assert time.monotonic() - started < 20.0
    rows_t, _, _ = _run_agg("thread", 2, str(tmp_path / "t"), _AGG_CHUNKS)
    assert sink.rows() == rows_t


def test_externally_killed_worker_respawns(tmp_path):
    """SIGKILL from outside (an OOM killer, say) — not just injected death."""
    sched = TaskScheduler(2, executor="process", speculation=False)
    session = Session()
    stream = make_stream((("k", "string"), ("v", "long"), ("t", "timestamp")))
    df = (session.read_stream.memory(stream)
          .with_watermark("t", "5s")
          .group_by(F.window("t", "10s"), F.col("k")).count())
    sink = MemorySink()
    query = (df.write_stream.sink(sink).output_mode("append")
             .option("num_shards", 4).option("scheduler", sched)
             .start(str(tmp_path / "cp")))
    try:
        stream.add_data(_AGG_CHUNKS[0])
        query.process_all_available()
        victim = next(w for w in sched.process_pool._workers if w is not None)
        os.kill(victim.proc.pid, signal.SIGKILL)
        victim.proc.join(timeout=5.0)
        for chunk in _AGG_CHUNKS[1:]:
            stream.add_data(chunk)
            query.process_all_available()
    finally:
        query.stop()
        sched.shutdown()
    assert sched.process_pool.worker_deaths >= 1
    rows_t, _, _ = _run_agg("thread", 2, str(tmp_path / "t"), _AGG_CHUNKS)
    assert sink.rows() == rows_t


# ----------------------------------------------------------------------
# Plumbing and reporting
# ----------------------------------------------------------------------
def test_executor_option_builds_owned_process_scheduler(tmp_path):
    session = Session()
    stream = make_stream((("k", "string"), ("v", "long"), ("t", "timestamp")))
    df = (session.read_stream.memory(stream)
          .with_watermark("t", "5s")
          .group_by(F.window("t", "10s"), F.col("k")).count())
    sink = MemorySink()
    # Pin num_shards: workers only spawn when a stage has >1 runnable
    # shard, so the assertion below must not depend on REPRO_NUM_SHARDS.
    query = (df.write_stream.sink(sink).output_mode("append")
             .option("executor", "process").option("num_workers", 2)
             .option("num_shards", 4)
             .start(str(tmp_path / "cp")))
    engine = query.engine
    assert engine.scheduler is not None
    assert engine.scheduler.executor == "process"
    assert engine.scheduler.num_workers == 2
    assert engine._owns_scheduler
    stream.add_data(_AGG_CHUNKS[0])
    query.process_all_available()
    pool = engine.scheduler.process_pool
    assert any(w is not None for w in pool._workers)
    query.stop()  # owned scheduler: stop() must tear down the pool
    assert all(w is None for w in pool._workers)


def test_executor_env_variable_plumbing(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_EXECUTOR", "process")
    monkeypatch.setenv("REPRO_NUM_WORKERS", "2")
    session = Session()
    stream = make_stream((("k", "string"), ("v", "long"), ("t", "timestamp")))
    df = (session.read_stream.memory(stream)
          .with_watermark("t", "5s")
          .group_by(F.window("t", "10s"), F.col("k")).count())
    sink = MemorySink()
    query = (df.write_stream.sink(sink).output_mode("append")
             .start(str(tmp_path / "cp")))
    try:
        assert query.engine.scheduler.executor == "process"
        assert query.engine.scheduler.num_workers == 2
        stream.add_data(_AGG_CHUNKS[0])
        query.process_all_available()
        assert sink.rows() is not None
    finally:
        query.stop()


def test_unknown_executor_rejected():
    with pytest.raises(ValueError, match="executor"):
        TaskScheduler(2, executor="gpu")


def test_stage_report_carries_executor_stats(tmp_path):
    _, _, scheduler = _run_agg("process", 2, str(tmp_path / "p"), _AGG_CHUNKS)
    report = scheduler.last_stage_report
    assert report is not None
    executor = report.get("executor")
    assert executor is not None
    assert executor["type"] == "process"
    assert executor["num_workers"] == 2
    assert executor["ipc_bytes"] > 0
    assert executor["ship_seconds"] >= 0.0
    assert executor["merge_seconds"] >= 0.0
    assert executor["workers"], "per-worker stats missing"
    for stats in executor["workers"]:
        assert 0.0 <= stats["utilization"] <= 1.0
        assert stats["tasks"] >= 0


def _run_agg_with_restart(executor, root):
    """Feed two chunks, stop + rebuild on the same checkpoint, feed the
    rest — the recovery-replay path under the given executor."""
    checkpoint = os.path.join(root, "cp")
    sink = MemorySink()
    session = Session()
    stream = make_stream((("k", "string"), ("v", "long"), ("t", "timestamp")))
    df = (session.read_stream.memory(stream)
          .with_watermark("t", "5s")
          .group_by(F.window("t", "10s"), F.col("k")).count())

    def run_half(chunks):
        scheduler = TaskScheduler(2, executor=executor, speculation=False)
        query = (df.write_stream.sink(sink).output_mode("append")
                 .option("num_shards", 4)
                 .option("scheduler", scheduler)
                 .start(checkpoint))
        try:
            for chunk in chunks:
                stream.add_data(chunk)
                query.process_all_available()
        finally:
            query.stop()
            scheduler.shutdown()

    run_half(_AGG_CHUNKS[:2])
    run_half(_AGG_CHUNKS[2:])
    return sink.rows(), checkpoint_fingerprint(checkpoint)


def test_process_pool_restart_same_checkpoint(tmp_path):
    """Stop mid-stream, rebuild on the same checkpoint, finish: the
    recovered process run must match the identically-restarted thread
    run, rows and checkpoint bytes both."""
    rows_p, fp_p = _run_agg_with_restart("process", str(tmp_path / "p"))
    rows_t, fp_t = _run_agg_with_restart("thread", str(tmp_path / "t"))
    assert rows_p == rows_t
    assert rows_p
    assert fp_p == fp_t
