"""End-to-end application composition tests.

The paper's production deployments chain queries: stream-to-stream ETL
through the bus (§6.3), streaming ETL into tables consumed by batch and
interactive queries (§8.4), and multiple independent queries over the
same input topic.
"""

import pytest

from repro.bus import Broker
from repro.sinks.file import TransactionalFileSink
from repro.sql import functions as F

from tests.conftest import make_stream, rows_set, start_memory_query

EVENTS = (("k", "string"), ("v", "long"))


class TestStreamToStreamEtl:
    """§6.3: "upload events to Kafka, run some simple ETL transformations
    as a streaming job, and write the transformed data to Kafka again for
    consumption by other streaming applications"."""

    def test_two_stage_pipeline_through_bus(self, session, tmp_path):
        broker = Broker()
        broker.create_topic("raw", 1)
        broker.create_topic("clean", 1)

        raw = session.read_stream.kafka(broker, "raw", EVENTS)
        etl = (raw.where(F.col("v") >= 0)
               .write_stream.format("kafka")
               .option("broker", broker).option("topic", "clean")
               .query_name("etl").output_mode("append")
               .start(str(tmp_path / "ckpt1")))

        clean = session.read_stream.kafka(broker, "clean", EVENTS)
        downstream = start_memory_query(
            clean.group_by("k").count(), "complete", "counts",
            str(tmp_path / "ckpt2"))

        broker.topic("raw").publish_to(0, [
            {"k": "a", "v": 1}, {"k": "a", "v": -5}, {"k": "b", "v": 2}])
        etl.process_all_available()
        downstream.process_all_available()
        assert rows_set(downstream.engine.sink.rows()) == rows_set([
            {"k": "a", "count": 1}, {"k": "b", "count": 1}])

    def test_etl_recovery_does_not_duplicate_downstream(self, session, tmp_path):
        broker = Broker()
        broker.create_topic("raw", 1)
        raw = session.read_stream.kafka(broker, "raw", EVENTS)

        def start_etl():
            return (raw.write_stream.format("kafka")
                    .option("broker", broker).option("topic", "clean2")
                    .query_name("etl2").output_mode("append")
                    .start(str(tmp_path / "ckpt")))

        etl = start_etl()
        broker.topic("raw").publish_to(0, [{"k": "a", "v": 1}])
        etl.process_all_available()
        # Crash + restart: the kafka sink's transaction registry prevents
        # the recovered epoch from double-publishing.
        etl2 = start_etl()
        etl2.process_all_available()
        assert broker.topic("clean2").total_records() == 1


class TestStreamingTableAndBatch:
    """§8.4: a streaming ETL job maintains a table that dozens of batch
    and interactive jobs then query."""

    def test_streaming_writes_batch_reads(self, session, tmp_path):
        stream = make_stream(EVENTS)
        table_dir = str(tmp_path / "table")
        query = (session.read_stream.memory(stream)
                 .write_stream.format("file").option("path", table_dir)
                 .output_mode("append").start(str(tmp_path / "ckpt")))
        stream.add_data([{"k": "a", "v": 1}, {"k": "b", "v": 2}])
        query.process_all_available()

        sink = TransactionalFileSink(table_dir)
        batch_df = session.read.file_sink(sink, EVENTS)
        assert batch_df.group_by("k").count().count_rows() == 2

        # More streaming data; the batch view picks it up on re-read.
        stream.add_data([{"k": "a", "v": 3}])
        query.process_all_available()
        assert session.read.file_sink(sink, EVENTS).count_rows() == 3

    def test_batch_backfill_coexists_with_stream(self, session, tmp_path):
        """A batch job backfills old data into the same table the
        streaming job appends to (§7.3 hybrid execution)."""
        table_dir = str(tmp_path / "table")
        backfill = session.create_dataframe(
            [{"k": "old", "v": 0}], EVENTS)
        backfill.write.json(table_dir)

        stream = make_stream(EVENTS)
        query = (session.read_stream.memory(stream)
                 .write_stream.format("file").option("path", table_dir)
                 .output_mode("append").start(str(tmp_path / "ckpt")))
        stream.add_data([{"k": "new", "v": 1}])
        query.process_all_available()

        sink = TransactionalFileSink(table_dir)
        assert rows_set(sink.read_rows()) == rows_set([
            {"k": "old", "v": 0}, {"k": "new", "v": 1}])


class TestMultipleQueriesOneTopic:
    def test_independent_queries_see_all_data(self, session, tmp_path):
        broker = Broker()
        broker.create_topic("shared", 2)
        df = session.read_stream.kafka(broker, "shared", EVENTS)

        q_counts = start_memory_query(
            df.group_by("k").count(), "complete", "c", str(tmp_path / "c"))
        q_raw = start_memory_query(df, "append", "r", str(tmp_path / "r"))

        broker.topic("shared").publish_to(0, [{"k": "a", "v": 1}])
        broker.topic("shared").publish_to(1, [{"k": "a", "v": 2}])
        q_counts.process_all_available()
        q_raw.process_all_available()
        assert q_counts.engine.sink.rows() == [{"k": "a", "count": 2}]
        assert len(q_raw.engine.sink.rows()) == 2

    def test_queries_progress_independently(self, session, tmp_path):
        broker = Broker()
        broker.create_topic("shared", 1)
        df = session.read_stream.kafka(broker, "shared", EVENTS)
        q1 = start_memory_query(df, "append", "q1", str(tmp_path / "1"))
        q2 = start_memory_query(df, "append", "q2", str(tmp_path / "2"))

        broker.topic("shared").publish_to(0, [{"k": "a", "v": 1}])
        q1.process_all_available()  # q2 lags behind
        broker.topic("shared").publish_to(0, [{"k": "b", "v": 2}])
        q1.process_all_available()
        q2.process_all_available()  # catches up in one bigger epoch
        assert len(q1.engine.sink.rows()) == 2
        assert len(q2.engine.sink.rows()) == 2
        assert q2.engine.next_epoch <= q1.engine.next_epoch
