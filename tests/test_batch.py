"""Unit tests for columnar record batches (repro.sql.batch)."""

import numpy as np
import pytest

from repro.sql.batch import RecordBatch, promote_nullable
from repro.sql.types import DoubleType, StructType

SCHEMA = StructType((("id", "long"), ("name", "string"), ("score", "double")))

ROWS = [
    {"id": 1, "name": "a", "score": 1.5},
    {"id": 2, "name": "b", "score": 2.5},
    {"id": 3, "name": None, "score": 3.5},
]


@pytest.fixture
def batch() -> RecordBatch:
    return RecordBatch.from_rows(ROWS, SCHEMA)


class TestConstruction:
    def test_from_rows_roundtrip(self, batch):
        assert batch.to_rows() == ROWS

    def test_column_dtypes(self, batch):
        assert batch.column("id").dtype == np.int64
        assert batch.column("score").dtype == np.float64
        assert batch.column("name").dtype == object

    def test_empty(self):
        empty = RecordBatch.empty(SCHEMA)
        assert empty.num_rows == 0
        assert empty.to_rows() == []

    def test_from_columns_coerces(self):
        batch = RecordBatch.from_columns(
            SCHEMA, id=[1, 2], name=["x", "y"], score=np.array([1, 2]),
        )
        assert batch.column("score").dtype == np.float64
        assert batch.num_rows == 2

    def test_schema_mismatch_raises(self):
        with pytest.raises(ValueError, match="mismatch"):
            RecordBatch({"id": np.array([1])}, SCHEMA)

    def test_missing_row_field_becomes_null(self):
        schema = StructType((("a", "string"),))
        batch = RecordBatch.from_rows([{}], schema)
        assert batch.to_rows() == [{"a": None}]


class TestConcat:
    def test_concat_two(self, batch):
        combined = RecordBatch.concat([batch, batch])
        assert combined.num_rows == 6

    def test_concat_skips_empty(self, batch):
        combined = RecordBatch.concat([RecordBatch.empty(SCHEMA), batch])
        assert combined.num_rows == 3

    def test_concat_all_empty_keeps_schema(self):
        combined = RecordBatch.concat([RecordBatch.empty(SCHEMA)])
        assert combined.schema == SCHEMA

    def test_concat_nothing_requires_schema(self):
        assert RecordBatch.concat([], SCHEMA).num_rows == 0
        with pytest.raises(ValueError):
            RecordBatch.concat([])

    def test_concat_single_returns_same_object(self, batch):
        assert RecordBatch.concat([batch]) is batch


class TestTransforms:
    def test_select_subset_and_order(self, batch):
        out = batch.select(["score", "id"])
        assert out.schema.names == ["score", "id"]
        assert out.to_rows()[0] == {"score": 1.5, "id": 1}

    def test_rename(self, batch):
        out = batch.rename({"id": "ident"})
        assert out.schema.names == ["ident", "name", "score"]
        assert out.column("ident")[0] == 1

    def test_with_column_add(self, batch):
        out = batch.with_column("flag", np.array([True, False, True]),
                                StructType((("x", "boolean"),)).type_of("x"))
        assert out.schema.names[-1] == "flag"
        assert out.num_rows == 3

    def test_with_column_replace_keeps_position(self, batch):
        out = batch.with_column("score", np.array([0.0, 0.0, 0.0]), DoubleType())
        assert out.schema.names == SCHEMA.names
        assert out.column("score").sum() == 0

    def test_filter(self, batch):
        out = batch.filter(np.array([True, False, True]))
        assert [r["id"] for r in out.to_rows()] == [1, 3]

    def test_filter_all_true_returns_same(self, batch):
        assert batch.filter(np.ones(3, dtype=bool)) is batch

    def test_take_with_repeats(self, batch):
        out = batch.take(np.array([2, 0, 0]))
        assert [r["id"] for r in out.to_rows()] == [3, 1, 1]

    def test_slice(self, batch):
        assert [r["id"] for r in batch.slice(1, 3).to_rows()] == [2, 3]

    def test_len(self, batch):
        assert len(batch) == 3


class TestNullHandling:
    def test_nan_becomes_none_in_rows(self):
        schema = StructType((("x", "double"),))
        batch = RecordBatch.from_columns(schema, x=np.array([1.0, np.nan]))
        assert batch.to_rows() == [{"x": 1.0}, {"x": None}]

    def test_none_string_survives(self, batch):
        assert batch.to_rows()[2]["name"] is None


class TestPromoteNullable:
    def test_long_promoted_to_double(self):
        promoted = promote_nullable(StructType((("a", "long"), ("b", "string"))))
        assert isinstance(promoted.type_of("a"), DoubleType)
        assert promoted.type_of("b").simple_name == "string"

    def test_all_nullable(self):
        promoted = promote_nullable(StructType((("a", "long", False),)))
        assert promoted.field("a").nullable
