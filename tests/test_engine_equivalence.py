"""Microbatch and continuous engines must agree: the declarative API is
execution-strategy agnostic (§6.3's central argument)."""

import time

import pytest

from repro.bus import Broker
from repro.sql import functions as F
from repro.testing.oracle import batch_recompute, canonical_rows

from tests.conftest import rows_set


def wait_until(predicate, timeout=5.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.005)
    return False


def map_query(session, broker, topic):
    return (session.read_stream.kafka(broker, topic, (("v", "long"),))
            .where(F.col("v") % 3 != 0)
            .select("v", (F.col("v") * F.col("v")).alias("sq")))


class TestEngineEquivalence:
    def test_same_query_same_results_both_engines(self, session, tmp_path):
        rows = [{"v": i} for i in range(50)]
        broker = Broker()
        topic = broker.create_topic("t", 2)
        for i, row in enumerate(rows):
            topic.publish_to(i % 2, [row])

        micro = (map_query(session, broker, "t").write_stream
                 .format("memory").query_name("micro")
                 .output_mode("append").start(str(tmp_path / "m")))
        micro.process_all_available()

        cont = (map_query(session, broker, "t").write_stream
                .format("memory").query_name("cont")
                .trigger(continuous="20ms").start(str(tmp_path / "c")))
        sink = cont.engine.sink
        expected = len(micro.engine.sink.rows())
        assert wait_until(lambda: len(sink.rows()) == expected)
        cont.stop()

        assert rows_set(sink.rows()) == rows_set(micro.engine.sink.rows())

    def test_query_code_unchanged_across_engines(self, session, tmp_path):
        """The exact same DataFrame object starts under either engine —
        no code changes, only the trigger (§6.3)."""
        broker = Broker()
        broker.create_topic("t", 1)
        df = map_query(session, broker, "t")
        q1 = (df.write_stream.format("memory").query_name("a")
              .output_mode("append").start(str(tmp_path / "a")))
        q2 = (df.write_stream.format("memory").query_name("b")
              .trigger(continuous="50ms").start(str(tmp_path / "b")))
        broker.topic("t").publish_to(0, [{"v": 1}])
        q1.process_all_available()
        sink2 = q2.engine.sink
        assert wait_until(lambda: len(sink2.rows()) == 1)
        q2.stop()
        assert q1.engine.sink.rows() == sink2.rows()

    def test_both_engines_match_batch_oracle(self, session, tmp_path):
        """Beyond agreeing with each other, both engines must equal the
        differential oracle's batch recompute of the same input."""
        rows = [{"v": i} for i in range(40)]
        broker = Broker()
        topic = broker.create_topic("t", 2)
        for i, row in enumerate(rows):
            topic.publish_to(i % 2, [row])

        def build(df):
            return (df.where(F.col("v") % 3 != 0)
                    .select("v", (F.col("v") * F.col("v")).alias("sq")))

        micro = (build(session.read_stream.kafka(broker, "t", (("v", "long"),)))
                 .write_stream.format("memory").query_name("om")
                 .output_mode("append").start(str(tmp_path / "om")))
        micro.process_all_available()

        cont = (build(session.read_stream.kafka(broker, "t", (("v", "long"),)))
                .write_stream.format("memory").query_name("oc")
                .trigger(continuous="20ms").start(str(tmp_path / "oc")))
        sink = cont.engine.sink
        expected = batch_recompute(build, (("v", "long"),), [rows],
                                   weighted=False)
        assert wait_until(lambda: len(sink.rows()) == len(expected))
        cont.stop()

        assert canonical_rows(micro.engine.sink.rows()) == canonical_rows(expected)
        assert canonical_rows(sink.rows()) == canonical_rows(expected)
