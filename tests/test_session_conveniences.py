"""Tests for schema inference, cache, and small DataFrame actions."""

import pytest

from repro.sql import functions as F


class TestSchemaInference:
    def test_types_inferred_from_rows(self, session):
        df = session.create_dataframe([
            {"name": "a", "n": 1, "x": 1.5, "ok": True},
        ])
        types = {f.name: f.data_type.simple_name for f in df.schema}
        assert types == {"name": "string", "n": "long", "x": "double",
                         "ok": "boolean"}

    def test_null_in_first_row_uses_later_value(self, session):
        df = session.create_dataframe([{"s": None}, {"s": "x"}])
        assert df.schema.type_of("s").simple_name == "string"

    def test_all_null_column_rejected(self, session):
        with pytest.raises(ValueError, match="all values null"):
            session.create_dataframe([{"s": None}])

    def test_zero_rows_rejected(self, session):
        with pytest.raises(ValueError, match="zero rows"):
            session.create_dataframe([])

    def test_inferred_frame_queries_normally(self, session):
        df = session.create_dataframe([{"k": "a", "v": 1}, {"k": "a", "v": 2}])
        out = df.group_by("k").sum("v").collect()
        assert out == [{"k": "a", "sum(v)": 3}]


class TestSmallActions:
    @pytest.fixture
    def df(self, session):
        return session.create_dataframe(
            [{"v": 3}, {"v": 1}, {"v": 2}], (("v", "long"),))

    def test_take(self, df):
        assert df.take(2) == [{"v": 3}, {"v": 1}]

    def test_first(self, df):
        assert df.first() == {"v": 3}

    def test_first_empty(self, df):
        assert df.where(F.col("v") > 99).first() is None

    def test_is_empty(self, df):
        assert not df.is_empty()
        assert df.where(F.col("v") > 99).is_empty()


class TestCache:
    def test_cache_materializes_once(self, session):
        calls = {"n": 0}

        class CountingProvider:
            def read_batches(self):
                calls["n"] += 1
                from repro.sql.batch import RecordBatch
                from repro.sql.types import StructType

                schema = StructType((("v", "long"),))
                return [RecordBatch.from_rows([{"v": 1}], schema)]

        from repro.sql import logical as L
        from repro.sql.dataframe import DataFrame
        from repro.sql.types import StructType

        scan = L.Scan(StructType((("v", "long"),)), CountingProvider(), False)
        df = DataFrame(scan, session)
        cached = df.cache()
        assert calls["n"] == 1
        cached.collect()
        cached.collect()
        assert calls["n"] == 1  # provider never re-read

    def test_cache_result_matches(self, session):
        df = session.create_dataframe([{"v": i} for i in range(5)])
        filtered = df.where(F.col("v") > 1).cache()
        assert filtered.count_rows() == 3
        assert filtered.group_by(F.lit(1).alias("g")).sum("v").collect()[0]["sum(v)"] == 9
