"""Direct unit tests for the incrementalizer (§5.2): operator tree
shapes, stable ids, watermark plumbing, key names."""

import pytest

from repro.sql import expressions as E
from repro.sql import functions as F
from repro.sql import logical as L
from repro.sql.expressions import AnalysisError
from repro.streaming import operators as ops
from repro.streaming.incrementalizer import incrementalize
from repro.streaming.state import StateStore

from tests.conftest import make_stream


@pytest.fixture
def store(tmp_path):
    return StateStore(str(tmp_path))


def plan_of(df):
    return df.plan


class TestOperatorTreeShapes:
    def test_map_only_plan(self, session, store):
        stream = make_stream((("v", "long"),))
        df = session.read_stream.memory(stream).where(F.col("v") > 0)
        result = incrementalize(plan_of(df), "append", store)
        assert isinstance(result.root, ops.StatelessOp)
        assert isinstance(result.root.child, ops.StreamScanOp)
        assert result.stateful_ops == []

    def test_aggregate_plan(self, session, store):
        stream = make_stream((("k", "string"),))
        df = session.read_stream.memory(stream).group_by("k").count()
        result = incrementalize(plan_of(df), "complete", store)
        assert isinstance(result.root, ops.StatefulAggregateOp)
        assert len(result.stateful_ops) == 1

    def test_watermark_then_window(self, session, store):
        stream = make_stream((("t", "timestamp"),))
        df = (session.read_stream.memory(stream)
              .with_watermark("t", "10s")
              .group_by(F.window("t", "10s")).count())
        result = incrementalize(plan_of(df), "append", store)
        agg = result.root
        assert isinstance(agg, ops.StatefulAggregateOp)
        assert agg.watermark_column == "t"
        assert isinstance(agg.child, ops.WatermarkTrackOp)
        assert result.watermark_delays == {"t": 10.0}

    def test_stream_static_join_sides(self, session, store):
        stream = make_stream((("k", "long"),))
        static = session.create_dataframe([{"k": 1, "x": 2}],
                                          (("k", "long"), ("x", "long")))
        df = session.read_stream.memory(stream).join(static, on="k")
        result = incrementalize(plan_of(df), "append", store)
        assert isinstance(result.root, ops.StreamStaticJoinOp)
        assert result.root.stream_is_left
        assert isinstance(result.root.static, ops.StaticOp)

    def test_static_on_left_flips(self, session, store):
        stream = make_stream((("k", "long"),))
        static = session.create_dataframe([{"k": 1, "x": 2}],
                                          (("k", "long"), ("x", "long")))
        df = static.join(session.read_stream.memory(stream), on="k")
        result = incrementalize(plan_of(df), "append", store)
        assert not result.root.stream_is_left

    def test_stream_stream_join_two_scans(self, session, store):
        a = make_stream((("k", "long"), ("t", "timestamp")))
        b = make_stream((("k", "long"), ("t2", "timestamp")))
        df = (session.read_stream.memory(a).with_watermark("t", "5s")
              .join(session.read_stream.memory(b).with_watermark("t2", "5s"),
                    on="k", within=("t", "t2", "10s")))
        result = incrementalize(plan_of(df), "append", store)
        assert isinstance(result.root, ops.StreamStreamJoinOp)
        assert result.root.within == ("t", "t2", 10.0)
        assert [name for name, _d in result.sources] == ["source-0", "source-1"]

    def test_sort_becomes_post_op_in_complete(self, session, store):
        stream = make_stream((("k", "string"),))
        df = (session.read_stream.memory(stream)
              .group_by("k").count().order_by("-count"))
        result = incrementalize(plan_of(df), "complete", store)
        assert isinstance(result.root, ops.CompleteModePostOp)
        assert isinstance(result.root.child, ops.StatefulAggregateOp)

    def test_union_of_stream_and_static(self, session, store):
        stream = make_stream((("v", "long"),))
        static = session.create_dataframe([{"v": 9}], (("v", "long"),))
        df = session.read_stream.memory(stream).union(static)
        result = incrementalize(plan_of(df), "append", store)
        assert isinstance(result.root, ops.UnionOp)
        assert result.root._right_static and not result.root._left_static


class TestStableIds:
    def test_source_names_in_plan_order(self, session, store, tmp_path):
        a = make_stream((("k", "long"), ("t", "timestamp")))
        b = make_stream((("k", "long"), ("t2", "timestamp")))
        df = (session.read_stream.memory(a).with_watermark("t", "5s")
              .join(session.read_stream.memory(b).with_watermark("t2", "5s"),
                    on="k", within=("t", "t2", "5s")))
        first = incrementalize(plan_of(df), "append", StateStore(str(tmp_path / "1")))
        second = incrementalize(plan_of(df), "append", StateStore(str(tmp_path / "2")))
        assert [n for n, _ in first.sources] == [n for n, _ in second.sources]

    def test_operator_ids_deterministic(self, session, tmp_path):
        stream = make_stream((("k", "string"),))
        df = session.read_stream.memory(stream).group_by("k").count()
        store1 = StateStore(str(tmp_path / "a"))
        store2 = StateStore(str(tmp_path / "b"))
        incrementalize(plan_of(df), "complete", store1)
        incrementalize(plan_of(df), "complete", store2)
        assert list(store1._handles) == list(store2._handles) == ["agg-0"]


class TestKeyNames:
    def test_aggregate_key_names(self, session, store):
        stream = make_stream((("k", "string"), ("t", "timestamp")))
        df = (session.read_stream.memory(stream)
              .with_watermark("t", "5s")
              .group_by(F.col("k"), F.window("t", "10s")).count())
        result = incrementalize(plan_of(df), "update", store)
        assert result.key_names == ["k", "window_start", "window_end"]

    def test_map_groups_key_names(self, session, store):
        stream = make_stream((("u", "string"), ("v", "long")))
        df = (session.read_stream.memory(stream).group_by_key("u")
              .map_groups_with_state(lambda k, r, s: {"n": 1},
                                     (("u", "string"), ("n", "long"))))
        result = incrementalize(plan_of(df), "update", store)
        assert result.key_names == ["u"]

    def test_projection_narrows_key_names(self, session, store):
        stream = make_stream((("k", "string"),))
        df = (session.read_stream.memory(stream).group_by("k").count()
              .select("count"))
        result = incrementalize(plan_of(df), "complete", store)
        assert result.key_names == []

    def test_map_only_has_no_keys(self, session, store):
        stream = make_stream((("v", "long"),))
        df = session.read_stream.memory(stream)
        result = incrementalize(plan_of(df), "append", store)
        assert result.key_names == []


class TestValidation:
    def test_invalid_mode_rejected_before_building(self, session, store):
        stream = make_stream((("k", "string"),))
        df = session.read_stream.memory(stream).group_by("k").count()
        with pytest.raises(AnalysisError):
            incrementalize(plan_of(df), "append", store)

    def test_optimizer_can_be_disabled(self, session, store):
        stream = make_stream((("v", "long"), ("x", "long")))
        df = session.read_stream.memory(stream).select("v").where(F.col("v") > 0)
        result = incrementalize(plan_of(df), "append", store, run_optimizer=False)
        # Unoptimized: Filter above Project — but adjacent stateless
        # nodes fuse into one compiled StatelessOp over the scan, and the
        # unoptimized chain still projects before filtering.
        assert isinstance(result.root, ops.StatelessOp)
        assert isinstance(result.root.child, ops.StreamScanOp)
        assert result.root.output_schema.names == ["v"]


class TestRestartModeGuard:
    def test_changing_output_mode_on_checkpoint_rejected(self, session, checkpoint):
        from tests.conftest import start_memory_query

        stream = make_stream((("k", "string"),))
        df = session.read_stream.memory(stream).group_by("k").count()
        q = start_memory_query(df, "complete", "m", checkpoint)
        stream.add_data([{"k": "a"}])
        q.process_all_available()
        with pytest.raises(ValueError, match="mode"):
            (df.write_stream.sink(q.engine.sink)
             .output_mode("update").start(checkpoint))
