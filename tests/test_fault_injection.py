"""The fault-injection layer itself, and the paths the sweep rides on.

Four concerns:

* the injector's scheduling semantics (occurrence counting, match
  predicates, seed replay, registry enforcement);
* torn-tail repair — a crash may leave the *newest* entry of a log
  truncated-but-visible; every log opener must quarantine it instead of
  crash-looping (the recovery bug the sweep originally exposed);
* the exactly-once checker's own detection power: mutation-style tests
  prove it fails on sinks that silently duplicate or drop rows, and on
  malformed checkpoint directories — a checker that cannot fail proves
  nothing;
* scheduler failure paths and ``stop``/run-once behavior under faults.
"""

import os
import time

import pytest

from repro.cluster.scheduler import Task, TaskFailure, TaskScheduler
from repro.sinks.file import TransactionalFileSink
from repro.sinks.memory import MemorySink
from repro.storage import atomic_write_json
from repro.streaming.state import OperatorStateHandle
from repro.streaming.wal import WriteAheadLog
from repro.testing.faults import (
    CrashPoint,
    Fault,
    FaultInjector,
    FaultPointError,
    InjectedTaskError,
    active_injector,
    fault_point,
    injected,
)
from repro.testing.harness import (
    ExactlyOnceChecker,
    ExactlyOnceError,
    GoldenRun,
    check_checkpoint_invariants,
    checkpoint_fingerprint,
)
from repro.testing.sweep import make_workload

from tests.conftest import make_stream, start_memory_query

SCHEMA = (("k", "string"), ("v", "long"))


def _truncate_half(path: str) -> None:
    """Tear a file the way a crashed write would: visible, half gone."""
    with open(path, "rb") as f:
        data = f.read()
    with open(path, "wb") as f:
        f.write(data[: len(data) // 2])


# ======================================================================
# Injector scheduling semantics
# ======================================================================
class TestFaultScheduling:
    def test_unknown_point_rejected(self):
        with pytest.raises(FaultPointError):
            Fault("no.such.point")

    def test_unknown_action_rejected(self):
        with pytest.raises(ValueError):
            Fault("wal.offsets", action="explode")

    def test_firing_unregistered_name_rejected(self):
        with pytest.raises(FaultPointError):
            FaultInjector().fire("not.registered", {})

    def test_occurrence_counting_and_consumption(self):
        injector = FaultInjector([Fault("wal.offsets", occurrence=2)])
        with injected(injector):
            fault_point("wal.offsets", epoch=0)  # occurrence 0: passes
            fault_point("wal.offsets", epoch=1)  # occurrence 1: passes
            with pytest.raises(CrashPoint):
                fault_point("wal.offsets", epoch=2)
            fault_point("wal.offsets", epoch=3)  # consumed: passes again
        assert injector.fired == [("wal.offsets", 2, "crash")]
        assert injector.pending == []

    def test_match_predicate_filters_context(self):
        injector = FaultInjector([
            Fault("storage.write", occurrence=None,
                  match=lambda ctx: ctx["path"].endswith("target.json")),
        ])
        with injected(injector):
            fault_point("storage.write", path="/a/other.json", tmp_path="/t")
            with pytest.raises(CrashPoint):
                fault_point("storage.write", path="/a/target.json", tmp_path="/t")

    def test_fail_action_is_transient_not_a_crash(self):
        injector = FaultInjector([Fault("scheduler.task", action="fail")])
        with injected(injector):
            with pytest.raises(InjectedTaskError):
                fault_point("scheduler.task", task_id="t", worker_id=0, attempt=0)

    def test_counts_persist_across_engine_restarts(self, session, checkpoint):
        # One schedule, two query generations: the second fault lands in
        # the *restarted* engine because counting is global.
        stream = make_stream(SCHEMA)
        df = session.read_stream.memory(stream)
        injector = FaultInjector([
            Fault("epoch.begin", occurrence=0),
            Fault("epoch.begin", occurrence=1),
        ])
        stream.add_data([{"k": "a", "v": 1}])
        with injected(injector):
            q0 = start_memory_query(df, "append", "out", checkpoint)
            sink = q0.engine.sink
            with pytest.raises(CrashPoint):
                q0.process_all_available()
            with pytest.raises(CrashPoint):  # fires inside recovery/build
                (df.write_stream.sink(sink).output_mode("append")
                 .start(checkpoint)).process_all_available()
        assert [occ for _, occ, _ in injector.fired] == [0, 1]

    def test_seed_replay_is_deterministic(self):
        a = FaultInjector.from_seed(20260807)
        b = FaultInjector.from_seed(20260807)
        assert a.describe() == b.describe()
        # and seeds genuinely vary the schedule
        schedules = {FaultInjector.from_seed(s).describe() for s in range(30)}
        assert len(schedules) > 5

    def test_no_injector_is_a_noop(self):
        assert active_injector() is None
        fault_point("wal.offsets", epoch=0)  # must not raise

    def test_injected_context_uninstalls(self):
        injector = FaultInjector()
        with injected(injector):
            assert active_injector() is injector
        assert active_injector() is None


# ======================================================================
# Torn-tail repair (the crash-loop recovery bug the sweep exposed)
# ======================================================================
class TestTornTailRepair:
    def test_wal_quarantines_torn_newest_offsets(self, tmp_path):
        wal = WriteAheadLog(str(tmp_path))
        wal.write_offsets(0, {"sources": {}})
        wal.write_offsets(1, {"sources": {}})
        _truncate_half(os.path.join(str(tmp_path), "offsets", "0000000001.json"))
        reopened = WriteAheadLog(str(tmp_path))
        assert len(reopened.repaired) == 1
        assert reopened.logged_epochs() == [0]  # torn entry = never written

    def test_wal_quarantines_torn_newest_commit(self, tmp_path):
        wal = WriteAheadLog(str(tmp_path))
        wal.write_offsets(0, {"sources": {}})
        wal.write_commit(0)
        _truncate_half(os.path.join(str(tmp_path), "commits", "0000000000.json"))
        reopened = WriteAheadLog(str(tmp_path))
        assert reopened.committed_epochs() == []
        assert reopened.logged_epochs() == [0]  # epoch 0 is re-run, not lost

    def test_wal_quarantines_torn_metadata(self, tmp_path):
        wal = WriteAheadLog(str(tmp_path))
        wal.write_metadata({"output_mode": "append"})
        _truncate_half(os.path.join(str(tmp_path), "metadata.json"))
        reopened = WriteAheadLog(str(tmp_path))
        assert reopened.read_metadata() == {}
        reopened.write_metadata({"output_mode": "append"})  # rewritable again
        assert reopened.read_metadata()["output_mode"] == "append"

    def test_torn_middle_entry_is_not_repaired(self, tmp_path):
        # Only the *newest* entry can be a legitimate crash artifact; a
        # torn older entry is real corruption and must stay visible.
        wal = WriteAheadLog(str(tmp_path))
        for epoch in range(3):
            wal.write_offsets(epoch, {"sources": {}})
        _truncate_half(os.path.join(str(tmp_path), "offsets", "0000000000.json"))
        reopened = WriteAheadLog(str(tmp_path))
        assert reopened.repaired == []
        with pytest.raises(ValueError):
            reopened.read_offsets(0)

    def test_state_handle_quarantines_torn_newest_version(self, tmp_path):
        handle = OperatorStateHandle(str(tmp_path / "op"), snapshot_interval=3)
        handle.put("a", 1)
        handle.commit(0)
        handle.put("b", 2)
        handle.commit(1)
        (torn,) = [n for n in os.listdir(str(tmp_path / "op"))
                   if n.startswith("0000000001.")]
        _truncate_half(os.path.join(str(tmp_path / "op"), torn))
        fresh = OperatorStateHandle(str(tmp_path / "op"), snapshot_interval=3)
        assert len(fresh.repaired) == 1
        assert fresh.restore(1) == 0  # falls back to the intact version
        assert fresh.get("a") == 1 and fresh.get("b") is None

    def test_file_sink_quarantines_torn_newest_manifest(self, tmp_path):
        from repro.sql.batch import RecordBatch
        from repro.sql.types import StructType

        schema = StructType((("v", "long"),))
        sink = TransactionalFileSink(str(tmp_path))
        sink.add_batch(0, RecordBatch.from_rows([{"v": 1}], schema), "append")
        sink.add_batch(1, RecordBatch.from_rows([{"v": 2}], schema), "append")
        _truncate_half(os.path.join(str(tmp_path), "_log", "0000000001.json"))
        reopened = TransactionalFileSink(str(tmp_path))
        assert len(reopened.repaired) == 1
        # The torn version's data files are orphaned and invisible —
        # exactly "uncommitted" under the manifest protocol.
        assert reopened.read_rows() == [{"v": 1}]
        assert reopened.last_committed_epoch() == 0


# ======================================================================
# Checker mutation self-tests: the checker must be able to fail
# ======================================================================
def _golden_123():
    rows = [{"v": 1}, {"v": 2}, {"v": 3}]
    return GoldenRun(
        snapshots=[[], rows[:1], rows[:2], rows],
        final=rows,
    )


class TestCheckerDetectsDuplicates:
    def test_final_duplicate_row_fails(self):
        checker = ExactlyOnceChecker(_golden_123())
        with pytest.raises(ExactlyOnceError, match="duplicate_rows=1"):
            checker.check_final([{"v": 1}, {"v": 2}, {"v": 3}, {"v": 3}])

    def test_unordered_mode_still_catches_duplicates(self):
        checker = ExactlyOnceChecker(_golden_123(), ordered=False)
        with pytest.raises(ExactlyOnceError):
            checker.check_final([{"v": 3}, {"v": 1}, {"v": 2}, {"v": 1}])

    def test_duplicating_sink_is_caught_end_to_end(self, session, checkpoint):
        # A sink whose epoch-dedup is broken: it re-appends the first row
        # of every batch.  The checker must reject its output even though
        # the engine ran fault-free.
        class DuplicatingSink(MemorySink):
            def add_batch(self, epoch_id, batch, mode):
                super().add_batch(epoch_id, batch, mode)
                rows = batch.to_rows()
                if rows:
                    with self._lock:
                        self._rows.append(rows[0])

        stream = make_stream(SCHEMA)
        df = session.read_stream.memory(stream)
        sink = DuplicatingSink()
        query = (df.write_stream.sink(sink).output_mode("append")
                 .start(checkpoint))
        stream.add_data([{"k": "a", "v": 1}, {"k": "b", "v": 2}])
        query.process_all_available()
        checker = ExactlyOnceChecker(GoldenRun(
            snapshots=[[], [{"k": "a", "v": 1}, {"k": "b", "v": 2}]],
            final=[{"k": "a", "v": 1}, {"k": "b", "v": 2}],
        ))
        with pytest.raises(ExactlyOnceError):
            checker.check_final(sink.rows())


class TestCheckerDetectsDrops:
    def test_final_missing_row_fails(self):
        checker = ExactlyOnceChecker(_golden_123())
        with pytest.raises(ExactlyOnceError, match="missing="):
            checker.check_final([{"v": 1}, {"v": 3}])

    def test_intermediate_non_prefix_fails(self):
        checker = ExactlyOnceChecker(_golden_123())
        checker.check_intermediate([{"v": 1}])  # a real prefix: fine
        with pytest.raises(ExactlyOnceError):
            checker.check_intermediate([{"v": 2}])  # a hole is not

    def test_reordering_fails_in_ordered_mode(self):
        checker = ExactlyOnceChecker(_golden_123())
        with pytest.raises(ExactlyOnceError):
            checker.check_final([{"v": 2}, {"v": 1}, {"v": 3}])

    def test_dropping_sink_is_caught_end_to_end(self, session, checkpoint):
        class DroppingSink(MemorySink):
            def add_batch(self, epoch_id, batch, mode):
                before = len(self._rows)
                super().add_batch(epoch_id, batch, mode)
                with self._lock:
                    if len(self._rows) > before:
                        self._rows.pop()  # silently loses the last row

        stream = make_stream(SCHEMA)
        df = session.read_stream.memory(stream)
        sink = DroppingSink()
        query = (df.write_stream.sink(sink).output_mode("append")
                 .start(checkpoint))
        stream.add_data([{"k": "a", "v": 1}, {"k": "b", "v": 2}])
        query.process_all_available()
        checker = ExactlyOnceChecker(GoldenRun(
            snapshots=[[], [{"k": "a", "v": 1}, {"k": "b", "v": 2}]],
            final=[{"k": "a", "v": 1}, {"k": "b", "v": 2}],
        ))
        with pytest.raises(ExactlyOnceError):
            checker.check_final(sink.rows())


class TestAtLeastOnceMode:
    def test_requires_distinct_golden_rows(self):
        golden = GoldenRun(snapshots=[[]], final=[{"v": 1}, {"v": 1}])
        with pytest.raises(ValueError):
            ExactlyOnceChecker(golden, at_least_once=True)

    def test_replayed_duplicates_are_tolerated(self):
        checker = ExactlyOnceChecker(_golden_123(), at_least_once=True)
        checker.check_final([{"v": 1}, {"v": 2}, {"v": 1}, {"v": 2}, {"v": 3}])

    def test_holes_still_fail(self):
        checker = ExactlyOnceChecker(_golden_123(), at_least_once=True)
        with pytest.raises(ExactlyOnceError):
            checker.check_final([{"v": 1}, {"v": 3}])

    def test_invented_rows_still_fail(self):
        checker = ExactlyOnceChecker(_golden_123(), at_least_once=True)
        with pytest.raises(ExactlyOnceError):
            checker.check_final([{"v": 1}, {"v": 2}, {"v": 3}, {"v": 99}])


class TestCheckpointInvariantMutations:
    def _write(self, directory, epoch, payload=None):
        atomic_write_json(os.path.join(directory, f"{epoch:010d}.json"),
                          payload or {"epoch": epoch})

    def test_well_formed_checkpoint_passes(self, tmp_path):
        ckpt = str(tmp_path)
        for sub in ("offsets", "commits"):
            os.makedirs(os.path.join(ckpt, sub))
        self._write(os.path.join(ckpt, "offsets"), 0)
        self._write(os.path.join(ckpt, "offsets"), 1)
        self._write(os.path.join(ckpt, "commits"), 0)
        check_checkpoint_invariants(ckpt)

    def test_commit_without_offsets_fails(self, tmp_path):
        ckpt = str(tmp_path)
        for sub in ("offsets", "commits"):
            os.makedirs(os.path.join(ckpt, sub))
        self._write(os.path.join(ckpt, "commits"), 0)
        with pytest.raises(ExactlyOnceError, match="no offsets entry"):
            check_checkpoint_invariants(ckpt)

    def test_offsets_gap_fails(self, tmp_path):
        ckpt = str(tmp_path)
        os.makedirs(os.path.join(ckpt, "offsets"))
        self._write(os.path.join(ckpt, "offsets"), 0)
        self._write(os.path.join(ckpt, "offsets"), 2)
        with pytest.raises(ExactlyOnceError, match="not contiguous"):
            check_checkpoint_invariants(ckpt)

    def test_two_uncommitted_epochs_fails(self, tmp_path):
        # Figure 4 allows at most ONE partially executed epoch.
        ckpt = str(tmp_path)
        for sub in ("offsets", "commits"):
            os.makedirs(os.path.join(ckpt, sub))
        for epoch in range(3):
            self._write(os.path.join(ckpt, "offsets"), epoch)
        self._write(os.path.join(ckpt, "commits"), 0)
        with pytest.raises(ExactlyOnceError, match="uncommitted"):
            check_checkpoint_invariants(ckpt)

    def test_state_version_ahead_of_log_fails(self, tmp_path):
        ckpt = str(tmp_path)
        os.makedirs(os.path.join(ckpt, "offsets"))
        self._write(os.path.join(ckpt, "offsets"), 1)
        op_dir = os.path.join(ckpt, "state", "agg-0")
        os.makedirs(op_dir)
        atomic_write_json(os.path.join(op_dir, "0000000005.delta.json"), {})
        with pytest.raises(ExactlyOnceError, match="newer"):
            check_checkpoint_invariants(ckpt)

    def test_torn_newest_entry_tolerated_only_when_not_strict(self, tmp_path):
        ckpt = str(tmp_path)
        for sub in ("offsets", "commits"):
            os.makedirs(os.path.join(ckpt, sub))
        self._write(os.path.join(ckpt, "offsets"), 0)
        self._write(os.path.join(ckpt, "offsets"), 1)
        _truncate_half(os.path.join(ckpt, "offsets", "0000000001.json"))
        check_checkpoint_invariants(ckpt, strict=False)  # mid-crash: fine
        with pytest.raises(ExactlyOnceError, match="unreadable"):
            check_checkpoint_invariants(ckpt, strict=True)


# ======================================================================
# Scheduler failure paths (§6.2) through named fault points
# ======================================================================
def _drive(instance):
    query = instance.build()
    query.process_all_available()
    for step in instance.steps:
        step()
        query.process_all_available()
    query.stop()


class TestSchedulerFailurePaths:
    def test_transient_task_failure_is_invisible(self, tmp_path):
        """A task attempt that fails once and is retried must leave the
        sink AND the checkpoint byte-identical to a fault-free run."""
        clean = make_workload("scheduler.task", "microbatch", 2,
                              str(tmp_path / "clean"))
        try:
            _drive(clean)
        finally:
            clean.cleanup()

        faulted = make_workload("scheduler.task", "microbatch", 2,
                                str(tmp_path / "faulted"))
        injector = FaultInjector([Fault("scheduler.task", occurrence=0,
                                        action="fail")])
        try:
            with injected(injector):
                _drive(faulted)
        finally:
            faulted.cleanup()
        assert injector.fired  # the first attempt really did fail
        assert faulted.read_sink() == clean.read_sink()
        assert checkpoint_fingerprint(faulted.checkpoint_dir) == \
            checkpoint_fingerprint(clean.checkpoint_dir)

    def test_speculative_clone_beats_hung_attempt(self):
        """A straggling attempt hangs (then dies); the speculative clone
        launched in the meantime must win and the stage still succeed."""
        scheduler = TaskScheduler(num_workers=3, speculation=True,
                                  speculation_min_seconds=0.02,
                                  speculation_multiplier=2.0)
        injector = FaultInjector([
            Fault("scheduler.task", occurrence=None, times=1, action="hang",
                  seconds=0.8, match=lambda ctx: ctx["task_id"] == ("t", 0)),
        ])
        tasks = [Task(("t", i), lambda i=i: (time.sleep(0.02), i * 10)[1])
                 for i in range(6)]
        try:
            with injected(injector):
                results = scheduler.run_stage(tasks, timeout=10)
            report = scheduler.last_stage_report
        finally:
            scheduler.shutdown()
        assert results == {("t", i): i * 10 for i in range(6)}
        assert report["speculative_launched"] >= 1
        assert report["speculative_won"] >= 1

    def test_retry_exhaustion_is_a_clean_error(self, tmp_path):
        """A task that fails every attempt surfaces TaskFailure without
        committing anything; once the cause clears, a plain restart
        completes the work."""
        instance = make_workload("scheduler.task", "microbatch", 2,
                                 str(tmp_path / "run"))
        injector = FaultInjector([
            Fault("scheduler.task", occurrence=None, times=None, action="fail",
                  match=lambda ctx: ctx["task_id"] == ("source-0", "0")),
        ])
        try:
            query = instance.build()
            with injected(injector):
                instance.steps[0]()
                with pytest.raises(TaskFailure):
                    query.process_all_available()
            # nothing was delivered or committed
            assert instance.read_sink() == []
            assert os.listdir(
                os.path.join(instance.checkpoint_dir, "commits")) == []

            restarted = instance.build()
            restarted.process_all_available()
            for step in instance.steps[1:]:
                step()
                restarted.process_all_available()
            restarted.stop()
        finally:
            instance.cleanup()

        reference = make_workload("scheduler.task", "microbatch", 2,
                                  str(tmp_path / "reference"))
        try:
            _drive(reference)
        finally:
            reference.cleanup()
        assert instance.read_sink() == reference.read_sink()


# ======================================================================
# stop() / run-once under faults
# ======================================================================
class TestStopAndRunOnce:
    def test_thread_crash_surfaces_and_run_once_recovers(self, session, checkpoint):
        """A crash inside a threaded query's driver loop must surface via
        ``query.exception``; a run-once restart then redelivers the
        uncommitted epoch exactly once."""
        stream = make_stream(SCHEMA)
        df = session.read_stream.memory(stream)
        sink = MemorySink()
        stream.add_data([{"k": "a", "v": 1}])
        injector = FaultInjector([Fault("epoch.after_sink", occurrence=0)])
        with injected(injector):
            query = (df.write_stream.sink(sink).output_mode("append")
                     .trigger(interval=0.005).start(checkpoint))
            with pytest.raises(CrashPoint):
                query.await_termination(timeout=10)
        assert isinstance(query.exception, CrashPoint)
        # the sink accepted the epoch before the crash, the commit didn't land
        assert sink.rows() == [{"k": "a", "v": 1}]

        restarted = (df.write_stream.sink(sink).output_mode("append")
                     .trigger(once=True).start(checkpoint))
        restarted.await_termination(timeout=10)
        assert sink.rows() == [{"k": "a", "v": 1}]  # idempotent redelivery
        assert restarted.engine.wal.is_committed(0)

    def test_crash_before_sink_write_leaves_no_partial_epoch(self, session, checkpoint):
        stream = make_stream(SCHEMA)
        df = session.read_stream.memory(stream)
        query = start_memory_query(df, "append", "out", checkpoint)
        sink = query.engine.sink
        stream.add_data([{"k": "a", "v": 1}, {"k": "b", "v": 2}])
        injector = FaultInjector([Fault("epoch.after_process", occurrence=0)])
        with injected(injector):
            with pytest.raises(CrashPoint):
                query.process_all_available()
        assert sink.rows() == []  # nothing partial escaped

        restarted = (df.write_stream.sink(sink).output_mode("append")
                     .start(checkpoint))
        restarted.process_all_available()
        assert sink.rows() == [{"k": "a", "v": 1}, {"k": "b", "v": 2}]

    def test_stop_mid_stream_then_restart_continues_cleanly(self, session, checkpoint):
        stream = make_stream(SCHEMA)
        df = session.read_stream.memory(stream)
        query = start_memory_query(df, "append", "out", checkpoint)
        sink = query.engine.sink
        stream.add_data([{"k": "a", "v": 1}])
        query.process_all_available()
        query.stop()
        assert not query.is_active

        stream.add_data([{"k": "b", "v": 2}])  # arrives while down
        restarted = (df.write_stream.sink(sink).output_mode("append")
                     .start(checkpoint))
        restarted.process_all_available()
        assert sink.rows() == [{"k": "a", "v": 1}, {"k": "b", "v": 2}]

    def test_torn_manifest_then_run_once_restart(self, session, checkpoint, tmp_path):
        """Crash tearing the file sink's manifest mid-commit: the run-once
        restart quarantines it and redelivers the epoch exactly once."""
        stream = make_stream(SCHEMA)
        df = session.read_stream.memory(stream)
        out_dir = str(tmp_path / "table")
        query = (df.write_stream.format("file").option("path", out_dir)
                 .output_mode("append").start(checkpoint))
        stream.add_data([{"k": "a", "v": 1}])
        injector = FaultInjector([
            Fault("storage.fsync", occurrence=None, times=1, action="torn",
                  match=lambda ctx: "_log" in ctx["path"]),
        ])
        with injected(injector):
            with pytest.raises(CrashPoint):
                query.process_all_available()

        restarted = (df.write_stream.format("file").option("path", out_dir)
                     .output_mode("append").trigger(once=True)
                     .start(checkpoint))
        restarted.await_termination(timeout=10)
        assert len(restarted.engine.sink.repaired) == 1
        assert TransactionalFileSink(out_dir).read_rows() == [{"k": "a", "v": 1}]
