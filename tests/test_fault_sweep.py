"""The fault sweep: every registered fault point, every engine mode.

Each cell crashes (or tears/drops/fails) the query at one named fault
point, restarts it from its checkpoint until it completes, and checks
the paper's exactly-once guarantee against a fault-free golden run —
plus a Hypothesis mode that draws random multi-crash schedules from a
seed (every failure message embeds the seed and schedule for replay,
see docs/fault_tolerance.md).
"""

import os
import tempfile

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.testing.faults import FaultInjector, injected
from repro.testing.harness import (
    ExactlyOnceChecker,
    run_golden,
    run_with_crashes,
)
from repro.testing.sweep import make_workload, run_sweep_cell, sweep_cells

#: Golden runs are content-only (no paths), so one per workload serves
#: every cell; fired points accumulate for the coverage floor below.
_GOLDEN_CACHE = {}
_FIRED_POINTS = set()


@pytest.mark.parametrize("point,mode,shards", [
    # The worker-hang cells sleep past the driver's task timeout by
    # design, so they dominate the suite's wall clock (make test-fast
    # skips them).
    pytest.param(point, mode, shards,
                 marks=[pytest.mark.slow] if point == "worker.hang" else [])
    for point, mode, shards in sweep_cells()
])
def test_sweep_cell(point, mode, shards, tmp_path):
    info = run_sweep_cell(point, mode, shards, str(tmp_path), _GOLDEN_CACHE)
    _FIRED_POINTS.update(p for p, _, _ in info["triggered"])
    # Microbatch cells schedule two faults; at least the first must have
    # actually fired, or the cell silently tested nothing.
    assert info["triggered"], f"no fault fired in cell ({point}, {mode}, {shards})"


def test_sweep_coverage_floor():
    """The matrix must exercise at least 13 distinct named fault points
    spanning WAL, state, storage, sinks, the scheduler, and the cascade
    drive (the sweep's acceptance floor — a registry addition that no
    cell reaches shows up here)."""
    if not _FIRED_POINTS:
        pytest.skip("sweep cells did not run in this test selection")
    assert len(_FIRED_POINTS) >= 13, sorted(_FIRED_POINTS)
    for prefix in ("wal.", "state.", "storage.", "sink.", "scheduler.",
                   "cascade."):
        assert any(p.startswith(prefix) for p in _FIRED_POINTS), (
            f"no {prefix}* point fired", sorted(_FIRED_POINTS))


@pytest.mark.slow
@given(seed=st.integers(min_value=0, max_value=2**31 - 1))
def test_random_multi_crash_schedules(seed):
    """Hypothesis mode: up to three faults at seed-chosen points and
    occurrences, on the windowed-aggregation workload.  Any failure
    reproduces with ``FaultInjector.from_seed(seed)``."""
    root = tempfile.mkdtemp(prefix="fault-fuzz-")
    key = ("agg", "microbatch", 1)
    if key not in _GOLDEN_CACHE:
        golden = make_workload("epoch.begin", "microbatch", 1,
                               os.path.join(root, "golden"))
        _GOLDEN_CACHE[key] = run_golden(golden.build, golden.steps,
                                        golden.read_sink)
    instance = make_workload("epoch.begin", "microbatch", 1,
                             os.path.join(root, "run"))
    injector = FaultInjector.from_seed(seed)
    checker = ExactlyOnceChecker(_GOLDEN_CACHE[key], ordered=True)
    with injected(injector):
        run_with_crashes(
            instance.build, instance.steps,
            injector=injector,
            read_sink=instance.read_sink,
            checker=checker,
            checkpoint_dir=instance.checkpoint_dir,
        )
    checker.check_final(instance.read_sink(), context=injector.describe())
