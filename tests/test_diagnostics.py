"""Flight recorder, crash postmortems, and health diagnostics (§7.4).

Covers the diagnostics layer end to end: the always-on flight recorder
and its rotated ``postmortem.json`` dumps, bottleneck attribution
(model unit tests plus a synthetic-delay query where the slow phase
must be named), end-to-end event-time lag propagated through a
stream-table cascade, and the OpenMetrics exposition + HTTP scrape
endpoint.
"""

from __future__ import annotations

import json
import os
import re
import time
import urllib.request

import pytest

from repro.observability import bottleneck, metrics, tracing
from repro.observability.flightrec import (
    MAX_ROTATED,
    SCHEMA_VERSION,
    FlightRecorder,
    load_postmortem,
    postmortem_path,
)
from repro.observability.serve import CONTENT_TYPE, MetricsServer
from repro.sinks.memory import MemorySink
from repro.sql import functions as F
from repro.sql.session import Session
from repro.streaming.progress import EpochProgress
from repro.testing.faults import CrashPoint, Fault, FaultInjector, injected

from tests.conftest import make_stream, start_memory_query


@pytest.fixture(autouse=True)
def _clean_observability():
    """Tests toggle the process-global registry/tracer; isolate them."""
    previous = (metrics._registry, tracing._tracer)
    yield
    metrics._registry, tracing._tracer = previous


def _progress(epoch, **overrides):
    base = dict(
        epoch_id=epoch, trigger_time=100.0 + epoch, duration_seconds=0.5,
        input_rows=10, output_rows=5, backlog_rows=0, state_keys=3,
        late_rows_dropped=0,
    )
    base.update(overrides)
    return EpochProgress(**base)


# ----------------------------------------------------------------------
# Flight recorder unit behaviour
# ----------------------------------------------------------------------
class TestFlightRecorder:
    def test_ring_keeps_newest_epochs(self, tmp_path):
        rec = FlightRecorder(str(tmp_path), capacity=4)
        for epoch in range(10):
            rec.record_epoch(_progress(epoch))
        path = rec.dump("manual", force=True)
        doc = load_postmortem(path)
        assert [e["epoch"] for e in doc["epochs"]] == [6, 7, 8, 9]
        assert doc["version"] == SCHEMA_VERSION
        assert doc["engine"] == "microbatch"
        assert doc["reason"] == "manual"
        assert doc["crash"] is None

    def test_dump_records_crash_and_dedupes_on_error_identity(self, tmp_path):
        rec = FlightRecorder(str(tmp_path))
        rec.record_epoch(_progress(0))
        boom = RuntimeError("worker died")
        first = rec.dump("epoch-crash", error=boom, epoch=1)
        doc = load_postmortem(str(tmp_path))
        assert doc["crash"] == {"epoch": 1, "error": "worker died",
                                "type": "RuntimeError"}
        # Same exception surfacing at another boundary: no second dump.
        mtime = os.path.getmtime(first)
        assert rec.dump("async-crash", error=boom, epoch=1) == first
        assert os.path.getmtime(first) == mtime

    def test_rotation_preserves_prior_dumps(self, tmp_path):
        rec = FlightRecorder(str(tmp_path))
        for n in range(MAX_ROTATED + 2):
            rec.record_epoch(_progress(n))
            rec.dump("manual", force=True)
        # Newest at the canonical path, predecessors shifted down.
        assert load_postmortem(str(tmp_path))["epochs"][-1]["epoch"] == 4
        for k in range(1, MAX_ROTATED + 1):
            doc = load_postmortem(str(tmp_path / f"postmortem-{k}.json"))
            assert doc["epochs"][-1]["epoch"] == 4 - k

    def test_adopt_prior_dumps_noted_by_successor(self, tmp_path):
        rec = FlightRecorder(str(tmp_path))
        rec.dump("epoch-crash", error=ValueError("x"), epoch=7, force=True)
        successor = FlightRecorder(str(tmp_path))
        found = successor.adopt_prior_dumps()
        assert found == [postmortem_path(str(tmp_path))]
        doc = json.loads(json.dumps(successor.to_json("manual")))
        prior = [e for e in doc["events"] if e["kind"] == "prior-postmortem"]
        assert prior and prior[0]["crash"]["epoch"] == 7
        assert doc["prior_postmortems"] == ["postmortem.json"]

    def test_metrics_delta_between_epochs(self, tmp_path):
        with metrics.enabled():
            rec = FlightRecorder(str(tmp_path))
            metrics.count("engine.rows_in", 10)
            rec.record_epoch(_progress(0))
            metrics.count("engine.rows_in", 7)
            metrics.set_gauge("engine.backlog_rows", 3)
            rec.record_epoch(_progress(1))
            doc = rec.to_json("manual")
        deltas = [e.get("metricsDelta", {}) for e in doc["epochs"]]
        assert deltas[0]["engine.rows_in"] == 10
        assert deltas[1]["engine.rows_in"] == 7
        assert deltas[1]["engine.backlog_rows"] == 3

    def test_dump_never_raises(self, tmp_path):
        target = tmp_path / "not-a-dir"
        target.write_text("file in the way")
        rec = FlightRecorder(str(target))
        assert rec.dump("manual", force=True) is None


# ----------------------------------------------------------------------
# Crash postmortems from real engine failures
# ----------------------------------------------------------------------
class TestCrashPostmortem:
    def _start(self, tmp_path, tag="pm"):
        session = Session()
        stream = make_stream((("k", "string"), ("v", "long")))
        df = (session.read_stream.memory(stream)
              .group_by("k").agg(F.sum("v").alias("total")))
        cp = str(tmp_path / f"cp-{tag}")
        query = start_memory_query(df, "update", f"q-{tag}", cp)
        return query, stream, cp

    def test_epoch_crash_dumps_consistent_postmortem(self, tmp_path):
        query, stream, cp = self._start(tmp_path)
        for i in range(2):
            stream.add_data([{"k": "a", "v": i}])
            query.process_all_available()
        injector = FaultInjector([Fault("epoch.after_sink", occurrence=0)])
        stream.add_data([{"k": "a", "v": 9}])
        with injected(injector):
            with pytest.raises(CrashPoint):
                query.process_all_available()
        doc = load_postmortem(cp)
        assert doc["reason"] == "epoch-crash"
        assert doc["crash"]["type"] == "CrashPoint"
        assert doc["crash"]["epoch"] == 2
        # The ring holds the completed epochs leading up to the crash.
        assert [e["epoch"] for e in doc["epochs"]] == [0, 1]
        query.stop()

    def test_restart_adopts_and_rotates_prior_dump(self, tmp_path):
        query, stream, cp = self._start(tmp_path)
        injector = FaultInjector([Fault("epoch.after_sink", occurrence=0)])
        stream.add_data([{"k": "a", "v": 1}])
        with injected(injector):
            with pytest.raises(CrashPoint):
                query.process_all_available()
        query.stop()

        session = Session()
        df = (session.read_stream.memory(stream)
              .group_by("k").agg(F.sum("v").alias("total")))
        restarted = start_memory_query(df, "update", "pm-2", cp)
        assert restarted.engine.flightrec.prior_postmortems
        restarted.process_all_available()
        path = restarted.dump_postmortem()
        doc = load_postmortem(path)
        assert doc["reason"] == "manual"
        assert doc["prior_postmortems"] == ["postmortem.json"]
        # The crash dump was rotated aside, not overwritten.
        rotated = load_postmortem(str(tmp_path / "cp-pm" / "postmortem-1.json"))
        assert rotated["reason"] == "epoch-crash"
        restarted.stop()

    def test_manual_dump_via_query_handle(self, tmp_path):
        query, stream, cp = self._start(tmp_path, tag="manual")
        stream.add_data([{"k": "b", "v": 2}])
        query.process_all_available()
        path = query.dump_postmortem()
        assert path == postmortem_path(cp)
        doc = load_postmortem(cp)
        assert doc["reason"] == "manual"
        assert [e["epoch"] for e in doc["epochs"]] == [0]
        # Repeated manual dumps always write (force), rotating priors.
        assert query.dump_postmortem() == path
        assert os.path.exists(str(tmp_path / "cp-manual" / "postmortem-1.json"))
        query.stop()

    def test_continuous_worker_crash_dumps(self, tmp_path):
        session = Session()
        stream = make_stream((("v", "long"),))
        df = (session.read_stream.memory(stream)
              .select((F.col("v") + 1).alias("x")))
        cp = str(tmp_path / "cp-cont")
        query = (df.write_stream.format("memory").query_name("pm-cont")
                 .output_mode("append").trigger(continuous=0.01).start(cp))
        injector = FaultInjector([Fault("continuous.commit_epoch",
                                        occurrence=0)])
        with injected(injector):
            stream.add_data([{"v": 1}])
            with pytest.raises(CrashPoint):
                deadline = time.monotonic() + 10
                while time.monotonic() < deadline:
                    query.process_all_available()
                    time.sleep(0.01)
        with pytest.raises(CrashPoint):
            query.stop()
        doc = load_postmortem(cp)
        assert doc["engine"] == "continuous"
        assert doc["reason"] == "worker-crash"
        assert doc["crash"]["type"] == "CrashPoint"


# ----------------------------------------------------------------------
# Bottleneck attribution
# ----------------------------------------------------------------------
class TestBottleneckModel:
    def test_process_phase_split_across_operators(self):
        costs = bottleneck.fold_costs(
            {"read-inputs": 0.1, "process": 1.0, "sink-write": 0.2},
            {"FilterOp": {"seconds": 0.6, "rows_out": 5, "calls": 1},
             "ProjectOp": {"seconds": 0.1, "rows_out": 5, "calls": 1}},
        )
        assert costs["source-read"] == pytest.approx(0.1)
        assert costs["stage:FilterOp"] == pytest.approx(0.6)
        assert costs["stage:plan"] == pytest.approx(0.3)
        assert costs["sink"] == pytest.approx(0.2)

    def test_attribute_names_dominant_category_with_share(self):
        result = bottleneck.attribute(
            {"wal-offsets": 0.2, "wal-commit": 0.3, "sink-write": 0.1})
        assert result["name"] == "wal-sync"
        assert result["share"] == pytest.approx(0.5 / 0.6)
        assert [b["name"] for b in result["breakdown"]] == ["wal-sync", "sink"]

    def test_unknown_phase_passes_through(self):
        result = bottleneck.attribute({"mystery-phase": 1.0})
        assert result["name"] == "mystery-phase"

    def test_empty_and_event_forms(self):
        assert bottleneck.attribute({}) == {}
        assert bottleneck.summary(None) == {}
        merged = bottleneck.attribute_events([
            {"stageTimings": {"sink-write": 0.4}},
            {"stageTimings": {"sink-write": 0.4, "state-commit": 0.1}},
            {},  # observability-off epoch contributes nothing
        ])
        assert merged["name"] == "sink"
        assert merged["epochs"] == 2

    def test_flusher_backpressure_category(self):
        result = bottleneck.attribute({"flusher-wait": 0.9, "process": 0.1})
        assert result["name"] == "flusher-backpressure"


class TestBottleneckSyntheticDelay:
    def test_slow_sink_is_named(self, tmp_path):
        class SlowSink(MemorySink):
            def add_batch(self, epoch_id, batch, mode):
                time.sleep(0.05)
                super().add_batch(epoch_id, batch, mode)

        session = Session()
        stream = make_stream((("k", "string"), ("v", "long")))
        df = (session.read_stream.memory(stream)
              .group_by("k").agg(F.sum("v").alias("total")))
        sink = SlowSink()
        with metrics.enabled():
            query = (df.write_stream.sink(sink).output_mode("update")
                     .start(str(tmp_path / "cp")))
            for i in range(3):
                stream.add_data([{"k": "a", "v": i}])
                query.process_all_available()
            # Per-epoch summary and windowed attribution both name the
            # injected slow phase.
            assert query.last_progress.bottleneck["name"] == "sink"
            assert query.last_progress.bottleneck["share"] > 0.5
            where = query.bottleneck()
            assert where["name"] == "sink"
            assert where["epochs"] == 3
            assert where["breakdown"][0]["name"] == "sink"
            query.stop()

    def test_bottleneck_empty_when_observability_off(self, tmp_path):
        session = Session()
        stream = make_stream((("k", "string"), ("v", "long")))
        df = (session.read_stream.memory(stream)
              .group_by("k").agg(F.sum("v").alias("total")))
        query = start_memory_query(df, "update", "no-obs",
                                   str(tmp_path / "cp"))
        stream.add_data([{"k": "a", "v": 1}])
        query.process_all_available()
        if not (metrics._registry or tracing._tracer):
            assert query.last_progress.bottleneck == {}
            assert query.bottleneck() == {}
        query.stop()


# ----------------------------------------------------------------------
# End-to-end event-time lag through a cascade
# ----------------------------------------------------------------------
class TestEventTimeLag:
    def test_single_stage_lag_from_pinned_ingest(self, tmp_path):
        session = Session()
        stream = make_stream((("k", "string"), ("v", "long")))
        df = session.read_stream.memory(stream).select("k", "v")
        with metrics.enabled() as registry:
            query = start_memory_query(df, "append", "lag-1",
                                       str(tmp_path / "cp"))
            stream.add_data([{"k": "a", "v": 1}],
                            ingest_time=time.time() - 123.0)
            query.process_all_available()
            progress = query.last_progress
            assert progress.event_time_lag_seconds >= 123.0
            assert progress.event_time_lag_seconds < 123.0 + 60
            assert progress.to_json()["eventTimeLagSeconds"] == \
                progress.event_time_lag_seconds
            gauge = registry.metric("engine.event_time_lag")
            assert gauge is not None and gauge.value >= 123.0
            hist = registry.metric("engine.event_time_lag_seconds")
            assert hist is not None and hist.count == 1
            query.stop()

    def test_cascade_reports_lag_since_bronze_ingest(self, tmp_path):
        session = Session()
        bronze = make_stream((("k", "string"), ("v", "long")))
        silver_df = (session.read_stream.memory(bronze)
                     .filter(F.col("v") >= 0).select("k", "v"))
        with metrics.enabled():
            upstream = (silver_df.write_stream.to_table("diag_silver")
                        .output_mode("append")
                        .start(str(tmp_path / "cp1")))
            gold_df = (session.read_stream_table("diag_silver")
                       .select("k", (F.col("v") * 2).alias("v2")))
            downstream = start_memory_query(gold_df, "append", "lag-gold",
                                            str(tmp_path / "cp2"))
            bronze.add_data([{"k": "a", "v": 5}],
                            ingest_time=time.time() - 500.0)
            upstream.process_all_available()
            downstream.process_all_available()
            # The gold stage reports lag since *bronze* ingest — not
            # since the silver stage delivered into the stream table.
            lag = downstream.last_progress.event_time_lag_seconds
            assert lag is not None and lag >= 500.0
            assert upstream.last_progress.event_time_lag_seconds >= 500.0

            # A fresh chunk without a pinned ingest time uses "now":
            # small lag, not the old floor.
            bronze.add_data([{"k": "b", "v": 1}])
            upstream.process_all_available()
            downstream.process_all_available()
            assert downstream.last_progress.event_time_lag_seconds < 60.0
            upstream.stop()
            downstream.stop()

    def test_no_lag_reported_when_observability_off(self, tmp_path):
        session = Session()
        stream = make_stream((("k", "string"), ("v", "long")))
        df = session.read_stream.memory(stream).select("k", "v")
        query = start_memory_query(df, "append", "lag-off",
                                   str(tmp_path / "cp"))
        stream.add_data([{"k": "a", "v": 1}], ingest_time=time.time() - 9)
        query.process_all_available()
        if not (metrics._registry or tracing._tracer):
            assert query.last_progress.event_time_lag_seconds is None
            assert "eventTimeLagSeconds" not in query.last_progress.to_json()
        query.stop()


# ----------------------------------------------------------------------
# OpenMetrics exposition + scrape endpoint
# ----------------------------------------------------------------------
_SAMPLE_LINE = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*"                  # metric name
    r'(\{[a-zA-Z_][a-zA-Z0-9_]*="[^"]*"'          # first label
    r'(,[a-zA-Z_][a-zA-Z0-9_]*="[^"]*")*\})?'     # more labels
    r" -?[0-9][0-9eE.+-]*$"                       # value
)


class TestOpenMetrics:
    def test_disabled_registry_is_still_valid_exposition(self):
        metrics.disable()
        assert metrics.to_openmetrics() == "# EOF\n"

    def test_label_mapping_and_suffixes(self):
        registry = metrics.MetricsRegistry()
        registry.counter("engine.epochs").inc(3)
        registry.counter("state.puts.shard3").inc(7)
        registry.counter("op.FilterOp.rows_out").inc(11)
        registry.gauge("engine.watermark_lag.ts").set(2.5)
        registry.gauge("engine.backlog_rows")  # unset gauge: skipped
        text = registry.to_openmetrics()
        assert "# TYPE repro_engine_epochs counter" in text
        assert "repro_engine_epochs_total 3" in text
        assert 'repro_state_puts_total{shard="3"} 7' in text
        assert 'repro_op_rows_out_total{operator="FilterOp"} 11' in text
        assert 'repro_engine_watermark_lag{column="ts"} 2.5' in text
        assert "backlog_rows" not in text
        assert text.endswith("# EOF\n")

    def test_exposition_format_validates(self, tmp_path):
        session = Session()
        stream = make_stream((("k", "string"), ("v", "long")))
        df = (session.read_stream.memory(stream)
              .group_by("k").agg(F.sum("v").alias("total")))
        with metrics.enabled():
            query = start_memory_query(df, "update", "om",
                                       str(tmp_path / "cp"))
            for i in range(3):
                stream.add_data([{"k": f"k{i}", "v": i}])
                query.process_all_available()
            text = metrics.to_openmetrics()
            query.stop()

        lines = text.splitlines()
        assert lines[-1] == "# EOF"
        declared = set()
        histograms = set()
        for line in lines[:-1]:
            if line.startswith("# TYPE "):
                _, _, name, kind = line.split(" ")
                assert name not in declared, f"duplicate family {name}"
                declared.add(name)
                assert kind in ("counter", "gauge", "histogram")
                if kind == "histogram":
                    histograms.add(name)
                continue
            assert _SAMPLE_LINE.match(line), f"malformed sample: {line!r}"
            name = line.split("{")[0].split(" ")[0]
            family_forms = {name, name.rsplit("_total", 1)[0],
                            name.rsplit("_bucket", 1)[0],
                            name.rsplit("_sum", 1)[0],
                            name.rsplit("_count", 1)[0]}
            assert family_forms & declared, f"sample before TYPE: {line!r}"
        assert "repro_engine_epochs_total 3" in text
        # Histogram buckets are cumulative and end with +Inf == count.
        for family in histograms:
            buckets = [l for l in lines if l.startswith(family + "_bucket")]
            counts = [int(l.rsplit(" ", 1)[1]) for l in buckets]
            assert counts == sorted(counts)
            assert buckets[-1].startswith(family + '_bucket{le="+Inf"}')
            count_line = next(l for l in lines
                              if l.startswith(family + "_count"))
            assert counts[-1] == int(count_line.rsplit(" ", 1)[1])

    def test_metrics_server_scrape(self):
        with metrics.enabled():
            metrics.count("engine.epochs", 5)
            with MetricsServer() as server:
                with urllib.request.urlopen(server.url, timeout=5) as resp:
                    assert resp.status == 200
                    assert resp.headers["Content-Type"] == CONTENT_TYPE
                    body = resp.read().decode("utf-8")
        assert "repro_engine_epochs_total 5" in body
        assert body.endswith("# EOF\n")

    def test_query_serve_metrics_lifecycle(self, tmp_path):
        session = Session()
        stream = make_stream((("k", "string"), ("v", "long")))
        df = session.read_stream.memory(stream).select("k", "v")
        with metrics.enabled():
            query = start_memory_query(df, "append", "serve",
                                       str(tmp_path / "cp"))
            server = query.serve_metrics()
            url = server.url
            stream.add_data([{"k": "a", "v": 1}])
            query.process_all_available()
            with urllib.request.urlopen(url, timeout=5) as resp:
                body = resp.read().decode("utf-8")
            assert "repro_engine_epochs_total 1" in body
            query.stop()  # closes the server too
        with pytest.raises(urllib.error.URLError):
            urllib.request.urlopen(url, timeout=1)

    def test_monitor_cli_serve_exits_cleanly(self, tmp_path, capsys):
        import threading

        from repro.tools import monitor

        events_path = tmp_path / "events.jsonl"
        events_path.write_text(json.dumps({
            "epoch": 0, "triggerTime": 1.0, "durationSeconds": 0.5,
            "numInputRows": 10, "numOutputRows": 8, "backlogRows": 0,
            "stateKeys": 3, "lateRowsDropped": 0,
        }) + "\n")
        scraped = {}

        def scrape_soon():
            time.sleep(0.2)
            out = capsys.readouterr().out  # "serving OpenMetrics at <url>"
            url = out.strip().rsplit(" ", 1)[-1]
            with urllib.request.urlopen(url, timeout=5) as resp:
                scraped["body"] = resp.read().decode("utf-8")

        thread = threading.Thread(target=scrape_soon)
        thread.start()
        url = monitor.main([str(events_path), "--serve", "--port", "0",
                            "--serve-seconds", "1"])
        thread.join()
        # main returns the URL even after the server is closed.
        assert url.startswith("http://127.0.0.1:")
        assert "repro_engine_epochs_total 1" in scraped["body"]

    def test_monitor_serve_replays_event_log(self, tmp_path):
        from repro.tools.monitor import serve_events

        session = Session()
        stream = make_stream((("k", "string"), ("v", "long")))
        df = (session.read_stream.memory(stream)
              .group_by("k").agg(F.sum("v").alias("total")))
        cp = str(tmp_path / "cp")
        query = start_memory_query(df, "update", "replay", cp)
        for i in range(4):
            stream.add_data([{"k": "a", "v": i}])
            query.process_all_available()
        query.stop()

        server = serve_events(cp)
        try:
            with urllib.request.urlopen(server.url, timeout=5) as resp:
                body = resp.read().decode("utf-8")
        finally:
            server.close()
        assert "repro_engine_epochs_total 4" in body
        assert "repro_engine_rows_in_total 4" in body
        assert body.endswith("# EOF\n")
