"""Tests for the HyperLogLog sketch and approx_count_distinct."""

import json

import pytest
from hypothesis import given, strategies as st

from repro.sql import functions as F
from repro.sql.expressions import ApproxCountDistinct, ColumnRef
from repro.sql.hll import HyperLogLog

from tests.conftest import make_stream, start_memory_query


class TestSketch:
    def test_empty_cardinality_zero(self):
        assert HyperLogLog().cardinality() == 0

    def test_small_counts_exact_ish(self):
        sketch = HyperLogLog()
        for i in range(100):
            sketch.add(i)
        assert sketch.cardinality() == pytest.approx(100, rel=0.05)

    def test_duplicates_not_double_counted(self):
        sketch = HyperLogLog()
        for _ in range(1000):
            sketch.add("same")
        assert sketch.cardinality() == 1

    def test_large_counts_within_error(self):
        sketch = HyperLogLog(precision=12)
        n = 50_000
        for i in range(n):
            sketch.add(f"value-{i}")
        estimate = sketch.cardinality()
        assert estimate == pytest.approx(n, rel=4 * sketch.relative_error)

    def test_merge_equals_union(self):
        a, b = HyperLogLog(), HyperLogLog()
        for i in range(500):
            a.add(i)
        for i in range(250, 750):
            b.add(i)
        merged = a.merge(b)
        assert merged.cardinality() == pytest.approx(750, rel=0.06)

    def test_merge_precision_mismatch_rejected(self):
        with pytest.raises(ValueError):
            HyperLogLog(precision=10).merge(HyperLogLog(precision=12))

    def test_json_roundtrip(self):
        sketch = HyperLogLog()
        for i in range(100):
            sketch.add(i)
        restored = HyperLogLog.from_json(json.loads(json.dumps(sketch.to_json())))
        assert restored.cardinality() == sketch.cardinality()

    def test_precision_bounds(self):
        with pytest.raises(ValueError):
            HyperLogLog(precision=3)
        with pytest.raises(ValueError):
            HyperLogLog(precision=17)

    def test_relative_error_decreases_with_precision(self):
        assert HyperLogLog(precision=14).relative_error < \
            HyperLogLog(precision=10).relative_error
    @given(values=st.lists(st.integers(0, 1000), max_size=300))
    def test_merge_commutative(self, values):
        half = len(values) // 2
        a, b = HyperLogLog(precision=8), HyperLogLog(precision=8)
        for v in values[:half]:
            a.add(v)
        for v in values[half:]:
            b.add(v)
        assert a.merge(b).registers == b.merge(a).registers


class TestApproxCountDistinctAggregate:
    def test_batch_aggregate(self, session):
        rows = [{"k": "a", "v": i % 50} for i in range(500)]
        df = session.create_dataframe(rows, (("k", "string"), ("v", "long")))
        out = df.group_by("k").agg(
            F.approx_count_distinct("v").alias("d")).collect()
        assert out[0]["d"] == pytest.approx(50, abs=4)

    def test_streaming_bounded_state(self, session):
        stream = make_stream((("k", "string"), ("v", "long")))
        df = (session.read_stream.memory(stream)
              .group_by("k")
              .agg(F.approx_count_distinct("v", precision=8).alias("d")))
        query = start_memory_query(df, "update", "out")
        for chunk_start in range(0, 3000, 1000):
            stream.add_data([
                {"k": "a", "v": chunk_start + i} for i in range(1000)])
            query.process_all_available()
        (row,) = query.engine.sink.rows()
        assert row["d"] == pytest.approx(3000, rel=0.3)
        # The whole point: one bounded buffer regardless of cardinality.
        handle = query.engine.state_store.handle("agg-0")
        buffer = handle.get(("a",))
        assert len(buffer[0]) == 2 ** 8

    def test_sql_function(self, session):
        rows = [{"v": i % 20} for i in range(100)]
        session.create_dataframe(rows, (("v", "long"),)) \
            .create_or_replace_temp_view("t")
        out = session.sql(
            "SELECT APPROX_COUNT_DISTINCT(v) AS d FROM t GROUP BY 1 = 1"
        )
        del out  # grouping by a constant expression: just check next form
        out2 = session.sql(
            "SELECT v % 2 AS parity, APPROX_COUNT_DISTINCT(v) AS d "
            "FROM t GROUP BY v % 2").collect()
        assert {r["parity"]: r["d"] for r in out2} == {0: 10, 1: 10}

    def test_update_and_finish_protocol(self):
        agg = ApproxCountDistinct(ColumnRef("x"), precision=8)
        buffer = agg.init()
        for i in range(200):
            buffer = agg.update(buffer, i)
        buffer = agg.update(buffer, None)  # nulls skipped
        assert agg.finish(buffer) == pytest.approx(200, rel=0.25)
