"""Unit tests for logical plan nodes: schemas, validation, explain."""

import pytest

from repro.sql import expressions as E
from repro.sql import logical as L
from repro.sql.expressions import AnalysisError
from repro.sql.types import StructType

SCHEMA = StructType((("k", "long"), ("v", "double"), ("s", "string"),
                     ("t", "timestamp")))


def scan(streaming=False, schema=SCHEMA, name="src"):
    return L.Scan(schema, None, streaming, name=name)


class TestScan:
    def test_schema(self):
        assert scan().schema == SCHEMA

    def test_streaming_flag(self):
        assert scan(streaming=True).is_streaming
        assert not scan().is_streaming

    def test_describe_distinguishes_stream(self):
        assert "StreamScan" in scan(streaming=True).describe()
        assert scan().describe().startswith("Scan")


class TestProject:
    def test_schema_names_and_types(self):
        p = L.Project([E.ColumnRef("k"), (E.ColumnRef("v") * 2).alias("v2")], scan())
        assert p.schema.names == ["k", "v2"]
        assert p.schema.type_of("v2").simple_name == "double"

    def test_duplicate_output_rejected(self):
        with pytest.raises(AnalysisError, match="duplicate"):
            L.Project([E.ColumnRef("k"), E.ColumnRef("k")], scan())

    def test_unresolved_column_fails_on_schema(self):
        p = L.Project([E.ColumnRef("nope")], scan())
        with pytest.raises(AnalysisError):
            p.schema

    def test_streaming_propagates(self):
        assert L.Project([E.ColumnRef("k")], scan(streaming=True)).is_streaming


class TestFilter:
    def test_passthrough_schema(self):
        f = L.Filter(E.ColumnRef("k") > 0, scan())
        assert f.schema == SCHEMA

    def test_non_boolean_condition_rejected(self):
        f = L.Filter(E.ColumnRef("k") + 1, scan())
        with pytest.raises(AnalysisError, match="boolean"):
            f.schema


class TestAggregate:
    def test_plain_grouping_schema(self):
        agg = L.Aggregate([E.ColumnRef("s")], [(E.Count(None), "n")], scan())
        assert agg.schema.names == ["s", "n"]

    def test_window_expands_to_start_end(self):
        w = E.WindowExpr(E.ColumnRef("t"), 10.0)
        agg = L.Aggregate([E.ColumnRef("s"), w], [(E.Count(None), "n")], scan())
        assert agg.schema.names == ["s", "window_start", "window_end", "n"]
        assert agg.key_names == ["s", "window_start", "window_end"]

    def test_two_windows_rejected(self):
        w = E.WindowExpr(E.ColumnRef("t"), 10.0)
        with pytest.raises(AnalysisError, match="one window"):
            L.Aggregate([w, E.WindowExpr(E.ColumnRef("t"), 5.0)], [(E.Count(None), "n")], scan())

    def test_agg_type_resolution(self):
        agg = L.Aggregate([E.ColumnRef("s")], [(E.Avg(E.ColumnRef("v")), "m")], scan())
        assert agg.schema.type_of("m").simple_name == "double"


class TestJoin:
    def test_keys_emitted_once(self):
        right = scan(schema=StructType((("k", "long"), ("r", "string"))))
        join = L.Join(scan(), right, on="k")
        assert join.schema.names == ["k", "v", "s", "t", "r"]

    def test_missing_key_rejected(self):
        right = scan(schema=StructType((("z", "long"),)))
        with pytest.raises(AnalysisError, match="must exist"):
            L.Join(scan(), right, on="k").schema

    def test_type_mismatch_rejected(self):
        right = scan(schema=StructType((("k", "string"),)))
        with pytest.raises(AnalysisError, match="mismatched"):
            L.Join(scan(), right, on="k").schema

    def test_ambiguous_non_key_columns_rejected(self):
        right = scan(schema=StructType((("k", "long"), ("v", "double"))))
        with pytest.raises(AnalysisError, match="ambiguous"):
            L.Join(scan(), right, on="k").schema

    def test_unknown_join_type_rejected(self):
        with pytest.raises(AnalysisError, match="unsupported join type"):
            L.Join(scan(), scan(schema=StructType((("k", "long"),))), "k", "full_outer")

    def test_left_outer_promotes_right_columns(self):
        right = scan(schema=StructType((("k", "long"), ("n", "long"))))
        join = L.Join(scan(), right, on="k", how="left_outer")
        assert join.schema.type_of("n").simple_name == "double"

    def test_right_outer_promotes_left_non_keys(self):
        right = scan(schema=StructType((("k", "long"), ("n", "long"))))
        join = L.Join(scan(), right, on="k", how="right_outer")
        assert join.schema.type_of("v").simple_name == "double"
        assert join.schema.type_of("k").simple_name == "long"

    def test_empty_key_list_rejected(self):
        with pytest.raises(AnalysisError, match="at least one"):
            L.Join(scan(), scan(), on=[])


class TestOtherNodes:
    def test_sort_schema_and_validation(self):
        s = L.Sort([("k", True)], scan())
        assert s.schema == SCHEMA
        with pytest.raises(AnalysisError):
            L.Sort([("zzz", True)], scan()).schema

    def test_limit_negative_rejected(self):
        with pytest.raises(AnalysisError):
            L.Limit(-1, scan())

    def test_dedup_unknown_column(self):
        with pytest.raises(AnalysisError):
            L.Deduplicate(["zzz"], scan()).schema

    def test_union_schema_match(self):
        assert L.Union(scan(), scan()).schema == SCHEMA
        other = scan(schema=StructType((("x", "long"),)))
        with pytest.raises(AnalysisError, match="union"):
            L.Union(scan(), other).schema

    def test_watermark_validates_column(self):
        wm = L.WithWatermark("t", "10s", scan())
        assert wm.schema == SCHEMA
        assert wm.delay == 10.0
        with pytest.raises(AnalysisError):
            L.WithWatermark("zzz", "10s", scan()).schema

    def test_map_groups_schema_is_user_supplied(self):
        out_schema = StructType((("k", "long"), ("n", "long")))
        node = L.MapGroupsWithState(["k"], lambda *a: None, out_schema, scan())
        assert node.schema == out_schema

    def test_map_groups_bad_key_column(self):
        out_schema = StructType((("n", "long"),))
        node = L.MapGroupsWithState(["zzz"], lambda *a: None, out_schema, scan())
        with pytest.raises(AnalysisError):
            node.schema

    def test_map_groups_bad_timeout_conf(self):
        with pytest.raises(AnalysisError, match="timeout"):
            L.MapGroupsWithState(["k"], lambda *a: None, SCHEMA, scan(), timeout="weird")


class TestTreeUtilities:
    def test_explain_string_tree_shape(self):
        plan = L.Filter(E.ColumnRef("k") > 0, L.Project([E.ColumnRef("k")], scan()))
        text = plan.explain_string()
        assert text.splitlines()[0].startswith("Filter")
        assert "+- Project" in text
        assert "+- Scan" in text

    def test_collect_nodes_filters_by_type(self):
        plan = L.Filter(E.ColumnRef("k") > 0, L.Filter(E.ColumnRef("k") < 9, scan()))
        assert len(plan.collect_nodes(L.Filter)) == 2
        assert len(plan.collect_nodes(L.Scan)) == 1

    def test_with_children_rebuild(self):
        f = L.Filter(E.ColumnRef("k") > 0, scan())
        other = scan(name="other")
        rebuilt = f.with_children((other,))
        assert rebuilt.child is other
        assert rebuilt.condition is f.condition
