"""Unit tests for the rule-based optimizer (§5.3).

Each rule is checked for both its rewrite and for semantic preservation
(optimized plan produces the same rows).
"""

import pytest

from repro.sql import expressions as E
from repro.sql import logical as L
from repro.sql import optimizer as O
from repro.sql.batch import RecordBatch
from repro.sql.physical import execute
from repro.sql.session import _InMemoryProvider
from repro.sql.types import StructType

SCHEMA = StructType((("k", "long"), ("v", "double"), ("s", "string")))

ROWS = [
    {"k": 1, "v": 1.0, "s": "a"},
    {"k": 2, "v": 2.0, "s": "b"},
    {"k": 3, "v": 3.0, "s": "a"},
]


def scan(rows=ROWS, schema=SCHEMA):
    provider = _InMemoryProvider([RecordBatch.from_rows(rows, schema)])
    return L.Scan(schema, provider, False, name="t")


def rows_of(plan):
    return execute(plan).to_rows()


def assert_same_rows(plan):
    optimized = O.optimize(plan)
    assert sorted(map(str, rows_of(optimized))) == sorted(map(str, rows_of(plan)))
    return optimized


class TestCombineFilters:
    def test_stacked_filters_merge(self):
        plan = L.Filter(E.ColumnRef("k") > 1, L.Filter(E.ColumnRef("v") < 3, scan()))
        optimized = O.optimize(plan)
        filters = optimized.collect_nodes(L.Filter)
        assert len(filters) == 1
        assert " AND " in str(filters[0].condition)

    def test_semantics_preserved(self):
        plan = L.Filter(E.ColumnRef("k") > 1, L.Filter(E.ColumnRef("v") < 3, scan()))
        out = assert_same_rows(plan)
        assert [r["k"] for r in rows_of(out)] == [2]


class TestSimplifyFilters:
    def test_always_true_filter_removed(self):
        plan = L.Filter(E.Comparison(E.Literal(1), E.Literal(1), "=="), scan())
        optimized = O.optimize(plan)
        assert not optimized.collect_nodes(L.Filter)

    def test_constant_subexpression_folded(self):
        condition = E.ColumnRef("v") > (E.Literal(1) + E.Literal(1))
        plan = L.Filter(condition, scan())
        optimized = O.optimize(plan)
        (f,) = optimized.collect_nodes(L.Filter)
        assert "2" in str(f.condition)
        assert "+" not in str(f.condition)


class TestPushFilterThroughProject:
    def test_pushdown_happens(self):
        project = L.Project([E.ColumnRef("k"), (E.ColumnRef("v") * 2).alias("v2")], scan())
        plan = L.Filter(E.ColumnRef("k") > 1, project)
        optimized = O.optimize(plan)
        # Filter should now sit below the projection.
        assert isinstance(optimized, L.Project)
        assert isinstance(optimized.child, L.Filter)

    def test_computed_column_filter_substituted(self):
        project = L.Project([(E.ColumnRef("v") * 2).alias("v2")], scan())
        plan = L.Filter(E.ColumnRef("v2") > 3, project)
        optimized = assert_same_rows(plan)
        (f,) = optimized.collect_nodes(L.Filter)
        assert "v * 2" in str(f.condition).replace("(", "").replace(")", "")

    def test_udf_projection_not_duplicated(self):
        udf = E.Udf(lambda v: v * 2, [E.ColumnRef("v")], SCHEMA.type_of("v"))
        project = L.Project([udf.alias("u")], scan())
        plan = L.Filter(E.ColumnRef("u") > 3, project)
        optimized = O.optimize(plan)
        assert isinstance(optimized, L.Filter)  # not pushed


class TestPushFilterThroughJoin:
    RIGHT = StructType((("k", "long"), ("r", "double")))
    RIGHT_ROWS = [{"k": 1, "r": 10.0}, {"k": 2, "r": 20.0}]

    def _join_plan(self):
        return L.Join(scan(), scan(self.RIGHT_ROWS, self.RIGHT), on="k")

    def test_left_conjunct_pushed(self):
        plan = L.Filter(E.ColumnRef("v") > 1, self._join_plan())
        optimized = O.optimize(plan)
        assert isinstance(optimized, L.Join)
        assert isinstance(optimized.left, L.Filter)

    def test_mixed_conjuncts_split(self):
        condition = (E.ColumnRef("v") > 0) & (E.ColumnRef("r") > 15)
        plan = L.Filter(condition, self._join_plan())
        optimized = assert_same_rows(plan)
        assert isinstance(optimized, L.Join)
        assert isinstance(optimized.left, L.Filter)
        assert isinstance(optimized.right, L.Filter)

    def test_cross_side_conjunct_stays(self):
        condition = E.ColumnRef("v") < E.ColumnRef("r")
        plan = L.Filter(condition, self._join_plan())
        optimized = O.optimize(plan)
        assert isinstance(optimized, L.Filter)

    def test_outer_join_not_pushed(self):
        join = L.Join(scan(), scan(self.RIGHT_ROWS, self.RIGHT), on="k", how="left_outer")
        plan = L.Filter(E.ColumnRef("v") > 1, join)
        optimized = O.optimize(plan)
        assert isinstance(optimized, L.Filter)


class TestWatermarkCommute:
    def test_filter_pushed_below_watermark(self):
        plan = L.Filter(
            E.ColumnRef("k") > 1, L.WithWatermark("v", "10s", scan())
        )
        optimized = O.optimize(plan)
        assert isinstance(optimized, L.WithWatermark)
        assert isinstance(optimized.child, L.Filter)


class TestCollapseProjects:
    def test_two_projects_become_one(self):
        inner = L.Project([E.ColumnRef("k"), (E.ColumnRef("v") * 2).alias("v2")], scan())
        outer = L.Project([(E.ColumnRef("v2") + 1).alias("v3")], inner)
        optimized = assert_same_rows(outer)
        computing = [
            p for p in optimized.collect_nodes(L.Project)
            if not all(isinstance(e, E.ColumnRef) for e in p.exprs)
        ]
        assert len(computing) == 1  # pruning projections may remain

    def test_semantics(self):
        inner = L.Project([(E.ColumnRef("v") * 2).alias("v2")], scan())
        outer = L.Project([(E.ColumnRef("v2") + 1).alias("v3")], inner)
        assert [r["v3"] for r in rows_of(O.optimize(outer))] == [3.0, 5.0, 7.0]


class TestColumnPruning:
    def test_aggregate_prunes_scan_columns(self):
        agg = L.Aggregate([E.ColumnRef("s")], [(E.Count(None), "n")], scan())
        optimized = O.optimize(agg)
        projects = optimized.collect_nodes(L.Project)
        assert projects, "expected a pruning projection above the scan"
        assert projects[-1].schema.names == ["s"]

    def test_prune_through_filter(self):
        agg = L.Aggregate(
            [E.ColumnRef("s")], [(E.Count(None), "n")],
            L.Filter(E.ColumnRef("k") > 0, scan()),
        )
        optimized = assert_same_rows(agg)
        projects = optimized.collect_nodes(L.Project)
        assert projects
        assert set(projects[-1].schema.names) == {"s", "k"}


class TestExpressionTransforms:
    def test_substitute_columns(self):
        expr = E.ColumnRef("a") + E.ColumnRef("b")
        replaced = O.substitute_columns(expr, {"a": E.Literal(5)})
        assert replaced.eval_row({"b": 2}) == 7

    def test_fold_constants_keeps_columns(self):
        expr = (E.Literal(2) * E.Literal(3)) + E.ColumnRef("k")
        folded = O.fold_constants(expr)
        assert folded.eval_row({"k": 1}) == 7
        assert "2" not in str(folded) or "6" in str(folded)

    def test_split_and_join_conjuncts(self):
        expr = (E.ColumnRef("a") > 1) & ((E.ColumnRef("b") > 2) & (E.ColumnRef("c") > 3))
        conjuncts = O.split_conjuncts(expr)
        assert len(conjuncts) == 3
        rejoined = O.join_conjuncts(conjuncts)
        row = {"a": 5, "b": 5, "c": 5}
        assert rejoined.eval_row(row) == expr.eval_row(row)

    def test_optimize_terminates(self):
        plan = scan()
        for _ in range(5):
            plan = L.Filter(E.ColumnRef("k") > 0, plan)
        optimized = O.optimize(plan)
        assert len(optimized.collect_nodes(L.Filter)) == 1
