"""Whole-plan compiler tests (§5.3 analogue).

Two families of guarantees:

* **Equivalence** — the compiled, stage-fused pipeline produces exactly
  the batches that interpreted row-at-a-time evaluation (``eval_row``)
  does, across randomized filter/project chains and windowed aggregates
  (property-based, hypothesis).
* **Compile-once** — a streaming query compiles its plan at start and
  never again: no ``compile_expression`` call and no plan compilation
  happens while epochs are served (spy + counter).
"""

import math

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.sql import expressions as E
from repro.sql import functions as F
from repro.sql import logical as L
from repro.sql import plancompiler
from repro.sql.batch import RecordBatch
from repro.sql.physical import execute, execute_interpreted
from repro.sql.session import Session
from repro.sql.types import StructType

from tests.conftest import make_stream, rows_set, start_memory_query


SCHEMA = StructType((("a", "long"), ("b", "double"), ("k", "string")))


def scan_of(schema=SCHEMA):
    return L.Scan(schema, None, False, name="input")


def run_compiled(plan, scan, batch):
    return plancompiler.compile_plan(plan)({id(scan): batch})


def run_rows(plan, rows):
    """Reference: interpret the plan row-at-a-time with ``eval_row``."""
    if isinstance(plan, L.Scan):
        return rows
    child_rows = run_rows(plan.child, rows)
    if isinstance(plan, L.Filter):
        return [r for r in child_rows if bool(plan.condition.eval_row(r))]
    if isinstance(plan, L.Project):
        return [
            {e.output_name: e.eval_row(r) for e in plan.exprs}
            for r in child_rows
        ]
    raise NotImplementedError(type(plan).__name__)


def assert_rows_equal(batch, expected_rows):
    assert batch.schema.names == (
        list(expected_rows[0].keys()) if expected_rows else batch.schema.names
    )
    actual = [dict(r.items()) for r in batch.to_rows()]
    assert len(actual) == len(expected_rows)
    for got, want in zip(actual, expected_rows):
        assert got.keys() == want.keys()
        for name in want:
            g, w = got[name], want[name]
            if isinstance(w, float) or isinstance(g, float):
                assert g == pytest.approx(w, rel=1e-9, abs=1e-9), name
            else:
                assert g == w, name


# ---------------------------------------------------------------------------
# Randomized stateless plans
# ---------------------------------------------------------------------------

rows_strategy = st.lists(
    st.builds(
        lambda a, b, k: {"a": a, "b": b, "k": k},
        st.integers(-50, 50),
        st.floats(-100, 100, allow_nan=False, width=32).map(float),
        st.sampled_from(["x", "y", "z"]),
    ),
    min_size=0, max_size=30,
)


def _predicate(draw, columns):
    """A random total boolean expression over the available columns."""
    name = draw(st.sampled_from(columns))
    ref = E.ColumnRef(name)
    if name == "k":
        kind = draw(st.sampled_from(["eq", "in", "like"]))
        if kind == "eq":
            return E.Comparison(ref, E.Literal(draw(st.sampled_from("xyz"))), "==")
        if kind == "in":
            return E.In(ref, ["x", "y"])
        return E.Like(ref, draw(st.sampled_from(["x%", "%y", "z"])))
    op = draw(st.sampled_from([">", "<", ">=", "<=", "==", "!="]))
    bound = E.Literal(draw(st.integers(-40, 40)))
    base = E.Comparison(ref, bound, op)
    if draw(st.booleans()):
        return E.Not(base)
    return base


def _numeric_expr(draw, columns):
    """A random total numeric expression over the available columns."""
    numeric = [c for c in columns if c != "k"]
    name = draw(st.sampled_from(numeric))
    expr = E.ColumnRef(name)
    for _ in range(draw(st.integers(0, 2))):
        op = draw(st.sampled_from(["+", "-", "*"]))
        other = draw(st.one_of(
            st.integers(-5, 5).map(E.Literal),
            st.sampled_from(numeric).map(E.ColumnRef),
        ))
        expr = E.Arithmetic(expr, other, op)
    return expr


@st.composite
def stateless_plans(draw):
    """A random chain of 1-5 Filter/Project nodes over the scan."""
    scan = scan_of()
    plan = scan
    columns = list(SCHEMA.names)
    for _ in range(draw(st.integers(1, 5))):
        if draw(st.booleans()):
            cond = _predicate(draw, columns)
            if draw(st.booleans()):
                cond = E.BooleanOp(cond, _predicate(draw, columns),
                                   draw(st.sampled_from(["and", "or"])))
            plan = L.Filter(cond, plan)
        else:
            width = draw(st.integers(1, 3))
            exprs = [
                E.Alias(_numeric_expr(draw, columns), f"c{i}")
                for i in range(width)
            ]
            keep_k = "k" in columns and draw(st.booleans())
            if keep_k:
                exprs.append(E.ColumnRef("k"))
            plan = L.Project(exprs, plan)
            columns = [f"c{i}" for i in range(width)] + (["k"] if keep_k else [])
    return plan, scan


@given(plan_scan=stateless_plans(), rows=rows_strategy)
def test_compiled_plan_equals_row_interpretation(plan_scan, rows):
    plan, scan = plan_scan
    batch = RecordBatch.from_rows(rows, SCHEMA)
    result = run_compiled(plan, scan, batch)
    assert_rows_equal(result, run_rows(plan, rows))


@given(plan_scan=stateless_plans(), rows=rows_strategy)
def test_compiled_plan_equals_interpreted_executor(plan_scan, rows):
    plan, scan = plan_scan
    batch = RecordBatch.from_rows(rows, SCHEMA)
    compiled = run_compiled(plan, scan, batch)
    interpreted = execute_interpreted(plan, {id(scan): batch})
    assert compiled.schema.names == interpreted.schema.names
    assert compiled.num_rows == interpreted.num_rows
    for name in compiled.schema.names:
        got, want = compiled.columns[name], interpreted.columns[name]
        if got.dtype == object or want.dtype == object:
            assert list(got) == list(want)
        else:
            np.testing.assert_allclose(got, want, rtol=1e-12)


# ---------------------------------------------------------------------------
# Randomized windowed aggregates
# ---------------------------------------------------------------------------

timed_rows = st.lists(
    st.builds(
        lambda t, v, k: {"t": float(t), "v": float(v), "k": k},
        st.floats(0, 100, allow_nan=False, width=16).map(float),
        st.integers(-20, 20),
        st.sampled_from(["x", "y"]),
    ),
    min_size=0, max_size=40,
)


@given(rows=timed_rows, duration=st.sampled_from([5.0, 10.0]),
       slide=st.sampled_from([None, 5.0]))
def test_compiled_window_aggregate_equals_row_interpretation(
        rows, duration, slide):
    schema = StructType((("t", "double"), ("v", "double"), ("k", "string")))
    scan = L.Scan(schema, None, False, name="input")
    window = E.WindowExpr(E.ColumnRef("t"), duration, slide)
    plan = L.Aggregate(
        [E.ColumnRef("k"), window],
        [(E.Count(None), "n"), (E.Sum(E.ColumnRef("v")), "s")],
        scan,
    )
    batch = RecordBatch.from_rows(rows, schema)
    result = run_compiled(plan, scan, batch)

    # Row-at-a-time reference: assign each row to its windows, tally.
    expected = {}
    for row in rows:
        for start in window.assign_row(row):
            key = (row["k"], start)
            n, s = expected.get(key, (0, 0.0))
            expected[key] = (n + 1, s + row["v"])

    got = {
        (r["k"], r["window_start"]): (r["n"], r["s"], r["window_end"])
        for r in (dict(x.items()) for x in result.to_rows())
    }
    assert set(got) == set(expected)
    for key, (n, s) in expected.items():
        gn, gs, gend = got[key]
        assert gn == n
        assert gs == pytest.approx(s, rel=1e-9, abs=1e-9)
        assert gend == pytest.approx(key[1] + duration)


# ---------------------------------------------------------------------------
# Fusion-specific cases
# ---------------------------------------------------------------------------

def test_fused_filters_match_sequential_semantics():
    scan = scan_of()
    plan = L.Filter(
        E.Comparison(E.ColumnRef("b"), E.Literal(0.0), ">"),
        L.Filter(E.Comparison(E.ColumnRef("a"), E.Literal(0), ">"), scan),
    )
    rows = [
        {"a": 1, "b": 1.0, "k": "x"},
        {"a": -1, "b": 5.0, "k": "y"},
        {"a": 3, "b": -2.0, "k": "z"},
        {"a": 2, "b": 0.5, "k": "x"},
    ]
    out = run_compiled(plan, scan, RecordBatch.from_rows(rows, SCHEMA))
    assert [dict(r.items()) for r in out.to_rows()] == [rows[0], rows[3]]


def test_unsafe_filter_never_sees_rows_removed_below_it():
    # A UDF predicate that raises for a == 0 sits above a filter that
    # removes exactly those rows.  Naive mask-combining would evaluate
    # the UDF on the unfiltered input and blow up; the compiler must
    # seal the stage at the unsafe predicate instead.
    def explosive(a):
        if a == 0:
            raise ValueError("saw a filtered-out row")
        return a > 1

    from repro.sql.types import BOOLEAN

    scan = scan_of()
    plan = L.Filter(
        E.Udf(explosive, [E.ColumnRef("a")], BOOLEAN, "explosive"),
        L.Filter(E.Comparison(E.ColumnRef("a"), E.Literal(0), "!="), scan),
    )
    rows = [{"a": 0, "b": 1.0, "k": "x"}, {"a": 2, "b": 2.0, "k": "y"},
            {"a": 1, "b": 3.0, "k": "z"}]
    out = run_compiled(plan, scan, RecordBatch.from_rows(rows, SCHEMA))
    assert [r["a"] for r in out.to_rows()] == [2]


def test_projection_inlines_through_filter():
    # project (a+1 as c) -> filter (c > 2) -> project (c*2 as d): the
    # whole chain fuses to one stage; output names come from the original
    # projections, not the inlined expressions.
    scan = scan_of()
    plan = L.Project(
        [E.Alias(E.Arithmetic(E.ColumnRef("c"), E.Literal(2), "*"), "d")],
        L.Filter(
            E.Comparison(E.ColumnRef("c"), E.Literal(2), ">"),
            L.Project(
                [E.Alias(E.Arithmetic(E.ColumnRef("a"), E.Literal(1), "+"), "c")],
                scan,
            ),
        ),
    )
    rows = [{"a": 0, "b": 0.0, "k": "x"}, {"a": 2, "b": 0.0, "k": "y"},
            {"a": 5, "b": 0.0, "k": "z"}]
    out = run_compiled(plan, scan, RecordBatch.from_rows(rows, SCHEMA))
    assert out.schema.names == ["d"]
    assert [r["d"] for r in out.to_rows()] == [6, 12]


# ---------------------------------------------------------------------------
# Compile-once: no plan-time work on the hot path
# ---------------------------------------------------------------------------

def test_batch_execute_compiles_a_plan_object_once():
    session = Session()
    df = (session.create_dataframe(
        [{"a": i, "b": float(i), "k": "x"} for i in range(10)],
        (("a", "long"), ("b", "double"), ("k", "string")))
        .where(F.col("a") > 2).select("a"))
    plan = df.plan
    before = plancompiler.PLAN_COMPILATIONS
    first = execute(plan)
    after_first = plancompiler.PLAN_COMPILATIONS
    second = execute(plan)
    assert plancompiler.PLAN_COMPILATIONS == after_first > before
    assert rows_set(first.to_rows()) == rows_set(second.to_rows())


def test_streaming_epochs_do_no_expression_compilation(monkeypatch, tmp_path):
    """The acceptance criterion: after the query starts, serving epochs
    calls neither compile_expression nor compile_plan."""
    stream = make_stream((("k", "string"), ("t", "double")))
    session = Session()
    df = (session.read_stream.memory(stream)
          .with_watermark("t", "10 seconds")
          .where(F.col("t") >= 0)
          .select("k", (F.col("t") * 1).alias("t"))
          .group_by("k", F.window(F.col("t"), "10 seconds"))
          .agg(F.count().alias("n")))
    query = start_memory_query(df, "update", "compile_spy", str(tmp_path))
    stream.add_data([{"k": "a", "t": 1.0}, {"k": "b", "t": 2.0}])
    query.process_all_available()

    # Arm the spies only after the first epoch: construction-time
    # compilation is expected, per-epoch compilation is the bug.
    calls = {"expr": 0}
    import repro.sql.codegen as codegen_mod
    import repro.sql.physical as physical_mod
    real = codegen_mod.compile_expression

    def spy(expr, schema):
        calls["expr"] += 1
        return real(expr, schema)

    monkeypatch.setattr(codegen_mod, "compile_expression", spy)
    monkeypatch.setattr(physical_mod, "compile_expression", spy)
    plans_before = plancompiler.PLAN_COMPILATIONS

    for epoch in range(3):
        stream.add_data([
            {"k": "a", "t": 3.0 + epoch}, {"k": "c", "t": 4.0 + epoch},
        ])
        query.process_all_available()

    assert calls["expr"] == 0
    assert plancompiler.PLAN_COMPILATIONS == plans_before
    query.stop()
