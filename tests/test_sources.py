"""Tests for streaming sources: the replayability contract (§3, §6.1)."""

import pytest

from repro.bus import Broker
from repro.sources.file import FileSourceDescriptor, FileStreamSource
from repro.sources.kafka import KafkaSourceDescriptor
from repro.sources.memory import MemoryStream
from repro.sources.rate import RateSource
from repro.sql.types import StructType
from repro.storage import write_jsonl

SCHEMA = StructType((("v", "long"),))


class TestKafkaSource:
    @pytest.fixture
    def source(self):
        broker = Broker()
        topic = broker.create_topic("t", 2)
        topic.publish_to(0, [{"v": 1}, {"v": 2}])
        topic.publish_to(1, [{"v": 10}])
        return KafkaSourceDescriptor(broker, "t", SCHEMA).create()

    def test_partitions(self, source):
        assert source.partitions() == ["0", "1"]

    def test_offsets(self, source):
        assert source.initial_offsets() == {"0": 0, "1": 0}
        assert source.latest_offsets() == {"0": 2, "1": 1}

    def test_get_batch_merges_partitions(self, source):
        batch = source.get_batch({"0": 0, "1": 0}, {"0": 2, "1": 1})
        assert sorted(batch.column("v").tolist()) == [1, 2, 10]

    def test_partial_range(self, source):
        batch = source.get_batch({"0": 1, "1": 0}, {"0": 2, "1": 0})
        assert batch.column("v").tolist() == [2]

    def test_replayable(self, source):
        a = source.get_batch({"0": 0, "1": 0}, {"0": 2, "1": 1})
        b = source.get_batch({"0": 0, "1": 0}, {"0": 2, "1": 1})
        assert a.to_rows() == b.to_rows()

    def test_json_records_mode(self):
        broker = Broker()
        topic = broker.create_topic("j")
        topic.publish_to(0, ['{"v": 5}'])
        source = KafkaSourceDescriptor(broker, "j", SCHEMA, records_are_json=True).create()
        assert source.get_batch({"0": 0}, {"0": 1}).to_rows() == [{"v": 5}]

    def test_offsets_delta(self, source):
        assert source.offsets_delta({"0": 0, "1": 0}, {"0": 2, "1": 1}) == 3


class TestFileSource:
    @pytest.fixture
    def directory(self, tmp_path):
        return str(tmp_path / "in")

    def test_empty_directory(self, directory):
        source = FileStreamSource(directory, SCHEMA)
        assert source.latest_offsets() == {"files": 0}

    def test_files_become_offsets(self, directory):
        source = FileStreamSource(directory, SCHEMA)
        write_jsonl(f"{directory}/a.jsonl", [{"v": 1}])
        write_jsonl(f"{directory}/b.jsonl", [{"v": 2}, {"v": 3}])
        assert source.latest_offsets() == {"files": 2}
        batch = source.get_batch({"files": 0}, {"files": 2})
        assert batch.column("v").tolist() == [1, 2, 3]

    def test_incremental_reads_only_new_files(self, directory):
        source = FileStreamSource(directory, SCHEMA)
        write_jsonl(f"{directory}/a.jsonl", [{"v": 1}])
        first_end = source.latest_offsets()
        write_jsonl(f"{directory}/b.jsonl", [{"v": 2}])
        batch = source.get_batch(first_end, source.latest_offsets())
        assert batch.column("v").tolist() == [2]

    def test_sorted_listing_gives_stable_offsets(self, directory):
        source = FileStreamSource(directory, SCHEMA)
        write_jsonl(f"{directory}/2.jsonl", [{"v": 2}])
        write_jsonl(f"{directory}/1.jsonl", [{"v": 1}])
        batch = source.get_batch({"files": 0}, {"files": 2})
        assert batch.column("v").tolist() == [1, 2]

    def test_non_matching_suffix_ignored(self, directory):
        source = FileStreamSource(directory, SCHEMA)
        write_jsonl(f"{directory}/a.jsonl", [{"v": 1}])
        write_jsonl(f"{directory}/junk.txt", [{"v": 9}])
        assert source.latest_offsets() == {"files": 1}

    def test_descriptor_roundtrip(self, directory):
        descriptor = FileSourceDescriptor(directory, SCHEMA)
        write_jsonl(f"{directory}/a.jsonl", [{"v": 7}])
        assert descriptor.create().latest_offsets() == {"files": 1}


class TestRateSource:
    def test_deterministic_replay(self):
        clock_value = [0.0]
        source = RateSource(100.0, clock=lambda: clock_value[0])
        clock_value[0] = 1.0
        assert source.latest_offsets() == {"0": 100}
        a = source.get_batch({"0": 0}, {"0": 100})
        b = source.get_batch({"0": 0}, {"0": 100})
        assert a.column("value").tolist() == b.column("value").tolist()

    def test_timestamps_spaced_by_rate(self):
        clock_value = [0.0]
        source = RateSource(10.0, clock=lambda: clock_value[0])
        batch = source.get_batch({"0": 0}, {"0": 3})
        t = batch.column("timestamp")
        assert (t[1] - t[0]) == pytest.approx(0.1)

    def test_values_are_sequence_numbers(self):
        source = RateSource(10.0, clock=lambda: 0.0)
        assert source.get_batch({"0": 2}, {"0": 5}).column("value").tolist() == [2, 3, 4]


class TestMemoryStream:
    def test_add_and_read(self):
        stream = MemoryStream(SCHEMA)
        stream.add_data([{"v": 1}, {"v": 2}])
        assert stream.latest_offsets() == {"0": 2}
        assert stream.get_batch({"0": 0}, {"0": 2}).column("v").tolist() == [1, 2]

    def test_fully_retained_for_replay(self):
        stream = MemoryStream(SCHEMA)
        stream.add_data([{"v": 1}])
        stream.add_data([{"v": 2}])
        assert stream.get_batch({"0": 0}, {"0": 1}).column("v").tolist() == [1]

    def test_is_its_own_descriptor(self):
        stream = MemoryStream(SCHEMA)
        assert stream.create() is stream

    def test_tuple_schema_accepted(self):
        stream = MemoryStream((("a", "string"),))
        stream.add_data([{"a": "x"}])
        assert stream.get_batch({"0": 0}, {"0": 1}).to_rows() == [{"a": "x"}]
