"""Tests for the SQL SELECT dialect (repro.sql.parser)."""

import pytest

from repro.sql.parser import SqlParseError

from tests.conftest import rows_set


ROWS = [
    {"country": "US", "latency": 10.0, "time": 3.0},
    {"country": "CA", "latency": 20.0, "time": 64.0},
    {"country": "US", "latency": 30.0, "time": 65.0},
]


@pytest.fixture
def sql(session):
    df = session.create_dataframe(
        ROWS, (("country", "string"), ("latency", "double"), ("time", "timestamp")))
    df.create_or_replace_temp_view("events")
    dim = session.create_dataframe(
        [{"country": "US", "region": "NA"}],
        (("country", "string"), ("region", "string")))
    dim.create_or_replace_temp_view("dim")
    return session.sql


class TestProjection:
    def test_star(self, sql):
        assert len(sql("SELECT * FROM events").collect()) == 3

    def test_columns(self, sql):
        out = sql("SELECT country FROM events").collect()
        assert [r["country"] for r in out] == ["US", "CA", "US"]

    def test_expression_with_alias(self, sql):
        out = sql("SELECT latency / 10 AS l FROM events").collect()
        assert [r["l"] for r in out] == [1.0, 2.0, 3.0]

    def test_implicit_alias(self, sql):
        out = sql("SELECT latency l FROM events").collect()
        assert "l" in out[0]

    def test_arithmetic_precedence(self, sql):
        out = sql("SELECT 1 + 2 * 3 AS x FROM events LIMIT 1").collect()
        assert out[0]["x"] == 7

    def test_unary_minus(self, sql):
        out = sql("SELECT -latency AS neg FROM events LIMIT 1").collect()
        assert out[0]["neg"] == -10.0

    def test_parentheses(self, sql):
        out = sql("SELECT (1 + 2) * 3 AS x FROM events LIMIT 1").collect()
        assert out[0]["x"] == 9


class TestWhere:
    def test_comparison(self, sql):
        assert len(sql("SELECT * FROM events WHERE latency > 15").collect()) == 2

    def test_equality_single_equals(self, sql):
        assert len(sql("SELECT * FROM events WHERE country = 'US'").collect()) == 2

    def test_not_equal_both_spellings(self, sql):
        assert len(sql("SELECT * FROM events WHERE country <> 'US'").collect()) == 1
        assert len(sql("SELECT * FROM events WHERE country != 'US'").collect()) == 1

    def test_and_or_not(self, sql):
        q = "SELECT * FROM events WHERE latency > 5 AND NOT country = 'CA' OR latency = 20"
        assert len(sql(q).collect()) == 3

    def test_in_list(self, sql):
        assert len(sql("SELECT * FROM events WHERE country IN ('CA', 'MX')").collect()) == 1

    def test_is_null(self, session):
        df = session.create_dataframe(
            [{"s": None}, {"s": "x"}], (("s", "string"),))
        df.create_or_replace_temp_view("t")
        assert len(session.sql("SELECT * FROM t WHERE s IS NULL").collect()) == 1
        assert len(session.sql("SELECT * FROM t WHERE s IS NOT NULL").collect()) == 1

    def test_string_escape(self, sql):
        assert sql("SELECT 'it''s' AS s FROM events LIMIT 1").collect()[0]["s"] == "it's"


class TestGroupBy:
    def test_count_star(self, sql):
        out = sql("SELECT country, COUNT(*) AS n FROM events GROUP BY country").collect()
        assert rows_set(out) == rows_set([
            {"country": "US", "n": 2}, {"country": "CA", "n": 1}])

    def test_all_aggregates(self, sql):
        out = sql(
            "SELECT country, SUM(latency) AS s, AVG(latency) AS a, "
            "MIN(latency) AS lo, MAX(latency) AS hi FROM events GROUP BY country"
        ).collect()
        us = next(r for r in out if r["country"] == "US")
        assert (us["s"], us["a"], us["lo"], us["hi"]) == (40.0, 20.0, 10.0, 30.0)

    def test_window_function(self, sql):
        out = sql(
            "SELECT WINDOW(time, '30 seconds'), COUNT(*) AS n "
            "FROM events GROUP BY WINDOW(time, '30 seconds')"
        ).collect()
        counts = {r["window_start"]: r["n"] for r in out}
        assert counts == {0.0: 1, 60.0: 2}

    def test_non_grouped_column_rejected(self, sql):
        with pytest.raises(SqlParseError, match="GROUP BY"):
            sql("SELECT latency, COUNT(*) FROM events GROUP BY country")

    def test_group_by_without_aggregate_rejected(self, sql):
        with pytest.raises(SqlParseError, match="aggregate"):
            sql("SELECT country FROM events GROUP BY country")

    def test_default_aggregate_name(self, sql):
        out = sql("SELECT country, COUNT(*) FROM events GROUP BY country").collect()
        assert "count" in out[0]


class TestOrderLimit:
    def test_order_desc(self, sql):
        out = sql("SELECT * FROM events ORDER BY latency DESC").collect()
        assert out[0]["latency"] == 30.0

    def test_order_asc_default(self, sql):
        out = sql("SELECT * FROM events ORDER BY latency").collect()
        assert out[0]["latency"] == 10.0

    def test_order_on_aggregate_alias(self, sql):
        out = sql(
            "SELECT country, COUNT(*) AS n FROM events GROUP BY country ORDER BY n DESC"
        ).collect()
        assert out[0]["country"] == "US"

    def test_limit(self, sql):
        assert len(sql("SELECT * FROM events LIMIT 2").collect()) == 2


class TestJoin:
    def test_join_using(self, sql):
        out = sql("SELECT country, region, latency FROM events JOIN dim USING (country)")
        assert out.count_rows() == 2

    def test_left_join(self, sql):
        out = sql("SELECT country, region FROM events LEFT JOIN dim USING (country)").collect()
        regions = {(r["country"], r["region"]) for r in out}
        assert ("CA", None) in regions


class TestDistinct:
    def test_select_distinct_column(self, sql):
        out = sql("SELECT DISTINCT country FROM events").collect()
        assert rows_set(out) == rows_set([{"country": "US"}, {"country": "CA"}])

    def test_select_distinct_star(self, sql):
        assert len(sql("SELECT DISTINCT * FROM events").collect()) == 3


class TestErrors:
    def test_unknown_view(self, sql):
        with pytest.raises(KeyError):
            sql("SELECT * FROM missing")

    def test_unknown_function(self, sql):
        with pytest.raises(SqlParseError, match="unknown function"):
            sql("SELECT median(latency) FROM events")

    def test_garbage_rejected(self, sql):
        with pytest.raises(SqlParseError):
            sql("SELECT FROM WHERE")

    def test_trailing_tokens_rejected(self, sql):
        with pytest.raises(SqlParseError):
            sql("SELECT * FROM events extra tokens ;;;")

    def test_unclosed_paren(self, sql):
        with pytest.raises(SqlParseError):
            sql("SELECT (1 + 2 FROM events")


class TestStreamingSql:
    def test_sql_over_streaming_view_is_streaming(self, session):
        from tests.conftest import make_stream

        stream = make_stream((("k", "string"), ("v", "double")))
        session.read_stream.memory(stream).create_or_replace_temp_view("s")
        df = session.sql("SELECT k, COUNT(*) AS n FROM s GROUP BY k")
        assert df.is_streaming
