"""Unit tests for analysis: the §5.1 streaming support checks.

The paper's analysis stage validates incremental executability and
output-mode compatibility; these tests pin the rules down.
"""

import pytest

from repro.sql import expressions as E
from repro.sql import logical as L
from repro.sql.analysis import (
    UnsupportedOperationError,
    analyze,
    check_streaming_supported,
    watermarked_columns,
)
from repro.sql.types import StructType

SCHEMA = StructType((("k", "long"), ("v", "double"), ("t", "timestamp")))


def stream(schema=SCHEMA):
    return L.Scan(schema, None, True, name="s")


def static(schema=SCHEMA):
    return L.Scan(schema, None, False, name="b")


def agg(child, window=False, keys=("k",)):
    grouping = [E.ColumnRef(k) for k in keys]
    if window:
        grouping.append(E.WindowExpr(E.ColumnRef("t"), 10.0))
    return L.Aggregate(grouping, [(E.Count(None), "n")], child)


class TestAnalyze:
    def test_valid_plan_passes(self):
        plan = L.Filter(E.ColumnRef("v") > 0, stream())
        assert analyze(plan) is plan

    def test_unresolved_column_caught(self):
        plan = L.Filter(E.ColumnRef("nope") > 0, stream())
        with pytest.raises(Exception):
            analyze(plan)


class TestWatermarkedColumns:
    def test_collects_all(self):
        plan = L.WithWatermark("t", "5s", L.WithWatermark("v", "1s", stream()))
        assert watermarked_columns(plan) == {"t": 5.0, "v": 1.0}

    def test_empty(self):
        assert watermarked_columns(stream()) == {}


class TestOutputModeValidity:
    def test_unknown_mode_rejected(self):
        with pytest.raises(UnsupportedOperationError, match="unknown output mode"):
            check_streaming_supported(stream(), "replace")

    def test_batch_plan_rejected(self):
        with pytest.raises(UnsupportedOperationError, match="no streaming source"):
            check_streaming_supported(static(), "append")

    def test_map_only_append_ok(self):
        check_streaming_supported(L.Filter(E.ColumnRef("v") > 0, stream()), "append")

    def test_complete_requires_aggregate(self):
        with pytest.raises(UnsupportedOperationError, match="complete mode requires"):
            check_streaming_supported(L.Filter(E.ColumnRef("v") > 0, stream()), "complete")

    def test_aggregate_complete_ok(self):
        check_streaming_supported(agg(stream()), "complete")

    def test_aggregate_update_ok(self):
        check_streaming_supported(agg(stream()), "update")

    def test_plain_aggregate_append_rejected(self):
        # "no way for the system to guarantee it has stopped receiving
        # records for a given country" (§4.2).
        with pytest.raises(UnsupportedOperationError, match="append mode"):
            check_streaming_supported(agg(stream()), "append")

    def test_windowed_aggregate_append_needs_watermark(self):
        plan = agg(stream(), window=True)
        with pytest.raises(UnsupportedOperationError):
            check_streaming_supported(plan, "append")

    def test_windowed_aggregate_with_watermark_append_ok(self):
        plan = agg(L.WithWatermark("t", "10s", stream()), window=True)
        check_streaming_supported(plan, "append")

    def test_grouping_by_watermarked_column_append_ok(self):
        plan = agg(L.WithWatermark("t", "10s", stream()), keys=("t",))
        check_streaming_supported(plan, "append")


class TestMultipleAggregations:
    def test_two_streaming_aggregates_rejected(self):
        plan = agg(agg(stream()))
        with pytest.raises(UnsupportedOperationError, match="at most one aggregation"):
            check_streaming_supported(plan, "complete")

    def test_static_subquery_aggregate_not_counted(self):
        static_agg = agg(static())
        plan = L.Join(
            agg(L.WithWatermark("t", "10s", stream()), window=True),
            L.Project([E.ColumnRef("k"), (E.ColumnRef("v") * 1).alias("w")], static_agg.child),
            on="k",
        )
        # One streaming aggregate, one batch subplan: allowed.
        check_streaming_supported(plan, "complete")


class TestSortAndLimit:
    def test_sort_complete_after_aggregate_ok(self):
        plan = L.Sort([("n", False)], agg(stream()))
        check_streaming_supported(plan, "complete")

    def test_sort_update_rejected(self):
        plan = L.Sort([("n", False)], agg(stream()))
        with pytest.raises(UnsupportedOperationError, match="complete"):
            check_streaming_supported(plan, "update")

    def test_sort_without_aggregate_rejected(self):
        plan = L.Sort([("v", True)], stream())
        with pytest.raises(UnsupportedOperationError):
            check_streaming_supported(plan, "complete")

    def test_limit_complete_ok(self):
        plan = L.Limit(5, agg(stream()))
        check_streaming_supported(plan, "complete")

    def test_limit_append_rejected(self):
        plan = L.Limit(5, stream())
        with pytest.raises(UnsupportedOperationError, match="limit"):
            check_streaming_supported(plan, "append")


class TestJoins:
    RIGHT = StructType((("k", "long"), ("r", "double"), ("t2", "timestamp")))

    def test_stream_static_inner_ok(self):
        plan = L.Join(stream(), static(self.RIGHT), on="k")
        check_streaming_supported(plan, "append")

    def test_stream_static_left_outer_ok_when_stream_left(self):
        plan = L.Join(stream(), static(self.RIGHT), on="k", how="left_outer")
        check_streaming_supported(plan, "append")

    def test_left_outer_with_stream_on_right_rejected(self):
        plan = L.Join(static(), stream(self.RIGHT), on="k", how="left_outer")
        with pytest.raises(UnsupportedOperationError, match="left_outer"):
            check_streaming_supported(plan, "append")

    def test_right_outer_with_stream_on_left_rejected(self):
        plan = L.Join(stream(), static(self.RIGHT), on="k", how="right_outer")
        with pytest.raises(UnsupportedOperationError, match="right_outer"):
            check_streaming_supported(plan, "append")

    def test_stream_stream_inner_without_bound_allowed(self):
        # Like Spark: allowed, but state is unbounded (no eviction).
        plan = L.Join(stream(), stream(self.RIGHT), on="k")
        check_streaming_supported(plan, "append")

    def test_stream_stream_with_bounded_watermarked_columns_ok(self):
        plan = L.Join(
            L.WithWatermark("t", "10s", stream()),
            L.WithWatermark("t2", "10s", stream(self.RIGHT)),
            on="k", within=("t", "t2", "30s"),
        )
        check_streaming_supported(plan, "append")

    def test_outer_stream_stream_requires_within(self):
        plan = L.Join(
            L.WithWatermark("t", "10s", stream()),
            L.WithWatermark("t2", "10s", stream(self.RIGHT)),
            on="k", how="left_outer",
        )
        with pytest.raises(UnsupportedOperationError, match="within"):
            check_streaming_supported(plan, "append")

    def test_within_columns_must_be_watermarked(self):
        plan = L.Join(
            L.WithWatermark("t", "10s", stream()),
            stream(self.RIGHT),  # right side not watermarked
            on="k", within=("t", "t2", "30s"),
        )
        with pytest.raises(UnsupportedOperationError, match="watermark"):
            check_streaming_supported(plan, "append")


class TestStatefulOperators:
    OUT = StructType((("k", "long"), ("n", "long")))

    def map_groups(self, flat=False):
        return L.MapGroupsWithState(["k"], lambda *a: None, self.OUT, stream(), flat=flat)

    def test_map_groups_requires_update(self):
        check_streaming_supported(self.map_groups(), "update")
        with pytest.raises(UnsupportedOperationError, match="update"):
            check_streaming_supported(self.map_groups(), "append")

    def test_flat_map_groups_append_and_update_ok(self):
        check_streaming_supported(self.map_groups(flat=True), "append")
        check_streaming_supported(self.map_groups(flat=True), "update")

    def test_flat_map_groups_complete_rejected(self):
        with pytest.raises(UnsupportedOperationError, match="complete"):
            check_streaming_supported(self.map_groups(flat=True), "complete")
