"""Property-based tests (hypothesis) for the engine's core invariants.

The paper's central guarantee is prefix consistency (§4.2): streaming
results always equal the static query applied to a prefix of the input,
regardless of how data is chunked into epochs or where crashes land.
These properties drive randomized chunkings, crash points and operation
sequences against model implementations.
"""

import math

from hypothesis import given, strategies as st

from repro.sql import expressions as E
from repro.sql.batch import RecordBatch
from repro.sql.grouping import encode_groups
from repro.sql.session import Session
from repro.sql.types import StructType
from repro.streaming.state import OperatorStateHandle
from repro.streaming.watermark import WatermarkTracker

from repro.testing.oracle import check_differential

from tests.conftest import make_stream, rows_set, start_memory_query

import numpy as np


# ---------------------------------------------------------------------------
# Strategies
# ---------------------------------------------------------------------------

keys = st.sampled_from(["a", "b", "c", "d"])
values = st.floats(min_value=-100, max_value=100, allow_nan=False, width=32)
rows = st.builds(lambda k, v: {"k": k, "v": float(v)}, keys, values)
row_lists = st.lists(rows, min_size=0, max_size=30)


def chunkings(items):
    """Strategy: split ``items`` into a random list of contiguous chunks."""
    if not items:
        return st.just([])
    return st.lists(
        st.integers(min_value=1, max_value=max(len(items), 1)),
        min_size=1, max_size=len(items),
    ).map(lambda sizes: _apply_chunking(items, sizes))


def _apply_chunking(items, sizes):
    chunks = []
    position = 0
    for size in sizes:
        if position >= len(items):
            break
        chunks.append(items[position:position + size])
        position += size
    if position < len(items):
        chunks.append(items[position:])
    return chunks


SCHEMA = (("k", "string"), ("v", "double"))


# ---------------------------------------------------------------------------
# Incremental == batch
# ---------------------------------------------------------------------------

@given(data=row_lists, seed=st.integers(0, 2**16))
def test_streaming_aggregate_equals_batch_under_any_chunking(data, seed):
    from repro.sql import functions as F

    rng = np.random.default_rng(seed)
    session = Session()
    batch_result = rows_set(
        session.create_dataframe(data, SCHEMA).group_by("k").agg(
            F.count().alias("n"), F.sum("v").alias("s")).collect()
    ) if data else set()

    stream = make_stream(SCHEMA)
    df = (session.read_stream.memory(stream)
          .group_by("k").agg(F.count().alias("n"), F.sum("v").alias("s")))
    query = start_memory_query(df, "complete", "out")
    remaining = list(data)
    while remaining:
        take = int(rng.integers(1, len(remaining) + 1))
        stream.add_data(remaining[:take])
        remaining = remaining[take:]
        query.process_all_available()
    assert rows_set(query.engine.sink.rows()) == batch_result


@given(data=row_lists, seed=st.integers(0, 2**16))
def test_map_query_append_equals_batch_filter(data, seed):
    rng = np.random.default_rng(seed)
    session = Session()
    from repro.sql import functions as F

    expected = [r for r in data if r["v"] > 0]

    stream = make_stream(SCHEMA)
    df = session.read_stream.memory(stream).where(F.col("v") > 0)
    query = start_memory_query(df, "append", "out")
    remaining = list(data)
    while remaining:
        take = int(rng.integers(1, len(remaining) + 1))
        stream.add_data(remaining[:take])
        remaining = remaining[take:]
        query.process_all_available()
    assert query.engine.sink.rows() == expected


@given(data=row_lists, seed=st.integers(0, 2**16))
def test_streaming_dedup_equals_first_occurrences(data, seed):
    rng = np.random.default_rng(seed)
    session = Session()
    seen, expected = set(), []
    for r in data:
        if r["k"] not in seen:
            seen.add(r["k"])
            expected.append(r)

    stream = make_stream(SCHEMA)
    df = session.read_stream.memory(stream).drop_duplicates(["k"])
    query = start_memory_query(df, "append", "out")
    remaining = list(data)
    while remaining:
        take = int(rng.integers(1, len(remaining) + 1))
        stream.add_data(remaining[:take])
        remaining = remaining[take:]
        query.process_all_available()
    assert query.engine.sink.rows() == expected


# ---------------------------------------------------------------------------
# Prefix consistency under crash/restart
# ---------------------------------------------------------------------------

@given(data=st.lists(rows, min_size=1, max_size=15),
       crash_mask=st.lists(st.booleans(), min_size=1, max_size=15),
       seed=st.integers(0, 2**16))
def test_exactly_once_under_random_restarts(tmp_path_factory, data, crash_mask, seed):
    """Restarting the engine at arbitrary points never duplicates or
    loses output (replayable source + idempotent sink + WAL, §6.1)."""
    rng = np.random.default_rng(seed)
    checkpoint = str(tmp_path_factory.mktemp("ckpt"))
    session = Session()
    from repro.sql import functions as F

    stream = make_stream(SCHEMA)
    df = session.read_stream.memory(stream).select("k", (F.col("v") * 2).alias("v2"))
    query = start_memory_query(df, "append", "out", checkpoint)
    sink = query.engine.sink

    remaining = list(data)
    crashes = iter(crash_mask)
    while remaining:
        take = int(rng.integers(1, len(remaining) + 1))
        stream.add_data(remaining[:take])
        remaining = remaining[take:]
        if next(crashes, False):
            # Crash: abandon the engine, restart on the same checkpoint.
            query = (df.write_stream.sink(sink).output_mode("append")
                     .start(checkpoint))
        query.process_all_available()
    query = (df.write_stream.sink(sink).output_mode("append").start(checkpoint))
    query.process_all_available()
    expected = [{"k": r["k"], "v2": r["v"] * 2} for r in data]
    assert sink.rows() == expected


@given(data=st.lists(rows, min_size=1, max_size=12),
       crash_mask=st.lists(st.booleans(), min_size=1, max_size=12),
       seed=st.integers(0, 2**16))
def test_stateful_aggregate_exactly_once_under_restarts(
        tmp_path_factory, data, crash_mask, seed):
    """The hard case: restarts around a *stateful* query must neither
    double-count (state replayed twice) nor drop records."""
    rng = np.random.default_rng(seed)
    checkpoint = str(tmp_path_factory.mktemp("ckpt"))
    session = Session()
    from repro.sql import functions as F

    stream = make_stream(SCHEMA)
    df = (session.read_stream.memory(stream)
          .group_by("k").agg(F.count().alias("n"), F.sum("v").alias("s")))
    query = (df.write_stream.format("memory").query_name("agg")
             .option("state_checkpoint_interval", 2)  # state can lag commits
             .output_mode("complete").start(checkpoint))
    sink = query.engine.sink

    expected = {}
    for r in data:
        n, s = expected.get(r["k"], (0, 0.0))
        expected[r["k"]] = (n + 1, s + r["v"])

    remaining = list(data)
    crashes = iter(crash_mask)
    while remaining:
        take = int(rng.integers(1, len(remaining) + 1))
        stream.add_data(remaining[:take])
        remaining = remaining[take:]
        if next(crashes, False):
            query = (df.write_stream.sink(sink).output_mode("complete")
                     .option("state_checkpoint_interval", 2).start(checkpoint))
        query.process_all_available()
    query = (df.write_stream.sink(sink).output_mode("complete")
             .option("state_checkpoint_interval", 2).start(checkpoint))
    query.process_all_available()

    got = {r["k"]: (r["n"], r["s"]) for r in sink.rows()}
    assert set(got) == set(expected)
    for k, (n, s) in expected.items():
        assert got[k][0] == n
        assert abs(got[k][1] - s) < 1e-6


# ---------------------------------------------------------------------------
# Differential oracle: retraction (Z-set) streams vs batch recompute
# ---------------------------------------------------------------------------

CDC_SCHEMA = (("k", "string"), ("v", "long"))


@st.composite
def cdc_chunks(draw, max_ops=24):
    """A chunked, *valid* CDC history: every delete hits a live row.

    Returns a list of epoch chunks whose rows may carry ``__weight__``
    -1; the concatenation nets to a well-formed table (no negative
    multiplicities), which is what an upstream database's changelog
    guarantees.
    """
    count = draw(st.integers(0, max_ops))
    live, ops = [], []
    for _ in range(count):
        if live and draw(st.booleans()):
            victim = live.pop(draw(st.integers(0, len(live) - 1)))
            ops.append({**victim, "__weight__": -1})
        else:
            row = {"k": draw(keys), "v": draw(st.integers(-50, 50))}
            live.append(row)
            ops.append(dict(row))
    sizes = draw(st.lists(st.integers(1, 6), min_size=1, max_size=12))
    chunks, position = [], 0
    for size in sizes:
        if position >= len(ops):
            break
        chunks.append(ops[position:position + size])
        position += size
    if position < len(ops):
        chunks.append(ops[position:])
    return chunks or [[]]


@given(chunks=cdc_chunks(), restarts=st.sets(st.integers(0, 9), max_size=3))
def test_weighted_aggregate_differential(tmp_path_factory, chunks, restarts):
    """Random insert/delete streams through a grouped aggregate — with
    crash/restarts between epochs — equal the batch recompute over the
    netted input (retraction deltas preserve prefix consistency)."""
    from repro.sql import functions as F

    check_differential(
        lambda df: df.group_by("k").agg(
            F.count().alias("n"), F.sum("v").alias("s")),
        CDC_SCHEMA, chunks, tmp_path_factory.mktemp("oracle"),
        restart_after=restarts)


@given(chunks=cdc_chunks(), restarts=st.sets(st.integers(0, 9), max_size=3))
def test_weighted_dedup_differential(tmp_path_factory, chunks, restarts):
    """Weighted DISTINCT tracks batch drop_duplicates under deletes,
    including promotion of the next surviving representative."""
    check_differential(
        lambda df: df.drop_duplicates(["k"]),
        CDC_SCHEMA, chunks, tmp_path_factory.mktemp("oracle"),
        restart_after=restarts)


@given(chunks=cdc_chunks(), restarts=st.sets(st.integers(0, 9), max_size=3))
def test_weighted_cascade_differential(tmp_path_factory, chunks, restarts):
    """A two-stage cascade (stateless stage feeding a grouped sum through
    a stream table) equals the composed batch query."""
    from repro.sql import functions as F

    check_differential(
        [lambda df: df.filter(F.col("v") > -20).select("k", "v"),
         lambda df: df.group_by("k").agg(F.sum("v").alias("s"))],
        CDC_SCHEMA, chunks, tmp_path_factory.mktemp("oracle"),
        restart_after=restarts)


@given(data=row_lists, seed=st.integers(0, 2**16),
       restarts=st.sets(st.integers(0, 9), max_size=2))
def test_append_only_differential(tmp_path_factory, data, seed, restarts):
    """The oracle also covers plain append-only plans (weight-free)."""
    from repro.sql import functions as F

    rng = np.random.default_rng(seed)
    chunks, remaining = [], list(data)
    while remaining:
        take = int(rng.integers(1, len(remaining) + 1))
        chunks.append(remaining[:take])
        remaining = remaining[take:]
    check_differential(
        lambda df: df.where(F.col("v") > 0).select(
            "k", (F.col("v") * 2).alias("v2")),
        SCHEMA, chunks or [[]], tmp_path_factory.mktemp("oracle"),
        weighted=False, restart_after=restarts)


@given(history=st.data())
def test_weighted_join_differential(tmp_path_factory, history):
    """Stream-stream inner join of two CDC streams equals the batch join
    of the netted sides (bilinearity of Z-set joins)."""
    from repro.sources import ChangeStream
    from repro.sql import functions as F
    from repro.sql.session import Session
    from repro.streaming.zset import apply_zset
    from repro.testing.oracle import canonical_rows

    left_chunks = history.draw(cdc_chunks(max_ops=12), label="left")
    right_chunks = history.draw(cdc_chunks(max_ops=12), label="right")
    epochs = max(len(left_chunks), len(right_chunks))

    session = Session()
    left = ChangeStream(StructType((("k", "string"), ("v", "long"))))
    right = ChangeStream(StructType((("k", "string"), ("w", "long"))))
    joined = session.read_stream.cdc(left).join(
        session.read_stream.cdc(right), on="k")
    query = (joined.write_stream.format("memory").query_name("jd")
             .output_mode("retract")
             .start(str(tmp_path_factory.mktemp("oracle") / "ckpt")))
    from repro.testing.oracle import feed

    for i in range(epochs):
        if i < len(left_chunks):
            feed(left, left_chunks[i])
        if i < len(right_chunks):
            feed(right, [{**({"w": r["v"]}), "k": r["k"],
                          **({"__weight__": r["__weight__"]}
                             if "__weight__" in r else {})}
                         for r in right_chunks[i]])
        query.process_all_available()
    streamed = query.engine.sink.rows()
    query.stop()

    live_left = apply_zset([r for c in left_chunks for r in c])
    live_right = apply_zset(
        [{"k": r["k"], "w": r["v"],
          **({"__weight__": r["__weight__"]} if "__weight__" in r else {})}
         for c in right_chunks for r in c])
    expected = session.create_dataframe(
        live_left, (("k", "string"), ("v", "long"))).join(
        session.create_dataframe(live_right, (("k", "string"), ("w", "long"))),
        on="k").collect() if live_left and live_right else []
    assert canonical_rows(streamed) == canonical_rows(expected)


# ---------------------------------------------------------------------------
# State store model check
# ---------------------------------------------------------------------------

state_ops = st.lists(
    st.one_of(
        st.tuples(st.just("put"), st.sampled_from("abcde"), st.integers(-5, 5)),
        st.tuples(st.just("remove"), st.sampled_from("abcde"), st.none()),
        st.tuples(st.just("commit"), st.none(), st.none()),
    ),
    min_size=1, max_size=40,
)


@given(ops=state_ops, snapshot_interval=st.integers(1, 5))
def test_state_store_restore_matches_model(tmp_path_factory, ops, snapshot_interval):
    directory = str(tmp_path_factory.mktemp("state"))
    handle = OperatorStateHandle(directory, snapshot_interval=snapshot_interval)
    model = {}
    committed = {}  # version -> model snapshot
    version = 0
    for op, key, value in ops:
        if op == "put":
            handle.put(key, value)
            model[key] = value
        elif op == "remove":
            handle.remove(key)
            model.pop(key, None)
        else:
            handle.commit(version)
            committed[version] = dict(model)
            version += 1
    for v, expected in committed.items():
        fresh = OperatorStateHandle(directory, snapshot_interval=snapshot_interval)
        fresh.restore(v)
        assert dict(fresh.items()) == expected


# ---------------------------------------------------------------------------
# Watermark monotonicity
# ---------------------------------------------------------------------------

@given(observations=st.lists(
    st.floats(min_value=0, max_value=1e6, allow_nan=False), max_size=30),
    delay=st.floats(min_value=0, max_value=100, allow_nan=False))
def test_watermark_monotonic_and_bounded(observations, delay):
    tracker = WatermarkTracker({"t": delay})
    previous = None
    max_seen = None
    for value in observations:
        tracker.observe("t", value)
        tracker.advance()
        max_seen = value if max_seen is None else max(max_seen, value)
        current = tracker.current("t")
        assert current == max_seen - delay  # exactly max(C) - t_C (§4.3.1)
        if previous is not None:
            assert current >= previous  # never moves backwards
        previous = current


# ---------------------------------------------------------------------------
# Window assignment properties
# ---------------------------------------------------------------------------

@given(t=st.floats(min_value=0, max_value=1e6, allow_nan=False),
       size_slide=st.tuples(st.integers(1, 100), st.integers(1, 100)))
def test_window_contains_its_record(t, size_slide):
    a, b = size_slide
    size, slide = max(a, b), min(a, b)
    w = E.WindowExpr(E.ColumnRef("t"), float(size), float(slide))
    starts = w.assign_row({"t": t})
    assert 1 <= len(starts) <= math.ceil(size / slide)
    for start in starts:
        assert start <= t < start + size
        # Window starts align to the slide grid.
        assert abs(start / slide - round(start / slide)) < 1e-6


# ---------------------------------------------------------------------------
# Group encoding
# ---------------------------------------------------------------------------

@given(keys=st.lists(st.integers(-10, 10), min_size=0, max_size=50))
def test_encode_groups_consistent_with_equality(keys):
    if not keys:
        return
    codes, uniques = encode_groups([np.asarray(keys, dtype=np.int64)])
    decoded = [uniques[c][0] for c in codes]
    assert decoded == keys
    assert len(set(codes.tolist())) == len(uniques) == len(set(keys))


# ---------------------------------------------------------------------------
# RecordBatch roundtrip
# ---------------------------------------------------------------------------

@given(data=st.lists(
    st.tuples(st.integers(-1000, 1000),
              st.one_of(st.none(), st.text(max_size=5))),
    max_size=30))
def test_record_batch_row_roundtrip(data):
    schema = StructType((("i", "long"), ("s", "string")))
    original = [{"i": i, "s": s} for i, s in data]
    assert RecordBatch.from_rows(original, schema).to_rows() == original
