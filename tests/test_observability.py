"""Observability layer: metrics registry, span tracing, monitor surface.

Covers the histogram bucket math, span nesting and export formats, the
engine's span coverage for a multi-shard epoch, the monitor CLI, the
listener lifecycle fixes, and the crash-restart counting guarantee
(metrics must not double-count deliveries across recovery).
"""

import json
import time

import pytest

from repro.observability import metrics, tracing
from repro.observability.metrics import Histogram, MetricsRegistry
from repro.sql import functions as F
from repro.testing.faults import Fault, FaultInjector, injected
from repro.testing.harness import run_golden, run_with_crashes
from repro.tools import monitor

from tests.conftest import make_stream, start_memory_query


@pytest.fixture(autouse=True)
def _clean_observability():
    """Tests toggle the process-global registry/tracer; isolate them."""
    previous = (metrics._registry, tracing._tracer)
    yield
    metrics._registry, tracing._tracer = previous


def wait_until(predicate, timeout=5.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.005)
    return False


# ----------------------------------------------------------------------
# Histogram bucket math
# ----------------------------------------------------------------------
class TestHistogram:
    def test_bucket_assignment(self):
        h = Histogram("t", bounds=(1.0, 2.0, 4.0))
        for v in (0.5, 1.0, 1.5, 3.0, 100.0):
            h.record(v)
        # bisect_left on upper bounds: 0.5,1.0 -> bucket 0; 1.5 -> 1;
        # 3.0 -> 2; 100 -> overflow.
        assert h.counts == [2, 1, 1, 1]
        assert h.count == 5
        assert h.min == 0.5 and h.max == 100.0

    def test_single_value_reports_itself_at_every_quantile(self):
        h = Histogram("t")
        h.record(0.042)
        assert h.p50 == pytest.approx(0.042)
        assert h.p95 == pytest.approx(0.042)
        assert h.p99 == pytest.approx(0.042)

    def test_percentiles_order_and_bounds(self):
        h = Histogram("t", bounds=(0.01, 0.1, 1.0, 10.0))
        for i in range(1, 101):
            h.record(i / 100.0)  # 0.01 .. 1.00 uniform
        assert h.min <= h.p50 <= h.p95 <= h.p99 <= h.max
        assert h.p50 == pytest.approx(0.5, abs=0.15)
        assert h.p99 >= 0.9

    def test_record_many_matches_record(self):
        a = Histogram("a", bounds=(0.5, 1.5, 2.5))
        b = Histogram("b", bounds=(0.5, 1.5, 2.5))
        values = [0.1, 0.5, 0.6, 1.5, 2.0, 9.0]
        for v in values:
            a.record(v)
        b.record_many(values)
        assert a.counts == b.counts
        assert a.count == b.count
        assert a.sum == pytest.approx(b.sum)
        assert a.min == b.min and a.max == b.max

    def test_empty_histogram(self):
        h = Histogram("t")
        assert h.percentile(0.5) is None
        assert h.percentiles_json() == {}

    def test_percentiles_json_keys(self):
        h = Histogram("t")
        h.record_many([0.01, 0.02, 0.03])
        summary = h.percentiles_json()
        assert set(summary) == {"count", "mean", "min", "max",
                                "p50", "p95", "p99"}
        assert summary["count"] == 3


class TestRegistry:
    def test_get_or_create_and_snapshot(self):
        reg = MetricsRegistry()
        reg.counter("c").inc(3)
        reg.counter("c").inc()
        reg.gauge("g").set(7)
        reg.histogram("h").record(0.5)
        snap = reg.snapshot()
        assert snap["c"] == 4
        assert snap["g"] == 7
        assert snap["h"]["count"] == 1

    def test_helpers_are_noops_when_disabled(self):
        metrics.disable()
        metrics.count("nope")
        metrics.set_gauge("nope", 1)
        metrics.observe("nope", 1.0)
        assert metrics.snapshot() == {}

    def test_enabled_context_manager_scopes_the_registry(self):
        metrics.disable()
        with metrics.enabled() as reg:
            metrics.count("inside", 2)
            assert reg.counter("inside").value == 2
        assert metrics.active() is None


# ----------------------------------------------------------------------
# Span tracing
# ----------------------------------------------------------------------
class TestTracing:
    def test_nesting_and_ordering(self):
        with tracing.enabled() as tracer:
            with tracing.trace_span("outer", epoch=1):
                with tracing.trace_span("inner-a"):
                    pass
                with tracing.trace_span("inner-b"):
                    pass
        spans = tracer.spans
        # Children record on exit before the parent.
        assert [s["name"] for s in spans] == ["inner-a", "inner-b", "outer"]
        outer = spans[-1]
        assert outer["parent"] is None
        assert all(s["parent"] == outer["id"] for s in spans[:-1])
        assert tracer.spans_for_epoch(1) == [outer]
        for span in spans:
            assert span["duration_us"] >= 0
            assert span["start_us"] >= 0

    def test_disabled_returns_shared_noop(self):
        tracing.disable()
        span = tracing.trace_span("x")
        assert span is tracing.trace_span("y")
        with span:
            pass

    def test_chrome_export_schema(self, tmp_path):
        path = str(tmp_path / "trace.json")
        with tracing.enabled():
            with tracing.trace_span("epoch", epoch=0):
                with tracing.trace_span("stage:Map"):
                    pass
            written = tracing.dump(path)
        assert written == 2
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)  # must be valid JSON for chrome://tracing
        assert isinstance(doc["traceEvents"], list) and len(doc["traceEvents"]) == 2
        for event in doc["traceEvents"]:
            assert event["ph"] == "X"
            assert isinstance(event["name"], str)
            assert isinstance(event["ts"], (int, float))
            assert isinstance(event["dur"], (int, float))
            assert isinstance(event["pid"], int)
            assert isinstance(event["tid"], int)

    def test_jsonl_export(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        with tracing.enabled():
            with tracing.trace_span("a"):
                pass
            assert tracing.dump(path) == 1
        with open(path, encoding="utf-8") as f:
            lines = [json.loads(line) for line in f]
        assert lines[0]["name"] == "a"

    def test_ring_buffer_bounded(self):
        tracer = tracing.Tracer(capacity=10)
        with tracing.enabled(tracer):
            for i in range(25):
                with tracing.trace_span(f"s{i}"):
                    pass
        assert len(tracer.spans) == 10
        assert tracer.spans[-1]["name"] == "s24"


# ----------------------------------------------------------------------
# Engine span coverage (multi-shard epoch)
# ----------------------------------------------------------------------
class TestEngineTrace:
    def test_multi_shard_epoch_trace_covers_every_layer(self, session, tmp_path):
        with metrics.enabled() as reg, tracing.enabled() as tracer:
            stream = make_stream((("k", "string"), ("v", "long")))
            df = (session.read_stream.memory(stream)
                  .group_by("k").agg(F.sum("v").alias("total")))
            query = start_memory_query(
                df, "update", "traced", str(tmp_path / "cp"), num_shards=4)
            stream.add_data([{"k": f"k{i}", "v": i} for i in range(16)])
            query.process_all_available()
            query.stop()

            names = {s["name"] for s in tracer.spans}
            assert "plan-compile" in names
            assert "epoch" in names
            assert any(n.startswith("stage:") for n in names)
            assert any(n.startswith("task:agg:shard") for n in names)
            assert "state-commit" in names
            assert "sink-write" in names
            # Every shard the keys hash to produced a task span.
            from repro.sql.batch import shard_of_key

            expected = {
                f"task:agg:shard{shard_of_key((f'k{i}',), 4)}"
                for i in range(16)
            }
            shards = {s["name"] for s in tracer.spans
                      if s["name"].startswith("task:agg:shard")}
            assert shards == expected
            assert len(shards) >= 2  # genuinely multi-shard

            # The trace loads as valid Chrome trace-event JSON.
            path = str(tmp_path / "trace.json")
            assert query.dump_trace(path) == len(tracer.spans)
            with open(path, encoding="utf-8") as f:
                doc = json.load(f)
            assert {e["name"] for e in doc["traceEvents"]} == names

            # Stage/task spans nest under the epoch span.
            epoch0 = next(s for s in tracer.spans
                          if s["name"] == "epoch"
                          and s.get("args", {}).get("epoch") == 0)
            by_id = {s["id"]: s for s in tracer.spans}

            def ancestors(span):
                while span["parent"] is not None:
                    span = by_id[span["parent"]]
                    yield span

            stage = next(s for s in tracer.spans
                         if s["name"].startswith("stage:")
                         and s.get("args", {}).get("epoch") == 0)
            assert any(a is epoch0 for a in ancestors(stage))

            # Metrics side of the same epoch.
            snap = reg.snapshot()
            assert snap["engine.rows_in"] == 16
            assert snap["sink.batches_committed"] >= 1
            assert any(name.startswith("state.puts.shard") for name in snap)
            assert snap["wal.commits_written"] >= 1

    def test_progress_carries_stage_and_operator_metrics(self, session, tmp_path):
        with metrics.enabled():
            stream = make_stream((("v", "long"),))
            df = session.read_stream.memory(stream).select(
                (F.col("v") + 1).alias("w"))
            query = start_memory_query(df, "append", "m", str(tmp_path / "cp"))
            stream.add_data([{"v": 1}, {"v": 2}])
            query.process_all_available()
            progress = query.last_progress
            query.stop()
        assert progress.stage_timings  # wal-offsets/read-inputs/process/...
        assert "process" in progress.stage_timings
        assert progress.operator_metrics
        total_out = sum(m["rows_out"] for m in progress.operator_metrics.values())
        assert total_out >= 2
        payload = progress.to_json()
        assert payload["stageTimings"] == progress.stage_timings
        assert payload["operatorMetrics"] == progress.operator_metrics

    def test_disabled_runs_produce_no_sections(self, session, tmp_path):
        metrics.disable()
        tracing.disable()
        stream = make_stream((("v", "long"),))
        df = session.read_stream.memory(stream)
        query = start_memory_query(df, "append", "off", str(tmp_path / "cp"))
        stream.add_data([{"v": 1}])
        query.process_all_available()
        progress = query.last_progress
        query.stop()
        assert progress.stage_timings == {}
        assert progress.operator_metrics == {}
        payload = progress.to_json()
        assert "stageTimings" not in payload
        assert "operatorMetrics" not in payload
        assert "latencyPercentiles" not in payload


# ----------------------------------------------------------------------
# Progress shape (satellite bugfix)
# ----------------------------------------------------------------------
class TestProgressShape:
    def test_task_metrics_defaults_to_empty_dict(self):
        from repro.streaming.progress import EpochProgress

        p = EpochProgress(0, 0.0, 0.1, 1, 1, 0, 0, 0)
        assert p.task_metrics == {}
        assert p.stage_timings == {}
        payload = p.to_json()
        assert "taskMetrics" not in payload
        assert "watermarks" not in payload
        assert payload["numInputRows"] == 1

    def test_nonempty_sections_are_kept(self):
        from repro.streaming.progress import EpochProgress

        p = EpochProgress(0, 0.0, 0.1, 1, 1, 0, 0, 0,
                          sources={"s": {"start": 0, "end": 1}},
                          latency_percentiles={"p50": 0.001})
        payload = p.to_json()
        assert payload["sources"] == {"s": {"start": 0, "end": 1}}
        assert payload["latencyPercentiles"] == {"p50": 0.001}


# ----------------------------------------------------------------------
# Listener lifecycle (satellites a + b)
# ----------------------------------------------------------------------
class TestListeners:
    def test_progress_listener_errors_are_contained_and_counted(
            self, session, tmp_path):
        with metrics.enabled() as reg:
            stream = make_stream((("v", "long"),))
            df = session.read_stream.memory(stream)
            query = start_memory_query(df, "append", "l", str(tmp_path / "cp"))

            class Bad:
                def on_progress(self, progress):
                    raise RuntimeError("listener bug")

            query.add_listener(Bad())
            stream.add_data([{"v": 1}])
            query.process_all_available()  # must not raise
            stream.add_data([{"v": 2}])
            query.process_all_available()
            assert len(query.engine.sink.rows()) == 2
            assert query.engine.progress.listener_errors == 2
            assert reg.counter("query.listener_errors").value == 2
            query.stop()

    def test_terminated_listener_errors_are_counted(self, session):
        stream = make_stream((("v", "long"),))
        df = session.read_stream.memory(stream)
        query = start_memory_query(df, "append", "t")

        class Bad:
            def on_terminated(self, query, exc):
                raise RuntimeError("boom")

        query.add_listener(Bad())
        query.stop()
        assert query.listener_errors == 1

    def test_add_listener_dedupes(self, session, tmp_path):
        stream = make_stream((("v", "long"),))
        df = session.read_stream.memory(stream)
        query = start_memory_query(df, "append", "d", str(tmp_path / "cp"))
        calls = []

        class L:
            def on_progress(self, progress):
                calls.append(progress.epoch_id)

        listener = L()
        query.add_listener(listener)
        query.add_listener(listener)  # double registration: no-op
        stream.add_data([{"v": 1}])
        query.process_all_available()
        assert calls == [0]
        query.remove_listener(listener)
        stream.add_data([{"v": 2}])
        query.process_all_available()
        assert calls == [0]
        query.stop()

    def test_manager_lifecycle_events(self, session, tmp_path):
        events = []

        class Lifecycle:
            def on_query_started(self, query):
                events.append(("started", query.name))

            def on_query_progress(self, progress):
                events.append(("progress", progress.epoch_id))

            def on_query_terminated(self, query, exc):
                events.append(("terminated", query.name, exc))

        session.streams.add_listener(Lifecycle())
        stream = make_stream((("v", "long"),))
        df = session.read_stream.memory(stream)
        query = start_memory_query(df, "append", "lc", str(tmp_path / "cp"))
        assert ("started", "lc") in events
        stream.add_data([{"v": 1}])
        query.process_all_available()
        assert ("progress", 0) in events
        query.stop()
        assert ("terminated", "lc", None) in events

    def test_terminated_event_carries_exception(self, session):
        captured = []

        class Lifecycle:
            def on_query_terminated(self, query, exc):
                captured.append(exc)

        session.streams.add_listener(Lifecycle())
        stream = make_stream((("v", "long"),))

        def explode(v):
            raise ValueError("bad record")

        boom = F.udf(explode, "long")
        df = session.read_stream.memory(stream).select(boom(F.col("v")).alias("x"))
        query = (df.write_stream.format("memory").query_name("crash")
                 .trigger(interval="10ms").start())
        stream.add_data([{"v": 1}])
        assert wait_until(lambda: not query.is_active)
        assert wait_until(lambda: len(captured) == 1)
        assert isinstance(captured[0], ValueError)

    def test_manager_listener_errors_counted(self, session, tmp_path):
        class Bad:
            def on_query_started(self, query):
                raise RuntimeError("nope")

        session.streams.add_listener(Bad())
        stream = make_stream((("v", "long"),))
        df = session.read_stream.memory(stream)
        query = start_memory_query(df, "append", "e", str(tmp_path / "cp"))
        assert session.streams.listener_errors == 1
        query.stop()

    def test_manager_metrics_snapshot(self, session, tmp_path):
        with metrics.enabled():
            stream = make_stream((("v", "long"),))
            df = session.read_stream.memory(stream)
            query = start_memory_query(df, "append", "snap", str(tmp_path / "cp"))
            stream.add_data([{"v": 1}])
            query.process_all_available()
            snapshot = session.streams.metrics_snapshot()
            query.stop()
        names = [q["name"] for q in snapshot["queries"]]
        assert "snap" in names
        assert snapshot["metrics"]["engine.rows_in"] == 1


# ----------------------------------------------------------------------
# Monitor CLI
# ----------------------------------------------------------------------
class TestMonitorCLI:
    def test_render_from_recorded_events(self, session, tmp_path, capsys):
        checkpoint = str(tmp_path / "cp")
        with metrics.enabled():
            stream = make_stream((("k", "string"), ("v", "long")))
            df = (session.read_stream.memory(stream)
                  .group_by("k").agg(F.sum("v").alias("total")))
            query = start_memory_query(df, "update", "mon", checkpoint,
                                       num_shards=2)
            for i in range(3):
                stream.add_data([{"k": f"k{j}", "v": i} for j in range(4)])
                query.process_all_available()
            query.stop()

        text = monitor.main([checkpoint])
        out = capsys.readouterr().out
        assert text in out
        assert "input rate" in text
        assert "backlog" in text
        assert "state keys" in text
        assert "stage time breakdown" in text
        assert "operators" in text

    def test_render_accepts_events_file_and_empty_log(self, tmp_path):
        assert "no epochs" in monitor.render([])
        events_path = tmp_path / "events.jsonl"
        events_path.write_text(
            json.dumps({"epoch": 0, "numInputRows": 5, "numOutputRows": 5,
                        "durationSeconds": 0.1, "backlogRows": 0,
                        "stateKeys": 2, "lateRowsDropped": 0,
                        "triggerTime": 100.0,
                        "inputRowsPerSecond": 50.0}) + "\n"
            + "{torn line",
        )
        text = monitor.render(monitor.load_events(str(events_path)))
        assert "epoch 0" in text

    def test_render_shows_executor_columns(self):
        events = [{
            "epoch": 2, "numInputRows": 10, "numOutputRows": 4,
            "durationSeconds": 0.4, "backlogRows": 0, "stateKeys": 4,
            "lateRowsDropped": 0, "triggerTime": 1.0,
            "taskMetrics": {
                "num_tasks": 3, "retries": 0,
                "tasks": [{"seconds": 0.01, "attempts": 1,
                           "speculative_won": False, "task_id": "t"}],
                "speculative_launched": 0, "speculative_won": 0,
                "executor": {
                    "type": "process", "num_workers": 2,
                    "ipc_bytes": 123456, "ship_seconds": 0.004,
                    "merge_seconds": 0.002, "worker_deaths": 1,
                    "workers": [
                        {"worker": 0, "generation": 1, "tasks": 5,
                         "busy_seconds": 0.05, "utilization": 0.8},
                        {"worker": 1, "generation": 2, "tasks": 3,
                         "busy_seconds": 0.02, "utilization": 0.25},
                    ],
                },
            },
        }]
        text = monitor.render(events)
        assert "executor      process x 2 workers" in text
        assert "ipc 123.5kB" in text
        assert "deaths 1" in text
        assert "ipc overhead" in text
        assert "worker 0" in text and "worker 1" in text
        assert "80.0%" in text and "25.0%" in text

    def test_executor_columns_from_recorded_process_run(self, session, tmp_path):
        """End to end: a real process-executor query's events.jsonl
        renders per-worker utilization and IPC columns."""
        from repro.cluster.scheduler import TaskScheduler

        checkpoint = str(tmp_path / "cp")
        scheduler = TaskScheduler(2, executor="process", speculation=False)
        with metrics.enabled():
            stream = make_stream((("k", "string"), ("v", "long")))
            df = (session.read_stream.memory(stream)
                  .group_by("k").agg(F.sum("v").alias("total")))
            query = start_memory_query(df, "update", "pmon", checkpoint,
                                       num_shards=4, scheduler=scheduler)
            try:
                for i in range(3):
                    stream.add_data(
                        [{"k": f"k{j}", "v": i} for j in range(8)])
                    query.process_all_available()
            finally:
                query.stop()
                scheduler.shutdown()

        events = monitor.load_events(checkpoint)
        assert any(
            (e.get("taskMetrics") or {}).get("executor", {}).get("type")
            == "process"
            for e in events
        )
        text = monitor.render(events)
        assert "executor      process x 2 workers" in text
        assert "ipc " in text
        assert "worker 0" in text

    def test_render_shows_latency_percentiles(self):
        events = [{
            "epoch": 3, "numInputRows": 10, "numOutputRows": 10,
            "durationSeconds": 0.5, "backlogRows": 0, "stateKeys": 0,
            "lateRowsDropped": 0, "triggerTime": 1.0,
            "latencyPercentiles": {"count": 10, "mean": 0.002,
                                   "min": 0.001, "max": 0.02,
                                   "p50": 0.002, "p95": 0.01, "p99": 0.02},
        }]
        text = monitor.render(events)
        assert "record latency" in text
        assert "p99" in text


# ----------------------------------------------------------------------
# Continuous-mode latency histogram
# ----------------------------------------------------------------------
class TestContinuousLatency:
    def test_latency_percentiles_reach_progress_and_monitor(self, session):
        from repro.bus import Broker

        with metrics.enabled():
            broker = Broker()
            broker.get_or_create("in", 1)
            df = session.read_stream.kafka(
                broker, "in", (("v", "long"), ("publish_time", "double")))
            query = (df.write_stream.format("memory").query_name("lat")
                     .trigger(continuous="20ms").start())
            now = time.monotonic()
            broker.topic("in").publish_to(
                0, [{"v": i, "publish_time": now} for i in range(8)])
            sink = query.engine.sink
            assert wait_until(lambda: len(sink.rows()) == 8)
            assert wait_until(
                lambda: query.last_progress is not None
                and query.last_progress.latency_percentiles)
            progress = query.last_progress
            query.stop()

        latency = progress.latency_percentiles
        assert latency["count"] >= 8
        assert 0.0 <= latency["p50"] <= latency["p95"] <= latency["p99"]
        assert latency["p99"] < 30.0  # sane wall-clock lag, not garbage
        text = monitor.render([progress.to_json()])
        assert "record latency" in text

    def test_explicit_latency_column_is_validated(self, session):
        from repro.bus import Broker

        broker = Broker()
        broker.get_or_create("in", 1)
        df = session.read_stream.kafka(broker, "in", (("v", "long"),))
        with pytest.raises(ValueError, match="latency_column"):
            (df.write_stream.format("memory").query_name("bad")
             .option("latency_column", "missing")
             .trigger(continuous="20ms").start())


# ----------------------------------------------------------------------
# Crash-restart: counters must not double-count (fault-sweep cell)
# ----------------------------------------------------------------------
class TestCrashRestartCounting:
    def _workload(self, session, checkpoint):
        from repro.sinks.memory import MemorySink

        stream = make_stream((("k", "string"), ("v", "long")))
        # One sink shared across rebuilds: the sink models the external
        # system, which survives the crashing application (harness
        # contract) — and is what makes re-delivery idempotent.
        sink = MemorySink()
        chunks = [
            [{"k": f"k{j}", "v": i * 10 + j} for j in range(3)]
            for i in range(4)
        ]

        def build():
            df = (session.read_stream.memory(stream)
                  .group_by("k").agg(F.sum("v").alias("total")))
            return (df.write_stream.sink(sink).output_mode("update")
                    .query_name("crashy").start(checkpoint))

        steps = [lambda chunk=c: stream.add_data(chunk) for c in chunks]
        return build, steps

    def test_sink_delivery_counters_survive_crash_restart(
            self, session, tmp_path):
        # Golden: fault-free run of the same workload, counting sink
        # deliveries.
        with metrics.enabled() as golden_reg:
            build, steps = self._workload(session, str(tmp_path / "golden"))
            query = build()
            query.process_all_available()
            for step in steps:
                step()
                query.process_all_available()
            query.stop()
        golden_delivered = golden_reg.counter("sink.rows_delivered").value
        golden_batches = golden_reg.counter("sink.batches_committed").value
        assert golden_delivered > 0

        # Faulted: crash after the sink write but before the WAL commit
        # — recovery re-delivers the epoch, the idempotent sink drops it,
        # and the counters must agree with the golden run.
        session2 = type(session)()
        with metrics.enabled() as reg, tracing.enabled() as tracer:
            build, steps = self._workload(session2, str(tmp_path / "crash"))
            injector = FaultInjector([Fault("wal.commit", occurrence=1)])
            with injected(injector):
                report = run_with_crashes(build, steps, injector=injector)
            assert report.num_crashes >= 1
            assert reg.counter("sink.rows_delivered").value == golden_delivered
            assert reg.counter("sink.batches_committed").value == golden_batches
            # Trace buffer survives the restart and keeps both runs' epochs.
            epochs = [s["args"]["epoch"] for s in tracer.spans
                      if s["name"] == "epoch"]
            assert len(epochs) > len(set(epochs)) or len(epochs) >= 4
