"""Tests for the simulated cluster runtime (§6.2): load balancing,
fault recovery, straggler speculation, rescaling."""

import threading
import time

import pytest

from repro.cluster import (
    FailureInjector,
    SlowdownInjector,
    Task,
    TaskFailure,
    TaskScheduler,
)


@pytest.fixture
def scheduler():
    sched = TaskScheduler(num_workers=4, speculation=False)
    yield sched
    sched.shutdown()


class TestStageExecution:
    def test_all_tasks_run_and_results_collected(self, scheduler):
        tasks = [Task(i, lambda i=i: i * i) for i in range(10)]
        results = scheduler.run_stage(tasks)
        assert results == {i: i * i for i in range(10)}

    def test_empty_stage(self, scheduler):
        assert scheduler.run_stage([]) == {}

    def test_tasks_run_in_parallel(self, scheduler):
        barrier = threading.Barrier(4, timeout=5)

        def wait_at_barrier(i):
            barrier.wait()
            return i

        tasks = [Task(i, wait_at_barrier, (i,)) for i in range(4)]
        results = scheduler.run_stage(tasks, timeout=10)
        assert len(results) == 4

    def test_dynamic_load_balancing(self, scheduler):
        """More tasks than workers: every task still completes (workers
        pull from a shared queue)."""
        tasks = [Task(i, lambda i=i: i) for i in range(50)]
        assert len(scheduler.run_stage(tasks)) == 50

    def test_sequential_stages(self, scheduler):
        first = scheduler.run_stage([Task(0, lambda: "a")])
        second = scheduler.run_stage([Task(0, lambda: "b")])
        assert (first[0], second[0]) == ("a", "b")

    def test_results_ordered_by_submission_not_completion(self, scheduler):
        """Tasks finish in scrambled order (early tasks sleep longest);
        the result dict must still iterate in submission order so epoch
        merges are deterministic."""
        delays = {i: (8 - i) * 0.02 for i in range(8)}

        def work(i):
            time.sleep(delays[i])
            return i

        tasks = [Task(i, work, (i,)) for i in range(8)]
        results = scheduler.run_stage(tasks, timeout=20)
        assert list(results) == list(range(8))  # not completion order

    def test_results_ordered_under_injected_delays(self):
        """Same, with worker-scoped slowdowns scrambling completions."""
        slow = SlowdownInjector(slow_workers={0, 1}, delay=0.05)
        sched = TaskScheduler(4, speculation=False, injectors=[slow])
        try:
            tasks = [Task(i, lambda i=i: i) for i in range(12)]
            results = sched.run_stage(tasks, timeout=20)
            assert list(results) == list(range(12))
        finally:
            sched.shutdown()


class TestFaultRecovery:
    def test_failed_task_retried_not_whole_stage(self):
        injector = FailureInjector({3: 1})  # task 3 fails once
        sched = TaskScheduler(4, speculation=False, injectors=[injector])
        try:
            results = sched.run_stage([Task(i, lambda i=i: i) for i in range(6)])
            assert results == {i: i for i in range(6)}
            assert injector.injected[0][0] == 3
        finally:
            sched.shutdown()

    def test_retry_budget_exhaustion_fails_stage(self):
        injector = FailureInjector({0: 100})
        sched = TaskScheduler(2, max_retries=2, speculation=False,
                              injectors=[injector])
        try:
            with pytest.raises(TaskFailure, match="task 0"):
                sched.run_stage([Task(0, lambda: 1)])
        finally:
            sched.shutdown()

    def test_worker_scoped_failures(self):
        """A task failing on one worker succeeds when retried elsewhere."""
        injector = FailureInjector({0: 1}, on_workers={0})
        sched = TaskScheduler(3, speculation=False, injectors=[injector])
        try:
            results = sched.run_stage([Task(i, lambda i=i: i) for i in range(3)])
            assert results[0] == 0
        finally:
            sched.shutdown()


class TestSpeculation:
    def test_straggler_mitigated_by_backup_copy(self):
        """A slow worker's task gets a speculative copy; the stage
        finishes long before the straggler would have (§6.2)."""
        slow = SlowdownInjector(slow_workers={0}, delay=5.0)
        sched = TaskScheduler(
            4, speculation=True, speculation_multiplier=2.0,
            speculation_min_seconds=0.05, injectors=[slow],
        )
        try:
            tasks = [Task(i, lambda i=i: (time.sleep(0.01), i)[1]) for i in range(8)]
            started = time.monotonic()
            results = sched.run_stage(tasks, timeout=20)
            elapsed = time.monotonic() - started
            assert len(results) == 8
            assert elapsed < 4.0  # did not wait out the 5s straggler
            assert slow.slowed  # the straggler injection did fire
        finally:
            sched.shutdown()

    def test_task_results_not_duplicated_under_speculation(self):
        slow = SlowdownInjector(slow_workers={0}, delay=0.3)
        sched = TaskScheduler(4, speculation=True,
                              speculation_min_seconds=0.02, injectors=[slow])
        try:
            counter = {"n": 0}
            lock = threading.Lock()

            def work(i):
                with lock:
                    counter["n"] += 1
                return i

            results = sched.run_stage(
                [Task(i, work, (i,)) for i in range(6)], timeout=20)
            assert results == {i: i for i in range(6)}
            # Attempts may exceed tasks (speculation), results may not.
            assert counter["n"] >= 6
        finally:
            sched.shutdown()

    def test_speculative_clone_wins_exactly_one_result(self):
        """A deliberately slow first attempt loses to its backup copy:
        the stage keeps exactly one result for the task, and the report
        records the speculation launch and win."""
        ran = []

        def first_attempt_stalls(task_id, worker_id, attempt):
            if task_id == "slow" and attempt == 0:
                time.sleep(2.0)  # the original; the clone runs clean

        sched = TaskScheduler(
            4, speculation=True, speculation_multiplier=2.0,
            speculation_min_seconds=0.02, injectors=[first_attempt_stalls],
        )
        try:
            def work(i):
                ran.append(i)
                return i

            tasks = [Task(i, work, (i,)) for i in range(5)]
            tasks.append(Task("slow", work, ("slow-result",)))
            started = time.monotonic()
            results = sched.run_stage(tasks, timeout=20)
            assert time.monotonic() - started < 1.8  # clone won the race
            assert results["slow"] == "slow-result"
            assert len(results) == 6  # exactly one result per task
            report = sched.last_stage_report
            assert report["speculative_launched"] >= 1
            assert report["speculative_won"] >= 1
            slow_stats = [s for s in report["tasks"] if s["task_id"] == "slow"]
            assert slow_stats[0]["attempts"] >= 2
            assert slow_stats[0]["speculative_won"]
        finally:
            sched.shutdown()


class TestStageMetrics:
    def test_per_task_wall_time_and_attempts_recorded(self):
        sched = TaskScheduler(2, speculation=False)
        try:
            sched.run_stage([Task(i, lambda i=i: i) for i in range(4)])
            report = sched.last_stage_report
            assert report["num_tasks"] == 4
            assert [s["task_id"] for s in report["tasks"]] == [
                "0", "1", "2", "3"]
            for stats in report["tasks"]:
                assert stats["seconds"] >= 0.0
                assert stats["attempts"] == 1
                assert stats["speculative_won"] is False
        finally:
            sched.shutdown()

    def test_stage_metrics_summarizes_history(self):
        injector = FailureInjector({1: 1})
        sched = TaskScheduler(2, speculation=False, injectors=[injector])
        try:
            for _ in range(3):
                sched.run_stage([Task(i, lambda i=i: i) for i in range(4)])
            metrics = sched.stage_metrics()
            assert metrics["num_stages"] == 3
            assert metrics["num_tasks"] == 12
            assert metrics["retries"] == 1    # task 1 failed once, stage 1
            assert metrics["attempts"] == 13  # 12 + the retry
            assert metrics["task_seconds_p50"] is not None
            assert (metrics["task_seconds_max"]
                    >= metrics["task_seconds_p95"]
                    >= metrics["task_seconds_p50"])
        finally:
            sched.shutdown()

    def test_stage_report_is_json_serializable(self):
        import json

        sched = TaskScheduler(2, speculation=False)
        try:
            sched.run_stage([Task(("tuple", "id", i), lambda i=i: i)
                             for i in range(3)])
            json.dumps(sched.last_stage_report)
            json.dumps(sched.stage_metrics())
        finally:
            sched.shutdown()


class TestRescaling:
    def test_add_workers(self):
        sched = TaskScheduler(2, speculation=False)
        try:
            assert sched.num_workers == 2
            sched.add_workers(3)
            assert sched.num_workers == 5
            results = sched.run_stage([Task(i, lambda i=i: i) for i in range(20)])
            assert len(results) == 20
        finally:
            sched.shutdown()

    def test_remove_workers(self):
        sched = TaskScheduler(4, speculation=False)
        try:
            sched.remove_workers(2)
            time.sleep(0.1)
            assert sched.num_workers == 2
            results = sched.run_stage([Task(i, lambda i=i: i) for i in range(10)])
            assert len(results) == 10
        finally:
            sched.shutdown()

    def test_shrink_to_one_worker_still_progresses(self):
        sched = TaskScheduler(3, speculation=False)
        try:
            sched.remove_workers(2)
            results = sched.run_stage([Task(i, lambda i=i: i) for i in range(5)])
            assert len(results) == 5
        finally:
            sched.shutdown()
