"""Tests for the DataFrame API surface and batch execution through it."""

import pytest

from repro.sql import functions as F
from repro.sql.expressions import AnalysisError

from tests.conftest import rows_set

ROWS = [
    {"country": "US", "latency": 10.0, "time": 3.0},
    {"country": "CA", "latency": 20.0, "time": 64.0},
    {"country": "US", "latency": 30.0, "time": 65.0},
    {"country": "MX", "latency": 5.0, "time": 70.0},
]

SCHEMA = (("country", "string"), ("latency", "double"), ("time", "timestamp"))


@pytest.fixture
def df(session):
    return session.create_dataframe(ROWS, SCHEMA)


class TestBasics:
    def test_schema_and_columns(self, df):
        assert df.columns == ["country", "latency", "time"]
        assert not df.is_streaming

    def test_collect_roundtrip(self, df):
        assert df.collect() == ROWS

    def test_count_rows(self, df):
        assert df.count_rows() == 4

    def test_explain_returns_text(self, df, capsys):
        text = df.where(F.col("latency") > 5).explain()
        assert "Filter" in text
        assert "Filter" in capsys.readouterr().out


class TestSelectProject:
    def test_select_by_name(self, df):
        assert df.select("country").collect() == [
            {"country": r["country"]} for r in ROWS
        ]

    def test_select_expression_with_alias(self, df):
        out = df.select((F.col("latency") * 2).alias("double_latency")).collect()
        assert out[0] == {"double_latency": 20.0}

    def test_with_column_adds(self, df):
        out = df.with_column("fast", F.col("latency") < 15)
        assert out.columns == ["country", "latency", "time", "fast"]
        assert out.collect()[0]["fast"] is True

    def test_with_column_replaces_in_place(self, df):
        out = df.with_column("latency", F.col("latency") / 10)
        assert out.columns == df.columns
        assert out.collect()[0]["latency"] == 1.0

    def test_with_column_renamed(self, df):
        out = df.with_column_renamed("latency", "ms")
        assert out.columns == ["country", "ms", "time"]

    def test_drop(self, df):
        assert df.drop("time", "latency").columns == ["country"]


class TestFilterWhere:
    def test_where(self, df):
        out = df.where(F.col("latency") >= 20).collect()
        assert {r["country"] for r in out} == {"CA", "US"}

    def test_filter_alias(self, df):
        assert df.filter(F.col("country") == "MX").count_rows() == 1

    def test_chained_conditions(self, df):
        out = df.where((F.col("latency") > 5) & (F.col("country") != "US"))
        assert out.count_rows() == 1

    def test_when_otherwise(self, df):
        tier = (F.when(F.col("latency") >= 20, "slow")
                .when(F.col("latency") >= 10, "ok")
                .otherwise("fast"))
        out = df.select("country", tier.alias("tier")).collect()
        assert [r["tier"] for r in out] == ["ok", "slow", "slow", "fast"]

    def test_coalesce(self, session):
        df = session.create_dataframe(
            [{"a": None, "b": "x"}, {"a": "y", "b": "z"}],
            (("a", "string"), ("b", "string")))
        out = df.select(F.coalesce(F.col("a"), F.col("b")).alias("c")).collect()
        assert [r["c"] for r in out] == ["x", "y"]


class TestGroupBy:
    def test_count(self, df):
        out = df.group_by("country").count().collect()
        assert rows_set(out) == rows_set([
            {"country": "US", "count": 2},
            {"country": "CA", "count": 1},
            {"country": "MX", "count": 1},
        ])

    def test_agg_multiple(self, df):
        out = df.group_by("country").agg(
            F.count().alias("n"), F.max("latency").alias("worst"))
        row = {r["country"]: r for r in out.collect()}
        assert row["US"]["worst"] == 30.0
        assert row["US"]["n"] == 2

    def test_shortcut_aggregates(self, df):
        assert df.group_by("country").sum("latency").count_rows() == 3
        assert df.group_by("country").avg("latency").count_rows() == 3
        assert df.group_by("country").min("latency").count_rows() == 3
        assert df.group_by("country").max("latency").count_rows() == 3

    def test_agg_rejects_non_aggregate(self, df):
        with pytest.raises(AnalysisError, match="aggregates"):
            df.group_by("country").agg(F.col("latency"))

    def test_agg_requires_argument(self, df):
        with pytest.raises(AnalysisError, match="at least one"):
            df.group_by("country").agg()

    def test_window_grouping(self, df):
        out = df.group_by(F.window("time", "30 seconds")).count().collect()
        counts = {r["window_start"]: r["count"] for r in out}
        assert counts == {0.0: 1, 60.0: 3}

    def test_global_aggregate_via_constant_key(self, df):
        out = df.group_by(F.lit(1).alias("g")).agg(F.sum("latency").alias("s")).collect()
        assert out[0]["s"] == 65.0


class TestJoinUnionDistinct:
    def test_inner_join(self, df, session):
        dim = session.create_dataframe(
            [{"country": "US", "region": "NA"}, {"country": "CA", "region": "NA"}],
            (("country", "string"), ("region", "string")))
        out = df.join(dim, on="country")
        assert out.count_rows() == 3
        assert "region" in out.columns

    def test_left_outer_join(self, df, session):
        dim = session.create_dataframe(
            [{"country": "US", "region": "NA"}],
            (("country", "string"), ("region", "string")))
        out = df.join(dim, on="country", how="left_outer").collect()
        regions = {r["country"]: r["region"] for r in out}
        assert regions["US"] == "NA"
        assert regions["MX"] is None

    def test_union(self, df):
        assert df.union(df).count_rows() == 8

    def test_distinct(self, df):
        assert df.select("country").distinct().count_rows() == 3

    def test_drop_duplicates_subset(self, df):
        out = df.drop_duplicates(["country"])
        assert out.count_rows() == 3
        # first occurrence wins
        us = [r for r in out.collect() if r["country"] == "US"]
        assert us[0]["latency"] == 10.0


class TestOrderLimit:
    def test_order_by_ascending(self, df):
        out = df.order_by("latency").collect()
        assert [r["latency"] for r in out] == [5.0, 10.0, 20.0, 30.0]

    def test_order_by_descending_prefix(self, df):
        out = df.order_by("-latency").collect()
        assert out[0]["latency"] == 30.0

    def test_order_by_string_column(self, df):
        out = df.order_by("country").collect()
        assert [r["country"] for r in out] == ["CA", "MX", "US", "US"]

    def test_multi_key_sort(self, df):
        out = df.order_by("country", "-latency").collect()
        assert [r["latency"] for r in out[-2:]] == [30.0, 10.0]

    def test_limit(self, df):
        assert df.order_by("latency").limit(2).count_rows() == 2

    def test_descending_sort_at_int64_extremes(self, session):
        # Negating the value overflows at np.int64.min; the rank-based
        # descending key must order the full int64 range correctly.
        lo, hi = -(2 ** 63), 2 ** 63 - 1
        data = [{"v": lo}, {"v": 7}, {"v": hi}, {"v": 0}]
        out = session.create_dataframe(data, (("v", "long"),)) \
            .order_by("-v").collect()
        assert [r["v"] for r in out] == [hi, 7, 0, lo]


class TestUdfs:
    def test_udf_in_select(self, df):
        shorten = F.udf(lambda c: c[:1], "string")
        out = df.select(shorten(F.col("country")).alias("c")).collect()
        assert [r["c"] for r in out] == ["U", "C", "U", "M"]

    def test_udf_bad_return_type(self):
        with pytest.raises(ValueError):
            F.udf(lambda x: x, "whatever")


class TestStreamingGuards:
    def test_collect_on_streaming_rejected(self, session):
        from tests.conftest import make_stream

        stream = make_stream((("a", "long"),))
        df = session.read_stream.memory(stream)
        assert df.is_streaming
        with pytest.raises(AnalysisError, match="streaming"):
            df.collect()

    def test_write_stream_on_batch_rejected(self, df):
        with pytest.raises(AnalysisError, match="write_stream requires"):
            df.write_stream

    def test_write_on_streaming_rejected(self, session):
        from tests.conftest import make_stream

        df = session.read_stream.memory(make_stream((("a", "long"),)))
        with pytest.raises(AnalysisError):
            df.write


class TestTempViews:
    def test_create_and_read_back(self, df, session):
        df.create_or_replace_temp_view("events")
        assert session.table("events").count_rows() == 4

    def test_missing_view_raises(self, session):
        with pytest.raises(KeyError, match="no such view"):
            session.table("nope")

    def test_save_as_table(self, df, session):
        df.where(F.col("latency") > 15).write.save_as_table("slow")
        assert session.table("slow").count_rows() == 2
