"""Moderate-scale integration tests: the full engine against a naive
reference at sizes where vectorization bugs (masking, window expansion,
group encoding) would show up."""

import numpy as np
import pytest

from repro.bus import Broker
from repro.sql import functions as F
from repro.workloads.yahoo import WINDOW_SECONDS, YahooWorkload, structured_streaming_query

from tests.conftest import make_stream, start_memory_query

N = 60_000


class TestYahooAtScale:
    def test_update_mode_counts_match_reference(self, session):
        workload = YahooWorkload(seed=42)
        broker = Broker()
        rows = workload.event_rows(N, duration=120.0)
        workload.publish(broker, "events", rows, partitions=4)
        query = structured_streaming_query(session, broker, "events", workload)
        handle = (query.write_stream.format("memory").query_name("scale")
                  .output_mode("update").start())
        handle.process_all_available()
        got = {(r["campaign_id"], r["window_start"]): r["count"]
               for r in handle.engine.sink.rows()}
        assert got == workload.reference_counts(rows)

    def test_incremental_chunks_match_one_shot(self, session):
        """Chunked delivery (many epochs) equals single-epoch delivery."""
        workload = YahooWorkload(seed=43)
        rows = workload.event_rows(20_000, duration=60.0)

        def run(chunk_size):
            broker = Broker()
            broker.create_topic("events", 2)
            query = structured_streaming_query(session, broker, "events", workload)
            handle = (query.write_stream.format("memory")
                      .query_name(f"chunk{chunk_size}")
                      .output_mode("update").start())
            for start in range(0, len(rows), chunk_size):
                workload.publish(broker, "events", rows[start:start + chunk_size],
                                 partitions=2)
                handle.process_all_available()
            return {(r["campaign_id"], r["window_start"]): r["count"]
                    for r in handle.engine.sink.rows()}

        assert run(20_000) == run(1_700)


class TestSlidingWindowsAtScale:
    def test_sliding_counts_match_reference(self, session):
        rng = np.random.default_rng(11)
        times = rng.uniform(0, 500, 30_000)
        size, slide = 30.0, 10.0

        reference = {}
        for t in times:
            max_start = np.floor(t / slide) * slide
            start = max_start
            while start > t - size:
                reference[start] = reference.get(start, 0) + 1
                start -= slide

        stream = make_stream((("t", "timestamp"),))
        df = (session.read_stream.memory(stream)
              .group_by(F.window("t", size, slide)).count())
        query = start_memory_query(df, "complete", "slide")
        stream.add_data([{"t": float(t)} for t in times])
        query.process_all_available()
        got = {r["window_start"]: r["count"] for r in query.engine.sink.rows()}
        assert got == reference


class TestManyKeysManyEpochs:
    @pytest.mark.slow
    def test_high_cardinality_aggregation(self, session):
        rng = np.random.default_rng(12)
        stream = make_stream((("k", "long"), ("v", "double")))
        df = (session.read_stream.memory(stream)
              .group_by("k").agg(F.count().alias("n"), F.sum("v").alias("s")))
        query = start_memory_query(df, "complete", "hc")

        expected_n = {}
        expected_s = {}
        for _epoch in range(10):
            ks = rng.integers(0, 5_000, 3_000)
            vs = rng.uniform(-1, 1, 3_000)
            stream.add_data([
                {"k": int(k), "v": float(v)} for k, v in zip(ks, vs)])
            for k, v in zip(ks.tolist(), vs.tolist()):
                expected_n[k] = expected_n.get(k, 0) + 1
                expected_s[k] = expected_s.get(k, 0.0) + v
            query.process_all_available()

        rows = query.engine.sink.rows()
        assert len(rows) == len(expected_n)
        for row in rows:
            assert row["n"] == expected_n[row["k"]]
            assert row["s"] == pytest.approx(expected_s[row["k"]])

    def test_state_store_checkpoints_scale(self, session, checkpoint):
        stream = make_stream((("k", "long"),))
        df = session.read_stream.memory(stream).group_by("k").count()
        query = (df.write_stream.format("memory").query_name("big")
                 .option("snapshot_interval", 5)
                 .output_mode("update").start(checkpoint))
        for epoch in range(8):
            stream.add_data([{"k": epoch * 1_000 + i} for i in range(1_000)])
            query.process_all_available()
        assert query.engine.state_store.total_keys() == 8_000

        # A fresh engine restores all 8k keys from snapshot + deltas.
        q2 = (df.write_stream.sink(query.engine.sink)
              .option("snapshot_interval", 5)
              .output_mode("update").start(checkpoint))
        assert q2.engine.state_store.total_keys() == 8_000
