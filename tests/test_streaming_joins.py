"""Streaming joins: stream-static and watermark-bounded stream-stream
(§5.2, §8.1's TCP/DHCP pattern)."""

import pytest

from repro.sql import functions as F

from tests.conftest import make_stream, rows_set, start_memory_query

LEFT = (("k", "long"), ("t", "timestamp"), ("l", "string"))
RIGHT = (("k", "long"), ("t2", "timestamp"), ("r", "string"))


def two_stream_join(session, how="inner", delay="10s", within_skew="10s"):
    left_stream = make_stream(LEFT)
    right_stream = make_stream(RIGHT)
    left = session.read_stream.memory(left_stream).with_watermark("t", delay)
    right = session.read_stream.memory(right_stream).with_watermark("t2", delay)
    within = ("t", "t2", within_skew) if within_skew is not None else None
    return left_stream, right_stream, left.join(right, on="k", how=how,
                                                within=within)


class TestStreamStreamInner:
    def test_same_epoch_match(self, session):
        ls, rs, df = two_stream_join(session)
        query = start_memory_query(df, "append", "out")
        ls.add_data([{"k": 1, "t": 1.0, "l": "x"}])
        rs.add_data([{"k": 1, "t2": 2.0, "r": "y"}])
        query.process_all_available()
        assert query.engine.sink.rows() == [
            {"k": 1, "t": 1.0, "l": "x", "t2": 2.0, "r": "y"}]

    def test_cross_epoch_match_left_arrives_first(self, session):
        ls, rs, df = two_stream_join(session)
        query = start_memory_query(df, "append", "out")
        ls.add_data([{"k": 1, "t": 1.0, "l": "x"}])
        query.process_all_available()
        assert query.engine.sink.rows() == []
        rs.add_data([{"k": 1, "t2": 2.0, "r": "y"}])
        query.process_all_available()
        assert len(query.engine.sink.rows()) == 1

    def test_cross_epoch_match_right_arrives_first(self, session):
        ls, rs, df = two_stream_join(session)
        query = start_memory_query(df, "append", "out")
        rs.add_data([{"k": 1, "t2": 2.0, "r": "y"}])
        query.process_all_available()
        ls.add_data([{"k": 1, "t": 1.0, "l": "x"}])
        query.process_all_available()
        assert len(query.engine.sink.rows()) == 1

    def test_no_duplicate_pairs_same_epoch(self, session):
        ls, rs, df = two_stream_join(session)
        query = start_memory_query(df, "append", "out")
        ls.add_data([{"k": 1, "t": 1.0, "l": "x"}])
        rs.add_data([{"k": 1, "t2": 2.0, "r": "y"}])
        query.process_all_available()
        rs.add_data([{"k": 2, "t2": 3.0, "r": "z"}])  # unrelated key
        query.process_all_available()
        assert len(query.engine.sink.rows()) == 1

    def test_many_to_many(self, session):
        ls, rs, df = two_stream_join(session)
        query = start_memory_query(df, "append", "out")
        ls.add_data([{"k": 1, "t": 1.0, "l": "x1"}, {"k": 1, "t": 2.0, "l": "x2"}])
        rs.add_data([{"k": 1, "t2": 1.5, "r": "y1"}, {"k": 1, "t2": 2.5, "r": "y2"}])
        query.process_all_available()
        assert len(query.engine.sink.rows()) == 4

    def test_state_bounded_by_watermark(self, session):
        ls, rs, df = two_stream_join(session, delay="5s")
        query = start_memory_query(df, "append", "out")
        for t in (1.0, 20.0, 40.0, 60.0):
            ls.add_data([{"k": int(t), "t": t, "l": "x"}])
            rs.add_data([{"k": 999, "t2": t, "r": "y"}])
            query.process_all_available()
        # Rows far behind both watermarks must have been evicted.
        assert query.engine.state_store.total_keys() <= 4


class TestStreamStreamOuter:
    def test_left_outer_emits_null_padded_on_eviction(self, session):
        ls, rs, df = two_stream_join(session, how="left_outer", delay="5s")
        query = start_memory_query(df, "append", "out")
        ls.add_data([{"k": 1, "t": 1.0, "l": "lonely"}])
        rs.add_data([{"k": 9, "t2": 1.0, "r": "other"}])
        query.process_all_available()
        assert query.engine.sink.rows() == []
        # Advance both watermarks past t=1.
        ls.add_data([{"k": 2, "t": 50.0, "l": "late"}])
        rs.add_data([{"k": 9, "t2": 50.0, "r": "w"}])
        query.process_all_available()
        ls.add_data([{"k": 3, "t": 51.0, "l": "more"}])
        query.process_all_available()
        rows = [r for r in query.engine.sink.rows() if r["l"] == "lonely"]
        assert rows == [{"k": 1, "t": 1.0, "l": "lonely", "t2": None, "r": None}]

    def test_matched_rows_not_re_emitted_as_outer(self, session):
        ls, rs, df = two_stream_join(session, how="left_outer", delay="5s")
        query = start_memory_query(df, "append", "out")
        ls.add_data([{"k": 1, "t": 1.0, "l": "x"}])
        rs.add_data([{"k": 1, "t2": 1.0, "r": "y"}])
        query.process_all_available()
        # push watermarks way past
        ls.add_data([{"k": 2, "t": 100.0, "l": "z"}])
        rs.add_data([{"k": 3, "t2": 100.0, "r": "w"}])
        query.process_all_available()
        ls.add_data([{"k": 4, "t": 101.0, "l": "q"}])
        query.process_all_available()
        k1_rows = [r for r in query.engine.sink.rows() if r["k"] == 1]
        assert k1_rows == [{"k": 1, "t": 1.0, "l": "x", "t2": 1.0, "r": "y"}]

    def test_right_outer(self, session):
        ls, rs, df = two_stream_join(session, how="right_outer", delay="5s")
        query = start_memory_query(df, "append", "out")
        rs.add_data([{"k": 7, "t2": 1.0, "r": "solo"}])
        query.process_all_available()
        ls.add_data([{"k": 1, "t": 100.0, "l": "a"}])
        rs.add_data([{"k": 2, "t2": 100.0, "r": "b"}])
        query.process_all_available()
        rs.add_data([{"k": 3, "t2": 101.0, "r": "c"}])
        query.process_all_available()
        solo = [r for r in query.engine.sink.rows() if r["r"] == "solo"]
        assert solo == [{"k": 7, "t": None, "l": None, "t2": 1.0, "r": "solo"}]


class TestTimeIntervalSemantics:
    def test_pairs_outside_skew_not_matched(self, session):
        ls, rs, df = two_stream_join(session, within_skew="5s")
        query = start_memory_query(df, "append", "out")
        ls.add_data([{"k": 1, "t": 0.0, "l": "x"}])
        rs.add_data([{"k": 1, "t2": 100.0, "r": "far"},   # skew 100 > 5
                     {"k": 1, "t2": 3.0, "r": "near"}])   # skew 3 <= 5
        query.process_all_available()
        assert [r["r"] for r in query.engine.sink.rows()] == ["near"]

    def test_inner_without_bound_keeps_state_forever(self, session):
        """No within bound: matches across arbitrary skew still found —
        prefix consistency is never sacrificed to eviction."""
        ls, rs, df = two_stream_join(session, within_skew=None)
        query = start_memory_query(df, "append", "out")
        ls.add_data([{"k": 1, "t": 1.0, "l": "old"}])
        query.process_all_available()
        # The left stream races far ahead in event time...
        for t in (100.0, 200.0, 300.0):
            ls.add_data([{"k": 99, "t": t, "l": "filler"}])
            query.process_all_available()
        # ...yet a right row for the old key still matches.
        rs.add_data([{"k": 1, "t2": 250.0, "r": "late-but-valid"}])
        query.process_all_available()
        assert len(query.engine.sink.rows()) == 1

    def test_bounded_join_evicts_old_rows(self, session):
        ls, rs, df = two_stream_join(session, delay="0s", within_skew="5s")
        query = start_memory_query(df, "append", "out")
        ls.add_data([{"k": 1, "t": 1.0, "l": "x"}])
        rs.add_data([{"k": 9, "t2": 1.0, "r": "y"}])
        query.process_all_available()
        # Both watermarks jump far past 1 + skew.
        ls.add_data([{"k": 2, "t": 100.0, "l": "a"}])
        rs.add_data([{"k": 3, "t2": 100.0, "r": "b"}])
        query.process_all_available()
        ls.add_data([{"k": 4, "t": 101.0, "l": "c"}])
        rs.add_data([{"k": 5, "t2": 101.0, "r": "d"}])
        query.process_all_available()
        assert query.engine.state_store.total_keys() <= 4  # old rows gone

    def test_late_input_dropped_when_bounded(self, session):
        ls, rs, df = two_stream_join(session, delay="0s", within_skew="5s")
        query = start_memory_query(df, "append", "out")
        ls.add_data([{"k": 1, "t": 100.0, "l": "x"}])
        query.process_all_available()
        ls.add_data([{"k": 1, "t": 101.0, "l": "y"}])
        query.process_all_available()  # left watermark now 100
        ls.add_data([{"k": 1, "t": 50.0, "l": "too-late"}])
        progress = query.process_all_available()
        assert progress[-1].late_rows_dropped == 1

    def test_batch_join_honors_within(self, session):
        left = session.create_dataframe(
            [{"k": 1, "t": 0.0, "l": "a"}, {"k": 1, "t": 50.0, "l": "b"}], LEFT)
        right = session.create_dataframe(
            [{"k": 1, "t2": 3.0, "r": "x"}], RIGHT)
        out = left.join(right, on="k", within=("t", "t2", "5s")).collect()
        assert [r["l"] for r in out] == ["a"]

    def test_batch_outer_join_within_null_pads_unmatched(self, session):
        left = session.create_dataframe(
            [{"k": 1, "t": 0.0, "l": "a"}, {"k": 1, "t": 50.0, "l": "b"}], LEFT)
        right = session.create_dataframe(
            [{"k": 1, "t2": 3.0, "r": "x"}], RIGHT)
        out = left.join(right, on="k", how="left_outer",
                        within=("t", "t2", "5s")).collect()
        by_l = {r["l"]: r["r"] for r in out}
        assert by_l == {"a": "x", "b": None}


class TestJoinEquivalenceWithBatch:
    def test_inner_join_matches_batch_result(self, session):
        left_rows = [{"k": i % 3, "t": float(i), "l": f"l{i}"} for i in range(6)]
        right_rows = [{"k": i % 4, "t2": float(i), "r": f"r{i}"} for i in range(6)]
        expected = rows_set(
            session.create_dataframe(left_rows, LEFT)
            .join(session.create_dataframe(right_rows, RIGHT), on="k")
            .collect())

        ls, rs, df = two_stream_join(session, delay="1000s")
        query = start_memory_query(df, "append", "out")
        for lr, rr in zip(left_rows, right_rows):
            ls.add_data([lr])
            rs.add_data([rr])
            query.process_all_available()
        assert rows_set(query.engine.sink.rows()) == expected
