"""Tests for the checkpoint administration tooling (§7.2)."""

import json

import pytest

from repro.sql import functions as F
from repro.tools.checkpoint import describe_checkpoint, main, rollback_checkpoint

from tests.conftest import make_stream, start_memory_query


@pytest.fixture
def populated_checkpoint(session, checkpoint):
    stream = make_stream((("t", "timestamp"), ("k", "string")))
    df = (session.read_stream.memory(stream)
          .with_watermark("t", "10s")
          .group_by("k").count())
    # describe_checkpoint's state summary reads the dict backend's
    # snapshot files, so the fixture pins it even under
    # REPRO_STATE_BACKEND=tiered.
    query = start_memory_query(df, "update", "adm", checkpoint,
                               state_backend="dict")
    for t in (5.0, 25.0):
        stream.add_data([{"t": t, "k": "a"}])
        query.process_all_available()
    return checkpoint, query, stream, df


class TestDescribe:
    def test_epoch_summary(self, populated_checkpoint):
        checkpoint, _query, _stream, _df = populated_checkpoint
        info = describe_checkpoint(checkpoint)
        assert info["num_epochs"] == 2
        assert info["latest_committed"] == 1
        assert info["uncommitted"] == []
        assert info["epochs"][0]["committed"]
        assert "source-0" in info["epochs"][0]["sources"]

    def test_watermarks_reported(self, populated_checkpoint):
        checkpoint, _q, _s, _df = populated_checkpoint
        info = describe_checkpoint(checkpoint)
        # Epoch 1's entry carries the watermark derived from epoch 0.
        assert info["epochs"][1]["watermarks"] == {"t": -5.0}

    def test_state_store_summary(self, populated_checkpoint):
        checkpoint, _q, _s, _df = populated_checkpoint
        info = describe_checkpoint(checkpoint)
        assert "agg-0" in info["state"]
        assert info["state"]["agg-0"]["versions"] == [0, 1]
        assert info["state"]["agg-0"]["keys_at_last_snapshot"] == 1

    def test_uncommitted_epoch_flagged(self, populated_checkpoint):
        checkpoint, query, _s, _df = populated_checkpoint
        query.engine.wal.write_offsets(2, {"sources": {}})
        info = describe_checkpoint(checkpoint)
        assert info["uncommitted"] == [2]

    def test_metadata_included(self, populated_checkpoint):
        checkpoint, _q, _s, _df = populated_checkpoint
        assert describe_checkpoint(checkpoint)["metadata"]["output_mode"] == "update"


class TestRollback:
    def test_rollback_removes_epochs(self, populated_checkpoint):
        checkpoint, _q, _s, _df = populated_checkpoint
        result = rollback_checkpoint(checkpoint, 0)
        assert result == {"rolled_back_to": 0, "epochs_removed": [1]}
        assert describe_checkpoint(checkpoint)["num_epochs"] == 1

    def test_rollback_unknown_epoch_rejected(self, populated_checkpoint):
        checkpoint, _q, _s, _df = populated_checkpoint
        with pytest.raises(ValueError, match="not found"):
            rollback_checkpoint(checkpoint, 42)

    def test_restart_after_tool_rollback_recomputes(self, session, populated_checkpoint):
        checkpoint, query, stream, df = populated_checkpoint
        rollback_checkpoint(checkpoint, 0)
        sink = query.engine.sink
        q2 = (df.write_stream.sink(sink).output_mode("update").start(checkpoint))
        q2.process_all_available()
        # Epoch 1 recomputed: final count is still 2.
        assert sink.rows() == [{"k": "a", "count": 2}]


class TestCli:
    def test_describe_command(self, populated_checkpoint, capsys):
        checkpoint, _q, _s, _df = populated_checkpoint
        assert main(["describe", checkpoint]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["num_epochs"] == 2

    def test_rollback_command(self, populated_checkpoint, capsys):
        checkpoint, _q, _s, _df = populated_checkpoint
        assert main(["rollback", checkpoint, "0"]) == 0
        assert json.loads(capsys.readouterr().out)["epochs_removed"] == [1]

    def test_usage_on_bad_args(self, capsys):
        assert main([]) == 2
        assert "describe" in capsys.readouterr().err


class TestMonitorNetRates:
    """Retract/cascade throughput in the monitor (satellite fix).

    Retract-mode epochs deliver delete+insert delta rows; the dashboard
    must rate the *net* row count (sum of weights), not the delivered
    delta count — a retraction-heavy window used to read as inflated
    (or, with negative deltas, nonsensical) throughput.
    """

    def test_retract_cascade_rates_use_net_rows(self, session, tmp_path):
        from repro.sources.cdc import ChangeStream
        from repro.sql.types import StructType
        from repro.tools.monitor import load_events, render

        cdc = ChangeStream(StructType((("k", "string"), ("v", "long"))))
        silver = (session.read_stream.cdc(cdc)
                  .filter(F.col("v") >= 0).select("k", "v"))
        ck1 = str(tmp_path / "ck-silver")
        ck2 = str(tmp_path / "ck-gold")
        upstream = (silver.write_stream.to_table("mon_silver")
                    .output_mode("retract").start(ck1))
        downstream = (session.read_stream_table("mon_silver")
                      .group_by("k").agg(F.sum("v").alias("total"))
                      .write_stream.format("memory").query_name("mon-gold")
                      .output_mode("retract").start(ck2))

        def drive():
            upstream.process_all_available()
            downstream.process_all_available()

        cdc.insert([{"k": "a", "v": 5}, {"k": "b", "v": 3}])
        drive()
        # An update retracts the old total and asserts the new one:
        # 2 delivered delta rows, net table growth 0.
        cdc.update([{"k": "a", "v": 5}], [{"k": "a", "v": 2}])
        drive()

        events = load_events(ck2)
        assert len(events) == 2
        assert events[0]["numOutputRows"] == 2
        assert events[0]["numOutputRowsNet"] == 2
        assert events[1]["numOutputRows"] == 2
        assert events[1]["numOutputRowsNet"] == 0

        text = render(events)
        # Window rates use the net count; the delivered delta-row count
        # stays visible as an annotation instead of inflating the rate.
        assert "rows in/out 4/2 (4 delivered)" in text

        # The upstream (stream-table) stage logs net weights too: the
        # update epoch ships one -1 and one +1 row.
        silver_events = load_events(ck1)
        assert silver_events[1]["numOutputRows"] == 2
        assert silver_events[1]["numOutputRowsNet"] == 0

        upstream.stop()
        downstream.stop()

    def test_render_without_net_counts_unchanged(self):
        from repro.tools.monitor import render

        events = [{"epoch": 0, "triggerTime": 1.0, "durationSeconds": 1.0,
                   "numInputRows": 10, "numOutputRows": 10,
                   "backlogRows": 0, "stateKeys": 0, "lateRowsDropped": 0}]
        text = render(events)
        assert "rows in/out 10/10 " in text
        assert "delivered" not in text
