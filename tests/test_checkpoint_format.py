"""Golden tests pinning the on-disk state-checkpoint format byte-for-byte.

The expiry-indexed eviction, probe-based join, and interned-key cache are
pure in-memory structures: the JSON delta/snapshot files they produce must
stay byte-identical to the pre-index format so old checkpoints restore and
mixed old/new restarts agree.  The expected strings below were captured
from the full-scan implementation; any drift here is a recovery break, not
a formatting nit.
"""

from __future__ import annotations

import hashlib
import json
import os

from repro.sql import functions as F

from tests.conftest import make_stream, start_memory_query

AGG_GOLDEN = {
    "agg-0/0000000000.snapshot.json": (
        '{\n  "data": {\n    "[\\"a\\", 0.0]": [\n      1\n    ],\n'
        '    "[\\"b\\", 0.0]": [\n      1\n    ]\n  },\n'
        '  "kind": "snapshot"\n}'
    ),
    "agg-0/0000000002.delta.json": (
        '{\n  "kind": "delta",\n  "puts": {\n'
        '    "[\\"a\\", 0.0]": [\n      2\n    ],\n'
        '    "[\\"c\\", 200.0]": [\n      1\n    ]\n  },\n'
        '  "removes": []\n}'
    ),
    "agg-0/0000000004.delta.json": (
        '{\n  "kind": "delta",\n  "puts": {\n'
        '    "[\\"d\\", 210.0]": [\n      2\n    ]\n  },\n'
        '  "removes": [\n    "[\\"a\\", 0.0]",\n    "[\\"b\\", 0.0]"\n  ]\n}'
    ),
}

JOIN_GOLDEN = {
    "join-left-0/0000000000.snapshot.json": (
        '{\n  "data": {\n    "[1]": [\n      [\n        [\n          1,\n'
        '          1.0,\n          "x"\n        ],\n        false\n'
        '      ]\n    ]\n  },\n  "kind": "snapshot"\n}'
    ),
    # The matched flag flips in place: same entry, same key encoding.
    "join-left-0/0000000001.delta.json": (
        '{\n  "kind": "delta",\n  "puts": {\n    "[1]": [\n      [\n'
        '        [\n          1,\n          1.0,\n          "x"\n'
        '        ],\n        true\n      ]\n    ]\n  },\n'
        '  "removes": []\n}'
    ),
    "join-left-0/0000000002.delta.json": (
        '{\n  "kind": "delta",\n  "puts": {\n    "[2]": [\n      [\n'
        '        [\n          2,\n          3.0,\n          "z"\n'
        '        ],\n        false\n      ]\n    ]\n  },\n'
        '  "removes": []\n}'
    ),
    "join-right-1/0000000000.snapshot.json": (
        '{\n  "data": {},\n  "kind": "snapshot"\n}'
    ),
    "join-right-1/0000000001.delta.json": (
        '{\n  "kind": "delta",\n  "puts": {\n    "[1]": [\n      [\n'
        '        [\n          1,\n          2.0,\n          "y"\n'
        '        ],\n        true\n      ]\n    ]\n  },\n'
        '  "removes": []\n}'
    ),
    "join-right-1/0000000002.delta.json": (
        '{\n  "kind": "delta",\n  "puts": {},\n  "removes": []\n}'
    ),
}


def read_state_files(checkpoint: str) -> dict:
    state_dir = os.path.join(checkpoint, "state")
    found = {}
    for op in sorted(os.listdir(state_dir)):
        op_dir = os.path.join(state_dir, op)
        for name in sorted(os.listdir(op_dir)):
            path = os.path.join(op_dir, name)
            if os.path.isdir(path):
                continue  # the tiered backend's runs/ directory
            with open(path, encoding="utf-8") as f:
                found[f"{op}/{name}"] = f.read()
    return found


# Both golden queries pin ``state_backend`` to the dict engine: these
# bytes ARE the dict format, and must not drift even when the suite
# runs under REPRO_STATE_BACKEND=tiered.  The tiered manifest/run
# format has its own golden in tests/test_state_tiered.py.


def test_windowed_agg_checkpoint_bytes(session, checkpoint):
    stream = make_stream([("t", "timestamp"), ("k", "string")])
    df = session.read_stream.memory(stream).with_watermark("t", "100s")
    counts = df.group_by(F.window("t", "10s"), "k").count()
    query = start_memory_query(counts, "update", "golden-agg", checkpoint,
                               state_checkpoint_interval=2,
                               state_backend="dict")
    epochs = [
        [{"t": 1.0, "k": "a"}, {"t": 2.0, "k": "b"}],
        [{"t": 5.0, "k": "a"}],
        [{"t": 200.0, "k": "c"}],   # advances the watermark past window 0
        [{"t": 210.0, "k": "d"}],   # epoch 3: a/b evicted, checkpoint at 4
        [{"t": 211.0, "k": "d"}],
    ]
    for rows in epochs:
        stream.add_data(rows)
        query.process_all_available()

    assert read_state_files(checkpoint) == AGG_GOLDEN


# ---------------------------------------------------------------------------
# Z-set (retraction) state kinds
# ---------------------------------------------------------------------------
# Weighted aggregate state is ``[live_count, buffers]`` and weighted
# dedup state is ``[total, [[count, row], ...]]``: both are pinned here
# in the dict backend's delta/snapshot files and in the tiered backend's
# sorted runs, so a retraction query's checkpoint restores across
# engine versions and backends.

ZSET_AGG_GOLDEN = {
    "agg-0/0000000000.snapshot.json": (
        '{\n  "data": {\n    "[\\"a\\"]": [\n      1,\n      [\n        [\n'
        '          5,\n          1\n        ],\n        1\n      ]\n    ],\n'
        '    "[\\"b\\"]": [\n      1,\n      [\n        [\n          3,\n'
        '          1\n        ],\n        1\n      ]\n    ]\n  },\n'
        '  "kind": "snapshot"\n}'
    ),
    # Epoch 1's delete of b lands as a state remove; a's live count and
    # [sum, count] buffers advance additively.
    "agg-0/0000000002.delta.json": (
        '{\n  "kind": "delta",\n  "puts": {\n    "[\\"a\\"]": [\n      2,\n'
        '      [\n        [\n          7,\n          2\n        ],\n'
        '        2\n      ]\n    ],\n    "[\\"c\\"]": [\n      1,\n'
        '      [\n        [\n          7,\n          1\n        ],\n'
        '        1\n      ]\n    ]\n  },\n  "removes": [\n    "[\\"b\\"]"\n  ]\n}'
    ),
    "agg-0/0000000004.delta.json": (
        '{\n  "kind": "delta",\n  "puts": {\n    "[\\"a\\"]": [\n      1,\n'
        '      [\n        [\n          2,\n          1\n        ],\n'
        '        1\n      ]\n    ],\n    "[\\"c\\"]": [\n      2,\n'
        '      [\n        [\n          8,\n          2\n        ],\n'
        '        2\n      ]\n    ]\n  },\n  "removes": []\n}'
    ),
}

ZSET_DEDUP_GOLDEN = {
    # Key "a" holds two distinct live rows (the stored row keeps its
    # weight slot, canonically 1); "b" one.
    "dedup-0/0000000000.snapshot.json": (
        '{\n  "data": {\n    "[\\"a\\"]": [\n      2,\n      [\n        [\n'
        '          1,\n          [\n            "a",\n            1,\n'
        '            1\n          ]\n        ],\n        [\n          1,\n'
        '          [\n            "a",\n            2,\n            1\n'
        '          ]\n        ]\n      ]\n    ],\n    "[\\"b\\"]": [\n'
        '      1,\n      [\n        [\n          1,\n          [\n'
        '            "b",\n            9,\n            1\n          ]\n'
        '        ]\n      ]\n    ]\n  },\n  "kind": "snapshot"\n}'
    ),
    # Deleting a's representative promotes the survivor; b disappears.
    "dedup-0/0000000002.delta.json": (
        '{\n  "kind": "delta",\n  "puts": {\n    "[\\"a\\"]": [\n      1,\n'
        '      [\n        [\n          1,\n          [\n            "a",\n'
        '            2,\n            1\n          ]\n        ]\n      ]\n'
        '    ]\n  },\n  "removes": [\n    "[\\"b\\"]"\n  ]\n}'
    ),
    "dedup-0/0000000004.delta.json": (
        '{\n  "kind": "delta",\n  "puts": {\n    "[\\"a\\"]": [\n      1,\n'
        '      [\n        [\n          1,\n          [\n            "a",\n'
        '            2,\n            1\n          ]\n        ]\n      ]\n'
        '    ]\n  },\n  "removes": []\n}'
    ),
}

ZSET_TIERED_RUNS_GOLDEN = {
    "agg-0/runs/00000000.run":
        '["[\\"a\\"]", [1, [[5, 1], 1]]]\n["[\\"b\\"]", [1, [[3, 1], 1]]]\n',
    # b's delete becomes a tombstone line in the next sorted run.
    "agg-0/runs/00000001.run":
        '["[\\"a\\"]", [2, [[7, 2], 2]]]\n["[\\"b\\"]"]\n'
        '["[\\"c\\"]", [1, [[7, 1], 1]]]\n',
    "agg-0/runs/00000002.run":
        '["[\\"a\\"]", [1, [[2, 1], 1]]]\n["[\\"c\\"]", [2, [[8, 2], 2]]]\n',
}


def _weighted_agg_query(checkpoint, backend):
    from repro.sources import ChangeStream
    from repro.sql.session import Session
    from repro.sql.types import StructType

    session = Session()
    cdc = ChangeStream(StructType((("k", "string"), ("v", "long"))))
    df = (session.read_stream.cdc(cdc).group_by("k")
          .agg(F.sum("v").alias("s"), F.count().alias("n")))
    query = (df.write_stream.format("memory").query_name("golden-zset")
             .output_mode("retract")
             .option("state_checkpoint_interval", 2)
             .option("state_backend", backend)
             .start(checkpoint))
    return cdc, query


def _run_weighted_agg_epochs(cdc, query):
    epochs = [
        lambda: cdc.insert([{"k": "a", "v": 5}, {"k": "b", "v": 3}]),
        lambda: (cdc.delete([{"k": "b", "v": 3}]),
                 cdc.insert([{"k": "a", "v": 2}])),
        lambda: cdc.insert([{"k": "c", "v": 7}]),
        lambda: cdc.delete([{"k": "a", "v": 5}]),
        lambda: cdc.insert([{"k": "c", "v": 1}]),
    ]
    for step in epochs:
        step()
        query.process_all_available()


def test_weighted_agg_checkpoint_bytes(checkpoint):
    cdc, query = _weighted_agg_query(checkpoint, "dict")
    _run_weighted_agg_epochs(cdc, query)
    assert read_state_files(checkpoint) == ZSET_AGG_GOLDEN
    assert sorted(query.engine.sink.rows(), key=lambda r: r["k"]) == [
        {"k": "a", "s": 2, "n": 1}, {"k": "c", "s": 8, "n": 2}]


def test_weighted_dedup_checkpoint_bytes(session, checkpoint):
    from repro.sources import ChangeStream
    from repro.sql.types import StructType

    cdc = ChangeStream(StructType((("k", "string"), ("v", "long"))))
    df = session.read_stream.cdc(cdc).drop_duplicates(["k"])
    query = (df.write_stream.format("memory").query_name("golden-dd")
             .output_mode("retract")
             .option("state_checkpoint_interval", 2)
             .option("state_backend", "dict")
             .start(checkpoint))
    epochs = [
        lambda: cdc.insert([{"k": "a", "v": 1}, {"k": "a", "v": 2},
                            {"k": "b", "v": 9}]),
        lambda: cdc.delete([{"k": "a", "v": 1}]),
        lambda: cdc.delete([{"k": "b", "v": 9}]),
        lambda: cdc.insert([{"k": "a", "v": 2}]),
        lambda: cdc.delete([{"k": "a", "v": 2}]),
    ]
    for step in epochs:
        step()
        query.process_all_available()
    assert read_state_files(checkpoint) == ZSET_DEDUP_GOLDEN
    assert query.engine.sink.rows() == [{"k": "a", "v": 2}]


def test_weighted_agg_tiered_checkpoint_bytes(checkpoint):
    """The tiered backend spells the same Z-set values into sorted runs,
    with deletes as tombstones; manifests reference runs by content
    hash, so pinning run bytes pins the whole restore chain."""
    cdc, query = _weighted_agg_query(checkpoint, "tiered")
    _run_weighted_agg_epochs(cdc, query)
    state_dir = os.path.join(checkpoint, "state")
    found = {}
    for root, _dirs, files in os.walk(state_dir):
        for name in files:
            if name.endswith(".run"):
                path = os.path.join(root, name)
                with open(path, encoding="utf-8") as f:
                    found[os.path.relpath(path, state_dir)] = f.read()
    assert found == ZSET_TIERED_RUNS_GOLDEN
    with open(os.path.join(state_dir, "agg-0", "0000000004.manifest.json"),
              encoding="utf-8") as f:
        manifest = json.load(f)
    hashes = [
        hashlib.sha256(
            ZSET_TIERED_RUNS_GOLDEN[f"agg-0/runs/{seq:08d}.run"].encode()
        ).hexdigest()
        for seq in range(3)
    ]
    assert [run["sha256"] for run in manifest["runs"]] == hashes


def test_weighted_state_restores_across_backends(session, checkpoint):
    """dict -> tiered -> dict: each restart reads the previous backend's
    checkpoint (shared directory), keeps retracting, and lands on the
    same result table."""
    from repro.sources import ChangeStream
    from repro.sql.session import Session
    from repro.sql.types import StructType

    cdc = ChangeStream(StructType((("k", "string"), ("v", "long"))))

    def start(backend, sink=None):
        sess = Session()
        df = (sess.read_stream.cdc(cdc).group_by("k")
              .agg(F.sum("v").alias("s"), F.count().alias("n")))
        writer = df.write_stream.output_mode("retract")
        writer = (writer.sink(sink) if sink is not None
                  else writer.format("memory").query_name("xb"))
        return writer.option("state_backend", backend).start(checkpoint)

    query = start("dict")
    sink = query.engine.sink
    cdc.insert([{"k": "a", "v": 5}, {"k": "b", "v": 3}, {"k": "a", "v": 1}])
    query.process_all_available()
    query.stop()

    query = start("tiered", sink)
    cdc.delete([{"k": "a", "v": 5}])
    cdc.insert([{"k": "c", "v": 4}])
    query.process_all_available()
    query.stop()

    query = start("dict", sink)
    cdc.delete([{"k": "b", "v": 3}])
    cdc.insert([{"k": "a", "v": 10}])
    query.process_all_available()
    query.stop()

    assert sorted(sink.rows(), key=lambda r: r["k"]) == [
        {"k": "a", "s": 11, "n": 2}, {"k": "c", "s": 4, "n": 1}]


def test_stream_stream_join_checkpoint_bytes(session, checkpoint):
    ls = make_stream([("k", "long"), ("t", "timestamp"), ("l", "string")])
    rs = make_stream([("k", "long"), ("t2", "timestamp"), ("r", "string")])
    left = session.read_stream.memory(ls).with_watermark("t", "10s")
    right = session.read_stream.memory(rs).with_watermark("t2", "10s")
    joined = left.join(right, on="k")
    query = start_memory_query(joined, "append", "golden-join", checkpoint,
                               state_backend="dict")

    ls.add_data([{"k": 1, "t": 1.0, "l": "x"}])
    query.process_all_available()
    rs.add_data([{"k": 1, "t2": 2.0, "r": "y"}])
    query.process_all_available()
    ls.add_data([{"k": 2, "t": 3.0, "l": "z"}])
    query.process_all_available()

    assert read_state_files(checkpoint) == JOIN_GOLDEN
