"""Golden tests pinning the on-disk state-checkpoint format byte-for-byte.

The expiry-indexed eviction, probe-based join, and interned-key cache are
pure in-memory structures: the JSON delta/snapshot files they produce must
stay byte-identical to the pre-index format so old checkpoints restore and
mixed old/new restarts agree.  The expected strings below were captured
from the full-scan implementation; any drift here is a recovery break, not
a formatting nit.
"""

from __future__ import annotations

import os

from repro.sql import functions as F

from tests.conftest import make_stream, start_memory_query

AGG_GOLDEN = {
    "agg-0/0000000000.snapshot.json": (
        '{\n  "data": {\n    "[\\"a\\", 0.0]": [\n      1\n    ],\n'
        '    "[\\"b\\", 0.0]": [\n      1\n    ]\n  },\n'
        '  "kind": "snapshot"\n}'
    ),
    "agg-0/0000000002.delta.json": (
        '{\n  "kind": "delta",\n  "puts": {\n'
        '    "[\\"a\\", 0.0]": [\n      2\n    ],\n'
        '    "[\\"c\\", 200.0]": [\n      1\n    ]\n  },\n'
        '  "removes": []\n}'
    ),
    "agg-0/0000000004.delta.json": (
        '{\n  "kind": "delta",\n  "puts": {\n'
        '    "[\\"d\\", 210.0]": [\n      2\n    ]\n  },\n'
        '  "removes": [\n    "[\\"a\\", 0.0]",\n    "[\\"b\\", 0.0]"\n  ]\n}'
    ),
}

JOIN_GOLDEN = {
    "join-left-0/0000000000.snapshot.json": (
        '{\n  "data": {\n    "[1]": [\n      [\n        [\n          1,\n'
        '          1.0,\n          "x"\n        ],\n        false\n'
        '      ]\n    ]\n  },\n  "kind": "snapshot"\n}'
    ),
    # The matched flag flips in place: same entry, same key encoding.
    "join-left-0/0000000001.delta.json": (
        '{\n  "kind": "delta",\n  "puts": {\n    "[1]": [\n      [\n'
        '        [\n          1,\n          1.0,\n          "x"\n'
        '        ],\n        true\n      ]\n    ]\n  },\n'
        '  "removes": []\n}'
    ),
    "join-left-0/0000000002.delta.json": (
        '{\n  "kind": "delta",\n  "puts": {\n    "[2]": [\n      [\n'
        '        [\n          2,\n          3.0,\n          "z"\n'
        '        ],\n        false\n      ]\n    ]\n  },\n'
        '  "removes": []\n}'
    ),
    "join-right-1/0000000000.snapshot.json": (
        '{\n  "data": {},\n  "kind": "snapshot"\n}'
    ),
    "join-right-1/0000000001.delta.json": (
        '{\n  "kind": "delta",\n  "puts": {\n    "[1]": [\n      [\n'
        '        [\n          1,\n          2.0,\n          "y"\n'
        '        ],\n        true\n      ]\n    ]\n  },\n'
        '  "removes": []\n}'
    ),
    "join-right-1/0000000002.delta.json": (
        '{\n  "kind": "delta",\n  "puts": {},\n  "removes": []\n}'
    ),
}


def read_state_files(checkpoint: str) -> dict:
    state_dir = os.path.join(checkpoint, "state")
    found = {}
    for op in sorted(os.listdir(state_dir)):
        op_dir = os.path.join(state_dir, op)
        for name in sorted(os.listdir(op_dir)):
            path = os.path.join(op_dir, name)
            if os.path.isdir(path):
                continue  # the tiered backend's runs/ directory
            with open(path, encoding="utf-8") as f:
                found[f"{op}/{name}"] = f.read()
    return found


# Both golden queries pin ``state_backend`` to the dict engine: these
# bytes ARE the dict format, and must not drift even when the suite
# runs under REPRO_STATE_BACKEND=tiered.  The tiered manifest/run
# format has its own golden in tests/test_state_tiered.py.


def test_windowed_agg_checkpoint_bytes(session, checkpoint):
    stream = make_stream([("t", "timestamp"), ("k", "string")])
    df = session.read_stream.memory(stream).with_watermark("t", "100s")
    counts = df.group_by(F.window("t", "10s"), "k").count()
    query = start_memory_query(counts, "update", "golden-agg", checkpoint,
                               state_checkpoint_interval=2,
                               state_backend="dict")
    epochs = [
        [{"t": 1.0, "k": "a"}, {"t": 2.0, "k": "b"}],
        [{"t": 5.0, "k": "a"}],
        [{"t": 200.0, "k": "c"}],   # advances the watermark past window 0
        [{"t": 210.0, "k": "d"}],   # epoch 3: a/b evicted, checkpoint at 4
        [{"t": 211.0, "k": "d"}],
    ]
    for rows in epochs:
        stream.add_data(rows)
        query.process_all_available()

    assert read_state_files(checkpoint) == AGG_GOLDEN


def test_stream_stream_join_checkpoint_bytes(session, checkpoint):
    ls = make_stream([("k", "long"), ("t", "timestamp"), ("l", "string")])
    rs = make_stream([("k", "long"), ("t2", "timestamp"), ("r", "string")])
    left = session.read_stream.memory(ls).with_watermark("t", "10s")
    right = session.read_stream.memory(rs).with_watermark("t2", "10s")
    joined = left.join(right, on="k")
    query = start_memory_query(joined, "append", "golden-join", checkpoint,
                               state_backend="dict")

    ls.add_data([{"k": 1, "t": 1.0, "l": "x"}])
    query.process_all_available()
    rs.add_data([{"k": 1, "t2": 2.0, "r": "y"}])
    query.process_all_available()
    ls.add_data([{"k": 2, "t": 3.0, "l": "z"}])
    query.process_all_available()

    assert read_state_files(checkpoint) == JOIN_GOLDEN
