"""Direct tests for the closure compiler (repro.sql.codegen) — the
code-generation analogue must agree with interpreted evaluation and fail
fast at compile time."""

import numpy as np
import pytest

from repro.sql import expressions as E
from repro.sql.batch import RecordBatch
from repro.sql.codegen import compile_expression, compile_predicate, compile_projection
from repro.sql.expressions import AnalysisError
from repro.sql.types import StructType

SCHEMA = StructType((("i", "long"), ("x", "double"), ("s", "string"),
                     ("flag", "boolean")))

BATCH = RecordBatch.from_rows([
    {"i": 1, "x": 0.5, "s": "a", "flag": True},
    {"i": 2, "x": 1.5, "s": "b", "flag": False},
    {"i": 3, "x": 2.5, "s": None, "flag": True},
], SCHEMA)


class TestCompileExpression:
    @pytest.mark.parametrize("expr,expected", [
        (E.ColumnRef("i"), [1, 2, 3]),
        (E.Literal(7), [7, 7, 7]),
        (E.Literal("k"), ["k", "k", "k"]),
        (E.ColumnRef("i") + E.ColumnRef("x"), [1.5, 3.5, 5.5]),
        (E.ColumnRef("i") * 2 - 1, [1, 3, 5]),
        (E.ColumnRef("i") > 1, [False, True, True]),
        ((E.ColumnRef("i") > 1) & E.ColumnRef("flag"), [False, False, True]),
        ((E.ColumnRef("i") > 2) | E.ColumnRef("flag"), [True, False, True]),
        (~E.ColumnRef("flag"), [False, True, False]),
        (E.ColumnRef("i").isin([1, 3]), [True, False, True]),
        (E.ColumnRef("s").isin(["a"]), [True, False, False]),
    ])
    def test_compiled_matches_expected(self, expr, expected):
        fn = compile_expression(expr, SCHEMA)
        assert fn(BATCH).tolist() == expected

    def test_alias_is_transparent(self):
        fn = compile_expression((E.ColumnRef("i") + 1).alias("j"), SCHEMA)
        assert fn(BATCH).tolist() == [2, 3, 4]

    def test_fallback_nodes_still_work(self):
        # IsNull/Cast/CaseWhen use the node evaluator fallback path.
        from repro.sql.types import DOUBLE

        fn = compile_expression(E.IsNull(E.ColumnRef("s")), SCHEMA)
        assert fn(BATCH).tolist() == [False, False, True]
        fn = compile_expression(E.Cast(E.ColumnRef("i"), DOUBLE), SCHEMA)
        assert fn(BATCH).dtype == np.float64

    def test_compile_fails_fast_on_unresolved(self):
        with pytest.raises(AnalysisError):
            compile_expression(E.ColumnRef("zzz"), SCHEMA)

    def test_compile_fails_fast_on_type_error(self):
        with pytest.raises(AnalysisError):
            compile_expression(E.ColumnRef("s") + 1, SCHEMA)

    def test_compiled_closure_reusable_across_batches(self):
        fn = compile_expression(E.ColumnRef("i") * 10, SCHEMA)
        other = RecordBatch.from_rows(
            [{"i": 9, "x": 0.0, "s": "z", "flag": False}], SCHEMA)
        assert fn(BATCH).tolist() == [10, 20, 30]
        assert fn(other).tolist() == [90]

    def test_division_suppresses_warnings(self):
        fn = compile_expression(E.ColumnRef("x") / E.ColumnRef("i"), SCHEMA)
        out = fn(BATCH)
        assert out[0] == pytest.approx(0.5)

    def test_matches_interpreter_on_compound_expression(self):
        expr = ((E.ColumnRef("i") * 3 + E.ColumnRef("x")) > 4) & \
            ~E.ColumnRef("s").is_null()
        fn = compile_expression(expr, SCHEMA)
        rows = BATCH.to_rows()
        assert fn(BATCH).tolist() == [bool(expr.eval_row(r)) for r in rows]


class TestCompilePredicateAndProjection:
    def test_predicate_requires_boolean(self):
        with pytest.raises(AnalysisError, match="boolean"):
            compile_predicate(E.ColumnRef("i") + 1, SCHEMA)

    def test_predicate_usable_as_mask(self):
        mask = compile_predicate(E.ColumnRef("i") >= 2, SCHEMA)(BATCH)
        assert BATCH.filter(mask).num_rows == 2

    def test_projection_returns_all_columns(self):
        project = compile_projection(
            [E.ColumnRef("i"), (E.ColumnRef("x") * 2).alias("x2")], SCHEMA)
        arrays = project(BATCH)
        assert len(arrays) == 2
        assert arrays[1].tolist() == [1.0, 3.0, 5.0]
