"""Unit tests for the aggregate buffer protocol.

The protocol is what makes aggregates incrementally maintainable (§5.2):
``merge(finish)`` over arbitrary partial splits must equal a single-shot
aggregation, and buffers must round-trip through JSON (they live in the
state store).
"""

import json

import numpy as np
import pytest

from repro.sql import expressions as E
from repro.sql.batch import RecordBatch
from repro.sql.expressions import AnalysisError
from repro.sql.types import StructType

SCHEMA = StructType((("k", "long"), ("v", "double"), ("s", "string")))


def batch_of(values, strings=None):
    n = len(values)
    strings = strings if strings is not None else [f"s{i}" for i in range(n)]
    return RecordBatch.from_rows(
        [{"k": 0, "v": v, "s": s} for v, s in zip(values, strings)], SCHEMA
    )


def run_buffer(agg, values):
    buf = agg.init()
    for v in values:
        buf = agg.update(buf, v)
    return agg.finish(buf)


class TestCount:
    def test_count_star_counts_rows(self):
        agg = E.Count(None)
        assert run_buffer(agg, [1, None, 3]) == 3

    def test_count_column_skips_nulls(self):
        agg = E.Count(E.ColumnRef("v"))
        assert run_buffer(agg, [1, None, 3]) == 2

    def test_merge(self):
        agg = E.Count(None)
        assert agg.merge(2, 3) == 5

    def test_batch_partials(self):
        agg = E.Count(None)
        batch = batch_of([1.0, 2.0, 3.0])
        codes = np.array([0, 1, 0])
        assert agg.batch_partials(batch, codes, 2) == [2, 1]

    def test_batch_partials_skip_null_values(self):
        agg = E.Count(E.ColumnRef("s"))
        batch = batch_of([1.0, 2.0], strings=["x", None])
        codes = np.array([0, 0])
        assert agg.batch_partials(batch, codes, 1) == [1]

    def test_result_type(self):
        assert E.Count(None).data_type(SCHEMA).simple_name == "long"


class TestSum:
    def test_simple(self):
        assert run_buffer(E.Sum(E.ColumnRef("v")), [1, 2, 3.5]) == 6.5

    def test_empty_group_is_null(self):
        assert run_buffer(E.Sum(E.ColumnRef("v")), []) is None
        assert run_buffer(E.Sum(E.ColumnRef("v")), [None]) is None

    def test_merge_associative(self):
        agg = E.Sum(E.ColumnRef("v"))
        left = agg.update(agg.init(), 2)
        right = agg.update(agg.init(), 3)
        assert agg.finish(agg.merge(left, right)) == 5

    def test_int_sum_type(self):
        schema = StructType((("v", "long"),))
        assert E.Sum(E.ColumnRef("v")).data_type(schema).simple_name == "long"

    def test_double_sum_type(self):
        assert E.Sum(E.ColumnRef("v")).data_type(SCHEMA).simple_name == "double"

    def test_batch_partials_with_nan(self):
        agg = E.Sum(E.ColumnRef("v"))
        batch = RecordBatch.from_columns(
            SCHEMA, k=np.zeros(3, dtype=np.int64),
            v=np.array([1.0, np.nan, 2.0]),
            s=np.array(["a", "b", "c"], dtype=object),
        )
        partials = agg.batch_partials(batch, np.array([0, 0, 0]), 1)
        assert agg.finish(partials[0]) == 3.0

    def test_non_numeric_rejected(self):
        with pytest.raises(AnalysisError):
            E.Sum(E.ColumnRef("s")).data_type(SCHEMA)


class TestAvg:
    def test_simple(self):
        assert run_buffer(E.Avg(E.ColumnRef("v")), [1, 2, 3]) == 2.0

    def test_nulls_ignored(self):
        assert run_buffer(E.Avg(E.ColumnRef("v")), [2, None, 4]) == 3.0

    def test_empty_is_null(self):
        assert run_buffer(E.Avg(E.ColumnRef("v")), []) is None

    def test_merge(self):
        agg = E.Avg(E.ColumnRef("v"))
        left = [6.0, 2]
        right = [4.0, 2]
        assert agg.finish(agg.merge(left, right)) == 2.5

    def test_batch_partials(self):
        agg = E.Avg(E.ColumnRef("v"))
        batch = batch_of([2.0, 4.0, 9.0])
        partials = agg.batch_partials(batch, np.array([0, 0, 1]), 2)
        assert agg.finish(partials[0]) == 3.0
        assert agg.finish(partials[1]) == 9.0


class TestMinMax:
    def test_min(self):
        assert run_buffer(E.Min(E.ColumnRef("v")), [3, 1, 2]) == 1

    def test_max(self):
        assert run_buffer(E.Max(E.ColumnRef("v")), [3, 1, 2]) == 3

    def test_empty_is_null(self):
        assert run_buffer(E.Min(E.ColumnRef("v")), []) is None

    def test_nulls_skipped(self):
        assert run_buffer(E.Min(E.ColumnRef("v")), [None, 5, None]) == 5

    def test_merge_with_none_sides(self):
        agg = E.Max(E.ColumnRef("v"))
        assert agg.merge(None, 3) == 3
        assert agg.merge(3, None) == 3
        assert agg.merge(2, 3) == 3

    def test_batch_partials_numeric(self):
        agg = E.Min(E.ColumnRef("v"))
        batch = batch_of([5.0, 1.0, 3.0, 2.0])
        partials = agg.batch_partials(batch, np.array([0, 0, 1, 1]), 2)
        assert partials == [1.0, 2.0]

    def test_batch_partials_strings(self):
        agg = E.Max(E.ColumnRef("s"))
        batch = batch_of([0.0, 0.0, 0.0], strings=["b", "c", "a"])
        partials = agg.batch_partials(batch, np.array([0, 0, 1]), 2)
        assert partials == ["c", "a"]

    def test_batch_partials_group_without_values(self):
        agg = E.Min(E.ColumnRef("v"))
        batch = batch_of([1.0])
        partials = agg.batch_partials(batch, np.array([1]), 2)
        assert partials[0] is None
        assert partials[1] == 1.0

    def test_result_type_follows_input(self):
        assert E.Min(E.ColumnRef("s")).data_type(SCHEMA).simple_name == "string"
        assert E.Max(E.ColumnRef("v")).data_type(SCHEMA).simple_name == "double"


class TestCollectSet:
    def test_distinct_sorted(self):
        assert run_buffer(E.CollectSet(E.ColumnRef("s")), ["b", "a", "b"]) == ["a", "b"]

    def test_merge_unions(self):
        agg = E.CollectSet(E.ColumnRef("s"))
        assert agg.merge(["a"], ["b", "a"]) == ["a", "b"]

    def test_batch_partials(self):
        agg = E.CollectSet(E.ColumnRef("s"))
        batch = batch_of([0.0, 0.0, 0.0], strings=["x", "y", "x"])
        assert agg.batch_partials(batch, np.array([0, 0, 0]), 1) == [["x", "y"]]


class TestJsonSerializableBuffers:
    """Buffers live in the JSON state store: they must round-trip."""

    @pytest.mark.parametrize("agg,values", [
        (E.Count(None), [1, 2]),
        (E.Sum(E.ColumnRef("v")), [1.5, 2.5]),
        (E.Avg(E.ColumnRef("v")), [1.0, 3.0]),
        (E.Min(E.ColumnRef("v")), [4.0, 2.0]),
        (E.Max(E.ColumnRef("s")), ["a", "b"]),
        (E.CollectSet(E.ColumnRef("s")), ["a", "b", "a"]),
    ])
    def test_roundtrip(self, agg, values):
        buf = agg.init()
        for v in values:
            buf = agg.update(buf, v)
        restored = json.loads(json.dumps(buf))
        assert agg.finish(restored) == agg.finish(buf)


class TestPartialSplitEquivalence:
    """merge(partials of any split) == single-shot aggregation."""

    @pytest.mark.parametrize("agg_factory", [
        lambda: E.Count(None),
        lambda: E.Sum(E.ColumnRef("v")),
        lambda: E.Avg(E.ColumnRef("v")),
        lambda: E.Min(E.ColumnRef("v")),
        lambda: E.Max(E.ColumnRef("v")),
    ])
    @pytest.mark.parametrize("split", [1, 2, 3, 7])
    def test_split_equivalence(self, agg_factory, split):
        values = [5.0, 1.0, 4.0, 4.0, 2.0, 8.0, 0.5]
        agg = agg_factory()
        expected = run_buffer(agg, values)
        merged = agg.init()
        for i in range(0, len(values), split):
            chunk = values[i:i + split]
            partial = agg.init()
            for v in chunk:
                partial = agg.update(partial, v)
            merged = agg.merge(merged, partial)
        assert agg.finish(merged) == expected
