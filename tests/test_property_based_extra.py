"""More property-based tests: optimizer semantics, join equivalence,
session-window chunking invariance."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.sql import expressions as E
from repro.sql import logical as L
from repro.sql.batch import RecordBatch
from repro.sql.optimizer import optimize
from repro.sql.physical import execute
from repro.sql.session import Session, _InMemoryProvider
from repro.sql.types import StructType
from repro.streaming.sessions import session_windows

from tests.conftest import make_stream, rows_set, start_memory_query


# ---------------------------------------------------------------------------
# Optimizer preserves semantics on random plans
# ---------------------------------------------------------------------------

SCHEMA = StructType((("a", "long"), ("b", "double"), ("s", "string")))

base_rows = st.lists(
    st.builds(
        lambda a, b, s: {"a": a, "b": float(b), "s": s},
        st.integers(-5, 5),
        st.floats(min_value=-10, max_value=10, allow_nan=False, width=32),
        st.sampled_from(["x", "y", "z"]),
    ),
    max_size=20,
)

comparisons = st.builds(
    lambda col, op, val: E.Comparison(E.ColumnRef(col), E.Literal(val), op),
    st.sampled_from(["a", "b"]),
    st.sampled_from(["<", "<=", ">", ">=", "==", "!="]),
    st.integers(-5, 5),
)

conditions = st.recursive(
    comparisons,
    lambda inner: st.builds(
        lambda l, r, op: E.BooleanOp(l, r, op),
        inner, inner, st.sampled_from(["and", "or"]),
    ),
    max_leaves=4,
)


def _scan(rows):
    return L.Scan(
        SCHEMA, _InMemoryProvider([RecordBatch.from_rows(rows, SCHEMA)]),
        False, name="t",
    )


@settings(max_examples=60, deadline=None)
@given(rows=base_rows, cond1=conditions, cond2=conditions)
def test_optimizer_preserves_filter_semantics(rows, cond1, cond2):
    plan = L.Filter(cond1, L.Filter(cond2, L.Project(
        [E.ColumnRef("a"), E.ColumnRef("b"),
         (E.ColumnRef("a") * 2).alias("a2")],
        _scan(rows),
    )))
    expected = execute(plan).to_rows()
    optimized = optimize(plan)
    assert execute(optimized).to_rows() == expected


@settings(max_examples=40, deadline=None)
@given(rows=base_rows, cond=conditions)
def test_optimizer_preserves_aggregate_semantics(rows, cond):
    from repro.sql.expressions import Count, Sum

    plan = L.Aggregate(
        [E.ColumnRef("s")],
        [(Count(None), "n"), (Sum(E.ColumnRef("b")), "total")],
        L.Filter(cond, _scan(rows)),
    )
    expected = rows_set(execute(plan).to_rows())
    assert rows_set(execute(optimize(plan)).to_rows()) == expected


# ---------------------------------------------------------------------------
# Streaming stream-stream join == batch join (all data within watermark)
# ---------------------------------------------------------------------------

join_rows = st.lists(
    st.tuples(st.integers(0, 3), st.floats(0, 50, allow_nan=False)),
    min_size=0, max_size=12,
)


@settings(max_examples=25, deadline=None)
@given(left=join_rows, right=join_rows, seed=st.integers(0, 2**16))
def test_stream_stream_join_equals_batch(left, right, seed):
    left_schema = (("k", "long"), ("t", "timestamp"))
    right_schema = (("k", "long"), ("t2", "timestamp"))
    left_rows = [{"k": k, "t": t} for k, t in left]
    right_rows = [{"k": k, "t2": t} for k, t in right]

    session = Session()
    expected = rows_set(
        session.create_dataframe(left_rows, left_schema)
        .join(session.create_dataframe(right_rows, right_schema), on="k")
        .collect())

    ls = make_stream(left_schema)
    rs = make_stream(right_schema)
    joined = (session.read_stream.memory(ls).with_watermark("t", "1000s")
              .join(session.read_stream.memory(rs).with_watermark("t2", "1000s"),
                    on="k"))
    query = start_memory_query(joined, "append", "out")
    rng = np.random.default_rng(seed)
    lq, rq = list(left_rows), list(right_rows)
    while lq or rq:
        if lq and (not rq or rng.random() < 0.5):
            take = int(rng.integers(1, len(lq) + 1))
            ls.add_data(lq[:take])
            lq = lq[take:]
        elif rq:
            take = int(rng.integers(1, len(rq) + 1))
            rs.add_data(rq[:take])
            rq = rq[take:]
        query.process_all_available()
    assert rows_set(query.engine.sink.rows()) == expected


# ---------------------------------------------------------------------------
# Session windows: chunking does not change the final sessions
# ---------------------------------------------------------------------------

session_events = st.lists(
    st.floats(min_value=0, max_value=300, allow_nan=False),
    min_size=1, max_size=15,
)


@settings(max_examples=25, deadline=None)
@given(times=session_events)
def test_session_windows_match_reference(times):
    """Feeding all events sorted in one epoch yields exactly the sessions
    a reference fold computes."""
    gap = 30.0
    ordered = sorted(times)
    # Reference sessionization.
    expected = []
    current = None
    for t in ordered:
        if current is None or t > current["end"] + gap:
            if current is not None:
                expected.append(current)
            current = {"start": t, "end": t, "n": 1}
        else:
            current["end"] = t
            current["n"] += 1
    if current is not None:
        expected.append(current)

    session = Session()
    stream = make_stream((("user", "string"), ("t", "timestamp")))
    df = session.read_stream.memory(stream).with_watermark("t", "0s")
    query = start_memory_query(
        session_windows(df, ["user"], "t", gap), "append", "out")
    stream.add_data([{"user": "u", "t": t} for t in ordered])
    query.process_all_available()
    # Close the final session by pushing the watermark far ahead.
    stream.add_data([{"user": "zz", "t": 10_000.0}])
    query.process_all_available()
    stream.add_data([{"user": "zz", "t": 10_001.0}])
    query.process_all_available()

    got = [
        {"start": r["session_start"], "end": r["session_end"], "n": r["events"]}
        for r in query.engine.sink.rows() if r["user"] == "u"
    ]
    assert sorted(got, key=lambda s: s["start"]) == expected
