"""More property-based tests: optimizer semantics, join equivalence,
session-window chunking invariance, and crash recovery through the
probe-join / indexed-eviction state paths."""

import json
import os

import numpy as np
from hypothesis import given, strategies as st

from repro.sql import expressions as E
from repro.sql import logical as L
from repro.sql.batch import RecordBatch
from repro.sql.optimizer import optimize
from repro.sql.physical import execute
from repro.sql.session import Session, _InMemoryProvider
from repro.sql.types import StructType
from repro.streaming.sessions import session_windows
from repro.streaming.state import decode_key, encode_key

from tests.conftest import make_stream, rows_set, start_memory_query


# ---------------------------------------------------------------------------
# Optimizer preserves semantics on random plans
# ---------------------------------------------------------------------------

SCHEMA = StructType((("a", "long"), ("b", "double"), ("s", "string")))

base_rows = st.lists(
    st.builds(
        lambda a, b, s: {"a": a, "b": float(b), "s": s},
        st.integers(-5, 5),
        st.floats(min_value=-10, max_value=10, allow_nan=False, width=32),
        st.sampled_from(["x", "y", "z"]),
    ),
    max_size=20,
)

comparisons = st.builds(
    lambda col, op, val: E.Comparison(E.ColumnRef(col), E.Literal(val), op),
    st.sampled_from(["a", "b"]),
    st.sampled_from(["<", "<=", ">", ">=", "==", "!="]),
    st.integers(-5, 5),
)

conditions = st.recursive(
    comparisons,
    lambda inner: st.builds(
        lambda l, r, op: E.BooleanOp(l, r, op),
        inner, inner, st.sampled_from(["and", "or"]),
    ),
    max_leaves=4,
)


def _scan(rows):
    return L.Scan(
        SCHEMA, _InMemoryProvider([RecordBatch.from_rows(rows, SCHEMA)]),
        False, name="t",
    )


@given(rows=base_rows, cond1=conditions, cond2=conditions)
def test_optimizer_preserves_filter_semantics(rows, cond1, cond2):
    plan = L.Filter(cond1, L.Filter(cond2, L.Project(
        [E.ColumnRef("a"), E.ColumnRef("b"),
         (E.ColumnRef("a") * 2).alias("a2")],
        _scan(rows),
    )))
    expected = execute(plan).to_rows()
    optimized = optimize(plan)
    assert execute(optimized).to_rows() == expected


@given(rows=base_rows, cond=conditions)
def test_optimizer_preserves_aggregate_semantics(rows, cond):
    from repro.sql.expressions import Count, Sum

    plan = L.Aggregate(
        [E.ColumnRef("s")],
        [(Count(None), "n"), (Sum(E.ColumnRef("b")), "total")],
        L.Filter(cond, _scan(rows)),
    )
    expected = rows_set(execute(plan).to_rows())
    assert rows_set(execute(optimize(plan)).to_rows()) == expected


# ---------------------------------------------------------------------------
# Streaming stream-stream join == batch join (all data within watermark)
# ---------------------------------------------------------------------------

join_rows = st.lists(
    st.tuples(st.integers(0, 3), st.floats(0, 50, allow_nan=False)),
    min_size=0, max_size=12,
)


@given(left=join_rows, right=join_rows, seed=st.integers(0, 2**16))
def test_stream_stream_join_equals_batch(left, right, seed):
    left_schema = (("k", "long"), ("t", "timestamp"))
    right_schema = (("k", "long"), ("t2", "timestamp"))
    left_rows = [{"k": k, "t": t} for k, t in left]
    right_rows = [{"k": k, "t2": t} for k, t in right]

    session = Session()
    expected = rows_set(
        session.create_dataframe(left_rows, left_schema)
        .join(session.create_dataframe(right_rows, right_schema), on="k")
        .collect())

    ls = make_stream(left_schema)
    rs = make_stream(right_schema)
    joined = (session.read_stream.memory(ls).with_watermark("t", "1000s")
              .join(session.read_stream.memory(rs).with_watermark("t2", "1000s"),
                    on="k"))
    query = start_memory_query(joined, "append", "out")
    rng = np.random.default_rng(seed)
    lq, rq = list(left_rows), list(right_rows)
    while lq or rq:
        if lq and (not rq or rng.random() < 0.5):
            take = int(rng.integers(1, len(lq) + 1))
            ls.add_data(lq[:take])
            lq = lq[take:]
        elif rq:
            take = int(rng.integers(1, len(rq) + 1))
            rs.add_data(rq[:take])
            rq = rq[take:]
        query.process_all_available()
    assert rows_set(query.engine.sink.rows()) == expected


# ---------------------------------------------------------------------------
# Crash recovery through the probe-join / indexed-eviction paths, with
# state checkpoints lagging commits (interval > 1)
# ---------------------------------------------------------------------------

def assert_canonical_state_files(checkpoint: str):
    """Every state file must be in the pre-index on-disk format: canonical
    sorted-key indent-2 JSON with string-encoded state keys that survive a
    decode/encode roundtrip.  The expiry index and key cache are memory-only;
    nothing about them may leak to disk.

    This reads the *dict* backend's delta/snapshot layout, so callers pin
    ``state_backend="dict"`` (the tiered manifest/run format has its own
    golden in tests/test_state_tiered.py)."""
    state_dir = os.path.join(checkpoint, "state")
    if not os.path.isdir(state_dir):
        return
    for op in os.listdir(state_dir):
        for name in os.listdir(os.path.join(state_dir, op)):
            path = os.path.join(state_dir, op, name)
            with open(path, encoding="utf-8") as f:
                text = f.read()
            payload = json.loads(text)
            assert text == json.dumps(payload, indent=2, sort_keys=True)
            if payload["kind"] == "snapshot":
                assert set(payload) == {"kind", "data"}
                state_keys = list(payload["data"])
            else:
                assert set(payload) == {"kind", "puts", "removes"}
                state_keys = list(payload["puts"]) + payload["removes"]
            for state_key in state_keys:
                assert encode_key(decode_key(state_key)) == state_key


within_join_rows = st.lists(
    st.tuples(st.integers(0, 3), st.floats(0, 50, allow_nan=False)),
    min_size=0, max_size=12,
)


@given(left=within_join_rows, right=within_join_rows,
       crash_mask=st.lists(st.booleans(), min_size=1, max_size=10),
       seed=st.integers(0, 2**16))
def test_within_join_exactly_once_under_restarts(
        tmp_path_factory, left, right, crash_mask, seed):
    """Time-bounded join with eviction live, state checkpoints every 3rd
    epoch, and restarts at random points: output still equals the batch
    join.  Both sides arrive time-sorted, so no input is late and eviction
    only ever drops provably unmatchable rows."""
    rng = np.random.default_rng(seed)
    checkpoint = str(tmp_path_factory.mktemp("ckpt"))
    session = Session()
    skew = 10.0
    left_rows = sorted(({"k": k, "t": t} for k, t in left),
                       key=lambda r: r["t"])
    right_rows = sorted(({"k": k, "t2": t} for k, t in right),
                        key=lambda r: r["t2"])
    expected = {
        (l["k"], l["t"], r["t2"])
        for l in left_rows for r in right_rows
        if l["k"] == r["k"] and abs(l["t"] - r["t2"]) <= skew
    }

    ls = make_stream((("k", "long"), ("t", "timestamp")))
    rs = make_stream((("k", "long"), ("t2", "timestamp")))
    joined = (session.read_stream.memory(ls).with_watermark("t", "5s")
              .join(session.read_stream.memory(rs).with_watermark("t2", "5s"),
                    on="k", within=("t", "t2", "10s")))
    query = start_memory_query(joined, "append", "out", checkpoint,
                               state_checkpoint_interval=3,
                               state_backend="dict")
    sink = query.engine.sink

    crashes = iter(crash_mask)
    lq, rq = list(left_rows), list(right_rows)
    while lq or rq:
        if lq and (not rq or rng.random() < 0.5):
            take = int(rng.integers(1, len(lq) + 1))
            ls.add_data(lq[:take])
            lq = lq[take:]
        elif rq:
            take = int(rng.integers(1, len(rq) + 1))
            rs.add_data(rq[:take])
            rq = rq[take:]
        if next(crashes, False):
            query = (joined.write_stream.sink(sink).output_mode("append")
                     .option("state_checkpoint_interval", 3)
                     .option("state_backend", "dict")
                     .start(checkpoint))
        query.process_all_available()
    query = (joined.write_stream.sink(sink).output_mode("append")
             .option("state_checkpoint_interval", 3)
             .option("state_backend", "dict").start(checkpoint))
    query.process_all_available()

    assert {(r["k"], r["t"], r["t2"]) for r in sink.rows()} == expected
    assert_canonical_state_files(checkpoint)


@given(data=st.lists(
           st.tuples(st.sampled_from(["a", "b", "c"]),
                     st.floats(0, 100, allow_nan=False)),
           min_size=1, max_size=15),
       crash_mask=st.lists(st.booleans(), min_size=1, max_size=15),
       seed=st.integers(0, 2**16))
def test_windowed_aggregate_exactly_once_under_restarts(
        tmp_path_factory, data, crash_mask, seed):
    """Watermarked windowed counts with heap-indexed eviction firing as the
    watermark advances, lagged state checkpoints, and random restarts: the
    last update per (key, window) equals the batch count.  Rows arrive
    time-sorted so none are dropped as late."""
    rng = np.random.default_rng(seed)
    checkpoint = str(tmp_path_factory.mktemp("ckpt"))
    session = Session()
    from repro.sql import functions as F

    rows = sorted(({"t": t, "k": k} for k, t in data), key=lambda r: r["t"])
    expected = {}
    for r in rows:
        window_start = (r["t"] // 10.0) * 10.0
        key = (r["k"], window_start)
        expected[key] = expected.get(key, 0) + 1

    stream = make_stream((("t", "timestamp"), ("k", "string")))
    df = (session.read_stream.memory(stream).with_watermark("t", "5s")
          .group_by(F.window("t", "10s"), "k").count())
    query = start_memory_query(df, "update", "agg", checkpoint,
                               state_checkpoint_interval=3,
                               state_backend="dict")
    sink = query.engine.sink

    crashes = iter(crash_mask)
    remaining = list(rows)
    while remaining:
        take = int(rng.integers(1, len(remaining) + 1))
        stream.add_data(remaining[:take])
        remaining = remaining[take:]
        if next(crashes, False):
            query = (df.write_stream.sink(sink).output_mode("update")
                     .option("state_checkpoint_interval", 3)
                     .option("state_backend", "dict")
                     .start(checkpoint))
        query.process_all_available()
    query = (df.write_stream.sink(sink).output_mode("update")
             .option("state_checkpoint_interval", 3)
             .option("state_backend", "dict").start(checkpoint))
    query.process_all_available()

    got = {}
    for r in sink.rows():  # later updates overwrite earlier ones
        got[(r["k"], r["window_start"])] = r["count"]
    assert got == expected
    assert_canonical_state_files(checkpoint)


# ---------------------------------------------------------------------------
# Session windows: chunking does not change the final sessions
# ---------------------------------------------------------------------------

session_events = st.lists(
    st.floats(min_value=0, max_value=300, allow_nan=False),
    min_size=1, max_size=15,
)


@given(times=session_events)
def test_session_windows_match_reference(times):
    """Feeding all events sorted in one epoch yields exactly the sessions
    a reference fold computes."""
    gap = 30.0
    ordered = sorted(times)
    # Reference sessionization.
    expected = []
    current = None
    for t in ordered:
        if current is None or t > current["end"] + gap:
            if current is not None:
                expected.append(current)
            current = {"start": t, "end": t, "n": 1}
        else:
            current["end"] = t
            current["n"] += 1
    if current is not None:
        expected.append(current)

    session = Session()
    stream = make_stream((("user", "string"), ("t", "timestamp")))
    df = session.read_stream.memory(stream).with_watermark("t", "0s")
    query = start_memory_query(
        session_windows(df, ["user"], "t", gap), "append", "out")
    stream.add_data([{"user": "u", "t": t} for t in ordered])
    query.process_all_available()
    # Close the final session by pushing the watermark far ahead.
    stream.add_data([{"user": "zz", "t": 10_000.0}])
    query.process_all_available()
    stream.add_data([{"user": "zz", "t": 10_001.0}])
    query.process_all_available()

    got = [
        {"start": r["session_start"], "end": r["session_end"], "n": r["events"]}
        for r in query.engine.sink.rows() if r["user"] == "u"
    ]
    assert sorted(got, key=lambda s: s["start"]) == expected
