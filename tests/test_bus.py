"""Tests for the message-bus substrate (repro.bus)."""

import numpy as np
import pytest

from repro.bus import Broker
from repro.sql.batch import RecordBatch
from repro.sql.types import StructType

SCHEMA = StructType((("v", "long"),))


@pytest.fixture
def broker():
    return Broker()


class TestBroker:
    def test_create_and_lookup(self, broker):
        topic = broker.create_topic("t", 3)
        assert broker.topic("t") is topic
        assert topic.num_partitions == 3

    def test_duplicate_create_rejected(self, broker):
        broker.create_topic("t")
        with pytest.raises(ValueError):
            broker.create_topic("t")

    def test_missing_topic_raises(self, broker):
        with pytest.raises(LookupError):
            broker.topic("missing")

    def test_get_or_create_idempotent(self, broker):
        a = broker.get_or_create("t", 2)
        b = broker.get_or_create("t", 5)
        assert a is b
        assert a.num_partitions == 2

    def test_zero_partitions_rejected(self, broker):
        with pytest.raises(ValueError):
            broker.create_topic("t", 0)


class TestPartitionLog:
    def test_offsets_count_records(self, broker):
        topic = broker.create_topic("t")
        end = topic.publish_to(0, [{"v": 1}, {"v": 2}])
        assert end == 2
        assert topic.partitions[0].end_offset == 2
        assert topic.partitions[0].begin_offset == 0

    def test_read_range(self, broker):
        topic = broker.create_topic("t")
        topic.publish_to(0, [{"v": i} for i in range(5)])
        assert topic.partitions[0].read(1, 3) == [{"v": 1}, {"v": 2}]

    def test_read_across_chunks(self, broker):
        topic = broker.create_topic("t")
        topic.publish_to(0, [{"v": 0}, {"v": 1}])
        topic.publish_to(0, [{"v": 2}, {"v": 3}])
        assert [r["v"] for r in topic.partitions[0].read(1, 4)] == [1, 2, 3]

    def test_replayable_same_range_same_records(self, broker):
        topic = broker.create_topic("t")
        topic.publish_to(0, [{"v": i} for i in range(10)])
        first = topic.partitions[0].read(2, 7)
        second = topic.partitions[0].read(2, 7)
        assert first == second

    def test_single_append(self, broker):
        topic = broker.create_topic("t")
        assert topic.partitions[0].append({"v": 9}) == 0

    def test_hash_partitioning_by_key(self, broker):
        topic = broker.create_topic("t", 4)
        for i in range(40):
            topic.publish({"v": i}, key=i)
        assert topic.total_records() == 40
        # same key -> same partition
        target = hash(7) % 4
        assert {"v": 7} in topic.partitions[target].read(
            0, topic.partitions[target].end_offset)

    def test_end_offsets_json_keys(self, broker):
        topic = broker.create_topic("t", 2)
        topic.publish_to(1, [{"v": 1}])
        assert topic.end_offsets() == {"0": 0, "1": 1}


class TestColumnarSegments:
    def test_append_batch_counts_offsets(self, broker):
        topic = broker.create_topic("t")
        batch = RecordBatch.from_columns(SCHEMA, v=np.arange(5))
        assert topic.publish_batch_to(0, batch) == 5

    def test_read_columnar_slices_segments(self, broker):
        topic = broker.create_topic("t")
        topic.publish_batch_to(0, RecordBatch.from_columns(SCHEMA, v=np.arange(5)))
        out = topic.partitions[0].read_columnar(1, 4, SCHEMA)
        assert out.column("v").tolist() == [1, 2, 3]

    def test_read_rows_from_segment(self, broker):
        topic = broker.create_topic("t")
        topic.publish_batch_to(0, RecordBatch.from_columns(SCHEMA, v=np.arange(3)))
        assert topic.partitions[0].read(0, 2) == [{"v": 0}, {"v": 1}]

    def test_mixed_chunks(self, broker):
        topic = broker.create_topic("t")
        topic.publish_to(0, [{"v": 0}])
        topic.publish_batch_to(0, RecordBatch.from_columns(SCHEMA, v=np.array([1, 2])))
        topic.publish_to(0, [{"v": 3}])
        assert [r["v"] for r in topic.partitions[0].read(0, 4)] == [0, 1, 2, 3]
        columnar = topic.partitions[0].read_columnar(0, 4, SCHEMA)
        assert columnar.column("v").tolist() == [0, 1, 2, 3]

    def test_empty_columnar_read(self, broker):
        topic = broker.create_topic("t")
        out = topic.partitions[0].read_columnar(0, 0, SCHEMA)
        assert out.num_rows == 0


class TestRetention:
    def test_trim_whole_chunks(self, broker):
        topic = broker.create_topic("t")
        topic.publish_to(0, [{"v": 0}, {"v": 1}])
        topic.publish_to(0, [{"v": 2}, {"v": 3}])
        topic.partitions[0].trim(2)
        assert topic.partitions[0].begin_offset == 2
        assert topic.partitions[0].read(2, 4) == [{"v": 2}, {"v": 3}]

    def test_trim_is_chunk_granular(self, broker):
        topic = broker.create_topic("t")
        topic.publish_to(0, [{"v": 0}, {"v": 1}, {"v": 2}])
        topic.partitions[0].trim(1)  # mid-chunk: nothing dropped
        assert topic.partitions[0].begin_offset == 0

    def test_read_trimmed_range_raises(self, broker):
        topic = broker.create_topic("t")
        topic.publish_to(0, [{"v": 0}, {"v": 1}])
        topic.publish_to(0, [{"v": 2}])
        topic.partitions[0].trim(2)
        with pytest.raises(LookupError, match="trimmed"):
            topic.partitions[0].read(0, 2)

    def test_total_records_reflects_retention(self, broker):
        topic = broker.create_topic("t")
        topic.publish_to(0, [{"v": 0}, {"v": 1}])
        topic.publish_to(0, [{"v": 2}, {"v": 3}])
        topic.partitions[0].trim(2)
        assert topic.total_records() == 2
