"""Continuous processing mode (§6.3): latency path, epochs, restrictions."""

import time

import pytest

from repro.bus import Broker
from repro.sql import functions as F
from repro.streaming.continuous import UnsupportedContinuousQueryError

from tests.conftest import make_stream


def wait_until(predicate, timeout=5.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.005)
    return False


@pytest.fixture
def broker():
    return Broker()


def start_continuous(session, broker, topic="in", partitions=2, interval="50ms"):
    broker.get_or_create(topic, partitions)
    df = (session.read_stream.kafka(broker, topic, (("v", "long"),))
          .select((F.col("v") * 2).alias("v2")))
    return (df.write_stream.format("memory").query_name("cont")
            .trigger(continuous=interval).start())


class TestContinuousExecution:
    def test_records_flow_without_manual_epochs(self, session, broker):
        query = start_continuous(session, broker)
        topic = broker.topic("in")
        topic.publish_to(0, [{"v": 1}])
        topic.publish_to(1, [{"v": 2}])
        sink = query.engine.sink
        assert wait_until(lambda: len(sink.rows()) == 2)
        assert sorted(r["v2"] for r in sink.rows()) == [2, 4]
        query.stop()

    def test_epochs_committed_in_background(self, session, broker):
        query = start_continuous(session, broker, interval="20ms")
        broker.topic("in").publish_to(0, [{"v": 1}])
        assert wait_until(lambda: query.engine.wal.latest_committed_epoch() is not None)
        query.stop()
        entry = query.engine.wal.read_offsets(query.engine.wal.latest_committed_epoch())
        assert "sources" in entry

    def test_stop_commits_final_epoch(self, session, broker):
        query = start_continuous(session, broker, interval="10h")  # master idle
        broker.topic("in").publish_to(0, [{"v": 1}])
        sink = query.engine.sink
        assert wait_until(lambda: len(sink.rows()) == 1)
        query.stop()
        assert query.engine.wal.latest_committed_epoch() == 0

    def test_restart_resumes_from_committed_offsets(self, session, broker, checkpoint):
        topic = broker.get_or_create("in", 1)
        df = session.read_stream.kafka(broker, "in", (("v", "long"),))
        q0 = (df.write_stream.format("memory").query_name("c0")
              .trigger(continuous="20ms").start(checkpoint))
        topic.publish_to(0, [{"v": 1}])
        sink0 = q0.engine.sink
        assert wait_until(lambda: len(sink0.rows()) == 1)
        q0.stop()

        q1 = (df.write_stream.format("memory").query_name("c1")
              .trigger(continuous="20ms").start(checkpoint))
        topic.publish_to(0, [{"v": 2}])
        sink1 = q1.engine.sink
        assert wait_until(lambda: len(sink1.rows()) == 1)
        q1.stop()
        assert sink1.rows() == [{"v": 2}]  # v=1 not reprocessed

    def test_latency_is_sub_epoch(self, session, broker):
        """Records reach the sink far faster than the epoch interval —
        the point of continuous mode (§6.3)."""
        query = start_continuous(session, broker, interval="10h")
        topic = broker.topic("in")
        start = time.monotonic()
        topic.publish_to(0, [{"v": 7}])
        sink = query.engine.sink
        assert wait_until(lambda: len(sink.rows()) == 1, timeout=2.0)
        latency = time.monotonic() - start
        query.stop()
        assert latency < 1.0  # epoch interval is 10h; delivery is immediate


class TestWorkerErrorSurfacing:
    def test_failing_udf_reaches_the_caller(self, session, broker):
        broker.get_or_create("in", 1)

        def explode(v):
            raise ValueError("poison record")

        boom = F.udf(explode, "long")
        df = (session.read_stream.kafka(broker, "in", (("v", "long"),))
              .select(boom(F.col("v")).alias("x")))
        query = (df.write_stream.format("memory").query_name("err")
                 .trigger(continuous="20ms").start())
        broker.topic("in").publish_to(0, [{"v": 1}])
        assert wait_until(lambda: query.engine._worker_error is not None)
        with pytest.raises(ValueError, match="poison record"):
            query.stop()


class TestContinuousRestrictions:
    def test_aggregation_rejected(self, session, broker):
        broker.get_or_create("in", 1)
        df = (session.read_stream.kafka(broker, "in", (("v", "long"),))
              .group_by("v").count())
        with pytest.raises(Exception):
            (df.write_stream.format("memory").query_name("x")
             .trigger(continuous="50ms").output_mode("complete").start())

    def test_non_append_mode_rejected(self, session, broker):
        broker.get_or_create("in", 1)
        df = session.read_stream.kafka(broker, "in", (("v", "long"),))
        with pytest.raises(UnsupportedContinuousQueryError, match="append"):
            (df.write_stream.format("memory").query_name("x")
             .trigger(continuous="50ms").output_mode("update").start())

    def test_two_sources_rejected(self, session, broker):
        broker.get_or_create("in", 1)
        broker.get_or_create("in2", 1)
        a = session.read_stream.kafka(broker, "in", (("v", "long"),))
        b = session.read_stream.kafka(broker, "in2", (("v", "long"),))
        with pytest.raises(UnsupportedContinuousQueryError, match="one input"):
            (a.union(b).write_stream.format("memory").query_name("x")
             .trigger(continuous="50ms").start())

    def test_sink_without_continuous_support_rejected(self, session, broker, tmp_path):
        broker.get_or_create("in", 1)
        df = session.read_stream.kafka(broker, "in", (("v", "long"),))
        with pytest.raises(UnsupportedContinuousQueryError, match="append_rows"):
            (df.write_stream.format("file").option("path", str(tmp_path / "o"))
             .trigger(continuous="50ms").start())

    def test_stream_static_join_allowed(self, session, broker):
        """Map-like includes joins against static tables."""
        broker.get_or_create("in", 1)
        static = session.create_dataframe(
            [{"v": 1, "name": "one"}], (("v", "long"), ("name", "string")))
        df = session.read_stream.kafka(broker, "in", (("v", "long"),)).join(static, on="v")
        query = (df.write_stream.format("memory").query_name("j")
                 .trigger(continuous="50ms").start())
        broker.topic("in").publish_to(0, [{"v": 1}, {"v": 2}])
        sink = query.engine.sink
        assert wait_until(lambda: len(sink.rows()) == 1)
        query.stop()
        assert sink.rows() == [{"v": 1, "name": "one"}]
