"""Tests for checkpoint retention/GC and SQL LIKE."""

import os

import pytest

from repro.sql import functions as F
from repro.sql.expressions import AnalysisError, Like, ColumnRef
from repro.streaming.state import OperatorStateHandle

from tests.conftest import make_stream, start_memory_query


class TestStatePruning:
    @pytest.fixture
    def handle(self, tmp_path):
        handle = OperatorStateHandle(str(tmp_path / "op"), snapshot_interval=3)
        for version in range(10):
            handle.put(f"k{version}", version)
            handle.commit(version)
        return handle

    def test_prune_removes_old_files(self, handle, tmp_path):
        before = len(os.listdir(tmp_path / "op"))
        removed = handle.prune(keep_from_version=7)
        after = len(os.listdir(tmp_path / "op"))
        assert removed > 0
        assert after == before - removed

    def test_restore_still_works_at_and_after_horizon(self, handle, tmp_path):
        handle.prune(keep_from_version=7)
        fresh = OperatorStateHandle(str(tmp_path / "op"), snapshot_interval=3)
        for version in (7, 9):
            restored = fresh.restore(version)
            assert restored == version
            assert fresh.get(f"k{version}") == version

    def test_restore_before_horizon_may_fail_softly(self, handle, tmp_path):
        handle.prune(keep_from_version=7)
        fresh = OperatorStateHandle(str(tmp_path / "op"), snapshot_interval=3)
        # Version 2 is gone: restore floors to what remains (snapshot 6).
        assert fresh.restore(6) == 6

    def test_oldest_restorable_version(self, handle):
        assert handle.oldest_restorable_version() == 0
        handle.prune(keep_from_version=7)
        assert handle.oldest_restorable_version() == 6  # snapshot at 6

    def test_prune_with_no_snapshot_is_noop(self, tmp_path):
        handle = OperatorStateHandle(str(tmp_path / "x"), snapshot_interval=100)
        handle.put("a", 1)
        handle.commit(1)  # delta only (no version-0 snapshot)
        assert handle.prune(keep_from_version=1) == 0


class TestEngineRetention:
    def test_wal_and_state_bounded(self, session, checkpoint):
        stream = make_stream((("k", "string"),))
        df = session.read_stream.memory(stream).group_by("k").count()
        query = (df.write_stream.format("memory").query_name("r")
                 .option("retain_epochs", 5)
                 .option("snapshot_interval", 2)
                 .output_mode("complete").start(checkpoint))
        for i in range(20):
            stream.add_data([{"k": "a"}])
            query.process_all_available()
        logged = query.engine.wal.logged_epochs()
        assert len(logged) <= 10  # bounded, not all 20
        assert logged[-1] == 19

    def test_recovery_works_after_retention(self, session, checkpoint):
        stream = make_stream((("k", "string"),))
        df = session.read_stream.memory(stream).group_by("k").count()
        q1 = (df.write_stream.format("memory").query_name("r2")
              .option("retain_epochs", 4)
              .option("snapshot_interval", 2)
              .output_mode("complete").start(checkpoint))
        for _ in range(15):
            stream.add_data([{"k": "a"}])
            q1.process_all_available()
        sink = q1.engine.sink

        q2 = (df.write_stream.sink(sink).output_mode("complete")
              .option("retain_epochs", 4).start(checkpoint))
        stream.add_data([{"k": "a"}])
        q2.process_all_available()
        assert sink.rows() == [{"k": "a", "count": 16}]

    def test_stateless_query_wal_bounded(self, session, checkpoint):
        stream = make_stream((("v", "long"),))
        df = session.read_stream.memory(stream)
        query = (df.write_stream.format("memory").query_name("r3")
                 .option("retain_epochs", 3)
                 .output_mode("append").start(checkpoint))
        for i in range(12):
            stream.add_data([{"v": i}])
            query.process_all_available()
        assert len(query.engine.wal.logged_epochs()) <= 4

    def test_no_retention_keeps_everything(self, session, checkpoint):
        stream = make_stream((("v", "long"),))
        query = start_memory_query(
            session.read_stream.memory(stream), "append", "r4", checkpoint)
        for i in range(8):
            stream.add_data([{"v": i}])
            query.process_all_available()
        assert len(query.engine.wal.logged_epochs()) == 8


class TestLike:
    ROWS = [{"s": "alice"}, {"s": "alfred"}, {"s": "bob"}, {"s": None}]

    @pytest.fixture
    def df(self, session):
        return session.create_dataframe(self.ROWS, (("s", "string"),))

    def test_prefix_wildcard(self, df):
        out = df.where(df.plan and F.col("s").like("al%")).collect()
        assert [r["s"] for r in out] == ["alice", "alfred"]

    def test_underscore_single_char(self, df):
        out = df.where(F.col("s").like("b_b")).collect()
        assert [r["s"] for r in out] == ["bob"]

    def test_null_never_matches(self, df):
        assert len(df.where(F.col("s").like("%")).collect()) == 3

    def test_regex_metachars_are_literal(self, session):
        df = session.create_dataframe([{"s": "a.c"}, {"s": "abc"}], (("s", "string"),))
        out = df.where(F.col("s").like("a.c")).collect()
        assert [r["s"] for r in out] == ["a.c"]

    def test_row_and_batch_agree(self, df):
        expr = Like(ColumnRef("s"), "%l%")
        batch = df.to_batch()
        assert expr.eval_batch(batch).tolist() == [
            expr.eval_row(r) for r in self.ROWS]

    def test_non_string_rejected(self, session):
        df = session.create_dataframe([{"n": 1}], (("n", "long"),))
        with pytest.raises(AnalysisError, match="string"):
            df.where(F.col("n").like("%")).collect()

    def test_sql_like(self, session, df):
        df.create_or_replace_temp_view("t")
        assert len(session.sql("SELECT * FROM t WHERE s LIKE 'al%'").collect()) == 2
        # Two-valued logic (documented deviation from SQL ternary nulls):
        # NULL LIKE ... is False, so NOT LIKE admits the null row.
        out = session.sql("SELECT * FROM t WHERE s NOT LIKE 'al%'").collect()
        assert {r["s"] for r in out} == {"bob", None}

    def test_sql_not_in_and_not_between(self, session, df):
        df.create_or_replace_temp_view("t")
        out = session.sql("SELECT * FROM t WHERE s NOT IN ('bob')").collect()
        assert len(out) == 3  # two-valued logic: the null row passes NOT IN
        nums = session.create_dataframe(
            [{"n": 1}, {"n": 5}, {"n": 9}], (("n", "long"),))
        nums.create_or_replace_temp_view("nums")
        out = session.sql("SELECT * FROM nums WHERE n NOT BETWEEN 2 AND 8").collect()
        assert [r["n"] for r in out] == [1, 9]
