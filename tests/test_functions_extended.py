"""Tests for the extended function library: scalar builtins, first/last,
count_distinct, global aggregates."""

import pytest

from repro.sql import expressions as E
from repro.sql import functions as F
from repro.sql.expressions import AnalysisError


ROWS = [
    {"name": "Alice Smith", "score": 91.5, "team": "a"},
    {"name": "bob", "score": -78.2, "team": "a"},
    {"name": None, "score": 3.0, "team": "b"},
]

SCHEMA = (("name", "string"), ("score", "double"), ("team", "string"))


@pytest.fixture
def df(session):
    return session.create_dataframe(ROWS, SCHEMA)


class TestStringFunctions:
    def test_upper_lower(self, df):
        out = df.select(F.upper("name").alias("u"), F.lower("name").alias("l")).collect()
        assert out[0] == {"u": "ALICE SMITH", "l": "alice smith"}

    def test_null_propagates(self, df):
        out = df.select(F.upper("name").alias("u")).collect()
        assert out[2]["u"] is None

    def test_length(self, df):
        out = df.select(F.length("name").alias("n")).collect()
        assert [r["n"] for r in out] == [11, 3, None]

    def test_concat(self, df):
        out = df.select(F.concat(F.col("team"), F.lit("!")).alias("c")).collect()
        assert out[0]["c"] == "a!"

    def test_contains_in_filter(self, df):
        out = df.where(F.contains(F.col("name"), F.lit("Smith"))).collect()
        assert len(out) == 1

    def test_starts_ends_with(self, df):
        out = df.select(
            F.starts_with(F.col("name"), F.lit("bo")).alias("s"),
            F.ends_with(F.col("name"), F.lit("ob")).alias("e"),
        ).collect()
        assert (out[1]["s"], out[1]["e"]) == (True, True)

    def test_substring(self, df):
        out = df.select(F.substring(F.col("name"), F.lit(0), F.lit(5)).alias("s")).collect()
        assert out[0]["s"] == "Alice"

    def test_split_part(self, df):
        out = df.select(F.split_part(F.col("name"), F.lit(" "), F.lit(1)).alias("s")).collect()
        assert out[0]["s"] == "Smith"

    def test_trim(self, session):
        df = session.create_dataframe([{"s": "  x  "}], (("s", "string"),))
        assert df.select(F.trim("s").alias("t")).collect() == [{"t": "x"}]

    def test_type_checking(self, df):
        with pytest.raises(AnalysisError, match="string"):
            df.select(F.upper("score")).collect()


class TestMathFunctions:
    def test_abs(self, df):
        out = df.select(F.abs("score").alias("a")).collect()
        assert out[1]["a"] == 78.2

    def test_floor_ceil(self, df):
        out = df.select(F.floor("score").alias("f"), F.ceil("score").alias("c")).collect()
        assert (out[0]["f"], out[0]["c"]) == (91, 92)

    def test_round(self, df):
        out = df.select(F.round(F.col("score"), F.lit(0)).alias("r")).collect()
        assert out[0]["r"] == 92.0

    def test_sqrt(self, session):
        df = session.create_dataframe([{"x": 9.0}], (("x", "double"),))
        assert df.select(F.sqrt("x").alias("s")).collect() == [{"s": 3.0}]

    def test_greatest_least(self, session):
        df = session.create_dataframe([{"a": 1.0, "b": 2.0}],
                                      (("a", "double"), ("b", "double")))
        out = df.select(F.greatest(F.col("a"), F.col("b")).alias("g"),
                        F.least(F.col("a"), F.col("b")).alias("l")).collect()
        assert out == [{"g": 2.0, "l": 1.0}]

    def test_numeric_type_check(self, df):
        with pytest.raises(AnalysisError, match="numeric"):
            df.select(F.abs("name")).collect()

    def test_arity_check(self):
        with pytest.raises(AnalysisError, match="arguments"):
            E.ScalarFunction("upper", [E.ColumnRef("a"), E.ColumnRef("b")])

    def test_unknown_function(self):
        with pytest.raises(AnalysisError, match="unknown scalar"):
            E.ScalarFunction("frobnicate", [E.ColumnRef("a")])

    def test_row_and_batch_paths_agree(self, df):
        batch = df.to_batch()
        for column in (F.abs("score"), F.floor("score"),
                       F.greatest(F.col("score"), F.lit(0.0))):
            expr = column.expr
            batch_vals = expr.eval_batch(batch).tolist()
            row_vals = [expr.eval_row(r) for r in ROWS]
            assert batch_vals == row_vals


class TestNewAggregates:
    def test_first_last(self, df):
        out = df.group_by("team").agg(
            F.first("name").alias("f"), F.last("score").alias("l")).collect()
        by_team = {r["team"]: r for r in out}
        assert by_team["a"]["f"] == "Alice Smith"
        assert by_team["a"]["l"] == -78.2

    def test_first_skips_nulls(self, df):
        out = df.group_by("team").agg(F.first("name").alias("f")).collect()
        by_team = {r["team"]: r["f"] for r in out}
        assert by_team["b"] is None  # only a null name in team b

    def test_count_distinct(self, session):
        df = session.create_dataframe(
            [{"k": "a", "v": 1}, {"k": "a", "v": 1}, {"k": "a", "v": 2}],
            (("k", "string"), ("v", "long")))
        out = df.group_by("k").agg(F.count_distinct("v").alias("d")).collect()
        assert out == [{"k": "a", "d": 2}]

    def test_buffers_merge(self):
        agg = E.First(E.ColumnRef("x"))
        left = agg.update(agg.init(), "one")
        right = agg.update(agg.init(), "two")
        assert agg.finish(agg.merge(left, right)) == "one"
        assert agg.finish(agg.merge(agg.init(), right)) == "two"

        agg = E.Last(E.ColumnRef("x"))
        assert agg.finish(agg.merge(
            agg.update(agg.init(), "one"), agg.update(agg.init(), "two"))) == "two"

    def test_count_distinct_streaming_incremental(self, session):
        from tests.conftest import make_stream, start_memory_query

        stream = make_stream((("k", "string"), ("v", "long")))
        df = (session.read_stream.memory(stream)
              .group_by("k").agg(F.count_distinct("v").alias("d")))
        query = start_memory_query(df, "update", "out")
        stream.add_data([{"k": "a", "v": 1}])
        query.process_all_available()
        stream.add_data([{"k": "a", "v": 1}, {"k": "a", "v": 2}])
        query.process_all_available()
        assert query.engine.sink.rows() == [{"k": "a", "d": 2}]


class TestGlobalAggregate:
    def test_batch_global_agg(self, df):
        out = df.agg(F.count().alias("n"), F.avg("score").alias("m")).collect()
        assert out[0]["n"] == 3

    def test_streaming_global_agg_complete(self, session):
        from tests.conftest import make_stream, start_memory_query

        stream = make_stream((("v", "double"),))
        df = session.read_stream.memory(stream).agg(F.sum("v").alias("total"))
        query = start_memory_query(df, "complete", "out")
        stream.add_data([{"v": 1.0}, {"v": 2.0}])
        query.process_all_available()
        stream.add_data([{"v": 3.0}])
        query.process_all_available()
        assert query.engine.sink.rows() == [{"total": 6.0}]

    def test_global_agg_hides_synthetic_key(self, df):
        out = df.agg(F.count().alias("n"))
        assert out.columns == ["n"]
