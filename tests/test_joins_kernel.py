"""Unit tests for the join kernels (repro.sql.joins).

The vectorized unique-build-side fast path and the general hash path
must produce identical results — both are exercised explicitly.
"""

import numpy as np
import pytest

from repro.sql.batch import RecordBatch
from repro.sql.joins import _hash_join, _unique_key_join, execute_join, join_indices
from repro.sql.types import StructType

LEFT_SCHEMA = StructType((("k", "long"), ("lv", "string")))
RIGHT_SCHEMA = StructType((("k", "long"), ("rv", "double")))


def left_batch(rows):
    return RecordBatch.from_rows(rows, LEFT_SCHEMA)


def right_batch(rows):
    return RecordBatch.from_rows(rows, RIGHT_SCHEMA)


LEFT = left_batch([
    {"k": 1, "lv": "a"}, {"k": 2, "lv": "b"}, {"k": 3, "lv": "c"}, {"k": 1, "lv": "d"},
])
RIGHT_UNIQUE = right_batch([{"k": 1, "rv": 1.0}, {"k": 3, "rv": 3.0}, {"k": 9, "rv": 9.0}])
RIGHT_DUPED = right_batch([{"k": 1, "rv": 1.0}, {"k": 1, "rv": 1.5}, {"k": 3, "rv": 3.0}])


def pairs(left, right, on, how):
    li, ri, lu, ru = join_indices(left, right, on, how)
    return sorted(zip(li.tolist(), ri.tolist())), sorted(lu.tolist()), sorted(ru.tolist())


class TestInner:
    def test_unique_build_side(self):
        matched, lu, ru = pairs(LEFT, RIGHT_UNIQUE, ["k"], "inner")
        assert matched == [(0, 0), (2, 1), (3, 0)]
        assert lu == [] and ru == []

    def test_duplicate_build_side(self):
        matched, _, _ = pairs(LEFT, RIGHT_DUPED, ["k"], "inner")
        assert matched == [(0, 0), (0, 1), (2, 2), (3, 0), (3, 1)]

    def test_fast_and_hash_paths_agree(self):
        lk = LEFT.columns["k"]
        rk = RIGHT_UNIQUE.columns["k"]
        fast = _unique_key_join(lk, rk, "inner")
        slow = _hash_join(LEFT, RIGHT_UNIQUE, ["k"], "inner")
        assert sorted(zip(fast[0].tolist(), fast[1].tolist())) == \
            sorted(zip(slow[0].tolist(), slow[1].tolist()))

    def test_empty_left(self):
        matched, _, _ = pairs(left_batch([]), RIGHT_UNIQUE, ["k"], "inner")
        assert matched == []

    def test_empty_right_uses_hash_path(self):
        matched, _, _ = pairs(LEFT, right_batch([]), ["k"], "inner")
        assert matched == []


class TestOuter:
    def test_left_outer_unmatched(self):
        matched, lu, ru = pairs(LEFT, RIGHT_UNIQUE, ["k"], "left_outer")
        assert lu == [1]  # k=2 has no match
        assert ru == []

    def test_right_outer_unmatched(self):
        matched, lu, ru = pairs(LEFT, RIGHT_UNIQUE, ["k"], "right_outer")
        assert lu == []
        assert ru == [2]  # k=9 has no match

    def test_left_outer_null_padding(self):
        out = execute_join(LEFT, RIGHT_UNIQUE, ["k"], "left_outer")
        rows = {(r["k"], r["lv"]): r["rv"] for r in out.to_rows()}
        assert rows[(2, "b")] is None
        assert rows[(1, "a")] == 1.0

    def test_right_outer_null_padding(self):
        out = execute_join(LEFT, RIGHT_UNIQUE, ["k"], "right_outer")
        by_k = {}
        for r in out.to_rows():
            by_k.setdefault(r["k"], []).append(r)
        assert by_k[9][0]["lv"] is None
        assert by_k[9][0]["rv"] == 9.0

    def test_left_outer_on_duplicate_build(self):
        out = execute_join(LEFT, RIGHT_DUPED, ["k"], "left_outer")
        assert out.num_rows == 6  # 5 matches + 1 unmatched left


class TestOutputAssembly:
    def test_join_key_appears_once(self):
        out = execute_join(LEFT, RIGHT_UNIQUE, ["k"], "inner")
        assert out.schema.names == ["k", "lv", "rv"]

    def test_composite_key(self):
        ls = StructType((("a", "long"), ("b", "string"), ("x", "long")))
        rs = StructType((("a", "long"), ("b", "string"), ("y", "long")))
        left = RecordBatch.from_rows(
            [{"a": 1, "b": "p", "x": 10}, {"a": 1, "b": "q", "x": 11}], ls)
        right = RecordBatch.from_rows([{"a": 1, "b": "p", "y": 20}], rs)
        out = execute_join(left, right, ["a", "b"], "inner")
        assert out.to_rows() == [{"a": 1, "b": "p", "x": 10, "y": 20}]

    def test_string_keys_take_hash_path(self):
        ls = StructType((("k", "string"), ("x", "long")))
        rs = StructType((("k", "string"), ("y", "long")))
        left = RecordBatch.from_rows([{"k": "a", "x": 1}, {"k": "b", "x": 2}], ls)
        right = RecordBatch.from_rows([{"k": "a", "y": 9}], rs)
        out = execute_join(left, right, ["k"], "inner")
        assert out.to_rows() == [{"k": "a", "x": 1, "y": 9}]

    def test_outer_promotes_int_to_nullable_double(self):
        ls = StructType((("k", "long"), ("x", "long")))
        rs = StructType((("k", "long"), ("y", "long")))
        left = RecordBatch.from_rows([{"k": 1, "x": 1}, {"k": 2, "x": 2}], ls)
        right = RecordBatch.from_rows([{"k": 1, "y": 5}], rs)
        out = execute_join(left, right, ["k"], "left_outer")
        y_by_k = {r["k"]: r["y"] for r in out.to_rows()}
        assert y_by_k[1] == 5.0
        assert y_by_k[2] is None
