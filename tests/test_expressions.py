"""Unit tests for the expression AST: both evaluation strategies.

Every expression must agree between its vectorized batch path (used by
the engine) and its interpreted row path (used by the baselines) — that
equivalence is itself a key invariant, checked by ``assert_both_paths``.
"""

import math

import numpy as np
import pytest

from repro.sql import expressions as E
from repro.sql import types as T
from repro.sql.batch import RecordBatch
from repro.sql.expressions import AnalysisError, parse_duration
from repro.sql.types import StructType

SCHEMA = StructType((
    ("i", "long"), ("x", "double"), ("s", "string"), ("flag", "boolean"),
))

ROWS = [
    {"i": 1, "x": 1.5, "s": "aa", "flag": True},
    {"i": 2, "x": -2.0, "s": "bb", "flag": False},
    {"i": 3, "x": 0.0, "s": None, "flag": True},
]

BATCH = RecordBatch.from_rows(ROWS, SCHEMA)


def assert_both_paths(expr, expected, schema=SCHEMA, batch=BATCH, rows=ROWS):
    """Check eval_batch and eval_row produce ``expected`` per row."""
    expr.data_type(schema)
    got_batch = expr.eval_batch(batch)
    got_rows = [expr.eval_row(r) for r in rows]
    for b, r, e in zip(got_batch.tolist(), got_rows, expected):
        if isinstance(e, float):
            assert b == pytest.approx(e)
            assert r == pytest.approx(e)
        else:
            assert b == e
            assert r == e


class TestParseDuration:
    @pytest.mark.parametrize("text,seconds", [
        ("10 seconds", 10.0), ("10s", 10.0), ("1 sec", 1.0),
        ("5 minutes", 300.0), ("5 min", 300.0), ("2m", 120.0),
        ("1 hour", 3600.0), ("2 hours", 7200.0), ("1h", 3600.0),
        ("250ms", 0.25), ("1 day", 86400.0), ("1.5s", 1.5),
    ])
    def test_strings(self, text, seconds):
        assert parse_duration(text) == seconds

    def test_numbers_pass_through(self):
        assert parse_duration(30) == 30.0
        assert parse_duration(1.5) == 1.5

    def test_invalid_raises(self):
        with pytest.raises(ValueError):
            parse_duration("soon")


class TestLeaves:
    def test_column_ref(self):
        assert_both_paths(E.ColumnRef("i"), [1, 2, 3])

    def test_column_ref_unresolved(self):
        with pytest.raises(AnalysisError, match="cannot resolve"):
            E.ColumnRef("zzz").data_type(SCHEMA)

    def test_column_ref_references(self):
        assert E.ColumnRef("i").references() == {"i"}

    def test_literal_int(self):
        assert_both_paths(E.Literal(7), [7, 7, 7])

    def test_literal_string(self):
        assert_both_paths(E.Literal("k"), ["k", "k", "k"])

    def test_literal_type_inference(self):
        assert E.Literal(True).data_type(SCHEMA) == T.BOOLEAN
        assert E.Literal(1.5).data_type(SCHEMA) == T.DOUBLE

    def test_alias_transparent(self):
        aliased = E.ColumnRef("i").alias("n")
        assert aliased.output_name == "n"
        assert_both_paths(aliased, [1, 2, 3])


class TestArithmetic:
    def test_add(self):
        assert_both_paths(E.ColumnRef("i") + E.ColumnRef("x"), [2.5, 0.0, 3.0])

    def test_add_literal_coercion(self):
        assert_both_paths(E.ColumnRef("i") + 10, [11, 12, 13])

    def test_radd(self):
        assert_both_paths(1 + E.ColumnRef("i"), [2, 3, 4])

    def test_subtract(self):
        assert_both_paths(E.ColumnRef("i") - 1, [0, 1, 2])

    def test_rsub(self):
        assert_both_paths(10 - E.ColumnRef("i"), [9, 8, 7])

    def test_multiply(self):
        assert_both_paths(E.ColumnRef("i") * 2, [2, 4, 6])

    def test_divide_is_double(self):
        expr = E.ColumnRef("i") / 2
        assert expr.data_type(SCHEMA) == T.DOUBLE
        assert_both_paths(expr, [0.5, 1.0, 1.5])

    def test_mod(self):
        assert_both_paths(E.ColumnRef("i") % 2, [1, 0, 1])

    def test_int_types_stay_integral(self):
        assert (E.ColumnRef("i") + 1).data_type(SCHEMA) == T.LONG

    def test_mixed_widen_to_double(self):
        assert (E.ColumnRef("i") + E.ColumnRef("x")).data_type(SCHEMA) == T.DOUBLE

    def test_string_arithmetic_rejected(self):
        with pytest.raises(AnalysisError, match="numeric"):
            (E.ColumnRef("s") + 1).data_type(SCHEMA)

    def test_null_propagates_in_row_path(self):
        expr = E.ColumnRef("s")
        add = E.Arithmetic(E.Literal(1), E.Literal(None, T.DOUBLE), "+")
        assert add.eval_row({}) is None
        del expr


class TestComparison:
    def test_gt(self):
        assert_both_paths(E.ColumnRef("i") > 1, [False, True, True])

    def test_le(self):
        assert_both_paths(E.ColumnRef("x") <= 0, [False, True, True])

    def test_eq_strings(self):
        expr = E.Comparison(E.ColumnRef("s"), E.Literal("aa"), "==")
        assert expr.eval_batch(BATCH).tolist() == [True, False, False]

    def test_ne(self):
        assert_both_paths(E.ColumnRef("i") != 2, [True, False, True])

    def test_cross_numeric_allowed(self):
        (E.ColumnRef("i") < E.ColumnRef("x")).data_type(SCHEMA)

    def test_string_vs_numeric_rejected(self):
        with pytest.raises(AnalysisError, match="compare"):
            (E.ColumnRef("s") < E.ColumnRef("i")).data_type(SCHEMA)

    def test_result_is_boolean(self):
        assert (E.ColumnRef("i") > 0).data_type(SCHEMA) == T.BOOLEAN


class TestBooleanOps:
    def test_and(self):
        expr = E.ColumnRef("flag") & (E.ColumnRef("i") > 1)
        assert_both_paths(expr, [False, False, True])

    def test_or(self):
        expr = E.ColumnRef("flag") | (E.ColumnRef("i") > 2)
        assert_both_paths(expr, [True, False, True])

    def test_not(self):
        assert_both_paths(~E.ColumnRef("flag"), [False, True, False])

    def test_non_boolean_operand_rejected(self):
        with pytest.raises(AnalysisError):
            (E.ColumnRef("i") & E.ColumnRef("flag")).data_type(SCHEMA)
        with pytest.raises(AnalysisError):
            E.Not(E.ColumnRef("i")).data_type(SCHEMA)


class TestNullChecks:
    def test_is_null_on_strings(self):
        assert_both_paths(E.ColumnRef("s").is_null(), [False, False, True])

    def test_is_not_null(self):
        assert_both_paths(E.ColumnRef("s").is_not_null(), [True, True, False])

    def test_is_null_on_nan_double(self):
        schema = StructType((("x", "double"),))
        batch = RecordBatch.from_columns(schema, x=np.array([1.0, np.nan]))
        expr = E.IsNull(E.ColumnRef("x"))
        assert expr.eval_batch(batch).tolist() == [False, True]
        assert expr.eval_row({"x": float("nan")}) is True

    def test_is_null_on_int_always_false(self):
        assert E.IsNull(E.ColumnRef("i")).eval_batch(BATCH).tolist() == [False] * 3


class TestIn:
    def test_numeric(self):
        assert_both_paths(E.ColumnRef("i").isin([1, 3]), [True, False, True])

    def test_strings(self):
        expr = E.ColumnRef("s").isin(["bb"])
        assert expr.eval_batch(BATCH).tolist() == [False, True, False]


class TestCast:
    def test_int_to_double(self):
        expr = E.ColumnRef("i").cast("double")
        assert expr.data_type(SCHEMA) == T.DOUBLE
        assert_both_paths(expr, [1.0, 2.0, 3.0])

    def test_double_to_long_truncates(self):
        schema = StructType((("x", "double"),))
        batch = RecordBatch.from_columns(schema, x=np.array([1.9, -1.9]))
        expr = E.ColumnRef("x").cast("long")
        assert expr.eval_batch(batch).tolist() == [1, -1]

    def test_to_string(self):
        expr = E.ColumnRef("i").cast("string")
        assert expr.eval_batch(BATCH).tolist() == ["1", "2", "3"]

    def test_string_to_double(self):
        schema = StructType((("s", "string"),))
        batch = RecordBatch.from_rows([{"s": "2.5"}], schema)
        assert E.ColumnRef("s").cast("double").eval_batch(batch).tolist() == [2.5]

    def test_row_path_none(self):
        assert E.Cast(E.ColumnRef("s"), T.DOUBLE).eval_row({"s": None}) is None


class TestCaseWhen:
    def test_basic_branches(self):
        expr = E.CaseWhen(
            [(E.ColumnRef("i") > 2, E.Literal(100)),
             (E.ColumnRef("i") > 1, E.Literal(50))],
            E.Literal(0),
        )
        assert_both_paths(expr, [0, 50, 100])

    def test_first_match_wins(self):
        expr = E.CaseWhen(
            [(E.ColumnRef("flag"), E.Literal(1)),
             (E.ColumnRef("i") > 0, E.Literal(2))],
            E.Literal(3),
        )
        assert_both_paths(expr, [1, 2, 1])

    def test_non_boolean_condition_rejected(self):
        with pytest.raises(AnalysisError):
            E.CaseWhen([(E.ColumnRef("i"), E.Literal(1))]).data_type(SCHEMA)


class TestUdf:
    def test_batch_and_row_agree(self):
        udf = E.Udf(lambda a, b: a * 10 + int(b), [E.ColumnRef("i"), E.ColumnRef("x")], T.LONG)
        assert_both_paths(udf, [11, 18, 30])

    def test_string_returning_udf(self):
        udf = E.Udf(lambda s: (s or "?").upper(), [E.ColumnRef("s")], T.STRING)
        assert udf.eval_batch(BATCH).tolist() == ["AA", "BB", "?"]

    def test_references(self):
        udf = E.Udf(lambda a: a, [E.ColumnRef("i")], T.LONG)
        assert udf.references() == {"i"}


class TestWindowExpr:
    def test_tumbling_assignment(self):
        w = E.WindowExpr(E.ColumnRef("t"), 10.0)
        schema = StructType((("t", "timestamp"),))
        batch = RecordBatch.from_columns(schema, t=np.array([0.0, 9.99, 10.0, 25.0]))
        idx, starts = w.assign_batch(batch)
        assert idx.tolist() == [0, 1, 2, 3]
        assert starts.tolist() == [0.0, 0.0, 10.0, 20.0]

    def test_sliding_assignment_membership_count(self):
        w = E.WindowExpr(E.ColumnRef("t"), 10.0, 5.0)
        assert w.windows_per_record == 2
        schema = StructType((("t", "timestamp"),))
        batch = RecordBatch.from_columns(schema, t=np.array([7.0]))
        idx, starts = w.assign_batch(batch)
        assert sorted(starts.tolist()) == [0.0, 5.0]

    def test_assign_row_matches_assign_batch(self):
        w = E.WindowExpr(E.ColumnRef("t"), 30.0, 10.0)
        schema = StructType((("t", "timestamp"),))
        for t in [0.0, 3.3, 10.0, 29.9, 31.0, 100.5]:
            batch = RecordBatch.from_columns(schema, t=np.array([t]))
            _idx, starts = w.assign_batch(batch)
            assert sorted(starts.tolist()) == sorted(w.assign_row({"t": t}))

    def test_slide_must_not_exceed_duration(self):
        with pytest.raises(ValueError):
            E.WindowExpr(E.ColumnRef("t"), 10.0, 20.0)

    def test_not_evaluable_directly(self):
        w = E.WindowExpr(E.ColumnRef("t"), 10.0)
        with pytest.raises(AnalysisError):
            w.eval_row({"t": 1.0})

    def test_requires_numeric_column(self):
        w = E.WindowExpr(E.ColumnRef("s"), 10.0)
        with pytest.raises(AnalysisError):
            w.data_type(SCHEMA)


class TestExpressionMisc:
    def test_str_forms(self):
        expr = (E.ColumnRef("i") + 1) > 2
        assert "i" in str(expr) and ">" in str(expr)

    def test_hash_is_identity(self):
        a = E.ColumnRef("i")
        assert hash(a) == id(a)

    def test_output_name_defaults(self):
        assert E.ColumnRef("x").output_name == "x"
        assert E.Count(None).output_name == "count"
        assert E.Sum(E.ColumnRef("x")).output_name == "sum(x)"
