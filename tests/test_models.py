"""Tests for the performance and cost models (Fig 6b, §7.3)."""

import pytest

from repro.cluster.costmodel import DeploymentCostModel
from repro.cluster.perfmodel import ClusterPerformanceModel

HOUR = 3600.0
MONTH = 30 * 24 * HOUR


class TestPerformanceModel:
    @pytest.fixture
    def model(self):
        return ClusterPerformanceModel(per_core_records_per_second=1.5e6)

    def test_single_node_baseline(self, model):
        assert model.max_throughput(1) == pytest.approx(8 * 1.5e6)

    def test_near_linear_scaling(self, model):
        """The paper observes 11.5M -> 225M rec/s over 1 -> 20 nodes,
        i.e. ~98% parallel efficiency; the model must stay near-linear."""
        speedup = model.speedup(20)
        assert 17.0 <= speedup <= 20.0

    def test_monotonically_increasing(self, model):
        sweep = model.sweep([1, 5, 10, 20])
        rates = [r for _n, r in sweep]
        assert rates == sorted(rates)

    def test_efficiency_declines_with_nodes(self, model):
        assert model.efficiency(1) == 1.0
        assert model.efficiency(20) < model.efficiency(2) < 1.0

    def test_paper_shape_ratio_5_to_1(self, model):
        """Fig 6b: 5 nodes give ~5x one node (63M vs 11.5M ~ 5.5x in the
        paper's plot; near-linear either way)."""
        assert model.speedup(5) == pytest.approx(5.0, rel=0.15)

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            ClusterPerformanceModel(0)
        with pytest.raises(ValueError):
            ClusterPerformanceModel(1.0).max_throughput(0)


class TestCostModel:
    @pytest.fixture
    def model(self):
        # Low-volume ETL: 1k records/s arriving, 1M records/s processing.
        return DeploymentCostModel(
            arrival_rate_records_per_second=1_000,
            processing_rate_records_per_second=1_000_000,
            nodes=4, startup_seconds=120.0,
        )

    def test_continuous_cost_is_node_seconds(self, model):
        assert model.continuous_cost(HOUR) == 4 * HOUR

    def test_run_once_cheaper_at_low_duty_cycle(self, model):
        assert model.savings_ratio(MONTH, interval_seconds=4 * HOUR) > 5

    def test_paper_magnitude_10x_reachable(self, model):
        """§7.3: 'up to 10x' savings for low-volume applications."""
        best = max(
            model.savings_ratio(MONTH, interval)
            for interval in (HOUR, 4 * HOUR, 12 * HOUR, 24 * HOUR)
        )
        assert best >= 10

    def test_savings_shrink_with_short_intervals(self, model):
        frequent = model.savings_ratio(MONTH, 10 * 60)
        rare = model.savings_ratio(MONTH, 24 * HOUR)
        assert rare > frequent

    def test_latency_tradeoff_grows_with_interval(self, model):
        assert model.max_latency(24 * HOUR) > model.max_latency(HOUR)

    def test_processing_must_outpace_arrival(self):
        with pytest.raises(ValueError):
            DeploymentCostModel(1000, 500)

    def test_zero_interval_rejected(self, model):
        with pytest.raises(ValueError):
            model.run_once_cost(HOUR, 0)
