"""Tests for filesystem helpers, rows utilities, and foreach_batch."""

import os
import threading

import pytest

from repro.sql import functions as F
from repro.sql.row import Row, rows_equal_unordered
from repro.storage import (
    atomic_write_json,
    atomic_write_text,
    list_files,
    read_json,
    read_jsonl,
    write_jsonl,
)

from tests.conftest import make_stream, start_memory_query


class TestAtomicWrites:
    def test_write_and_read_text(self, tmp_path):
        path = str(tmp_path / "sub" / "file.txt")
        atomic_write_text(path, "hello")
        with open(path) as f:
            assert f.read() == "hello"

    def test_overwrite_is_atomic_replace(self, tmp_path):
        path = str(tmp_path / "f.txt")
        atomic_write_text(path, "one")
        atomic_write_text(path, "two")
        with open(path) as f:
            assert f.read() == "two"

    def test_no_temp_files_left_behind(self, tmp_path):
        atomic_write_text(str(tmp_path / "f.txt"), "x")
        assert [n for n in os.listdir(tmp_path) if n.startswith(".tmp")] == []

    def test_json_roundtrip(self, tmp_path):
        path = str(tmp_path / "d.json")
        atomic_write_json(path, {"a": [1, 2], "b": None})
        assert read_json(path) == {"a": [1, 2], "b": None}

    def test_json_is_pretty_printed(self, tmp_path):
        path = str(tmp_path / "d.json")
        atomic_write_json(path, {"epoch": 3})
        with open(path) as f:
            assert '"epoch": 3' in f.read()

    def test_jsonl_roundtrip(self, tmp_path):
        path = str(tmp_path / "rows.jsonl")
        rows = [{"a": 1}, {"a": 2}]
        write_jsonl(path, rows)
        assert read_jsonl(path) == rows

    def test_jsonl_skips_blank_lines(self, tmp_path):
        path = str(tmp_path / "rows.jsonl")
        with open(path, "w") as f:
            f.write('{"a": 1}\n\n{"a": 2}\n')
        assert read_jsonl(path) == [{"a": 1}, {"a": 2}]

    def test_concurrent_writers_leave_consistent_file(self, tmp_path):
        path = str(tmp_path / "f.txt")

        def write(i):
            for _ in range(20):
                atomic_write_text(path, f"writer-{i}" * 100)

        threads = [threading.Thread(target=write, args=(i,)) for i in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        with open(path) as f:
            content = f.read()
        # Never a torn write: the file is exactly one writer's output.
        assert any(content == f"writer-{i}" * 100 for i in range(4))


class TestListFiles:
    def test_missing_directory_is_empty(self, tmp_path):
        assert list_files(str(tmp_path / "nope")) == []

    def test_sorted_and_filtered(self, tmp_path):
        for name in ("b.json", "a.json", "c.txt", ".hidden.json"):
            (tmp_path / name).write_text("{}")
        assert list_files(str(tmp_path), ".json") == ["a.json", "b.json"]


class TestRow:
    def test_attribute_access(self):
        row = Row(a=1, b="x")
        assert row.a == 1
        assert row.b == "x"

    def test_missing_attribute(self):
        with pytest.raises(AttributeError):
            Row(a=1).zzz

    def test_equals_plain_dict(self):
        assert Row(a=1) == {"a": 1}

    def test_repr(self):
        assert repr(Row(a=1)) == "Row(a=1)"

    def test_rows_equal_unordered(self):
        assert rows_equal_unordered(
            [{"a": 1}, {"a": 2}], [{"a": 2}, {"a": 1}])
        assert not rows_equal_unordered([{"a": 1}], [{"a": 2}])


class TestForeachBatch:
    def test_receives_dataframe_per_epoch(self, session):
        stream = make_stream((("v", "long"),))
        received = []

        def handle(df, epoch_id):
            received.append((epoch_id, df.agg(F.sum("v").alias("s")).collect()))

        query = (session.read_stream.memory(stream).write_stream
                 .foreach_batch(handle).output_mode("append").start())
        stream.add_data([{"v": 1}, {"v": 2}])
        query.process_all_available()
        stream.add_data([{"v": 10}])
        query.process_all_available()
        assert received == [(0, [{"s": 3}]), (1, [{"s": 10}])]

    def test_idempotent_per_epoch(self, session):
        stream = make_stream((("v", "long"),))
        calls = []
        query = (session.read_stream.memory(stream).write_stream
                 .foreach_batch(lambda df, e: calls.append(e))
                 .output_mode("append").start())
        stream.add_data([{"v": 1}])
        query.process_all_available()
        query.engine.sink.add_batch(0, query.engine.empty_result(), "append")
        assert calls == [0]

    def test_can_write_to_multiple_tables(self, session, tmp_path):
        """The foreachBatch pattern: fan one epoch out to several sinks."""
        from repro.sinks.file import TransactionalFileSink

        stream = make_stream((("v", "long"),))
        evens_dir = str(tmp_path / "evens")
        odds_dir = str(tmp_path / "odds")

        def fan_out(df, epoch_id):
            df.where(F.col("v") % 2 == 0).write.json(evens_dir)
            df.where(F.col("v") % 2 == 1).write.json(odds_dir)

        query = (session.read_stream.memory(stream).write_stream
                 .foreach_batch(fan_out).output_mode("append").start())
        stream.add_data([{"v": 1}, {"v": 2}, {"v": 3}])
        query.process_all_available()
        assert len(TransactionalFileSink(evens_dir).read_rows()) == 1
        assert len(TransactionalFileSink(odds_dir).read_rows()) == 2
