"""Retraction (Z-set) semantics end to end.

Unit tests for the weighted delivery/apply paths, the CDC source and
stream-table plumbing, plus the golden cascade contract: one fixed
bronze -> silver -> gold run whose sink rows and checkpoint bytes are
invariant to the state backend (dict vs tiered) and the executor
(inline vs process pool), and whose pure-retraction epoch replays
byte-identically after a crash at the sink delivery.
"""

from __future__ import annotations

import os

import pytest

from repro.cluster.scheduler import TaskScheduler
from repro.sinks.memory import MemorySink
from repro.sources.cdc import ChangeStream
from repro.sql import functions as F
from repro.sql.batch import RecordBatch
from repro.sql.session import Session
from repro.sql.types import StructType
from repro.streaming.stream_table import StreamTable
from repro.streaming.zset import WEIGHT_COLUMN, apply_zset, weighted_schema
from repro.testing.faults import CrashPoint, Fault, FaultInjector, injected
from repro.testing.harness import checkpoint_fingerprint
from repro.testing.oracle import canonical_rows

CDC_SCHEMA = StructType((("k", "string"), ("v", "long")))


# ----------------------------------------------------------------------
# Z-set application primitives
# ----------------------------------------------------------------------
def test_apply_zset_delete_on_zero_forgets_insertion_slot():
    rows = [
        {"k": "a"}, {"k": "b"},
        {"k": "a", WEIGHT_COLUMN: -1},
        {"k": "a"},  # re-insert after zero: re-registers at the end
    ]
    assert apply_zset(rows) == [{"k": "b"}, {"k": "a"}]


def test_apply_zset_rejects_negative_multiplicity():
    with pytest.raises(ValueError, match="negative multiplicity"):
        apply_zset([{"k": "x", WEIGHT_COLUMN: -1}])


def test_memory_sink_nets_epoch_delta_before_applying():
    """A -1/+1 pair for the same row within one epoch (a join's bilinear
    expansion emits these in either order) must apply atomically."""
    sink = MemorySink()
    schema = weighted_schema(CDC_SCHEMA)
    sink.add_batch(0, RecordBatch.from_rows(
        [{"k": "a", "v": 1, WEIGHT_COLUMN: 1}], schema), "retract")
    sink.add_batch(1, RecordBatch.from_rows(
        [{"k": "a", "v": 2, WEIGHT_COLUMN: -1},
         {"k": "a", "v": 2, WEIGHT_COLUMN: 1},
         {"k": "a", "v": 2, WEIGHT_COLUMN: 1}], schema), "retract")
    assert sink.rows() == [{"k": "a", "v": 1}, {"k": "a", "v": 2}]
    # Idempotent re-delivery after recovery: same epoch is a no-op.
    sink.add_batch(1, RecordBatch.from_rows(
        [{"k": "a", "v": 2, WEIGHT_COLUMN: 1}], schema), "retract")
    assert sink.rows() == [{"k": "a", "v": 1}, {"k": "a", "v": 2}]


def test_memory_sink_rejects_over_retraction():
    sink = MemorySink()
    schema = weighted_schema(CDC_SCHEMA)
    with pytest.raises(ValueError, match="never received"):
        sink.add_batch(0, RecordBatch.from_rows(
            [{"k": "a", "v": 1, WEIGHT_COLUMN: -1}], schema), "retract")


# ----------------------------------------------------------------------
# CDC source and stream-table plumbing
# ----------------------------------------------------------------------
def test_change_stream_rejects_explicit_weights():
    cdc = ChangeStream(CDC_SCHEMA)
    with pytest.raises(ValueError, match="must not carry"):
        cdc.insert([{"k": "a", "v": 1, WEIGHT_COLUMN: 1}])
    with pytest.raises(ValueError, match="must not contain"):
        ChangeStream((("k", "string"), (WEIGHT_COLUMN, "long")))


def test_read_stream_table_requires_a_started_writer():
    session = Session()
    with pytest.raises(KeyError, match="no stream table"):
        session.read_stream_table("nope")
    session.stream_tables["pending"] = StreamTable("pending")
    with pytest.raises(ValueError, match="no schema yet"):
        session.read_stream_table("pending")


# ----------------------------------------------------------------------
# Weighted operators through real queries
# ----------------------------------------------------------------------
def _start_retract(df, sink, checkpoint):
    return (df.write_stream.sink(sink).output_mode("retract")
            .start(str(checkpoint)))


def test_weighted_aggregate_updates_and_group_disappearance(tmp_path):
    session = Session()
    cdc = ChangeStream(CDC_SCHEMA)
    df = (session.read_stream.cdc(cdc)
          .group_by("k").agg(F.sum("v").alias("s")))
    sink = MemorySink()
    query = _start_retract(df, sink, tmp_path / "ck")
    cdc.insert([{"k": "a", "v": 5}, {"k": "b", "v": 3}])
    query.process_all_available()
    assert canonical_rows(sink.rows()) == canonical_rows(
        [{"k": "a", "s": 5}, {"k": "b", "s": 3}])
    cdc.update([{"k": "a", "v": 5}], [{"k": "a", "v": 7}])
    cdc.delete([{"k": "b", "v": 3}])
    query.process_all_available()
    query.stop()
    assert canonical_rows(sink.rows()) == canonical_rows([{"k": "a", "s": 7}])


def test_weighted_dedup_promotes_next_surviving_row(tmp_path):
    session = Session()
    cdc = ChangeStream(CDC_SCHEMA)
    df = session.read_stream.cdc(cdc).drop_duplicates(["k"])
    sink = MemorySink()
    query = _start_retract(df, sink, tmp_path / "ck")
    cdc.insert([{"k": "a", "v": 1}, {"k": "a", "v": 2}])
    query.process_all_available()
    assert sink.rows() == [{"k": "a", "v": 1}]
    cdc.delete([{"k": "a", "v": 1}])
    query.process_all_available()
    query.stop()
    assert sink.rows() == [{"k": "a", "v": 2}]


# ----------------------------------------------------------------------
# The golden cascade: bytes invariant to backend and executor
# ----------------------------------------------------------------------
def _cascade_steps():
    """One chunk per epoch; chunk 2 is deletes-only (a pure retraction
    epoch in both stages' WALs)."""
    return [
        lambda cdc: cdc.insert([{"k": "a", "v": 5}, {"k": "b", "v": 3}]),
        lambda cdc: cdc.insert([{"k": "a", "v": 2}, {"k": "c", "v": 7}]),
        lambda cdc: cdc.delete([{"k": "a", "v": 5}, {"k": "b", "v": 3}]),
        lambda cdc: cdc.update([{"k": "c", "v": 7}], [{"k": "c", "v": 9}]),
        lambda cdc: cdc.insert([{"k": "b", "v": 1}]),
    ]


GOLDEN_FINAL = [{"k": "a", "total": 2}, {"k": "c", "total": 9},
                {"k": "b", "total": 1}]


def _build_cascade(root, *, backend="dict", scheduler=None, shards=2):
    session = Session()
    cdc = ChangeStream(CDC_SCHEMA)
    silver = (session.read_stream.cdc(cdc)
              .filter(F.col("v") > 0).select("k", "v"))
    sink = MemorySink()
    ck1 = os.path.join(root, "ck-silver")
    ck2 = os.path.join(root, "ck-gold")

    def start():
        upstream = (silver.write_stream.to_table("silver")
                    .output_mode("retract").option("num_shards", shards)
                    .start(ck1))
        writer = (session.read_stream_table("silver")
                  .group_by("k").agg(F.sum("v").alias("total"))
                  .write_stream.sink(sink).output_mode("retract")
                  .option("num_shards", shards))
        if backend == "tiered":
            writer = (writer.option("state_backend", "tiered")
                      .option("state_memtable_bytes", 256))
        if scheduler is not None:
            writer = writer.option("scheduler", scheduler)
        return upstream, writer.start(ck2)

    return cdc, sink, ck1, ck2, start


def _run_cascade(root, **kwargs):
    scheduler = kwargs.get("scheduler")
    cdc, sink, ck1, ck2, start = _build_cascade(root, **kwargs)
    upstream, downstream = start()
    try:
        for step in _cascade_steps():
            step(cdc)
            upstream.process_all_available()
            downstream.process_all_available()
    finally:
        upstream.stop()
        downstream.stop()
        if scheduler is not None:
            scheduler.shutdown()
    return sink.rows(), checkpoint_fingerprint(ck1), checkpoint_fingerprint(ck2)


def _wal_part(fingerprint):
    return {k: v for k, v in fingerprint.items() if not k.startswith("state/")}


def test_cascade_bytes_invariant_to_state_backend(tmp_path):
    rows_d, fp1_d, fp2_d = _run_cascade(str(tmp_path / "dict"))
    rows_t, fp1_t, fp2_t = _run_cascade(str(tmp_path / "tiered"),
                                        backend="tiered")
    assert canonical_rows(rows_d) == canonical_rows(GOLDEN_FINAL)
    assert canonical_rows(rows_t) == canonical_rows(rows_d)
    # State file formats differ by design; every WAL byte must not.
    assert fp1_t == fp1_d
    assert _wal_part(fp2_t) == _wal_part(fp2_d)


@pytest.mark.usefixtures("shm_guard")
def test_cascade_bytes_invariant_to_executor(tmp_path):
    rows_i, fp1_i, fp2_i = _run_cascade(str(tmp_path / "inline"))
    scheduler = TaskScheduler(2, executor="process", speculation=False)
    rows_p, fp1_p, fp2_p = _run_cascade(str(tmp_path / "process"),
                                        scheduler=scheduler)
    assert canonical_rows(rows_p) == canonical_rows(rows_i)
    assert fp1_p == fp1_i
    assert fp2_p == fp2_i  # including every state checkpoint byte


def test_retraction_epoch_replays_byte_identically(tmp_path):
    """Crash the downstream stage at the sink delivery of the
    deletes-only epoch; after restart the replayed epoch must leave the
    same checkpoint bytes and sink rows as a run that never crashed."""
    rows_clean, fp1_clean, fp2_clean = _run_cascade(str(tmp_path / "clean"))

    cdc, sink, ck1, ck2, start = _build_cascade(str(tmp_path / "crashed"))
    injector = FaultInjector([Fault(
        "sink.add_batch", occurrence=None, action="crash",
        match=lambda ctx: ctx.get("sink") == "memory" and ctx.get("epoch") == 2,
    )])
    steps = _cascade_steps()
    crashes = 0
    with injected(injector):
        upstream, downstream = start()
        fed = 0
        while True:
            try:
                upstream.process_all_available()
                downstream.process_all_available()
                if fed == len(steps):
                    break
                steps[fed](cdc)
                fed += 1
            except CrashPoint:
                crashes += 1
                try:
                    downstream.stop()
                except CrashPoint:
                    pass
                upstream, downstream = start()
        upstream.stop()
        downstream.stop()
    assert crashes == 1
    assert canonical_rows(sink.rows()) == canonical_rows(rows_clean)
    assert checkpoint_fingerprint(ck1) == fp1_clean
    assert checkpoint_fingerprint(ck2) == fp2_clean
