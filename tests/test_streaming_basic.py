"""End-to-end microbatch streaming: the incremental query model (§4).

These tests drive queries synchronously (manual trigger) through a
MemorySink, checking the core promise: results match running the same
static query on the prefix of input seen so far.
"""

import pytest

from repro.sql import functions as F
from repro.sql.expressions import AnalysisError

from tests.conftest import make_stream, rows_set, start_memory_query


class TestMapOnlyQueries:
    def test_select_where_append(self, session):
        stream = make_stream((("v", "long"),))
        df = (session.read_stream.memory(stream)
              .where(F.col("v") % 2 == 0)
              .select((F.col("v") * 10).alias("v10")))
        query = start_memory_query(df, "append", "out")
        stream.add_data([{"v": 1}, {"v": 2}, {"v": 3}, {"v": 4}])
        query.process_all_available()
        assert [r["v10"] for r in query.engine.sink.rows()] == [20, 40]

    def test_deltas_accumulate_across_epochs(self, session):
        stream = make_stream((("v", "long"),))
        df = session.read_stream.memory(stream)
        query = start_memory_query(df, "append", "out")
        stream.add_data([{"v": 1}])
        query.process_all_available()
        stream.add_data([{"v": 2}])
        query.process_all_available()
        assert [r["v"] for r in query.engine.sink.rows()] == [1, 2]

    def test_epoch_with_no_data_skipped(self, session):
        stream = make_stream((("v", "long"),))
        query = start_memory_query(session.read_stream.memory(stream), "append", "out")
        assert query.run_epoch() is None
        stream.add_data([{"v": 1}])
        assert query.run_epoch() is not None
        assert query.run_epoch() is None

    def test_udf_in_streaming_query(self, session):
        stream = make_stream((("s", "string"),))
        shout = F.udf(lambda s: s.upper(), "string")
        df = session.read_stream.memory(stream).select(shout(F.col("s")).alias("u"))
        query = start_memory_query(df, "append", "out")
        stream.add_data([{"s": "hi"}])
        query.process_all_available()
        assert query.engine.sink.rows() == [{"u": "HI"}]


class TestStreamStaticIntegration:
    def test_join_stream_with_static_table(self, session):
        stream = make_stream((("k", "long"), ("v", "double")))
        static = session.create_dataframe(
            [{"k": 1, "name": "one"}, {"k": 2, "name": "two"}],
            (("k", "long"), ("name", "string")))
        df = session.read_stream.memory(stream).join(static, on="k")
        query = start_memory_query(df, "append", "out")
        stream.add_data([{"k": 1, "v": 0.5}, {"k": 3, "v": 0.7}])
        query.process_all_available()
        assert query.engine.sink.rows() == [{"k": 1, "v": 0.5, "name": "one"}]

    def test_left_outer_stream_static(self, session):
        stream = make_stream((("k", "long"), ("v", "double")))
        static = session.create_dataframe(
            [{"k": 1, "name": "one"}], (("k", "long"), ("name", "string")))
        df = session.read_stream.memory(stream).join(static, on="k", how="left_outer")
        query = start_memory_query(df, "append", "out")
        stream.add_data([{"k": 1, "v": 0.5}, {"k": 3, "v": 0.7}])
        query.process_all_available()
        names = {r["k"]: r["name"] for r in query.engine.sink.rows()}
        assert names == {1: "one", 3: None}

    def test_union_stream_with_static_emits_static_once(self, session):
        stream = make_stream((("v", "long"),))
        static = session.create_dataframe([{"v": 100}], (("v", "long"),))
        df = session.read_stream.memory(stream).union(static)
        query = start_memory_query(df, "append", "out")
        stream.add_data([{"v": 1}])
        query.process_all_available()
        stream.add_data([{"v": 2}])
        query.process_all_available()
        values = sorted(r["v"] for r in query.engine.sink.rows())
        assert values == [1, 2, 100]

    def test_union_two_streams(self, session):
        a = make_stream((("v", "long"),))
        b = make_stream((("v", "long"),))
        df = session.read_stream.memory(a).union(session.read_stream.memory(b))
        query = start_memory_query(df, "append", "out")
        a.add_data([{"v": 1}])
        b.add_data([{"v": 2}])
        query.process_all_available()
        assert sorted(r["v"] for r in query.engine.sink.rows()) == [1, 2]


class TestMemorySinkViews:
    def test_query_name_registers_temp_view(self, session):
        stream = make_stream((("v", "long"),))
        query = start_memory_query(session.read_stream.memory(stream), "append", "tbl")
        stream.add_data([{"v": 7}])
        query.process_all_available()
        assert session.table("tbl").collect() == [{"v": 7}]

    def test_view_sees_consistent_snapshots(self, session):
        stream = make_stream((("v", "long"),))
        query = start_memory_query(session.read_stream.memory(stream), "append", "tbl")
        stream.add_data([{"v": 1}])
        query.process_all_available()
        first = session.table("tbl").count_rows()
        stream.add_data([{"v": 2}])
        query.process_all_available()
        assert first == 1
        assert session.table("tbl").count_rows() == 2

    def test_interactive_sql_over_stream_output(self, session):
        stream = make_stream((("k", "string"), ("v", "long")))
        df = session.read_stream.memory(stream).group_by("k").sum("v")
        query = start_memory_query(df, "complete", "sums")
        stream.add_data([{"k": "a", "v": 1}, {"k": "a", "v": 2}])
        query.process_all_available()
        out = session.sql("SELECT * FROM sums WHERE k = 'a'").collect()
        assert out[0]["sum(v)"] == 3


class TestBatchStreamingParity:
    """The same code runs as a batch job (§7.3): results must agree."""

    ROWS = [
        {"k": "a", "v": 1.0}, {"k": "b", "v": 2.0},
        {"k": "a", "v": 3.0}, {"k": "c", "v": 4.0},
    ]

    def _apply(self, df):
        return df.where(F.col("v") > 1).group_by("k").agg(
            F.count().alias("n"), F.sum("v").alias("s"))

    def test_same_transformation_both_ways(self, session):
        batch_df = self._apply(session.create_dataframe(
            self.ROWS, (("k", "string"), ("v", "double"))))
        expected = rows_set(batch_df.collect())

        stream = make_stream((("k", "string"), ("v", "double")))
        query = start_memory_query(
            self._apply(session.read_stream.memory(stream)), "complete", "out")
        for row in self.ROWS:  # one epoch per row: any chunking works
            stream.add_data([row])
            query.process_all_available()
        assert rows_set(query.engine.sink.rows()) == expected


class TestWriterValidation:
    def test_complete_without_aggregate_rejected(self, session):
        stream = make_stream((("v", "long"),))
        df = session.read_stream.memory(stream)
        with pytest.raises(Exception, match="complete"):
            start_memory_query(df, "complete", "out")

    def test_unknown_format_rejected(self, session):
        stream = make_stream((("v", "long"),))
        df = session.read_stream.memory(stream)
        with pytest.raises(AnalysisError, match="unknown sink"):
            df.write_stream.format("nope").start()

    def test_file_sink_needs_path(self, session):
        stream = make_stream((("v", "long"),))
        df = session.read_stream.memory(stream)
        with pytest.raises(AnalysisError, match="path"):
            df.write_stream.format("file").start()

    def test_file_sink_rejects_update_mode(self, session, tmp_path):
        stream = make_stream((("k", "string"), ("v", "long")))
        df = session.read_stream.memory(stream).group_by("k").count()
        writer = (df.write_stream.format("file")
                  .option("path", str(tmp_path / "o")).output_mode("update"))
        with pytest.raises(ValueError, match="does not support"):
            writer.start()

    def test_exactly_one_trigger(self, session):
        stream = make_stream((("v", "long"),))
        df = session.read_stream.memory(stream)
        with pytest.raises(ValueError, match="exactly one"):
            df.write_stream.trigger(interval=1, once=True)


class TestProgressReporting:
    def test_progress_metrics(self, session):
        stream = make_stream((("v", "long"),))
        query = start_memory_query(session.read_stream.memory(stream), "append", "out")
        stream.add_data([{"v": 1}, {"v": 2}])
        progress = query.run_epoch()
        assert progress.input_rows == 2
        assert progress.output_rows == 2
        assert progress.backlog_rows == 0
        assert progress.input_rows_per_second > 0
        assert query.last_progress is progress
        assert query.recent_progress == [progress]

    def test_progress_json_shape(self, session):
        stream = make_stream((("v", "long"),))
        query = start_memory_query(session.read_stream.memory(stream), "append", "out")
        stream.add_data([{"v": 1}])
        payload = query.run_epoch().to_json()
        for key in ("epoch", "numInputRows", "inputRowsPerSecond", "sources"):
            assert key in payload

    def test_listener_invoked(self, session):
        stream = make_stream((("v", "long"),))
        query = start_memory_query(session.read_stream.memory(stream), "append", "out")
        seen = []
        query.engine.progress.listeners.append(lambda p: seen.append(p.epoch_id))
        stream.add_data([{"v": 1}])
        query.process_all_available()
        assert seen == [0]

    def test_max_records_per_epoch_caps_batch(self, session):
        stream = make_stream((("v", "long"),))
        query = start_memory_query(
            session.read_stream.memory(stream), "append", "out",
            max_records_per_epoch=2)
        stream.add_data([{"v": i} for i in range(5)])
        progresses = query.process_all_available()
        assert [p.input_rows for p in progresses] == [2, 2, 1]
