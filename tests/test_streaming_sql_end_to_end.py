"""Streaming SQL end to end: the paper's §8.1 workflow of developing a
query on batch data and deploying the same text against the stream."""

import pytest

from tests.conftest import make_stream, rows_set, start_memory_query

EVENTS = (("host", "string"), ("bytes", "long"), ("t", "timestamp"))


@pytest.fixture
def stream_view(session):
    stream = make_stream(EVENTS)
    session.read_stream.memory(stream).create_or_replace_temp_view("events")
    return stream


class TestStreamingSqlQueries:
    def test_filtered_projection(self, session, stream_view):
        df = session.sql("SELECT host, bytes * 8 AS bits FROM events WHERE bytes > 0")
        query = start_memory_query(df, "append", "out")
        stream_view.add_data([{"host": "h1", "bytes": 2, "t": 1.0},
                              {"host": "h2", "bytes": 0, "t": 2.0}])
        query.process_all_available()
        assert query.engine.sink.rows() == [{"host": "h1", "bits": 16}]

    def test_aggregate_with_alias_projection(self, session, stream_view):
        df = session.sql(
            "SELECT host, SUM(bytes) AS total FROM events GROUP BY host")
        query = start_memory_query(df, "update", "out")
        stream_view.add_data([{"host": "h1", "bytes": 5, "t": 1.0}])
        query.process_all_available()
        stream_view.add_data([{"host": "h1", "bytes": 7, "t": 2.0}])
        query.process_all_available()
        assert query.engine.sink.rows() == [{"host": "h1", "total": 12}]

    def test_having_over_streaming_aggregate(self, session, stream_view):
        """HAVING filters each epoch's emissions — keys qualify as their
        running aggregate crosses the threshold (standard streaming
        HAVING caveat: no retraction if they'd later 'unqualify')."""
        df = session.sql(
            "SELECT host, SUM(bytes) AS total FROM events "
            "GROUP BY host HAVING total > 10")
        query = start_memory_query(df, "update", "alerts")
        stream_view.add_data([{"host": "h1", "bytes": 6, "t": 1.0},
                              {"host": "h2", "bytes": 20, "t": 2.0}])
        query.process_all_available()
        assert query.engine.sink.rows() == [{"host": "h2", "total": 20}]
        stream_view.add_data([{"host": "h1", "bytes": 6, "t": 3.0}])
        query.process_all_available()
        assert rows_set(query.engine.sink.rows()) == rows_set([
            {"host": "h1", "total": 12}, {"host": "h2", "total": 20}])

    def test_windowed_sql_aggregate_complete(self, session, stream_view):
        df = session.sql(
            "SELECT WINDOW(t, '10 seconds'), COUNT(*) AS n "
            "FROM events GROUP BY WINDOW(t, '10 seconds') ORDER BY n DESC")
        query = start_memory_query(df, "complete", "win")
        stream_view.add_data([{"host": "h", "bytes": 1, "t": t}
                              for t in (1.0, 2.0, 15.0)])
        query.process_all_available()
        rows = query.engine.sink.rows()
        assert rows[0] == {"window_start": 0.0, "window_end": 10.0, "n": 2}

    def test_case_when_in_streaming_select(self, session, stream_view):
        df = session.sql(
            "SELECT host, CASE WHEN bytes > 10 THEN 'big' ELSE 'small' END "
            "AS size FROM events")
        query = start_memory_query(df, "append", "out")
        stream_view.add_data([{"host": "h1", "bytes": 100, "t": 1.0},
                              {"host": "h2", "bytes": 1, "t": 2.0}])
        query.process_all_available()
        assert [r["size"] for r in query.engine.sink.rows()] == ["big", "small"]

    def test_develop_on_batch_deploy_on_stream(self, session, stream_view):
        """§8.1: the analyst tunes a query on historical (batch) data,
        then pushes the same SQL text to the streaming cluster."""
        text = ("SELECT host, SUM(bytes) AS total FROM {src} "
                "GROUP BY host HAVING total > 100")
        history = [{"host": "h1", "bytes": 90, "t": 1.0},
                   {"host": "h1", "bytes": 20, "t": 2.0},
                   {"host": "h2", "bytes": 5, "t": 3.0}]
        session.create_dataframe(history, EVENTS) \
            .create_or_replace_temp_view("history")
        tuned = session.sql(text.format(src="history")).collect()
        assert tuned == [{"host": "h1", "total": 110}]

        live = session.sql(text.format(src="events"))
        query = start_memory_query(live, "update", "live_alerts")
        stream_view.add_data(history)
        query.process_all_available()
        assert query.engine.sink.rows() == tuned

    def test_join_with_static_view_in_streaming_sql(self, session, stream_view):
        session.create_dataframe(
            [{"host": "h1", "owner": "alice"}],
            (("host", "string"), ("owner", "string"))
        ).create_or_replace_temp_view("inventory")
        df = session.sql(
            "SELECT host, owner, bytes FROM events JOIN inventory USING (host)")
        query = start_memory_query(df, "append", "out")
        stream_view.add_data([{"host": "h1", "bytes": 3, "t": 1.0},
                              {"host": "hX", "bytes": 4, "t": 2.0}])
        query.process_all_available()
        assert query.engine.sink.rows() == [
            {"host": "h1", "owner": "alice", "bytes": 3}]
