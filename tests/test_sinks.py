"""Tests for sinks: the idempotence and atomicity contracts (§3, §6.1)."""

import os

import pytest

from repro.bus import Broker
from repro.sinks.console import ConsoleSink
from repro.sinks.file import TransactionalFileSink
from repro.sinks.foreach import ForeachSink
from repro.sinks.kafka import KafkaSink, reset_transaction_registry
from repro.sinks.memory import MemorySink
from repro.sql.batch import RecordBatch
from repro.sql.types import StructType
from repro.storage import list_files

SCHEMA = StructType((("k", "string"), ("n", "long")))


def batch(rows):
    return RecordBatch.from_rows(rows, SCHEMA)


class TestMemorySink:
    def test_append_accumulates(self):
        sink = MemorySink()
        sink.add_batch(0, batch([{"k": "a", "n": 1}]), "append")
        sink.add_batch(1, batch([{"k": "b", "n": 2}]), "append")
        assert len(sink.rows()) == 2

    def test_duplicate_epoch_ignored(self):
        sink = MemorySink()
        sink.add_batch(0, batch([{"k": "a", "n": 1}]), "append")
        sink.add_batch(0, batch([{"k": "a", "n": 1}]), "append")
        assert len(sink.rows()) == 1

    def test_complete_replaces(self):
        sink = MemorySink()
        sink.add_batch(0, batch([{"k": "a", "n": 1}, {"k": "b", "n": 1}]), "complete")
        sink.add_batch(1, batch([{"k": "a", "n": 2}]), "complete")
        assert sink.rows() == [{"k": "a", "n": 2}]

    def test_update_merges_by_key(self):
        sink = MemorySink()
        sink.set_key_names(["k"])
        sink.add_batch(0, batch([{"k": "a", "n": 1}, {"k": "b", "n": 1}]), "update")
        sink.add_batch(1, batch([{"k": "a", "n": 5}]), "update")
        rows = {r["k"]: r["n"] for r in sink.rows()}
        assert rows == {"a": 5, "b": 1}

    def test_last_committed_epoch(self):
        sink = MemorySink()
        assert sink.last_committed_epoch() is None
        sink.add_batch(3, batch([]), "append")
        assert sink.last_committed_epoch() == 3

    def test_append_rows_continuous_path(self):
        sink = MemorySink()
        sink.append_rows([{"k": "x", "n": 1}])
        assert sink.rows() == [{"k": "x", "n": 1}]

    def test_clear(self):
        sink = MemorySink()
        sink.add_batch(0, batch([{"k": "a", "n": 1}]), "append")
        sink.clear()
        assert sink.rows() == []
        assert sink.last_committed_epoch() is None


class TestTransactionalFileSink:
    def test_append_and_read_back(self, tmp_path):
        sink = TransactionalFileSink(str(tmp_path / "out"))
        sink.add_batch(0, batch([{"k": "a", "n": 1}]), "append")
        sink.add_batch(1, batch([{"k": "b", "n": 2}]), "append")
        assert sink.read_rows() == [{"k": "a", "n": 1}, {"k": "b", "n": 2}]

    def test_idempotent_epoch_rewrite(self, tmp_path):
        sink = TransactionalFileSink(str(tmp_path / "out"))
        sink.add_batch(0, batch([{"k": "a", "n": 1}]), "append")
        sink.add_batch(0, batch([{"k": "a", "n": 999}]), "append")
        assert sink.read_rows() == [{"k": "a", "n": 1}]

    def test_complete_mode_replaces(self, tmp_path):
        sink = TransactionalFileSink(str(tmp_path / "out"))
        sink.add_batch(0, batch([{"k": "a", "n": 1}]), "complete")
        sink.add_batch(1, batch([{"k": "a", "n": 2}]), "complete")
        assert sink.read_rows() == [{"k": "a", "n": 2}]

    def test_orphan_data_files_invisible(self, tmp_path):
        directory = str(tmp_path / "out")
        sink = TransactionalFileSink(directory)
        sink.add_batch(0, batch([{"k": "a", "n": 1}]), "append")
        # A data file without a manifest (simulating a crash mid-epoch).
        with open(os.path.join(directory, "part-00099-000.jsonl"), "w") as f:
            f.write('{"k": "ghost", "n": 0}\n')
        assert sink.read_rows() == [{"k": "a", "n": 1}]

    def test_large_batch_splits_files(self, tmp_path):
        sink = TransactionalFileSink(str(tmp_path / "out"), rows_per_file=2)
        sink.add_batch(0, batch([{"k": str(i), "n": i} for i in range(5)]), "append")
        manifest = sink.committed_manifests()[0]
        assert len(manifest["files"]) == 3
        assert len(sink.read_rows()) == 5

    def test_rows_for_epoch(self, tmp_path):
        sink = TransactionalFileSink(str(tmp_path / "out"))
        sink.add_batch(0, batch([{"k": "a", "n": 1}]), "append")
        sink.add_batch(1, batch([{"k": "b", "n": 2}]), "append")
        assert sink.rows_for_epoch(1) == [{"k": "b", "n": 2}]
        assert sink.rows_for_epoch(42) == []

    def test_remove_epochs_after_rollback(self, tmp_path):
        sink = TransactionalFileSink(str(tmp_path / "out"))
        for epoch in range(3):
            sink.add_batch(epoch, batch([{"k": str(epoch), "n": epoch}]), "append")
        removed = sink.remove_epochs_after(0)
        assert removed == 2
        assert sink.read_rows() == [{"k": "0", "n": 0}]
        assert sink.last_committed_epoch() == 0

    def test_read_batch(self, tmp_path):
        sink = TransactionalFileSink(str(tmp_path / "out"))
        sink.add_batch(0, batch([{"k": "a", "n": 1}]), "append")
        out = sink.read_batch(SCHEMA)
        assert out.num_rows == 1

    def test_empty_epoch_still_commits(self, tmp_path):
        sink = TransactionalFileSink(str(tmp_path / "out"))
        sink.add_batch(0, batch([]), "append")
        assert sink.last_committed_epoch() == 0
        assert sink.read_rows() == []

    def test_no_temp_files_left(self, tmp_path):
        directory = str(tmp_path / "out")
        sink = TransactionalFileSink(directory)
        sink.add_batch(0, batch([{"k": "a", "n": 1}]), "append")
        assert not [n for n in os.listdir(directory) if n.startswith(".tmp")]


class TestKafkaSink:
    def setup_method(self):
        reset_transaction_registry()

    def test_publish_and_dedupe(self):
        broker = Broker()
        sink = KafkaSink(broker, "out", query_id="q1")
        sink.add_batch(0, batch([{"k": "a", "n": 1}]), "append")
        sink.add_batch(0, batch([{"k": "a", "n": 1}]), "append")  # replay
        topic = broker.topic("out")
        assert topic.total_records() == 1

    def test_dedupe_survives_new_sink_instance(self):
        # Models transactional markers living in the external bus.
        broker = Broker()
        KafkaSink(broker, "out", query_id="q1").add_batch(
            0, batch([{"k": "a", "n": 1}]), "append")
        KafkaSink(broker, "out", query_id="q1").add_batch(
            0, batch([{"k": "a", "n": 1}]), "append")
        assert broker.topic("out").total_records() == 1

    def test_different_queries_do_not_collide(self):
        broker = Broker()
        KafkaSink(broker, "out", query_id="q1").add_batch(0, batch([{"k": "a", "n": 1}]), "append")
        KafkaSink(broker, "out", query_id="q2").add_batch(0, batch([{"k": "a", "n": 1}]), "append")
        assert broker.topic("out").total_records() == 2

    def test_partitioned_publish(self):
        broker = Broker()
        broker.create_topic("out", 4)
        sink = KafkaSink(broker, "out", query_id="q", partition_key="k")
        sink.add_batch(0, batch([{"k": str(i), "n": i} for i in range(20)]), "append")
        assert broker.topic("out").total_records() == 20

    def test_last_committed_epoch(self):
        broker = Broker()
        sink = KafkaSink(broker, "out", query_id="q1")
        assert sink.last_committed_epoch() is None
        sink.add_batch(2, batch([]), "append")
        assert sink.last_committed_epoch() == 2


class TestForeachSink:
    def test_callback_per_epoch(self):
        calls = []
        sink = ForeachSink(lambda e, rows, mode: calls.append((e, rows, mode)))
        sink.add_batch(0, batch([{"k": "a", "n": 1}]), "append")
        assert calls == [(0, [{"k": "a", "n": 1}], "append")]

    def test_duplicate_epoch_suppressed(self):
        calls = []
        sink = ForeachSink(lambda e, rows, mode: calls.append(e))
        sink.add_batch(0, batch([]), "append")
        sink.add_batch(0, batch([]), "append")
        assert calls == [0]

    def test_continuous_path_marks_epoch(self):
        calls = []
        sink = ForeachSink(lambda e, rows, mode: calls.append(e))
        sink.append_rows([{"k": "a", "n": 1}])
        assert calls == [-1]


class TestConsoleSink:
    def test_prints_rows(self, capsys):
        sink = ConsoleSink(max_rows=1)
        sink.add_batch(0, batch([{"k": "a", "n": 1}, {"k": "b", "n": 2}]), "append")
        out = capsys.readouterr().out
        assert "epoch 0" in out
        assert "a" in out and "b" not in out.split("\n")[1]

    def test_duplicate_epoch_silent(self, capsys):
        sink = ConsoleSink()
        sink.add_batch(0, batch([]), "append")
        capsys.readouterr()
        sink.add_batch(0, batch([]), "append")
        assert capsys.readouterr().out == ""
