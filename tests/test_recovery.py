"""Fault tolerance: recovery, exactly-once output, rollback, code update
(§6.1, §7.1, §7.2).

A "crash" is modeled by abandoning the engine object and starting a new
query on the same checkpoint directory — exactly what happens when an
application restarts.  The sink object survives (it models the external
system the query writes to).
"""

import pytest

from repro.sql import functions as F
from repro.sinks.file import TransactionalFileSink
from repro.testing.faults import CrashPoint, Fault, FaultInjector, injected

from tests.conftest import make_stream, rows_set, start_memory_query

SCHEMA = (("k", "string"), ("v", "long"))


def counts_df(session, stream):
    return session.read_stream.memory(stream).group_by("k").count()


def restart(session, df, sink, mode, checkpoint):
    """Start a query reusing an existing sink + checkpoint (a restart)."""
    return (df.write_stream.sink(sink).output_mode(mode).start(checkpoint))


class TestRestartContinuesWhereLeftOff:
    def test_offsets_resume(self, session, checkpoint):
        stream = make_stream(SCHEMA)
        df = counts_df(session, stream)
        q1 = start_memory_query(df, "complete", "out", checkpoint)
        stream.add_data([{"k": "a", "v": 1}])
        q1.process_all_available()
        sink = q1.engine.sink

        q2 = restart(session, df, sink, "complete", checkpoint)
        stream.add_data([{"k": "a", "v": 2}])
        q2.process_all_available()
        assert sink.rows() == [{"k": "a", "count": 2}]

    def test_state_restored_across_restart(self, session, checkpoint):
        stream = make_stream(SCHEMA)
        df = counts_df(session, stream)
        q1 = start_memory_query(df, "complete", "out", checkpoint)
        stream.add_data([{"k": "a", "v": 1}, {"k": "b", "v": 1}])
        q1.process_all_available()

        q2 = restart(session, df, q1.engine.sink, "complete", checkpoint)
        assert q2.engine.state_store.total_keys() == 2

    def test_epoch_numbering_continues(self, session, checkpoint):
        stream = make_stream(SCHEMA)
        df = counts_df(session, stream)
        q1 = start_memory_query(df, "complete", "out", checkpoint)
        stream.add_data([{"k": "a", "v": 1}])
        q1.process_all_available()
        q2 = restart(session, df, q1.engine.sink, "complete", checkpoint)
        assert q2.engine.next_epoch == 1


class TestCrashRecovery:
    """Crashes land via named fault points (see repro.testing.faults),
    not hand-edited logs: the injector kills the engine at the exact
    protocol step, the restart is a fresh query on the same checkpoint."""

    def test_uncommitted_epoch_rerun_on_restart(self, session, checkpoint):
        stream = make_stream(SCHEMA)
        df = session.read_stream.memory(stream)
        q0 = start_memory_query(df, "append", "out", checkpoint)
        sink = q0.engine.sink
        stream.add_data([{"k": "a", "v": 1}])
        # Crash with the offsets entry durable but nothing else done
        # (between steps 1 and 2 of Figure 4).
        with injected(FaultInjector([Fault("epoch.after_offsets")])):
            with pytest.raises(CrashPoint):
                q0.process_all_available()
        assert sink.rows() == []  # nothing delivered before the crash

        q1 = restart(session, df, sink, "append", checkpoint)
        # Recovery re-ran the logged epoch during construction.
        assert sink.rows() == [{"k": "a", "v": 1}]
        assert q1.engine.wal.is_committed(0)

    def test_crash_between_sink_and_commit_is_exactly_once(self, session, checkpoint):
        stream = make_stream(SCHEMA)
        df = session.read_stream.memory(stream)
        q0 = start_memory_query(df, "append", "out", checkpoint)
        sink = q0.engine.sink
        stream.add_data([{"k": "a", "v": 1}])
        # Crash after the sink accepted the epoch but before the commit
        # record landed (between steps 3 and 4 of Figure 4).
        with injected(FaultInjector([Fault("epoch.after_sink")])):
            with pytest.raises(CrashPoint):
                q0.process_all_available()
        assert sink.rows() == [{"k": "a", "v": 1}]  # delivered, uncommitted

        q1 = restart(session, df, sink, "append", checkpoint)
        # The idempotent sink deduplicates the re-delivered epoch.
        assert sink.rows() == [{"k": "a", "v": 1}]
        assert q1.engine.wal.is_committed(0)

    def test_recovery_with_aggregate_state_replay(self, session, checkpoint):
        """State checkpoint lags the commit log: recovery must replay
        logged epochs to rebuild state (§6.1 step 4)."""
        stream = make_stream(SCHEMA)
        df = counts_df(session, stream)
        q0 = (df.write_stream.format("memory").query_name("out")
              .output_mode("complete")
              .option("state_checkpoint_interval", 3)  # sparse checkpoints
              .start(checkpoint))
        sink = q0.engine.sink
        for i in range(5):
            stream.add_data([{"k": "a", "v": i}])
            q0.run_epoch()
        assert sink.rows() == [{"k": "a", "count": 5}]

        q1 = restart(session, df, sink, "complete", checkpoint)
        stream.add_data([{"k": "a", "v": 99}])
        q1.process_all_available()
        assert sink.rows() == [{"k": "a", "count": 6}]


class TestPartialStateCommitCrash:
    def test_mid_commit_crash_does_not_double_apply(self, session, checkpoint):
        """A crash between two operators' state commits leaves them at
        different versions; recovery must restore both to a consistent
        base and replay — never double-apply an epoch to one of them."""
        left_schema = (("k", "long"), ("t", "timestamp"), ("l", "string"))
        right_schema = (("k", "long"), ("t2", "timestamp"), ("r", "string"))
        ls = make_stream(left_schema)
        rs = make_stream(right_schema)
        left = session.read_stream.memory(ls).with_watermark("t", "100s")
        right = session.read_stream.memory(rs).with_watermark("t2", "100s")
        df = left.join(right, on="k", within=("t", "t2", "1000s"))

        q0 = start_memory_query(df, "append", "out", checkpoint)
        sink = q0.engine.sink
        ls.add_data([{"k": 1, "t": 1.0, "l": "x"}])
        q0.process_all_available()
        rs.add_data([{"k": 1, "t2": 2.0, "r": "y"}])
        # Crash inside commit_all after the FIRST operator committed
        # epoch 1 and before the second did: the handles are left at
        # different versions.
        injector = FaultInjector([
            Fault("state.commit_all", occurrence=None, times=1,
                  match=lambda ctx: ctx["version"] == 1 and ctx["committed"] == 1),
        ])
        with injected(injector):
            with pytest.raises(CrashPoint):
                q0.process_all_available()
        assert injector.fired  # the partial-commit crash really happened
        assert len(sink.rows()) == 1  # epoch 1's join row was delivered

        q1 = restart(session, df, sink, "append", checkpoint)
        # Both sides were rewound to version 0 and epoch 1 replayed: the
        # buffered rows exist exactly once on each side.
        left_entries = q1.engine.state_store.handle("join-left-0").get((1,))
        right_entries = q1.engine.state_store.handle("join-right-1").get((1,))
        assert len(left_entries) == 1
        assert len(right_entries) == 1
        # And the sink result is still exactly-once.
        rs.add_data([{"k": 1, "t2": 3.0, "r": "z"}])
        q1.process_all_available()
        assert len(sink.rows()) == 2


class TestExactlyOnceFileOutput:
    def test_file_sink_exactly_once_across_restart(self, session, checkpoint, tmp_path):
        stream = make_stream(SCHEMA)
        df = session.read_stream.memory(stream)
        out_dir = str(tmp_path / "table")
        q0 = (df.write_stream.format("file").option("path", out_dir)
              .output_mode("append").start(checkpoint))
        stream.add_data([{"k": "a", "v": 1}])
        q0.process_all_available()

        # Crash and restart; re-run everything pending.
        q1 = (df.write_stream.format("file").option("path", out_dir)
              .output_mode("append").start(checkpoint))
        stream.add_data([{"k": "b", "v": 2}])
        q1.process_all_available()
        sink = TransactionalFileSink(out_dir)
        assert sink.read_rows() == [{"k": "a", "v": 1}, {"k": "b", "v": 2}]


class TestManualRollback:
    def test_rollback_and_recompute(self, session, checkpoint):
        """§7.2: roll the log back to an epoch, recompute from there."""
        stream = make_stream(SCHEMA)
        df = session.read_stream.memory(stream)
        q0 = start_memory_query(df, "append", "out", checkpoint)
        sink = q0.engine.sink
        for v in range(3):
            stream.add_data([{"k": "a", "v": v}])
            q0.process_all_available()
        assert len(sink.rows()) == 3

        # Administrator decides epochs 1-2 were wrong: roll back.
        q0.engine.wal.rollback_to(0)
        sink.clear()
        sink.add_batch(0, q0.engine.empty_result(), "append")  # keep epoch 0 marker

        q1 = restart(session, df, sink, "append", checkpoint)
        q1.process_all_available()
        # Epochs 1+ recomputed from the retained source data.
        assert [r["v"] for r in sink.rows()] == [1, 2]

    def test_rollback_recomputes_state(self, session, checkpoint):
        stream = make_stream(SCHEMA)
        df = counts_df(session, stream)
        q0 = start_memory_query(df, "complete", "out", checkpoint)
        for _ in range(4):
            stream.add_data([{"k": "a", "v": 1}])
            q0.process_all_available()
        q0.engine.wal.rollback_to(1)

        sink = q0.engine.sink
        sink.clear()
        q1 = restart(session, df, sink, "complete", checkpoint)
        q1.process_all_available()
        # Recomputed: epochs 2,3 re-run on state as of epoch 1.
        assert sink.rows() == [{"k": "a", "count": 4}]


class TestCodeUpdate:
    def test_udf_update_resumes_from_failure(self, session, checkpoint):
        """§7.1: a crashing UDF is fixed and the app restarted; it resumes
        where it left off and uses the new code."""
        stream = make_stream(SCHEMA)

        def buggy(v):
            if v == 2:
                raise ValueError("cannot parse input")
            return v * 10

        def make_df(fn):
            udf = F.udf(fn, "long")
            return (session.read_stream.memory(stream)
                    .select(udf(F.col("v")).alias("v10")))

        q0 = start_memory_query(make_df(buggy), "append", "out", checkpoint)
        sink = q0.engine.sink
        stream.add_data([{"k": "a", "v": 1}])
        q0.process_all_available()
        stream.add_data([{"k": "a", "v": 2}])
        with pytest.raises(ValueError, match="cannot parse"):
            q0.process_all_available()

        # Fix the UDF and restart on the same checkpoint: recovery re-runs
        # the failed epoch with the new code automatically (§2.3).
        fixed_df = make_df(lambda v: v * 10)
        q1 = restart(session, fixed_df, sink, "append", checkpoint)
        assert [r["v10"] for r in sink.rows()] == [10, 20]

    def test_stateful_udf_update_keeps_state(self, session, checkpoint):
        """Stateful operator UDFs can change as long as the state schema
        stays compatible (§7.1)."""
        stream = make_stream(SCHEMA)
        out_schema = (("k", "string"), ("n", "long"))

        def v1(key, rows, state):
            n = state.get_option(0) + sum(1 for _ in rows)
            state.update(n)
            return {"n": n}

        def v2(key, rows, state):  # counts by 10s now, same state schema
            n = state.get_option(0) + 10 * sum(1 for _ in rows)
            state.update(n)
            return {"n": n}

        def make_df(fn):
            return (session.read_stream.memory(stream)
                    .group_by_key("k").map_groups_with_state(fn, out_schema))

        q0 = start_memory_query(make_df(v1), "update", "out", checkpoint)
        sink = q0.engine.sink
        stream.add_data([{"k": "a", "v": 1}])
        q0.process_all_available()

        q1 = restart(session, make_df(v2), sink, "update", checkpoint)
        stream.add_data([{"k": "a", "v": 2}])
        q1.process_all_available()
        assert sink.rows() == [{"k": "a", "n": 11}]  # old state + new logic


class TestWatermarkRecovery:
    def test_watermark_survives_restart(self, session, checkpoint):
        stream = make_stream((("t", "timestamp"), ("k", "string")))
        df = (session.read_stream.memory(stream)
              .with_watermark("t", "10s")
              .group_by(F.window("t", "10s")).count())
        q0 = start_memory_query(df, "append", "out", checkpoint)
        sink = q0.engine.sink
        stream.add_data([{"t": 5.0, "k": "a"}])
        q0.process_all_available()
        stream.add_data([{"t": 30.0, "k": "a"}])
        q0.process_all_available()  # watermark -> 20 after this epoch

        q1 = restart(session, df, sink, "append", checkpoint)
        assert q1.engine.watermarks.current("t") == 20.0
        # The pre-restart window [0,10) emits on the next epoch.
        stream.add_data([{"t": 31.0, "k": "a"}])
        q1.process_all_available()
        assert {(r["window_start"], r["count"]) for r in sink.rows()} == {(0.0, 1)}
