"""Flink-style continuous operator engine.

Architecture modeled (Flink 1.2, as benchmarked in §9.1):

* long-lived operators *fused into a chain*: a record flows through all
  chained operators in process, with no bus hops or per-stage
  serialization (Flink's operator chaining);
* efficient batched ingestion from the bus (Flink's Kafka consumer
  fetches batches), then record-at-a-time processing: Java-object-model
  rows, virtual calls per operator per record, hash-map state updates;
* no columnar representation and no compiled/vectorized expressions —
  the paper's explanation of why an analytical engine outruns it.

The operators below mirror :mod:`repro.baselines.record_engine`'s but
execute as plain Python calls per record, which is the honest analogue
of Flink's per-record JVM execution relative to vectorized numpy.
"""

from __future__ import annotations

from repro.bus import Broker


class ChainedOperator:
    """Base class: operators expose ``process(record) -> record|None``."""

    def process(self, record: dict):
        raise NotImplementedError


class FilterOperator(ChainedOperator):
    """Drop records failing a predicate."""

    def __init__(self, predicate):
        self._predicate = predicate

    def process(self, record):
        return record if self._predicate(record) else None


class ProjectOperator(ChainedOperator):
    """Keep a subset of fields."""

    def __init__(self, fields):
        self._fields = tuple(fields)

    def process(self, record):
        return {f: record[f] for f in self._fields}


class TableJoinOperator(ChainedOperator):
    """Hash join against a broadcast static table."""

    def __init__(self, table: dict, key_field: str, value_field: str):
        self._table = table
        self._key_field = key_field
        self._value_field = value_field

    def process(self, record):
        value = self._table.get(record[self._key_field])
        if value is None:
            return None
        record[self._value_field] = value
        return record


class KeyByBoundary(ChainedOperator):
    """The shuffle boundary before a keyed operator (Flink's ``keyBy``).

    Chaining breaks at a key repartition: each record is serialized into
    the network stack's buffer, copied, and deserialized on the receiver
    — per record.  Modeled as a value-tuple round trip plus a hash
    partition decision, the cheap end of what a real shuffle costs.
    """

    def __init__(self, key_field: str, num_channels: int = 8):
        self._key_field = key_field
        self._num_channels = num_channels
        self.records_shuffled = 0

    def process(self, record):
        fields = tuple(record)
        serialized = tuple(record[f] for f in fields)       # write to buffer
        _channel = hash(record[self._key_field]) % self._num_channels
        self.records_shuffled += 1
        return dict(zip(fields, serialized))                # read on receiver


class WindowedCountOperator(ChainedOperator):
    """Keyed event-time window counts in an in-memory state backend."""

    def __init__(self, key_field: str, time_field: str, window_seconds: float):
        self._key_field = key_field
        self._time_field = time_field
        self._window = window_seconds
        self.counts = {}

    def process(self, record):
        window_start = (record[self._time_field] // self._window) * self._window
        key = (record[self._key_field], window_start)
        counts = self.counts
        counts[key] = counts.get(key, 0) + 1
        return None  # terminal operator; results live in state


class FlinkStyleEngine:
    """Runs a fused operator chain over bus partitions."""

    def __init__(self, broker: Broker, operators, fetch_size: int = 10_000):
        self.broker = broker
        self.operators = list(operators)
        self.fetch_size = fetch_size

    def run(self, topic_name: str, max_records: int = None) -> int:
        """Process all retained records; returns how many were consumed.

        Ingestion is batched (cheap, as in Flink); processing is one
        record at a time through the whole chain.
        """
        topic = self.broker.topic(topic_name)
        chain = self.operators
        processed = 0
        for partition in topic.partitions:
            position = partition.begin_offset
            end = partition.end_offset
            while position < end:
                if max_records is not None and processed >= max_records:
                    return processed
                hi = min(end, position + self.fetch_size)
                for record in partition.read(position, hi):
                    value = record
                    for op in chain:
                        value = op.process(value)
                        if value is None:
                            break
                    processed += 1
                position = hi
        return processed
