"""Kafka-Streams-style record-at-a-time engine.

Architecture modeled (Kafka Streams 0.10.x, as benchmarked in §9.1):

* a topology of stages connected *through the message bus*: each stage
  consumes records from its input topic one at a time, processes them,
  and produces to the next topic — every hop pays per-record JSON
  serialization and a bus append;
* keyed state backed by a store with a changelog topic: every state
  update is also serialized and published (Kafka Streams' fault
  tolerance mechanism);
* no batching, no columnar representation, no compiled expressions.

This preserves the cost structure the paper blames for the 90x gap; the
numbers in the reproduction come from actually executing this engine.
"""

from __future__ import annotations

import json

from repro.bus import Broker


class Stage:
    """Base class for topology stages."""

    def process(self, record: dict, emit) -> None:
        """Handle one deserialized record; call ``emit(record)`` zero or
        more times to forward downstream."""
        raise NotImplementedError


class FilterStage(Stage):
    """Keep records matching a predicate."""

    def __init__(self, predicate):
        self._predicate = predicate

    def process(self, record, emit) -> None:
        if self._predicate(record):
            emit(record)


class MapStage(Stage):
    """Transform each record."""

    def __init__(self, fn):
        self._fn = fn

    def process(self, record, emit) -> None:
        emit(self._fn(record))


class TableJoinStage(Stage):
    """Join each record against a KTable-like keyed store."""

    def __init__(self, table: dict, key_field: str, value_field: str):
        self._table = table
        self._key_field = key_field
        self._value_field = value_field

    def process(self, record, emit) -> None:
        value = self._table.get(record[self._key_field])
        if value is not None:
            out = dict(record)
            out[self._value_field] = value
            emit(out)


class WindowedCountStage(Stage):
    """Count records per (key, event-time window), with a changelog.

    Each update writes the new count to the state store *and* publishes
    a serialized changelog record, as Kafka Streams does for fault
    tolerance.
    """

    def __init__(self, key_field: str, time_field: str, window_seconds: float,
                 changelog_topic):
        self._key_field = key_field
        self._time_field = time_field
        self._window = window_seconds
        self._store = {}
        self._changelog = changelog_topic

    @property
    def counts(self) -> dict:
        """(key, window_start) -> count."""
        return self._store

    def process(self, record, emit) -> None:
        window_start = (record[self._time_field] // self._window) * self._window
        key = (record[self._key_field], window_start)
        count = self._store.get(key, 0) + 1
        self._store[key] = count
        self._changelog.publish_to(
            0, [json.dumps({"key": list(key), "count": count})]
        )
        emit({"key": record[self._key_field], "window_start": window_start,
              "count": count})


class KafkaStreamsStyleEngine:
    """Executes a stage topology record-at-a-time through the bus."""

    def __init__(self, broker: Broker, name: str = "ks"):
        self.broker = broker
        self.name = name
        self._stages = []
        self._topics = []

    def add_stage(self, stage: Stage) -> "KafkaStreamsStyleEngine":
        """Append a stage; an intermediate bus topic is created before it
        (stages communicate through the bus, never in process)."""
        index = len(self._stages)
        self._topics.append(self.broker.get_or_create(f"{self.name}-stage-{index}"))
        self._stages.append(stage)
        return self

    def changelog_topic(self, suffix: str):
        """A changelog topic for a stateful stage."""
        return self.broker.get_or_create(f"{self.name}-changelog-{suffix}")

    def run(self, input_topic_name: str, output_topic_name: str,
            max_records: int = None) -> int:
        """Pump all retained input records through the topology.

        Returns the number of input records processed.  Records move one
        at a time: read, JSON-decode, process, JSON-encode, append — for
        every stage.
        """
        output_topic = self.broker.get_or_create(output_topic_name)
        input_topic = self.broker.topic(input_topic_name)

        # Serialize the raw input into the first stage topic (records on
        # the wire are bytes/JSON for this engine).
        processed = 0
        first = self._topics[0]
        for partition in input_topic.partitions:
            lo, hi = partition.begin_offset, partition.end_offset
            for record in partition.read(lo, hi):
                if max_records is not None and processed >= max_records:
                    break
                first.publish_to(0, [json.dumps(record)])
                processed += 1

        for index, stage in enumerate(self._stages):
            source = self._topics[index]
            target = (
                self._topics[index + 1]
                if index + 1 < len(self._stages) else output_topic
            )

            def emit(record, _target=target):
                _target.publish_to(0, [json.dumps(record)])

            partition = source.partitions[0]
            for raw in partition.read(partition.begin_offset, partition.end_offset):
                stage.process(json.loads(raw), emit)
        return processed
