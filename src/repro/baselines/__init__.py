"""Baseline streaming engines for the comparative evaluation (§9.1).

Two from-scratch engines modeling the architectures the paper compares
against on the Yahoo! benchmark:

* :mod:`repro.baselines.record_engine` — a Kafka-Streams-style engine:
  record-at-a-time processing where every stage communicates through the
  message bus with per-record (de)serialization and synchronous state
  lookups.  The paper attributes Kafka Streams' 90x gap to exactly this
  "simple message-passing model through the Kafka message bus".
* :mod:`repro.baselines.operator_engine` — a Flink-style engine: fused
  long-lived operator chains processing records one at a time in
  process, with efficient ingestion but no vectorization or compiled
  expressions.

The Structured Streaming side of the comparison is the real engine in
:mod:`repro.streaming` running over columnar batches with compiled
kernels — the architectural contrast (§9.1: "many systems based on
per-record operations do not maximize performance") is what the
benchmark measures.
"""

from repro.baselines.record_engine import KafkaStreamsStyleEngine
from repro.baselines.operator_engine import FlinkStyleEngine

__all__ = ["FlinkStyleEngine", "KafkaStreamsStyleEngine"]
