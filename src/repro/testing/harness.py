"""Crash-restart harness and exactly-once checker.

The methodology follows ALICE-style crash-consistency testing and
Jepsen-style history checking: instead of hand-picking crash sites, the
sweep enumerates every registered fault point, kills the query there,
restarts it from its checkpoint, and machine-checks the paper's §3.2/§5
guarantee — the sink must contain exactly the fault-free ("golden")
run's output, with no duplicates and no holes, and every intermediate
sink snapshot must correspond to a prefix of the input (§4.1 prefix
consistency).

A "crash" abandons the engine object and rebuilds one on the same
checkpoint directory, exactly what an application restart does; the
sink and the sources survive, modeling the external systems.
"""

from __future__ import annotations

import json
import os

from repro.storage import list_files, read_json
from repro.testing.faults import CrashPoint, FaultInjector


class ExactlyOnceError(AssertionError):
    """The exactly-once guarantee (or a checkpoint invariant) was violated."""


def canonical(rows) -> tuple:
    """Rows as a tuple of canonical JSON strings (order-preserving)."""
    return tuple(json.dumps(row, sort_keys=True) for row in rows)


def dedup_first(rows) -> list:
    """Rows with every repeat of an earlier row removed (order kept)."""
    seen = set()
    out = []
    for encoded in canonical(rows):
        if encoded not in seen:
            seen.add(encoded)
            out.append(encoded)
    return out


class GoldenRun:
    """The fault-free reference: sink snapshots after each drive step."""

    def __init__(self, snapshots: list, final: list):
        #: Sink contents after 0, 1, ... steps (lists of row dicts).
        self.snapshots = snapshots
        self.final = final


def run_golden(build, steps, read_sink) -> GoldenRun:
    """Run the workload with no faults, recording per-step snapshots.

    ``build()`` starts a fresh query, ``steps`` are callables that feed
    one chunk of input each, ``read_sink()`` returns the sink's current
    rows.  Must be called with no injector installed.
    """
    query = build()
    query.process_all_available()
    snapshots = [read_sink()]
    for step in steps:
        step()
        query.process_all_available()
        snapshots.append(read_sink())
    query.stop()
    final = read_sink()
    snapshots.append(final)
    return GoldenRun(snapshots, final)


class CrashReport:
    """What happened during one faulted run."""

    def __init__(self, injector: FaultInjector):
        self.injector = injector
        self.crashes = []

    @property
    def num_crashes(self) -> int:
        return len(self.crashes)


def run_with_crashes(build, steps, *, injector, read_sink=None, checker=None,
                     checkpoint_dir=None, max_restarts=25) -> CrashReport:
    """Drive a workload to completion through injected crashes.

    Runs the same ``build``/``steps`` protocol as :func:`run_golden`;
    whenever a :class:`CrashPoint` escapes (from the engine, a recovery
    pass inside ``build``, or the final ``stop``), the query is
    abandoned and rebuilt on the same checkpoint directory.  After every
    crash the sink must still be prefix-consistent and the checkpoint
    directory well-formed (when ``checker``/``checkpoint_dir`` are
    given).  The caller is responsible for installing ``injector``
    (see :func:`repro.testing.faults.injected`); it is passed here so
    failure messages carry the replay seed/schedule.
    """
    report = CrashReport(injector)
    fed = 0
    while True:
        query = None
        try:
            query = build()
            query.process_all_available()
            while fed < len(steps):
                steps[fed]()
                fed += 1
                query.process_all_available()
            query.stop()
            return report
        except CrashPoint as crash:
            report.crashes.append(str(crash))
            if query is not None:
                _quiet_stop(query)
            context = (
                f"after crash #{report.num_crashes} ({crash}) with "
                f"{injector.describe()}"
            )
            if checker is not None and read_sink is not None:
                checker.check_intermediate(read_sink(), context=context)
            if checkpoint_dir is not None:
                check_checkpoint_invariants(
                    checkpoint_dir, strict=False, context=context)
            if report.num_crashes > max_restarts:
                raise ExactlyOnceError(
                    f"query did not complete within {max_restarts} restarts; "
                    f"{injector.describe()}; crashes={report.crashes}"
                )


def _quiet_stop(query) -> None:
    """Release a crashed query's resources; a crash during the stop
    itself (e.g. the continuous master's final commit) is already
    recorded, not a new failure."""
    try:
        query.stop()
    except CrashPoint:
        pass


class ExactlyOnceChecker:
    """Compares a faulted run's sink against the golden run.

    ``ordered=True`` (append-style sinks) compares row sequences
    exactly; ``ordered=False`` (update/complete tables) compares
    multisets.  ``at_least_once=True`` checks the continuous engine's
    documented guarantee instead (§6.3): replay after a crash may
    duplicate rows from the last uncommitted epoch, but dropping those
    duplicates must reproduce the golden sequence exactly — no holes,
    no reordering, no rows that never existed.  That mode requires the
    workload's golden rows to be distinct.
    """

    def __init__(self, golden: GoldenRun, ordered: bool = True,
                 at_least_once: bool = False):
        self.golden = golden
        self.ordered = ordered
        self.at_least_once = at_least_once
        self._final = canonical(golden.final)
        if at_least_once and len(set(self._final)) != len(self._final):
            raise ValueError(
                "at-least-once checking needs distinct golden rows "
                "(give workload rows unique ids)"
            )
        if ordered:
            self._snapshots = {canonical(s) for s in golden.snapshots}
        else:
            self._snapshots = {
                frozenset(canonical(s)) for s in golden.snapshots
            }

    # ------------------------------------------------------------------
    def check_intermediate(self, rows, context: str = "") -> None:
        """The sink after a crash must be a golden prefix (§4.1)."""
        if self.at_least_once:
            deduped = dedup_first(rows)
            if tuple(deduped) != self._final[: len(deduped)]:
                raise ExactlyOnceError(
                    f"continuous sink is not an in-order prefix of the "
                    f"golden run after deduplication {context}: "
                    f"got {deduped[:6]}..., want prefix of {self._final[:6]}..."
                )
            return
        snapshot = canonical(rows) if self.ordered else frozenset(canonical(rows))
        if snapshot not in self._snapshots:
            raise ExactlyOnceError(
                f"sink snapshot matches no golden prefix {context}: "
                f"{len(rows)} rows, golden snapshot sizes "
                f"{[len(s) for s in self.golden.snapshots]}"
            )

    def check_final(self, rows, context: str = "") -> None:
        """The completed run must equal the golden run exactly."""
        if self.at_least_once:
            deduped = tuple(dedup_first(rows))
            if deduped != self._final:
                raise ExactlyOnceError(
                    f"continuous sink (deduplicated) differs from golden "
                    f"{context}: {self._diff(deduped)}"
                )
            extras = set(canonical(rows)) - set(self._final)
            if extras:
                raise ExactlyOnceError(
                    f"continuous sink invented rows absent from the golden "
                    f"run {context}: {sorted(extras)[:5]}"
                )
            return
        got = canonical(rows)
        want = self._final
        if not self.ordered:
            got, want = tuple(sorted(got)), tuple(sorted(want))
        if got != want:
            raise ExactlyOnceError(
                f"final sink differs from golden run {context}: "
                f"{self._diff(got, want)}"
            )

    def _diff(self, got, want=None) -> str:
        want = self._final if want is None else want
        missing = [r for r in want if r not in got]
        extra = [r for r in got if r not in want]
        dupes = len(got) - len(set(got))
        return (
            f"{len(got)} rows vs {len(want)} golden; "
            f"missing={missing[:4]} extra={extra[:4]} duplicate_rows={dupes}"
        )


# ----------------------------------------------------------------------
# Checkpoint-directory invariants
# ----------------------------------------------------------------------
def _read_dir(directory: str, strict: bool, problems: list, label: str) -> dict:
    """Parse every JSON log entry; a torn *newest* entry is tolerated
    unless strict (it is the legitimate artifact of a crash and will be
    quarantined on the next restart)."""
    entries = {}
    names = list_files(directory, ".json")
    for i, name in enumerate(names):
        path = os.path.join(directory, name)
        try:
            entries[int(name.split(".")[0])] = read_json(path)
        except (ValueError, OSError):
            if strict or i != len(names) - 1:
                problems.append(f"{label}: unreadable entry {name}")
    return entries


def check_checkpoint_invariants(checkpoint_dir: str, strict: bool = True,
                                context: str = "") -> None:
    """Assert the checkpoint directory is a state recovery can run from.

    * offsets entries are contiguous epochs, each readable JSON;
    * every commit entry has a matching offsets entry (a commit is only
      written after its offsets entry is durable);
    * at most the newest logged epoch is uncommitted (Figure 4: at most
      one partially executed epoch);
    * every state checkpoint file is readable and its version is no
      newer than the newest logged epoch (state commits follow the WAL
      commit of the same epoch).

    With ``strict=False`` (mid-crash), the newest entry of each log may
    be torn — that is the one artifact a crash is allowed to leave.
    """
    problems = []
    offsets = _read_dir(os.path.join(checkpoint_dir, "offsets"),
                        strict, problems, "offsets")
    commits = _read_dir(os.path.join(checkpoint_dir, "commits"),
                        strict, problems, "commits")

    epochs = sorted(offsets)
    if epochs and epochs != list(range(epochs[0], epochs[-1] + 1)):
        problems.append(f"offsets epochs not contiguous: {epochs}")
    for epoch in sorted(commits):
        if epoch not in offsets:
            problems.append(f"commit {epoch} has no offsets entry")
    uncommitted = [e for e in epochs if e not in commits]
    if any(e != epochs[-1] for e in uncommitted):
        problems.append(
            f"uncommitted epochs {uncommitted} are not limited to the "
            f"newest logged epoch {epochs[-1] if epochs else None}"
        )

    state_dir = os.path.join(checkpoint_dir, "state")
    if os.path.isdir(state_dir):
        for operator in sorted(os.listdir(state_dir)):
            versions = _read_dir(os.path.join(state_dir, operator),
                                 strict, problems, f"state/{operator}")
            if versions and epochs and max(versions) > epochs[-1]:
                problems.append(
                    f"state/{operator} version {max(versions)} is newer "
                    f"than the newest logged epoch {epochs[-1]}"
                )
    if problems:
        raise ExactlyOnceError(
            f"checkpoint invariants violated {context}: " + "; ".join(problems)
        )


def checkpoint_fingerprint(checkpoint_dir: str) -> dict:
    """Deterministic content map of a checkpoint's durable artifacts.

    Used to assert recovery paths leave checkpoint *bytes* unchanged.
    ``trigger_time`` (wall clock) is dropped from offsets entries and
    ``events.jsonl`` (timings) is excluded; everything else must match
    to the byte across equivalent runs.
    """
    fingerprint = {}
    for sub in ("offsets", "commits"):
        directory = os.path.join(checkpoint_dir, sub)
        for name in list_files(directory, ".json"):
            entry = read_json(os.path.join(directory, name))
            entry.pop("trigger_time", None)
            fingerprint[f"{sub}/{name}"] = json.dumps(entry, sort_keys=True)
    state_dir = os.path.join(checkpoint_dir, "state")
    if os.path.isdir(state_dir):
        for operator in sorted(os.listdir(state_dir)):
            op_dir = os.path.join(state_dir, operator)
            for name in list_files(op_dir, ".json"):
                with open(os.path.join(op_dir, name), "rb") as f:
                    fingerprint[f"state/{operator}/{name}"] = f.read()
    return fingerprint
