"""Differential oracle: incremental execution must equal batch recompute.

The paper's correctness story (§4.2, prefix consistency) says a
streaming query's result is always the batch query applied to a prefix
of the input — no matter how that prefix was chunked into epochs, where
the engine crashed and restarted, or (with retraction deltas) in what
order inserts and deletes arrived.  This module turns that statement
into an executable check:

* :func:`check_differential` runs one query (or a cascade of queries
  chained through stream tables) epoch by epoch over a chunked input
  changelog, optionally killing and restarting every engine between
  chunks, then replays the *entire* concatenated input through the
  batch engine and asserts the two results are the same multiset.
* For weighted (CDC) input the batch side first nets the changelog with
  :func:`repro.streaming.zset.apply_zset` — the live rows a database
  table would hold after applying every insert/update/delete.

Tests supply only the query builder and the input chunks; the oracle
owns sessions, checkpoints, restarts, and row canonicalization (numpy
scalars, float rounding) so property-based suites can drive it straight
from hypothesis strategies.
"""

from __future__ import annotations

import os
from collections import Counter

from repro.sql.session import Session
from repro.sql.types import StructType, WEIGHT_COLUMN, hashable_value
from repro.sources.cdc import ChangeStream
from repro.sources.memory import MemoryStream
from repro.streaming.zset import apply_zset

#: Decimal places kept when comparing float cells: wide enough to catch
#: real bugs, forgiving of incremental-vs-batch summation order.
FLOAT_PLACES = 6


def canonical_rows(rows, float_places: int = FLOAT_PLACES) -> Counter:
    """Rows as a multiset of canonical (column, value) tuples."""
    return Counter(
        tuple(sorted((k, canonical_value(v, float_places)) for k, v in row.items()))
        for row in rows
    )


def canonical_value(value, float_places: int = FLOAT_PLACES):
    """One cell folded to a hashable, dtype- and rounding-insensitive form."""
    value = hashable_value(value)
    if isinstance(value, float):
        return hashable_value(round(value, float_places))
    if isinstance(value, tuple):
        return tuple(canonical_value(v, float_places) for v in value)
    return value


def feed(stream, rows) -> None:
    """Push one chunk of (possibly weighted) row dicts into a source.

    Rows may carry ``__weight__`` (+1/-1, missing means +1) when the
    stream is a :class:`ChangeStream`; plain sources take rows as-is.
    """
    if not isinstance(stream, ChangeStream):
        stream.add_data([dict(r) for r in rows])
        return
    for row in rows:
        weight = int(row.get(WEIGHT_COLUMN, 1))
        data = {k: v for k, v in row.items() if k != WEIGHT_COLUMN}
        if weight == 1:
            stream.insert([data])
        elif weight == -1:
            stream.delete([data])
        else:
            raise ValueError(f"bad weight {weight} in oracle input row {row!r}")


def check_differential(builders, schema, chunks, workdir, *,
                       weighted: bool = True, output_mode: str = None,
                       restart_after=(), options=None,
                       float_places: int = FLOAT_PLACES) -> list:
    """Assert incremental == batch for a query or cascade; return rows.

    ``builders`` is one callable ``df -> df`` or a list of them: with
    several, stage ``i`` publishes to a stream table that stage ``i+1``
    reads (each stage has its own checkpoint), which is the cascading
    materialized-view path.  ``chunks`` is a list of row-dict lists;
    after feeding chunk ``i`` every stage processes all available input,
    and if ``i`` is in ``restart_after`` every engine is abandoned and
    restarted from its checkpoint first (crash-recovery differential).
    ``weighted`` selects a CDC source (rows may carry ``__weight__``)
    versus a plain append-only memory source.

    The batch oracle nets the full concatenated changelog (weighted
    case) and runs the composed builders through the batch engine; the
    streamed sink contents must match as a multiset.
    """
    if callable(builders):
        builders = [builders]
    schema = schema if isinstance(schema, StructType) else StructType(tuple(schema))
    if output_mode is None:
        output_mode = "retract" if weighted else "append"
    options = dict(options or {})

    session = Session()
    stream = ChangeStream(schema) if weighted else MemoryStream(schema)
    reader = (session.read_stream.cdc(stream) if weighted
              else session.read_stream.memory(stream))

    # Build the stage DataFrames; stage i>0 reads stage i-1's table.
    # Upstream stages must publish before downstream ones can bind their
    # schema, so start stage 0 first, then 1, ...
    stage_dfs, queries = [], []
    sink = None

    def start_stage(index, resume_sink=None):
        df = stage_dfs[index]
        last = index == len(builders) - 1
        writer = df.write_stream
        if last:
            if resume_sink is not None:
                writer = writer.sink(resume_sink)
            else:
                writer = writer.format("memory").query_name("oracle")
            writer = writer.output_mode(output_mode)
        else:
            stage_mode = "retract" if weighted else "append"
            writer = writer.to_table(f"oracle_stage_{index}").output_mode(stage_mode)
        for key, value in options.items():
            writer = writer.option(key, value)
        checkpoint = os.path.join(str(workdir), f"oracle-ckpt-{index}")
        return writer.start(checkpoint)

    for index, build in enumerate(builders):
        if index == 0:
            stage_dfs.append(build(reader))
        else:
            stage_dfs.append(build(session.read_stream_table(f"oracle_stage_{index - 1}")))
        query = start_stage(index)
        queries.append(query)
        query.process_all_available()  # bind downstream table schemas
    sink = queries[-1].engine.sink

    restart_after = set(restart_after)
    for i, chunk in enumerate(chunks):
        feed(stream, chunk)
        if i in restart_after:
            # Crash: abandon every engine, restart on the same checkpoints.
            queries = [
                start_stage(index, resume_sink=sink if index == len(builders) - 1 else None)
                for index in range(len(builders))
            ]
        for query in queries:
            query.process_all_available()
    # One more pass so late cross-stage deltas drain fully.
    for query in queries:
        query.process_all_available()
    streamed = sink.rows()
    for query in queries:
        query.stop()

    expected = batch_recompute(builders, schema, chunks, weighted=weighted)
    got, want = (canonical_rows(streamed, float_places),
                 canonical_rows(expected, float_places))
    assert got == want, (
        f"incremental != batch\n  streamed: {sorted(got.items())}\n"
        f"  expected: {sorted(want.items())}"
    )
    return streamed


def batch_recompute(builders, schema, chunks, *, weighted: bool = True) -> list:
    """The batch oracle: net the changelog, run the composed query."""
    if callable(builders):
        builders = [builders]
    all_rows = [row for chunk in chunks for row in chunk]
    live = apply_zset(all_rows) if weighted else [
        {k: v for k, v in row.items()} for row in all_rows
    ]
    session = Session()
    df = session.create_dataframe(live, schema)
    for build in builders:
        df = build(df)
    return df.collect()
