"""Deterministic fault injection for crash-consistency testing.

The durability and execution hot paths (storage, WAL, state store,
engines, sinks, scheduler) call :func:`fault_point` at *named* crash
sites.  With no injector installed the call is a single ``is None``
check, so production overhead is negligible.  Tests install a
:class:`FaultInjector` whose *schedule* decides, per named point and
firing occurrence, whether to

* **crash** — raise :class:`CrashPoint`, modeling the process dying at
  that instant (the test harness then "restarts" by building a fresh
  engine on the same checkpoint directory);
* **torn** — at a storage point, rename a *truncated* copy of the
  in-flight file into place and then crash, modeling a torn write that
  became visible (the ALICE-style case a pure rename protocol only
  prevents when the filesystem keeps its ordering promises);
* **drop** — delete the in-flight temp file and crash, so the write
  never becomes visible;
* **fail** — raise a transient :class:`InjectedTaskError` (a normal
  exception, not a crash): used at ``scheduler.task`` to model a task
  attempt failing and being retried;
* **hang** — sleep, then fail: a straggler that eventually dies, which
  should lose the race against a speculative clone.

Schedules are either explicit lists of :class:`Fault` entries or drawn
from a seed (:meth:`FaultInjector.from_seed`), so every failure run is
replayable from its seed alone.

This module must stay dependency-free (stdlib only): it is imported by
the lowest layers of the engine (``repro.storage``) and anything heavier
would create import cycles.
"""

from __future__ import annotations

import os
import random
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field

#: Every named fault point in the codebase.  ``fault_point`` rejects
#: unknown names, so this dict is the single source of truth the sweep
#: enumerates; adding an instrumentation site without registering it
#: here is an error.
REGISTRY = {
    # storage.py -- the atomic-write primitive every durable artifact uses
    "storage.write": "temp file content written+flushed, before fsync",
    "storage.fsync": "temp file fsynced, before rename into place",
    "storage.rename": "destination file visible, before returning",
    # streaming/wal.py -- offset log protocol steps
    "wal.offsets": "about to write an epoch's offsets entry",
    "wal.commit": "about to write an epoch's commit entry",
    "wal.group_commit_crash": "pipelined: WAL entry in flight, fsync deferred",
    # streaming/state.py -- versioned state checkpoints
    "state.commit": "about to write one operator's delta/snapshot",
    "state.commit_all": "between two operators' commits in commit_all",
    # streaming/microbatch.py -- pipelined mode's background flusher
    "state.async_flush_crash": "flusher about to execute a queued state write",
    # streaming/state_lsm.py -- tiered backend flush/compaction windows
    "state.flush_crash": "tiered: memtable sealed, before the run file write",
    "state.compaction_crash": "tiered: about to merge a tier's sorted runs",
    # sinks -- idempotent output delivery
    "sink.add_batch": "sink asked to deliver an epoch's output",
    # testing/sweep.py -- two-stage cascade drive: fired between the
    # upstream query's commits (into a stream table) and the downstream
    # query consuming them, the window where a crash leaves the cascade
    # stages out of step.
    "cascade.between_stages": "upstream epochs committed, downstream not driven",
    # streaming/microbatch.py -- epoch boundaries (Figure 4 steps)
    "epoch.begin": "epoch chosen, nothing durable yet",
    "prefetch.crash": "pipelined: prefetcher about to read the next ranges",
    "epoch.after_offsets": "offsets durable, before reading input",
    "epoch.after_process": "plan executed, before the sink write",
    "epoch.after_sink": "sink accepted the epoch, before the commit entry",
    "epoch.after_commit": "commit entry durable, before state checkpoint",
    # streaming/continuous.py -- epoch-marker handling on the master
    "continuous.commit_epoch": "master about to log an epoch's offsets",
    "continuous.after_offsets": "offsets logged, before the commit entry",
    # cluster/scheduler.py -- per-attempt task execution
    "scheduler.task": "a task attempt is about to run on a worker",
    # cluster/process_pool.py -- inside a forked worker, per shard task.
    # These fire in the *worker process*: "crash" kills the worker (not
    # the driver), "hang" stalls it past the driver's task timeout.
    "worker.crash_mid_task": "process worker dies before running a shard task",
    "worker.hang": "process worker stalls before running a shard task",
}

#: Points where a crash models *driver* process death.  Excluded: the
#: per-attempt scheduler point (a raise there is a retryable task
#: failure) and the worker-process points (they kill a pool worker,
#: which the driver detects and respawns — the query keeps running).
CRASHABLE_POINTS = tuple(sorted(
    set(REGISTRY) - {"scheduler.task", "worker.crash_mid_task", "worker.hang"}
))

_ACTIONS = ("crash", "torn", "drop", "fail", "hang")


class CrashPoint(Exception):
    """The injected process-death signal.

    Deliberately an ``Exception`` (not ``BaseException``): it flows
    through the same surfaces real failures use — ``StreamingQuery
    .exception``, the continuous engine's worker-error slot — and the
    harness asserts it comes back out of each of them.
    """


class InjectedTaskError(RuntimeError):
    """A transient injected failure (retryable, not a process crash)."""


class FaultPointError(ValueError):
    """An instrumentation site used a name missing from ``REGISTRY``."""


@dataclass
class Fault:
    """One schedule entry: fire ``action`` at a point's n-th firing.

    ``occurrence`` counts firings of ``point`` *globally across
    restarts* (the injector outlives engine rebuilds within one
    harness run); ``None`` matches any occurrence.  ``match`` is an
    optional predicate over the fault point's context kwargs (e.g.
    ``lambda ctx: "offsets" in ctx["path"]``).  ``times`` bounds how
    often the entry may trigger (``None`` = unlimited — only sensible
    for transient ``fail`` actions, or a crash loop never terminates).
    """

    point: str
    occurrence: int | None = 0
    action: str = "crash"
    seconds: float = 0.0
    match: callable = None
    times: int | None = 1
    triggered: int = field(default=0, compare=False)

    def __post_init__(self):
        if self.point not in REGISTRY:
            raise FaultPointError(
                f"unknown fault point {self.point!r}; known: {sorted(REGISTRY)}"
            )
        if self.action not in _ACTIONS:
            raise ValueError(f"unknown action {self.action!r}")

    def wants(self, count: int, ctx: dict) -> bool:
        if self.times is not None and self.triggered >= self.times:
            return False
        if self.occurrence is not None and self.occurrence != count:
            return False
        if self.match is not None and not self.match(ctx):
            return False
        return True


class FaultInjector:
    """Executes a fault schedule against the named points.

    Thread-safe: fault points fire from the engine thread, continuous
    workers/master, and scheduler workers.  ``counts`` (firings per
    point) and ``fired`` (faults actually triggered) persist across
    engine restarts, which is what lets one schedule place crashes in
    *recovery* code paths too.
    """

    def __init__(self, faults=(), seed=None):
        self.faults = list(faults)
        self.seed = seed
        self.counts = {}
        self.fired = []
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    @classmethod
    def from_seed(cls, seed: int, points=CRASHABLE_POINTS,
                  max_faults: int = 3, max_occurrence: int = 8) -> "FaultInjector":
        """A random multi-crash schedule, fully determined by ``seed``."""
        rng = random.Random(seed)
        faults = []
        for _ in range(rng.randint(1, max_faults)):
            point = rng.choice(list(points))
            if point == "scheduler.task":
                action = "fail"
            elif point in ("storage.fsync", "storage.write"):
                action = rng.choice(["crash", "torn", "drop"])
            else:
                action = "crash"
            faults.append(Fault(point, rng.randint(0, max_occurrence), action))
        return cls(faults, seed=seed)

    def describe(self) -> str:
        """Replay instructions, embedded in every harness failure."""
        schedule = ", ".join(
            f"{f.point}@{f.occurrence}:{f.action}" for f in self.faults
        )
        seed = f" seed={self.seed}" if self.seed is not None else ""
        return f"FaultInjector({schedule}){seed}"

    @property
    def pending(self) -> list:
        """Schedule entries that can still trigger."""
        return [
            f for f in self.faults
            if f.times is None or f.triggered < f.times
        ]

    # ------------------------------------------------------------------
    def fire(self, name: str, ctx: dict) -> None:
        if name not in REGISTRY:
            raise FaultPointError(f"unregistered fault point {name!r}")
        with self._lock:
            count = self.counts.get(name, 0)
            self.counts[name] = count + 1
            chosen = None
            for fault in self.faults:
                if fault.point == name and fault.wants(count, ctx):
                    fault.triggered += 1
                    chosen = fault
                    break
            if chosen is not None:
                self.fired.append((name, count, chosen.action))
        if chosen is not None:
            self._execute(chosen, name, count, ctx)

    def _execute(self, fault: Fault, name: str, count: int, ctx: dict) -> None:
        tag = f"injected {fault.action} at {name}#{count}"
        if fault.action == "fail":
            raise InjectedTaskError(tag)
        if fault.action == "hang":
            time.sleep(fault.seconds)
            raise InjectedTaskError(tag)
        if fault.action == "torn":
            self._tear(ctx)
        elif fault.action == "drop":
            tmp_path = ctx.get("tmp_path")
            if tmp_path and os.path.exists(tmp_path):
                os.unlink(tmp_path)
        raise CrashPoint(tag)

    @staticmethod
    def _tear(ctx: dict) -> None:
        """Make a truncated version of the in-flight file *visible*."""
        tmp_path, path = ctx.get("tmp_path"), ctx.get("path")
        if not tmp_path or not path or not os.path.exists(tmp_path):
            return  # no file in flight here: plain crash
        with open(tmp_path, "rb") as f:
            content = f.read()
        with open(tmp_path, "wb") as f:
            f.write(content[: max(1, len(content) // 2)])
        os.replace(tmp_path, path)


# ----------------------------------------------------------------------
# Global installation
# ----------------------------------------------------------------------
_active: FaultInjector | None = None


def install(injector: FaultInjector) -> None:
    """Make ``injector`` the process-wide active injector."""
    global _active
    _active = injector


def uninstall() -> None:
    """Deactivate fault injection."""
    global _active
    _active = None


def active_injector() -> FaultInjector | None:
    """The currently installed injector, if any."""
    return _active


@contextmanager
def injected(injector: FaultInjector):
    """Install ``injector`` for the duration of a with-block."""
    install(injector)
    try:
        yield injector
    finally:
        uninstall()


def fault_point(name: str, **ctx) -> None:
    """Fire a named fault point (no-op unless an injector is installed)."""
    if _active is not None:
        _active.fire(name, ctx)
