"""Fault-sweep driver: every fault point × engine mode × shard count.

Each *cell* of the sweep runs one workload with a schedule that crashes
the query at a specific named fault point (twice: an early and a later
occurrence), restarts it from its checkpoint until it completes, and
checks the exactly-once guarantee against a cached golden run.  Rows
per workload are deliberately small so the full matrix stays in CI's
budget; depth comes from *where* the crashes land, not data volume.

Workloads are chosen per point so the point actually fires:

* ``agg``  — windowed aggregation with a watermark into the
  transactional file sink (microbatch; WAL + state + storage + file
  manifests);
* ``join`` — stream-stream join with two state operators into a memory
  sink (microbatch; multi-operator ``commit_all`` and the memory sink's
  idempotence);
* ``sched`` — the aggregation driven through the cluster TaskScheduler
  (transient task faults, retries);
* ``process`` cells — the aggregation (spread over several windows so
  multiple shards fill per epoch) on the process executor: worker-death
  and worker-hang points plus driver crashes with a live worker pool;
* ``map``  — stateless filter/project on the continuous engine
  (at-least-once within the last epoch, §6.3);
* ``cascade`` — a two-stage materialized-view chain: a CDC change
  stream (with retractions) through a stateless stage into a stream
  table, consumed by a grouped aggregation into a memory sink.  Cells
  crash between the stages' commits and tear a pure-retraction epoch's
  WAL commit entry in either stage's checkpoint.
"""

from __future__ import annotations

import os

from repro.sinks.file import TransactionalFileSink
from repro.sinks.memory import MemorySink
from repro.sql import functions as F
from repro.sql.session import Session
from repro.sql.types import StructType
from repro.sources.cdc import ChangeStream
from repro.sources.memory import MemoryStream
from repro.testing.faults import (
    REGISTRY,
    Fault,
    FaultInjector,
    fault_point,
    injected,
)
from repro.testing.harness import (
    ExactlyOnceChecker,
    check_checkpoint_invariants,
    run_golden,
    run_with_crashes,
)

#: Points that can fire on each engine (the continuous engine never
#: checkpoints state, batches to sinks, or schedules epoch tasks; the
#: worker points only exist inside process-pool workers; the cascade
#: point only fires in the two-stage cascade drive wrapper).
MICROBATCH_POINTS = tuple(sorted(set(REGISTRY) - {
    "continuous.commit_epoch", "continuous.after_offsets",
    "worker.crash_mid_task", "worker.hang",
    "cascade.between_stages",
}))
CONTINUOUS_POINTS = (
    "storage.write", "storage.fsync", "storage.rename",
    "wal.offsets", "wal.commit",
    "continuous.commit_epoch", "continuous.after_offsets",
)
#: Cells run under the process executor: the worker-process points plus
#: a few driver points, so driver crashes are also probed while a pool
#: holds live state replicas.
PROCESS_POINTS = (
    "worker.crash_mid_task", "worker.hang",
    "epoch.after_process", "wal.commit", "state.commit",
    # One tiered-backend cell: a driver crash mid-flush while a live
    # worker pool holds fork-inherited run file descriptors.
    "state.flush_crash",
)
#: Points that only fire on the tiered state backend; their cells run
#: the workload with ``state_backend=tiered`` and a memtable budget so
#: small that every epoch spills runs and compacts.
TIERED_POINTS = ("state.flush_crash", "state.compaction_crash")
TIERED_MEMTABLE_BYTES = 256
#: Points that only fire in pipelined mode; their cells force
#: ``pipeline=on`` so the async flusher, group-commit WAL window, and
#: prefetcher actually exist.  (Under REPRO_PIPELINE=1 every microbatch
#: cell runs pipelined anyway; these cells keep the coverage on the
#: default sequential CI legs too.)
PIPELINE_POINTS = (
    "state.async_flush_crash", "wal.group_commit_crash", "prefetch.crash",
)
#: Cells run on the two-stage cascade workload (CDC retractions through
#: a stream table into a downstream aggregation): the dedicated
#: between-stages point plus the commit/delivery points where a crash
#: can leave the stages out of step.
CASCADE_POINTS = (
    "cascade.between_stages", "wal.commit", "state.commit",
    "sink.add_batch", "storage.fsync",
)
#: The cascade workload's pure-retraction chunk (deletes only) lands in
#: this epoch of *both* stages' WALs; the storage.fsync cascade cell
#: tears its commit entry in each.
CASCADE_RETRACTION_EPOCH = 2

#: (action at the point's first scheduled occurrence, at the later one).
_ACTIONS_FOR_POINT = {
    "storage.fsync": ("torn", "torn"),
    "storage.write": ("crash", "drop"),
    "scheduler.task": ("fail", "fail"),
    # Tear the WAL entry inside the deferred-fsync window: the batched
    # path's torn newest entry must quarantine exactly like the
    # sequential path's (repair_torn_tail on reopen).
    "wal.group_commit_crash": ("torn", "crash"),
    # In a worker, "crash" kills the worker process and "hang" stalls it
    # past the driver's task timeout; both exercise respawn + re-restore.
    "worker.hang": ("hang", "hang"),
}
#: The later occurrence probed in each cell (the first is always 0).
LATER_OCCURRENCE = 4
#: How long a hung worker sleeps — beyond the process cells' task
#: timeout, so the driver's deadline path (not the happy path) fires.
HANG_SECONDS = 3.0
PROCESS_TASK_TIMEOUT = 1.0


def sweep_cells():
    """Yield every (point, engine_mode, num_shards) cell of the matrix."""
    for point in sorted(REGISTRY):
        if point in MICROBATCH_POINTS:
            yield (point, "microbatch", 1)
            yield (point, "microbatch", 4)
        if point in CONTINUOUS_POINTS:
            yield (point, "continuous", 1)
        if point in PROCESS_POINTS:
            yield (point, "process", 4)
        if point in CASCADE_POINTS:
            yield (point, "cascade", 1)
        if point == "cascade.between_stages":
            yield (point, "cascade", 4)


def _match_wal_commit(stage_dir: str, epoch: int):
    """Predicate for the fsync of one stage's WAL commit entry."""
    suffix = os.path.join(stage_dir, "commits", f"{epoch:010d}.json")
    return lambda ctx: ctx.get("path", "").endswith(suffix)


def schedule_for(point: str, mode: str = "microbatch") -> list:
    if mode == "cascade" and point == "storage.fsync":
        # Tear the pure-retraction epoch's WAL commit entry, first in
        # the upstream stage's checkpoint, then (after recovery replays
        # it) in the downstream stage's: both reopens must quarantine
        # the torn tail and the idempotent sinks must absorb the
        # re-delivered retractions.
        return [
            Fault("storage.fsync", occurrence=None, action="torn",
                  match=_match_wal_commit("checkpoint-stage1",
                                          CASCADE_RETRACTION_EPOCH)),
            Fault("storage.fsync", occurrence=None, action="torn",
                  match=_match_wal_commit("checkpoint-stage2",
                                          CASCADE_RETRACTION_EPOCH)),
        ]
    early, later = _ACTIONS_FOR_POINT.get(point, ("crash", "crash"))
    faults = [
        Fault(point, occurrence=0, action=early),
        Fault(point, occurrence=LATER_OCCURRENCE, action=later),
    ]
    for fault in faults:
        if fault.action == "hang":
            fault.seconds = HANG_SECONDS
    return faults


class WorkloadInstance:
    """One materialized workload: fresh streams/sinks/checkpoint dir.

    ``extra_checkpoints`` lists further checkpoint directories (a
    cascade's other stages) whose invariants are checked once the run
    completes; ``checkpoint_dir`` is also checked after every crash.
    """

    def __init__(self, build, steps, read_sink, checkpoint_dir,
                 ordered=True, at_least_once=False, cleanup=None,
                 extra_checkpoints=()):
        self.build = build
        self.steps = steps
        self.read_sink = read_sink
        self.checkpoint_dir = checkpoint_dir
        self.ordered = ordered
        self.at_least_once = at_least_once
        self.cleanup = cleanup or (lambda: None)
        self.extra_checkpoints = list(extra_checkpoints)


class _CascadeQuery:
    """Drives a two-stage cascade behind the harness's one-query protocol.

    The harness calls ``process_all_available()`` / ``stop()`` on a
    single handle; this wrapper fans each call out to both stages in
    dependency order, firing ``cascade.between_stages`` in the window
    where the upstream query has committed epochs into the stream table
    that the downstream query has not yet consumed.
    """

    def __init__(self, upstream, downstream):
        self.upstream = upstream
        self.downstream = downstream

    def process_all_available(self):
        self.upstream.process_all_available()
        try:
            fault_point("cascade.between_stages", stage="silver")
        except Exception as exc:
            # The crash lands *between* the stages, outside either
            # engine's own dump path; the upstream recorder owns the
            # epochs just committed into the stream table, so it writes
            # the postmortem for this window.
            rec = getattr(self.upstream.engine, "flightrec", None)
            if rec is not None:
                rec.dump("cascade-crash", error=exc,
                         epoch=getattr(self.upstream.engine,
                                       "next_epoch", None),
                         force=True)
            raise
        self.downstream.process_all_available()

    def stop(self):
        try:
            self.upstream.stop()
        finally:
            self.downstream.stop()


def _agg_workload(root: str, shards: int, scheduler=None,
                  wide: bool = False, tiered: bool = False,
                  pipelined: bool = False) -> WorkloadInstance:
    """``wide=True`` spreads each chunk across several 10s windows so
    multiple shards are non-empty per epoch — required for process-pool
    cells, where single-shard epochs take the driver-inline fast path
    and worker fault points would never fire.  ``tiered=True`` runs the
    LSM state backend with a tiny memtable budget, so flush and
    compaction windows open on every epoch."""
    session = Session()
    stream = MemoryStream(StructType((("k", "string"), ("v", "long"),
                                      ("t", "timestamp"))))
    df = (session.read_stream.memory(stream)
          .with_watermark("t", "5s")
          .group_by(F.window("t", "10s")).count())
    checkpoint = os.path.join(root, "checkpoint")
    out_dir = os.path.join(root, "table")

    def _backend_options(writer):
        if tiered:
            writer = (writer.option("state_backend", "tiered")
                      .option("state_memtable_bytes", TIERED_MEMTABLE_BYTES))
        if pipelined:
            writer = writer.option("pipeline", "on")
        return writer

    if scheduler is None:
        sink = None  # fresh file sink per restart (reads manifests anew)

        def build():
            writer = (df.write_stream.format("file").option("path", out_dir)
                      .option("num_shards", shards))
            return _backend_options(writer).output_mode("append").start(checkpoint)

        def read_sink():
            return TransactionalFileSink(out_dir).read_rows()
    else:
        sink = MemorySink()

        def build():
            writer = (df.write_stream.sink(sink)
                      .option("num_shards", shards)
                      .option("scheduler", scheduler))
            return _backend_options(writer).output_mode("append").start(checkpoint)

        read_sink = sink.rows

    if wide:
        chunks = [
            [{"k": "a", "v": i, "t": float(t)}
             for i, t in enumerate((1, 11, 21, 31))],
            [{"k": "b", "v": i, "t": float(t)}
             for i, t in enumerate((12, 22, 32, 42))],
            [{"k": "c", "v": i, "t": float(t)}
             for i, t in enumerate((23, 33, 43, 53))],
            [{"k": "d", "v": i, "t": float(t)}
             for i, t in enumerate((54, 64, 74))],
            [{"k": "e", "v": 0, "t": 90.0}, {"k": "e", "v": 1, "t": 95.0}],
        ]
    else:
        chunks = [
            [{"k": "a", "v": i, "t": float(t)} for i, t in enumerate((1, 2, 3))],
            [{"k": "b", "v": i, "t": float(t)} for i, t in enumerate((12, 14))],
            [{"k": "c", "v": i, "t": float(t)} for i, t in enumerate((23, 24, 25, 26))],
            [{"k": "d", "v": 0, "t": 50.0}],
            [{"k": "e", "v": 0, "t": 90.0}],
        ]
    steps = [lambda rows=rows: stream.add_data(rows) for rows in chunks]
    return WorkloadInstance(build, steps, read_sink, checkpoint)


def _join_workload(root: str, shards: int,
                   pipelined: bool = False) -> WorkloadInstance:
    session = Session()
    ls = MemoryStream(StructType((("k", "long"), ("t", "timestamp"),
                                  ("l", "string"))))
    rs = MemoryStream(StructType((("k", "long"), ("t2", "timestamp"),
                                  ("r", "string"))))
    left = session.read_stream.memory(ls).with_watermark("t", "100s")
    right = session.read_stream.memory(rs).with_watermark("t2", "100s")
    df = left.join(right, on="k", within=("t", "t2", "1000s"))
    checkpoint = os.path.join(root, "checkpoint")
    sink = MemorySink()  # survives restarts (models the external system)

    def build():
        writer = (df.write_stream.sink(sink)
                  .option("num_shards", shards))
        if pipelined:
            writer = writer.option("pipeline", "on")
        return writer.output_mode("append").start(checkpoint)

    steps = []
    for i in range(4):
        rows_l = [{"k": k, "t": float(i), "l": f"l{i}-{k}"} for k in (i, i + 1)]
        rows_r = [{"k": k, "t2": float(i) + 0.5, "r": f"r{i}-{k}"} for k in (i, i + 1)]
        steps.append(lambda rows=rows_l: ls.add_data(rows))
        steps.append(lambda rows=rows_r: rs.add_data(rows))
    return WorkloadInstance(build, steps, read_sink=sink.rows,
                            checkpoint_dir=checkpoint, ordered=False)


def _map_workload(root: str) -> WorkloadInstance:
    session = Session()
    stream = MemoryStream(StructType((("v", "long"),)))
    df = (session.read_stream.memory(stream)
          .where(F.col("v") > 0)
          .select((F.col("v") * 10).alias("x")))
    checkpoint = os.path.join(root, "checkpoint")
    sink = MemorySink()

    def build():
        return (df.write_stream.sink(sink)
                .output_mode("append")
                .trigger(continuous=0.03).start(checkpoint))

    chunks = [list(range(1 + 10 * c, 11 + 10 * c)) for c in range(3)]
    steps = [
        lambda vs=vs: stream.add_data([{"v": v} for v in vs]) for vs in chunks
    ]
    return WorkloadInstance(build, steps, read_sink=sink.rows,
                            checkpoint_dir=checkpoint, at_least_once=True)


def _cascade_workload(root: str, shards: int) -> WorkloadInstance:
    """CDC bronze -> stateless silver stage into a stream table ->
    downstream grouped sum into a memory sink, both stages in retract
    mode with their own checkpoints.  Chunk ``CASCADE_RETRACTION_EPOCH``
    is deletes-only, so that epoch of both stages' WALs carries a pure
    retraction delta (the torn-commit cell targets it by path)."""
    session = Session()
    cdc = ChangeStream(StructType((("k", "string"), ("v", "long"))))
    silver = (session.read_stream.cdc(cdc)
              .filter(F.col("v") >= 0)
              .select("k", "v"))
    ck1 = os.path.join(root, "checkpoint-stage1")
    ck2 = os.path.join(root, "checkpoint-stage2")
    sink = MemorySink()  # survives restarts (models the external system)

    def build():
        upstream = (silver.write_stream.to_table("sweep_silver")
                    .output_mode("retract")
                    .option("num_shards", shards)
                    .start(ck1))
        downstream = (session.read_stream_table("sweep_silver")
                      .group_by("k").agg(F.sum("v").alias("total"))
                      .write_stream.sink(sink)
                      .output_mode("retract")
                      .option("num_shards", shards)
                      .start(ck2))
        return _CascadeQuery(upstream, downstream)

    # One chunk per epoch (the {"x": -1} row is dropped by the silver
    # filter and never reaches the table); chunk 2 is deletes-only.
    steps = [
        lambda: cdc.insert([{"k": "a", "v": 5}, {"k": "b", "v": 3},
                            {"k": "x", "v": -1}]),
        lambda: cdc.insert([{"k": "a", "v": 2}, {"k": "c", "v": 7}]),
        lambda: cdc.delete([{"k": "a", "v": 5}, {"k": "b", "v": 3}]),
        lambda: cdc.update([{"k": "c", "v": 7}], [{"k": "c", "v": 9}]),
        lambda: cdc.insert([{"k": "b", "v": 1}]),
    ]
    return WorkloadInstance(build, steps, read_sink=sink.rows,
                            checkpoint_dir=ck2, ordered=False,
                            extra_checkpoints=[ck1])


def make_workload(point: str, mode: str, shards: int, root: str) -> WorkloadInstance:
    os.makedirs(root, exist_ok=True)
    if mode == "continuous":
        return _map_workload(root)
    if mode == "cascade":
        return _cascade_workload(root, shards)
    if mode == "process":
        from repro.cluster.scheduler import TaskScheduler

        scheduler = TaskScheduler(
            num_workers=2, speculation=False, executor="process",
            task_timeout=PROCESS_TASK_TIMEOUT)
        instance = _agg_workload(root, shards, scheduler=scheduler, wide=True,
                                 tiered=point in TIERED_POINTS)
        instance.cleanup = scheduler.shutdown
        return instance
    if point in TIERED_POINTS:
        return _agg_workload(root, shards, tiered=True)
    if point == "scheduler.task":
        from repro.cluster.scheduler import TaskScheduler

        scheduler = TaskScheduler(num_workers=2, speculation=False)
        instance = _agg_workload(root, shards, scheduler=scheduler)
        instance.cleanup = scheduler.shutdown
        return instance
    if point == "state.async_flush_crash":
        # Two stateful operators, so one flusher batch holds multiple
        # jobs and a crash can land between them.
        return _join_workload(root, shards, pipelined=True)
    if point in PIPELINE_POINTS:
        return _agg_workload(root, shards, pipelined=True)
    if point.startswith(("state.", "sink.")):
        return _join_workload(root, shards)
    return _agg_workload(root, shards)


def _golden_key(point: str, mode: str, shards: int):
    if mode == "continuous":
        return ("map", mode, 1)
    if mode == "cascade":
        return ("cascade", mode, shards)
    if mode == "process":
        if point in TIERED_POINTS:
            return ("agg-wide-tiered", mode, shards)
        return ("agg-wide", mode, shards)
    if point in TIERED_POINTS:
        return ("agg-tiered", mode, shards)
    if point == "scheduler.task":
        return ("sched", mode, shards)
    if point == "state.async_flush_crash":
        return ("join-pipelined", mode, shards)
    if point in PIPELINE_POINTS:
        return ("agg-pipelined", mode, shards)
    if point.startswith(("state.", "sink.")):
        return ("join", mode, shards)
    return ("agg", mode, shards)


def check_postmortems(checkpoint_dirs, context: str = "") -> int:
    """Assert that a crashed cell left parseable flight-recorder dumps.

    Every ``postmortem*.json`` under the cell's checkpoints must parse,
    carry the current schema version, and be internally consistent: the
    crashed epoch follows the last recorded epoch by at most one (the
    epoch that was executing when the crash hit).  Returns the number of
    postmortems found; at least one is required.
    """
    import glob
    import json

    from repro.observability import flightrec

    found = 0
    for directory in checkpoint_dirs:
        pattern = os.path.join(directory, "postmortem*.json")
        for path in sorted(glob.glob(pattern)):
            with open(path, encoding="utf-8") as fh:
                doc = json.load(fh)
            assert doc.get("version") == flightrec.SCHEMA_VERSION, \
                f"unexpected postmortem schema in {path} {context}"
            assert doc.get("reason"), f"postmortem {path} has no reason"
            epochs = [entry.get("epoch") for entry in doc.get("epochs", ())]
            crash = doc.get("crash")
            if crash is not None and epochs:
                assert crash["epoch"] - epochs[-1] in (0, 1), (
                    f"postmortem {path} {context}: crashed epoch "
                    f"{crash['epoch']} does not follow last recorded "
                    f"epoch {epochs[-1]}")
            found += 1
    assert found, f"no postmortem written by crashed cell {context}"
    return found


def run_sweep_cell(point: str, mode: str, shards: int, root: str,
                   golden_cache: dict) -> dict:
    """Run one sweep cell; returns coverage info for the caller.

    ``golden_cache`` maps workload identity to its GoldenRun so the
    fault-free reference is computed once per workload, not per cell.
    """
    key = _golden_key(point, mode, shards)
    if key not in golden_cache:
        golden_instance = make_workload(point, mode, shards,
                                        os.path.join(root, "golden"))
        try:
            golden_cache[key] = run_golden(
                golden_instance.build, golden_instance.steps,
                golden_instance.read_sink)
        finally:
            golden_instance.cleanup()

    instance = make_workload(point, mode, shards, os.path.join(root, "run"))
    injector = FaultInjector(schedule_for(point, mode))
    checker = ExactlyOnceChecker(
        golden_cache[key], ordered=instance.ordered,
        at_least_once=instance.at_least_once)
    try:
        with injected(injector):
            report = run_with_crashes(
                instance.build, instance.steps,
                injector=injector,
                read_sink=instance.read_sink,
                checker=checker,
                checkpoint_dir=instance.checkpoint_dir,
            )
        checker.check_final(
            instance.read_sink(),
            context=f"in sweep cell ({point}, {mode}, shards={shards})")
        for directory in [instance.checkpoint_dir, *instance.extra_checkpoints]:
            check_checkpoint_invariants(
                directory, strict=True,
                context=f"after completed cell ({point}, {mode}, shards={shards})")
        if report.num_crashes:
            # Every genuine crash must have left a flight-recorder dump
            # (torn/drop/fail actions that the query absorbed need not).
            check_postmortems(
                [instance.checkpoint_dir, *instance.extra_checkpoints],
                context=f"({point}, {mode}, shards={shards})")
    finally:
        instance.cleanup()
    return {
        "point": point,
        "mode": mode,
        "shards": shards,
        "crashes": report.num_crashes,
        "fired": dict(injector.counts),
        "triggered": list(injector.fired),
    }
