"""Deterministic fault injection + exactly-once checking (ISSUE 4).

``repro.testing.faults`` is imported by the engine's lowest layers and
must stay import-cycle-free, so this package init re-exports only the
fault primitives eagerly; the harness and sweep (which import the
engines) load lazily on first attribute access.
"""

from repro.testing.faults import (  # noqa: F401
    CRASHABLE_POINTS,
    REGISTRY,
    CrashPoint,
    Fault,
    FaultInjector,
    InjectedTaskError,
    active_injector,
    fault_point,
    injected,
    install,
    uninstall,
)

_LAZY = {
    "ExactlyOnceChecker": "repro.testing.harness",
    "ExactlyOnceError": "repro.testing.harness",
    "GoldenRun": "repro.testing.harness",
    "run_with_crashes": "repro.testing.harness",
    "run_golden": "repro.testing.harness",
    "check_checkpoint_invariants": "repro.testing.harness",
    "checkpoint_fingerprint": "repro.testing.harness",
}


def __getattr__(name):
    module_name = _LAZY.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module_name), name)
