"""Console sink: print each epoch (debugging, like Spark's console sink)."""

from __future__ import annotations

from repro.sinks.base import Sink
from repro.sql.batch import RecordBatch


class ConsoleSink(Sink):
    """Print each epoch's rows; useful in examples."""

    supported_modes = ("append", "update", "complete", "retract")

    def __init__(self, max_rows: int = 20):
        self._max_rows = max_rows
        self._epochs = set()
        self.key_names = []

    def add_batch(self, epoch_id: int, batch: RecordBatch, mode: str) -> None:
        if epoch_id in self._epochs:
            return
        self._epochs.add(epoch_id)
        self._count_commit(batch.num_rows)
        print(f"-------- epoch {epoch_id} ({mode}, {batch.num_rows} rows) --------")
        for row in batch.to_rows()[: self._max_rows]:
            print(row)

    def last_committed_epoch(self):
        return max(self._epochs) if self._epochs else None
