"""Streaming output sinks.

All sinks satisfy the idempotence contract of §3/§6.1: ``add_batch`` with
an epoch id the sink has already committed is a no-op (or an atomic
replace), so the engine may safely rewrite the last epoch after a crash.
The transactional file sink additionally provides *atomic* multi-file
commits via a manifest log, modeling Databricks Delta (§6.1 footnote 3).
"""

from repro.sinks.base import Sink
from repro.sinks.memory import MemorySink
from repro.sinks.file import TransactionalFileSink
from repro.sinks.kafka import KafkaSink
from repro.sinks.foreach import ForeachSink
from repro.sinks.console import ConsoleSink

__all__ = [
    "ConsoleSink",
    "ForeachSink",
    "KafkaSink",
    "MemorySink",
    "Sink",
    "TransactionalFileSink",
]
