"""Sink publishing results back to the message bus.

Models Kafka output with transactional producers: the broker-side epoch
registry records which (query, epoch) pairs have been published, so a
recovering query re-delivering its last epoch produces no duplicates —
the "stream to stream ETL" pattern of §6.3.
"""

from __future__ import annotations

import threading

from repro.bus import Broker
from repro.observability import metrics
from repro.sinks.base import Sink
from repro.sql.batch import RecordBatch

# Broker-side registries, keyed by (topic, query). Living outside the sink
# instance models state kept by the external bus (transaction markers),
# which survives application restarts.
_registry_lock = threading.Lock()
_committed_epochs: dict = {}


class KafkaSink(Sink):
    """Publish each epoch's rows to a topic, exactly once per epoch."""

    supported_modes = ("append", "update")

    def __init__(self, broker: Broker, topic_name: str, query_id: str,
                 partition_key: str = None):
        self._topic = broker.get_or_create(topic_name)
        self._query_id = query_id
        self._registry_key = (topic_name, query_id)
        self._partition_key = partition_key
        self.key_names = []

    def add_batch(self, epoch_id: int, batch: RecordBatch, mode: str) -> None:
        with _registry_lock:
            seen = _committed_epochs.setdefault(self._registry_key, set())
            if epoch_id in seen:
                return
        rows = batch.to_rows()
        if self._partition_key is None or self._topic.num_partitions == 1:
            self._topic.publish_to(0, rows)
        else:
            shards = [[] for _ in range(self._topic.num_partitions)]
            for row in rows:
                shards[hash(row[self._partition_key]) % len(shards)].append(row)
            for index, shard in enumerate(shards):
                if shard:
                    self._topic.publish_to(index, shard)
        with _registry_lock:
            _committed_epochs[self._registry_key].add(epoch_id)
        self._count_commit(len(rows))

    def append_rows(self, rows) -> None:
        """Continuous-mode write path: publish rows immediately (§6.3)."""
        rows = list(rows)
        self._topic.publish_to(0, rows)
        metrics.count("sink.rows_appended", len(rows))

    def last_committed_epoch(self):
        with _registry_lock:
            seen = _committed_epochs.get(self._registry_key)
            return max(seen) if seen else None


def reset_transaction_registry() -> None:
    """Test helper: forget all broker-side transaction markers."""
    with _registry_lock:
        _committed_epochs.clear()
