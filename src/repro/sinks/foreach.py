"""Foreach sink: hand each epoch's rows to a user callback.

The callback receives ``(epoch_id, rows, mode)``; the sink deduplicates by
epoch so the callback observes exactly-once delivery even across engine
recovery, provided the same sink instance (or an external system the
callback writes to idempotently) is reused.
"""

from __future__ import annotations

import threading

from repro.observability import metrics
from repro.sinks.base import Sink
from repro.sql.batch import RecordBatch


class ForeachBatchSink(Sink):
    """Invoke ``fn(batch_df, epoch_id)`` once per epoch with the epoch's
    output as a *batch DataFrame* — the pattern for writing to systems
    without a native sink while reusing the whole batch API (e.g. run a
    follow-up aggregation, write to several tables transactionally)."""

    def __init__(self, fn, session):
        self._fn = fn
        self._session = session
        self._epochs = set()
        self._lock = threading.Lock()
        self.key_names = []

    def add_batch(self, epoch_id: int, batch: RecordBatch, mode: str) -> None:
        with self._lock:
            if epoch_id in self._epochs:
                return
            self._epochs.add(epoch_id)
        self._count_commit(batch.num_rows)
        self._fn(self._session.from_batch(batch), epoch_id)

    def last_committed_epoch(self):
        with self._lock:
            return max(self._epochs) if self._epochs else None


class ForeachSink(Sink):
    """Invoke ``fn(epoch_id, rows, mode)`` once per epoch."""

    def __init__(self, fn):
        self._fn = fn
        self._epochs = set()
        self._lock = threading.Lock()
        self.key_names = []

    def add_batch(self, epoch_id: int, batch: RecordBatch, mode: str) -> None:
        with self._lock:
            if epoch_id in self._epochs:
                return
            self._epochs.add(epoch_id)
        self._count_commit(batch.num_rows)
        self._fn(epoch_id, batch.to_rows(), mode)

    def append_rows(self, rows) -> None:
        """Continuous-mode write path: deliver rows immediately (§6.3),
        with epoch -1 marking out-of-epoch delivery."""
        rows = list(rows)
        self._fn(-1, rows, "append")
        metrics.count("sink.rows_appended", len(rows))

    def last_committed_epoch(self):
        with self._lock:
            return max(self._epochs) if self._epochs else None
