"""Transactional file sink: atomic, idempotent multi-file commits.

Models the Databricks Delta pattern the paper describes for sinks that
cannot natively commit multiple writers atomically (§6.1 footnote 3): data
files are invisible until a per-version JSON manifest appears in
``_log/``, and readers reconstruct the table purely from manifests.

Multiple writers (a streaming query plus batch backfills, §7.3) can share
one table: each *table version* manifest records which writer committed
it and that writer's epoch number, so re-delivering an epoch after
recovery is idempotent per writer while versions stay globally ordered.

Layout::

    <dir>/part-<version>-<n>.jsonl   data files (JSON-lines)
    <dir>/_log/<version>.json        manifest: files + mode + writer id/epoch
"""

from __future__ import annotations

import os

from repro.sinks.base import Sink
from repro.sql.batch import RecordBatch
from repro.sql.types import StructType
from repro.storage import (
    atomic_write_json,
    list_files,
    read_json,
    read_jsonl,
    repair_torn_tail,
    write_jsonl,
)
from repro.testing.faults import fault_point


class TransactionalFileSink(Sink):
    """Exactly-once file output via a manifest commit log."""

    supported_modes = ("append", "complete")

    def __init__(self, directory: str, rows_per_file: int = 100_000,
                 writer_id: str = "default"):
        self.directory = directory
        self._log_dir = os.path.join(directory, "_log")
        self._rows_per_file = rows_per_file
        self.writer_id = writer_id
        os.makedirs(self._log_dir, exist_ok=True)
        self.key_names = []
        #: A torn newest manifest (crash mid-commit) would otherwise make
        #: every read and write die on unreadable JSON; removing it
        #: leaves that version's data files orphaned and invisible,
        #: which is the manifest protocol's definition of "uncommitted".
        self.repaired = repair_torn_tail(self._log_dir)

    # ------------------------------------------------------------------
    # Manifest log access
    # ------------------------------------------------------------------
    def _manifest_path(self, version: int) -> str:
        return os.path.join(self._log_dir, f"{version:010d}.json")

    def committed_manifests(self) -> list:
        """All committed manifests, oldest version first."""
        return [
            read_json(os.path.join(self._log_dir, name))
            for name in list_files(self._log_dir, ".json")
        ]

    def _latest_version(self):
        manifests = list_files(self._log_dir, ".json")
        if not manifests:
            return None
        return int(os.path.splitext(manifests[-1])[0])

    def _manifest_for_epoch(self, epoch_id: int):
        for manifest in self.committed_manifests():
            if manifest.get("writer") == self.writer_id and \
                    manifest["epoch"] == epoch_id:
                return manifest
        return None

    # ------------------------------------------------------------------
    # Write path
    # ------------------------------------------------------------------
    def add_batch(self, epoch_id: int, batch: RecordBatch, mode: str) -> None:
        fault_point("sink.add_batch", epoch=epoch_id, sink="file")
        if self._manifest_for_epoch(epoch_id) is not None:
            return  # this writer already committed this epoch: idempotent
        latest = self._latest_version()
        version = (latest + 1) if latest is not None else 0
        rows = batch.to_rows()
        files = []
        for i, start in enumerate(range(0, max(len(rows), 1), self._rows_per_file)):
            chunk = rows[start:start + self._rows_per_file]
            name = f"part-{version:05d}-{i:03d}.jsonl"
            write_jsonl(os.path.join(self.directory, name), chunk)
            files.append(name)
        # The manifest write is the commit point: one atomic rename makes
        # all of the version's files visible at once.
        atomic_write_json(self._manifest_path(version), {
            "version": version,
            "writer": self.writer_id,
            "epoch": epoch_id,
            "mode": mode,
            "files": files,
            "num_rows": len(rows),
        })
        self._count_commit(len(rows))

    def last_committed_epoch(self):
        """Highest epoch this *writer* committed, or None."""
        epochs = [
            m["epoch"] for m in self.committed_manifests()
            if m.get("writer") == self.writer_id
        ]
        return max(epochs) if epochs else None

    # ------------------------------------------------------------------
    # Read path
    # ------------------------------------------------------------------
    def read_rows(self, as_of_epoch: int = None, as_of_version: int = None) -> list:
        """Reconstruct the committed table from manifests only.

        Complete-mode manifests replace everything before them; append
        manifests accumulate.  Uncommitted (orphan) data files are
        ignored, which is what makes partially written epochs invisible.

        Time travel: ``as_of_version`` reads the table as of a table
        version; ``as_of_epoch`` as of this writer's epoch.
        """
        rows = []
        for manifest in self.committed_manifests():
            if as_of_version is not None and manifest["version"] > as_of_version:
                break
            if as_of_epoch is not None and \
                    manifest.get("writer") == self.writer_id and \
                    manifest["epoch"] > as_of_epoch:
                break
            if manifest["mode"] == "complete":
                rows = []
            for name in manifest["files"]:
                rows.extend(read_jsonl(os.path.join(self.directory, name)))
        return rows

    def read_batch(self, schema: StructType) -> RecordBatch:
        """The committed table as a RecordBatch."""
        return RecordBatch.from_rows(self.read_rows(), schema)

    def rows_for_epoch(self, epoch_id: int) -> list:
        """Rows committed by one of this writer's epochs (for rollback
        inspection: 'find which files were written in a particular
        epoch', §7.2)."""
        manifest = self._manifest_for_epoch(epoch_id)
        if manifest is None:
            return []
        rows = []
        for name in manifest["files"]:
            rows.extend(read_jsonl(os.path.join(self.directory, name)))
        return rows

    def remove_epochs_after(self, epoch_id: int) -> int:
        """Delete this writer's manifests for epochs newer than
        ``epoch_id`` (manual rollback, §7.2).  Returns the count removed."""
        removed = 0
        for manifest in self.committed_manifests():
            if manifest.get("writer") == self.writer_id and \
                    manifest["epoch"] > epoch_id:
                os.unlink(self._manifest_path(manifest["version"]))
                removed += 1
        return removed
