"""Sink interface.

The engine calls ``add_batch(epoch_id, batch, mode)`` once per epoch with
the epoch's output rows under the query's output mode:

* ``append`` — the rows are new and final; add them;
* ``update`` — the rows are upserts keyed by ``key_names``;
* ``complete`` — the rows are the entire result table; replace everything;
* ``retract`` — the rows are a Z-set delta: each carries ``__weight__``
  (+1 add one occurrence, -1 remove one); applying the delta yields the
  new result table (see :mod:`repro.streaming.zset`).

``last_committed_epoch`` lets a recovering engine skip re-delivery of
epochs the sink already has — this plus idempotent ``add_batch`` yields
exactly-once output end to end (§6.1 step 4).
"""

from __future__ import annotations

from repro.observability import metrics
from repro.sql.batch import RecordBatch


class Sink:
    """Base class for output sinks."""

    #: Output modes this sink supports; checked when the query starts.
    supported_modes = ("append", "update", "complete")

    def _count_commit(self, num_rows: int) -> None:
        """Count one *applied* (non-duplicate) epoch commit.

        Sinks call this after their idempotence check, so re-delivery
        during recovery never double-counts — the counters match what
        actually reached the sink exactly once.
        """
        metrics.count("sink.batches_committed")
        metrics.count("sink.rows_delivered", num_rows)

    def set_key_names(self, key_names) -> None:
        """Told by the engine which output columns identify a row (for
        update mode).  Default: remember them."""
        self.key_names = list(key_names) if key_names else []

    def add_batch(self, epoch_id: int, batch: RecordBatch, mode: str) -> None:
        """Write one epoch's output.  MUST be idempotent in ``epoch_id``."""
        raise NotImplementedError

    def last_committed_epoch(self):
        """Highest epoch id durably written, or None."""
        return None
