"""In-memory table sink, queryable while the stream runs.

This is the paper's "output to an in-memory Spark table that users can
query interactively" (§3): reads take a lock and see a consistent
snapshot of complete epochs only — never a partially applied epoch.
"""

from __future__ import annotations

import threading

from repro.observability import metrics
from repro.sinks.base import Sink
from repro.sql.batch import RecordBatch
from repro.sql.types import WEIGHT_COLUMN, hashable_value as _hashable
from repro.testing.faults import fault_point


class MemorySink(Sink):
    """Maintains the result table in memory under all four output modes.

    In ``retract`` mode the sink applies each epoch's Z-set delta to a
    multiset keyed by row value: +1 adds one occurrence, -1 removes one.
    ``rows()`` then returns the live table (weight column dropped), one
    entry per surviving occurrence, in first-insertion order.
    """

    supported_modes = ("append", "update", "complete", "retract")

    def __init__(self):
        self._rows = []
        self._by_key = {}
        self._counts = {}   # retract mode: row key -> (multiplicity, row)
        self._epochs = set()
        self._lock = threading.Lock()
        self.key_names = []

    def add_batch(self, epoch_id: int, batch: RecordBatch, mode: str) -> None:
        fault_point("sink.add_batch", epoch=epoch_id, sink="memory")
        with self._lock:
            if epoch_id in self._epochs:
                return  # idempotent re-delivery after recovery
            new_rows = batch.to_rows()
            if mode == "complete":
                self._rows = new_rows
                self._by_key.clear()
            elif mode == "retract":
                self._apply_zset(new_rows)
            elif mode == "update" and self.key_names:
                for row in new_rows:
                    key = tuple(row[k] for k in self.key_names)
                    self._by_key[key] = row
                self._rows = list(self._by_key.values())
            else:  # append (or update without keys, which degenerates)
                self._rows.extend(new_rows)
            self._epochs.add(epoch_id)
            self._count_commit(len(new_rows))

    def _apply_zset(self, new_rows: list) -> None:
        # Net the epoch's delta per row first: within one epoch a +1/-1
        # pair for the same row (e.g. from a join's bilinear expansion)
        # is order-free, so only the *net* count may not go negative.
        deltas = {}
        for row in new_rows:
            weight = int(row.get(WEIGHT_COLUMN, 1))
            data = {k: v for k, v in row.items() if k != WEIGHT_COLUMN}
            key = tuple(sorted((k, _hashable(v)) for k, v in data.items()))
            delta, _ = deltas.get(key, (0, None))
            deltas[key] = (delta + weight, data)
        for key, (delta, data) in deltas.items():
            if delta == 0:
                continue
            count, _sample = self._counts.get(key, (0, None))
            count += delta
            if count < 0:
                raise ValueError(
                    f"retraction of a row the sink never received: {data!r}"
                )
            if count == 0:
                self._counts.pop(key, None)
            else:
                self._counts[key] = (count, data)
        self._rows = []
        for count, sample in self._counts.values():
            self._rows.extend([dict(sample)] * count)

    def append_rows(self, rows) -> None:
        """Continuous-mode write path: append rows immediately (§6.3).

        No epoch bookkeeping — continuous mode trades the per-epoch
        dedup for latency (at-least-once within the last epoch).
        """
        rows = list(rows)
        with self._lock:
            self._rows.extend(rows)
        metrics.count("sink.rows_appended", len(rows))

    def rows(self) -> list:
        """A consistent snapshot of the current result table."""
        with self._lock:
            return list(self._rows)

    def last_committed_epoch(self):
        with self._lock:
            return max(self._epochs) if self._epochs else None

    def clear(self) -> None:
        """Forget everything (test helper)."""
        with self._lock:
            self._rows.clear()
            self._by_key.clear()
            self._counts.clear()
            self._epochs.clear()
