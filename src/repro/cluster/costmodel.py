"""Cloud cost model for the run-once trigger analysis (§7.3).

The paper reports customers cutting costs "in one case, up to 10x" by
running a Structured Streaming ETL job as a single epoch every few hours
(the run-once trigger) instead of keeping a cluster up 24/7, now that
clouds bill per second.  This model computes both deployment styles'
node-seconds for a given arrival rate and measured processing
throughput.
"""

from __future__ import annotations


class DeploymentCostModel:
    """Compare 24/7 streaming vs discontinuous run-once deployments."""

    def __init__(self, arrival_rate_records_per_second: float,
                 processing_rate_records_per_second: float,
                 nodes: int = 1,
                 startup_seconds: float = 60.0,
                 price_per_node_second: float = 1.0):
        if processing_rate_records_per_second <= arrival_rate_records_per_second:
            raise ValueError(
                "processing rate must exceed the arrival rate or the "
                "backlog never drains"
            )
        self.arrival_rate = arrival_rate_records_per_second
        self.processing_rate = processing_rate_records_per_second
        self.nodes = nodes
        #: Cluster provisioning + job startup cost per run-once invocation.
        self.startup_seconds = startup_seconds
        self.price = price_per_node_second

    def continuous_cost(self, period_seconds: float) -> float:
        """Cost of a 24/7 cluster over ``period_seconds``."""
        return self.nodes * period_seconds * self.price

    def run_once_cost(self, period_seconds: float, interval_seconds: float) -> float:
        """Cost of running one epoch every ``interval_seconds``.

        Each run processes the backlog accumulated over the interval at
        the measured processing rate, plus startup overhead.
        """
        if interval_seconds <= 0:
            raise ValueError("interval must be positive")
        runs = period_seconds / interval_seconds
        backlog = self.arrival_rate * interval_seconds
        run_duration = self.startup_seconds + backlog / self.processing_rate
        return runs * self.nodes * run_duration * self.price

    def savings_ratio(self, period_seconds: float, interval_seconds: float) -> float:
        """How many times cheaper run-once is than 24/7 (>1 = cheaper)."""
        return self.continuous_cost(period_seconds) / self.run_once_cost(
            period_seconds, interval_seconds
        )

    def max_latency(self, interval_seconds: float) -> float:
        """Worst-case result staleness under run-once (the tradeoff)."""
        backlog = self.arrival_rate * interval_seconds
        return interval_seconds + self.startup_seconds + backlog / self.processing_rate
