"""Simulated cluster runtime: the "Spark execution layer" substrate.

The paper's microbatch mode inherits Spark's fine-grained task execution
(§6.2): dynamic load balancing, straggler mitigation via speculative
backup tasks, retry-based fault recovery and trivially rescalable
workers.  This package provides those mechanisms in-process:

* :mod:`repro.cluster.scheduler` — a task scheduler over worker threads
  with speculation, retries and rescaling, plus fault injection hooks;
* :mod:`repro.cluster.perfmodel` — the calibrated analytical model used
  for multi-node scaling numbers (Figure 6b), since a laptop cannot host
  20 × 8-core nodes;
* :mod:`repro.cluster.costmodel` — the cloud-cost model behind the
  run-once trigger savings analysis (§7.3).
"""

from repro.cluster.scheduler import Task, TaskFailure, TaskScheduler
from repro.cluster.failures import FailureInjector, SlowdownInjector
from repro.cluster.perfmodel import ClusterPerformanceModel
from repro.cluster.costmodel import DeploymentCostModel

__all__ = [
    "ClusterPerformanceModel",
    "DeploymentCostModel",
    "FailureInjector",
    "SlowdownInjector",
    "Task",
    "TaskFailure",
    "TaskScheduler",
]
