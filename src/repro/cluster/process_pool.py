"""Persistent process workers for true multicore epoch execution (§6.2).

The thread scheduler's per-shard tasks serialize on the GIL, so the
fig. 6b worker sweep never actually sped up — it only *projected* a
speedup from per-shard task times.  This pool runs the same pure shard
tasks in forked worker processes:

* **Zero-copy input shipping** — per-shard ``RecordBatch`` arguments are
  encoded as :class:`~repro.sql.batch.SharedBatch` descriptors; numeric
  columns live in one shared-memory segment per batch and only the
  descriptor crosses the pipe.
* **Sticky routing over live replicas** — worker ``shard % num_workers``
  always runs a given shard's tasks, and every worker keeps a full
  synchronized state replica across epochs.  The driver stays
  authoritative (it applies every deferred write itself, so checkpoint
  and sink bytes are identical to the thread executor); workers receive
  only the *state-sync deltas* journaled since the op's last stage
  (:meth:`~repro.streaming.state.OperatorStateHandle.collect_sync_delta`),
  broadcast because operators may partition tasks by a coarser key than
  the state store shards by.
* **Per-worker plan cache for free** — workers fork from the driver
  *after* the engine compiled its incremental plan, so every compiled
  closure (`plancompiler` kernels, grouping pipelines) is inherited
  once per worker, never rebuilt per task.
* **Worker-death recovery** — a dead or hung worker is respawned (a
  fresh fork), told to re-restore its shards from the last state
  checkpoint plus the driver's uncommitted residual, and the stage's
  undelivered tasks are re-sent.  Sync deltas are idempotent snapshots,
  so replay after respawn is safe by construction.

Fault-state synchronization: the ``worker.crash_mid_task`` and
``worker.hang`` fault points fire *inside* worker processes, whose
injector is a fork-time copy of the driver's.  Workers report their
fault counters to the driver (eagerly, before executing a fatal action),
and the driver merges them into its own injector — the single source of
truth that respawned workers re-inherit at fork.  Without the merge, a
respawned worker would replay the same occurrence forever.
"""

from __future__ import annotations

import os
import pickle
import threading
import time
from multiprocessing import connection, get_context

from repro.cluster.scheduler import TaskFailure
from repro.observability import metrics, tracing
from repro.sql.batch import RecordBatch, SharedBatch
from repro.testing import faults

#: Fault points that fire inside worker processes (see module docstring).
WORKER_POINTS = ("worker.crash_mid_task", "worker.hang")

_PROTO = pickle.HIGHEST_PROTOCOL


def _collect_fault_state(injector) -> dict | None:
    """Snapshot of a worker injector's progress, for merging driver-side."""
    if injector is None:
        return None
    with injector._lock:
        return {
            "counts": {
                p: injector.counts[p] for p in WORKER_POINTS
                if injector.counts.get(p)
            },
            "triggered": [f.triggered for f in injector.faults],
            "fired": [e for e in injector.fired if e[0] in WORKER_POINTS],
        }


def _merge_fault_state(state: dict | None) -> None:
    """Fold a worker's fault-state snapshot into the driver's injector.

    Max-merge: counts and per-entry trigger counts only move forward, so
    merging the same snapshot twice (e.g. an eager death report followed
    by a later reply) is a no-op.
    """
    injector = faults.active_injector()
    if injector is None or not state:
        return
    with injector._lock:
        for point, count in state["counts"].items():
            if count > injector.counts.get(point, 0):
                injector.counts[point] = count
        for fault, triggered in zip(injector.faults, state["triggered"]):
            if triggered > fault.triggered:
                fault.triggered = triggered
        seen = {tuple(e) for e in injector.fired}
        for entry in state["fired"]:
            entry = tuple(entry)
            if entry not in seen:
                injector.fired.append(entry)
                seen.add(entry)


# ----------------------------------------------------------------------
# Worker process
# ----------------------------------------------------------------------
def _fire_worker_point(conn, point: str, shard: int) -> None:
    """Worker-side twin of ``fault_point`` for process-death faults.

    Replicates :meth:`FaultInjector.fire` bookkeeping but reports the
    updated fault state to the driver *before* executing a fatal action:
    a crashed or hung-then-killed worker must not take the knowledge
    that its fault triggered to the grave, or the respawned worker
    (which re-inherits the driver's injector) would fire it again in an
    endless kill loop.
    """
    injector = faults.active_injector()
    if injector is None:
        return
    ctx = {"shard": shard, "pid": os.getpid()}
    with injector._lock:
        count = injector.counts.get(point, 0)
        injector.counts[point] = count + 1
        chosen = None
        for fault in injector.faults:
            if fault.point == point and fault.wants(count, ctx):
                fault.triggered += 1
                chosen = fault
                break
        if chosen is not None:
            injector.fired.append((point, count, chosen.action))
    if chosen is None:
        return
    try:
        conn.send_bytes(pickle.dumps(
            ("fault", _collect_fault_state(injector)), protocol=_PROTO))
    except OSError:
        pass
    if chosen.action == "fail":
        raise faults.InjectedTaskError(
            f"injected fail at {point}#{count}")
    if chosen.action == "hang":
        time.sleep(chosen.seconds)
    # Process death (never sys.exit: a normal interpreter exit would run
    # fork-inherited atexit handlers and unlink the driver's live
    # shared-memory segments).
    os._exit(17)


def _worker_main(conn, slot: int, ops: dict, handles: list) -> None:
    """Forked worker loop: apply state-sync deltas, run shard tasks.

    Fork hygiene first: the child inherits the driver's observability
    registries (whose locks another driver thread may have held at fork)
    and its injector lock — both are reset before any work.  The loop
    exits only via ``os._exit`` so inherited atexit handlers (the
    shared-memory sweep!) never run in the child.
    """
    from repro.observability import metrics as _metrics
    from repro.observability import tracing as _tracing

    _metrics._registry = None
    _tracing._tracer = None
    injector = faults.active_injector()
    if injector is not None:
        injector._lock = threading.Lock()
    try:
        while True:
            try:
                msg = pickle.loads(conn.recv_bytes())
            except (EOFError, OSError):
                break
            kind = msg[0]
            if kind == "exit":
                break
            if kind == "restore":
                # Respawn path: rebuild owned shards from the last state
                # checkpoint on disk, then overlay the driver's
                # uncommitted residual — reproducing driver state
                # exactly, from durable artifacts.
                _, instructions = msg
                for handle_idx, version, residual in instructions:
                    handle = handles[handle_idx]
                    handle.restore(version)
                    for shard_i, (puts, removes) in residual.items():
                        handle.apply_sync_delta(shard_i, puts, removes)
                conn.send_bytes(pickle.dumps(("restored",), protocol=_PROTO))
                continue
            if kind != "stage":
                continue
            _, seq, token, method, deltas, tasks = msg
            for handle_idx, shard_i, puts, removes in deltas:
                handles[handle_idx].apply_sync_delta(shard_i, puts, removes)
            fn = getattr(ops[token], method)
            results = []
            for shard_i, args in tasks:
                _fire_worker_point(conn, "worker.hang", shard_i)
                _fire_worker_point(conn, "worker.crash_mid_task", shard_i)
                decoded = tuple(
                    a.decode() if isinstance(a, SharedBatch) else a
                    for a in args
                )
                started = time.monotonic()
                try:
                    value = fn(*decoded)
                except Exception as exc:  # transient: driver retries
                    results.append((
                        shard_i, False, f"{type(exc).__name__}: {exc}",
                        time.monotonic() - started,
                    ))
                else:
                    results.append((
                        shard_i, True, value, time.monotonic() - started,
                    ))
                for a in args:
                    if isinstance(a, SharedBatch):
                        a.close_reader()
            reply = ("ok", seq, results,
                     _collect_fault_state(faults.active_injector()))
            conn.send_bytes(pickle.dumps(reply, protocol=_PROTO))
    finally:
        os._exit(0)


# ----------------------------------------------------------------------
# Driver side
# ----------------------------------------------------------------------
class _WorkerHandle:
    """Driver-side record of one live worker process."""

    __slots__ = ("slot", "proc", "conn", "generation", "spawned_at",
                 "busy_seconds", "tasks_run")

    def __init__(self, slot, proc, conn, generation):
        self.slot = slot
        self.proc = proc
        self.conn = conn
        self.generation = generation
        self.spawned_at = time.monotonic()
        self.busy_seconds = 0.0
        self.tasks_run = 0


class _WorkerDied(Exception):
    """Internal signal: a worker's pipe broke or its deadline passed."""


class ProcessPool:
    """A bound set of forked workers executing per-shard operator stages.

    One pool serves one engine at a time: :meth:`bind` (re)binds to an
    engine's compiled plan, enabling write journaling on every state
    handle the pool will replicate.  Workers fork lazily on the first
    stage so they inherit fully-recovered state and compiled plans.
    """

    def __init__(self, num_workers: int, max_retries: int = 3,
                 task_timeout: float = 60.0, scheduler=None):
        self.num_workers = max(1, num_workers)
        self._max_retries = max_retries
        self._task_timeout = task_timeout
        self._scheduler = scheduler
        self._ctx = get_context("fork")
        self._workers = [None] * self.num_workers
        self._generation = 0
        self._engine = None
        self._ops = {}            # token -> operator
        self._op_tokens = {}      # id(operator) -> token
        self._handles = []        # journaled state handles (fork-shared order)
        self._handle_tokens = {}  # id(handle) -> index into _handles
        self._seq = 0
        #: Pre-encoded SharedBatch descriptors keyed by ``id(batch)``,
        #: populated by the pipelined engine's prefetcher (see
        #: :meth:`preship`).  Values keep a strong reference to the
        #: source batch so a recycled ``id`` can never alias a stale
        #: entry (the identity check below compares the object itself).
        self._preshipped = {}
        self._preship_lock = threading.Lock()
        self.worker_deaths = 0
        self.respawns = 0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def bind(self, engine) -> None:
        """(Re)bind to an engine: reset workers, enumerate the plan's
        operators, and enable state-sync journaling on their handles.
        Called after engine recovery, so the fork baseline is final."""
        self._stop_workers()
        self._engine = engine
        self._ops = {}
        self._op_tokens = {}
        self._handles = []
        self._handle_tokens = {}
        stack = [engine.plan.root]
        while stack:
            op = stack.pop()
            token = len(self._ops)
            self._ops[token] = op
            self._op_tokens[id(op)] = token
            stack.extend(reversed(op.child_ops()))
            for handle in op.state_handles():
                if id(handle) not in self._handle_tokens:
                    self._handle_tokens[id(handle)] = len(self._handles)
                    self._handles.append(handle)
                    handle.enable_journal()

    def knows(self, op) -> bool:
        """True if ``op`` belongs to the *currently bound* plan.

        Identity-checked against the operator table, not just ``id()``
        membership: a rebuilt engine runs its recovery replay before
        rebinding, and a recycled ``id`` must not route its tasks to
        workers forked from the previous plan.
        """
        token = self._op_tokens.get(id(op))
        return token is not None and self._ops.get(token) is op

    def preship(self, batches) -> None:
        """Pre-encode batches as shared memory, off the engine thread.

        Called by the pipelined engine's prefetcher while the previous
        epoch computes; when :meth:`run_op_stage`'s ship phase later sees
        the same batch object, the segment is already populated and the
        copy cost has left the critical path.  Entries are consumed at
        most once; stale ones (a claim miss, a rewound epoch) are
        released when the next preship replaces them.
        """
        encoded = {}
        for batch in batches:
            if isinstance(batch, RecordBatch) and batch.num_rows:
                encoded[id(batch)] = (batch, SharedBatch.encode(batch))
        with self._preship_lock:
            stale, self._preshipped = self._preshipped, encoded
        for _, shared in stale.values():
            shared.release()
        if encoded:
            metrics.count("pipeline.preshipped_batches", len(encoded))

    def _take_preshipped(self, arg):
        """The pre-encoded descriptor for ``arg``, if preshipped."""
        with self._preship_lock:
            cached = self._preshipped.pop(id(arg), None)
        if cached is not None and cached[0] is arg:
            return cached[1]
        if cached is not None:
            cached[1].release()
        return None

    def shutdown(self) -> None:
        """Stop all workers (idempotent)."""
        self._stop_workers()
        with self._preship_lock:
            stale, self._preshipped = self._preshipped, {}
        for _, shared in stale.values():
            shared.release()

    def _stop_workers(self) -> None:
        exit_msg = pickle.dumps(("exit",), protocol=_PROTO)
        for handle in self._workers:
            if handle is None:
                continue
            try:
                handle.conn.send_bytes(exit_msg)
            except (OSError, ValueError):
                pass
        for slot, handle in enumerate(self._workers):
            if handle is None:
                continue
            handle.proc.join(timeout=2.0)
            if handle.proc.is_alive():
                handle.proc.terminate()
                handle.proc.join(timeout=2.0)
            if handle.proc.is_alive():
                handle.proc.kill()
                handle.proc.join(timeout=2.0)
            try:
                handle.conn.close()
            except OSError:
                pass
            self._workers[slot] = None

    def _spawn(self, slot: int) -> _WorkerHandle:
        parent_conn, child_conn = self._ctx.Pipe()
        self._generation += 1
        proc = self._ctx.Process(
            target=_worker_main,
            args=(child_conn, slot, self._ops, self._handles),
            name=f"repro-pworker-{slot}",
            daemon=True,
        )
        proc.start()
        child_conn.close()
        handle = _WorkerHandle(slot, proc, parent_conn, self._generation)
        self._workers[slot] = handle
        return handle

    def _ensure_workers(self) -> None:
        for slot in range(self.num_workers):
            if self._workers[slot] is None:
                self._spawn(slot)

    def _respawn(self, slot: int) -> _WorkerHandle:
        """Replace a dead worker: fresh fork (inheriting merged fault
        state), then a genuine re-restore of its shards from the last
        state checkpoint plus the driver's uncommitted residual."""
        old = self._workers[slot]
        if old is not None:
            if old.proc.is_alive():
                old.proc.terminate()
                old.proc.join(timeout=2.0)
                if old.proc.is_alive():
                    old.proc.kill()
                    old.proc.join(timeout=2.0)
            try:
                old.conn.close()
            except OSError:
                pass
            self._workers[slot] = None
        self.worker_deaths += 1
        self.respawns += 1
        metrics.count("executor.worker_deaths")
        metrics.count("executor.respawns")
        handle = self._spawn(slot)
        instructions = [
            (idx, h.last_committed_version, h.sync_residual())
            for idx, h in enumerate(self._handles)
        ]
        handle.conn.send_bytes(pickle.dumps(
            ("restore", instructions), protocol=_PROTO))
        deadline = time.monotonic() + self._task_timeout
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0 or not handle.conn.poll(remaining):
                raise TaskFailure(
                    f"respawned worker {slot} did not acknowledge restore "
                    f"within {self._task_timeout}s"
                )
            msg = pickle.loads(handle.conn.recv_bytes())
            if msg[0] == "restored":
                return handle
            if msg[0] == "fault":
                _merge_fault_state(msg[1])

    # ------------------------------------------------------------------
    # Stage execution
    # ------------------------------------------------------------------
    def run_op_stage(self, ctx, label, op, method: str, payloads) -> list:
        """Run ``op.<method>(*payloads[shard])`` for every non-None shard
        on the owning workers; results in shard order (None for skipped
        shards), exactly like ``run_shard_tasks``."""
        token = self._op_tokens[id(op)]
        self._seq += 1
        seq = self._seq
        started = time.monotonic()
        self._ensure_workers()
        workers = self.num_workers

        # Ship phase: drain this op's state journals and encode batch
        # arguments as shared memory.  When the op's task partitioning
        # is the state key partitioning (``op.state_aligned``), a shard's
        # delta goes only to the worker that owns the shard — its tasks
        # are the only readers of those keys.  Otherwise deltas are
        # broadcast: operators may partition *tasks* by a coarser key
        # than the state store shards by (e.g. tumbling-window
        # aggregation partitions on window start alone, while state
        # hashes the full group key), so each worker keeps a full
        # synchronized replica and task routing alone is sticky.
        ship_started = time.monotonic()
        aligned = getattr(op, "state_aligned", False)
        deltas_by_worker = [[] for _ in range(workers)]
        for handle in op.state_handles():
            handle_idx = self._handle_tokens[id(handle)]
            for shard_i, (puts, removes) in handle.collect_sync_delta().items():
                entry = (handle_idx, shard_i, puts, removes)
                if aligned:
                    deltas_by_worker[shard_i % workers].append(entry)
                else:
                    for deltas in deltas_by_worker:
                        deltas.append(entry)
        shared = []
        tasks_by_worker = [[] for _ in range(workers)]
        for shard_i, args in enumerate(payloads):
            if args is None:
                continue
            encoded = []
            for arg in args:
                if isinstance(arg, RecordBatch):
                    batch = self._take_preshipped(arg)
                    if batch is None:
                        batch = SharedBatch.encode(arg)
                    shared.append(batch)
                    encoded.append(batch)
                else:
                    encoded.append(arg)
            tasks_by_worker[shard_i % workers].append((shard_i, tuple(encoded)))

        messages = {}
        for w in range(workers):
            if deltas_by_worker[w] or tasks_by_worker[w]:
                messages[w] = pickle.dumps(
                    ("stage", seq, token, method,
                     deltas_by_worker[w], tasks_by_worker[w]),
                    protocol=_PROTO)
        ipc_bytes = sum(len(m) for m in messages.values())
        ipc_bytes += sum(b.ipc_bytes for b in shared)

        results = {}
        task_seconds = {}
        attempts = {
            shard_i: 1
            for w in messages for shard_i, _ in tasks_by_worker[w]
        }
        retries = 0
        merge_seconds = 0.0
        worker_failures = dict.fromkeys(range(workers), 0)
        deadlines = {}
        pending = {}  # slot -> outstanding message bytes (resent on respawn)

        def dispatch(slot, message):
            # Retained first so fail_worker can resend it even when this
            # very send is what discovers the worker died.
            pending[slot] = message
            deadlines[slot] = time.monotonic() + self._task_timeout
            try:
                self._workers[slot].conn.send_bytes(message)
            except (OSError, ValueError) as exc:
                raise _WorkerDied(f"send to worker {slot}: {exc}") from exc

        def fail_worker(slot, reason):
            nonlocal retries
            worker_failures[slot] += 1
            retries += 1
            if worker_failures[slot] > self._max_retries:
                raise TaskFailure(
                    f"process worker {slot} failed {worker_failures[slot]} "
                    f"times during stage {label!r}: {reason}"
                )
            for shard_i, _ in _stage_tasks(pending[slot]):
                if shard_i not in results:
                    attempts[shard_i] = attempts.get(shard_i, 0) + 1
            message = pending[slot]
            self._respawn(slot)
            dispatch(slot, message)

        try:
            with tracing.trace_span(f"executor:stage:{method}",
                                    epoch=ctx.epoch_id):
                for w, message in messages.items():
                    try:
                        dispatch(w, message)
                    except _WorkerDied as died:
                        fail_worker(w, died)
                ship_seconds = time.monotonic() - ship_started

                while pending:
                    now = time.monotonic()
                    conns = {
                        self._workers[w].conn: w for w in pending
                    }
                    timeout = max(0.0, min(deadlines.values()) - now)
                    ready = connection.wait(list(conns), timeout=timeout)
                    for conn in ready:
                        w = conns[conn]
                        merge_started = time.monotonic()
                        try:
                            msg = pickle.loads(conn.recv_bytes())
                        except (EOFError, OSError) as exc:
                            fail_worker(w, f"worker died: {exc}")
                            continue
                        merge_seconds += time.monotonic() - merge_started
                        kind = msg[0]
                        if kind == "fault":
                            _merge_fault_state(msg[1])
                            continue
                        if kind != "ok" or msg[1] != seq:
                            continue  # stale reply from a killed stage
                        _merge_fault_state(msg[3])
                        handle = self._workers[w]
                        retry_tasks = []
                        for shard_i, success, value, seconds in msg[2]:
                            handle.busy_seconds += seconds
                            handle.tasks_run += 1
                            if success:
                                results[shard_i] = value
                                task_seconds[shard_i] = (
                                    task_seconds.get(shard_i, 0.0) + seconds)
                                _record_task_span(
                                    label, ctx, shard_i, seconds, handle)
                            else:
                                attempts[shard_i] = attempts.get(shard_i, 0) + 1
                                retries += 1
                                if attempts[shard_i] > self._max_retries + 1:
                                    raise TaskFailure(
                                        f"task {(label, ctx.epoch_id, shard_i)} "
                                        f"failed {attempts[shard_i]} times: "
                                        f"{value}"
                                    )
                                retry_tasks.append(
                                    (shard_i, _stage_task_args(
                                        pending[w], shard_i)))
                        pending.pop(w, None)
                        deadlines.pop(w, None)
                        if retry_tasks:
                            dispatch(w, pickle.dumps(
                                ("stage", seq, token, method, [], retry_tasks),
                                protocol=_PROTO))
                    if not ready:
                        expired = [
                            w for w, d in deadlines.items()
                            if time.monotonic() >= d
                        ]
                        for w in expired:
                            self._drain_fault_reports(w)
                            fail_worker(
                                w, f"no reply within {self._task_timeout}s")
        finally:
            for batch in shared:
                batch.release()

        wall = time.monotonic() - started
        self._record_stage(ctx, label, wall, ship_seconds, merge_seconds,
                           ipc_bytes, task_seconds, attempts, retries)
        return [results.get(i) for i in range(len(payloads))]

    def _drain_fault_reports(self, slot: int) -> None:
        """Pull any queued eager fault reports off a worker's pipe before
        killing it (a hung worker reported its fault, then slept)."""
        handle = self._workers[slot]
        if handle is None:
            return
        try:
            while handle.conn.poll(0):
                msg = pickle.loads(handle.conn.recv_bytes())
                if msg[0] == "fault":
                    _merge_fault_state(msg[1])
        except (EOFError, OSError):
            pass

    def _record_stage(self, ctx, label, wall, ship_seconds, merge_seconds,
                      ipc_bytes, task_seconds, attempts, retries) -> None:
        now = time.monotonic()
        worker_stats = []
        for handle in self._workers:
            if handle is None:
                continue
            alive = max(now - handle.spawned_at, 1e-9)
            worker_stats.append({
                "worker": handle.slot,
                "generation": handle.generation,
                "tasks": handle.tasks_run,
                "busy_seconds": handle.busy_seconds,
                "utilization": min(handle.busy_seconds / alive, 1.0),
            })
        report = {
            "num_tasks": len(task_seconds),
            "wall_seconds": wall,
            "tasks": [
                {
                    "seconds": task_seconds[shard_i],
                    "attempts": attempts.get(shard_i, 1),
                    "speculative_won": False,
                    "task_id": str((label, ctx.epoch_id, shard_i)),
                }
                for shard_i in sorted(task_seconds)
            ],
            "retries": retries,
            "speculative_launched": 0,
            "speculative_won": 0,
            "executor": {
                "type": "process",
                "num_workers": self.num_workers,
                "ipc_bytes": ipc_bytes,
                "ship_seconds": ship_seconds,
                "merge_seconds": merge_seconds,
                "worker_deaths": self.worker_deaths,
                "workers": worker_stats,
            },
        }
        if self._scheduler is not None:
            self._scheduler.record_stage_report(report)
        metrics.count("executor.ipc_bytes", ipc_bytes)
        metrics.observe("executor.ship_seconds", ship_seconds)
        metrics.observe("executor.merge_seconds", merge_seconds)


def _record_task_span(label, ctx, shard_i: int, seconds: float,
                      handle) -> None:
    """Driver-side ``task:<op>:shard<i>`` span for a worker-run task.

    Workers null their tracer at fork (its lock may be mid-acquire),
    so task spans are reconstructed here from the worker's reported
    duration — keeping trace coverage identical across executors."""
    tracer = tracing.active()
    if tracer is None:
        return
    op = label[0] if isinstance(label, tuple) else label
    stack = tracer._stack()
    end = time.perf_counter()
    tracer.record({
        "name": f"task:{op}:shard{shard_i}",
        "id": next(tracer._ids),
        "parent": stack[-1].id if stack else None,
        "start_us": (end - seconds - tracer.started_at) * 1e6,
        "duration_us": seconds * 1e6,
        "tid": handle.proc.pid,
        "thread": f"repro-pworker-{handle.slot}",
        "args": {"epoch": ctx.epoch_id, "shard": shard_i,
                 "worker": handle.slot},
    })


def _stage_tasks(message: bytes) -> list:
    """Decode the task list of a retained stage message."""
    return pickle.loads(message)[5]


def _stage_task_args(message: bytes, shard_i: int):
    """Decode one shard's encoded args from a retained stage message."""
    for candidate, args in _stage_tasks(message):
        if candidate == shard_i:
            return args
    raise KeyError(shard_i)
