"""Fine-grained task scheduler with speculation and retries (§6.2).

A stage is a set of independent tasks (one per input partition or state
shard, as in the microbatch engine's epochs).  Worker threads pull tasks
from a shared queue — that *is* dynamic load balancing: a slow worker
simply pulls fewer tasks.  The scheduler additionally provides:

* **fault recovery** — a failed task is retried (possibly elsewhere)
  without restarting the stage;
* **straggler mitigation** — when idle workers exist and a running task
  has taken noticeably longer than the median completed task, a backup
  copy is launched and whichever attempt finishes first wins (§6.2);
* **rescaling** — workers can be added or removed between stages.

Tasks must be idempotent (they may run twice under speculation), the
same requirement Spark places on its tasks.

``run_stage`` returns results keyed **in task submission order** (not
completion order), so downstream merges are deterministic regardless of
worker timing; per-task wall time and attempt counts are recorded in
:attr:`TaskScheduler.last_stage_report` and summarized across stages by
:meth:`TaskScheduler.stage_metrics` (straggler tuning + progress
reporting, §7.4).
"""

from __future__ import annotations

import queue
import threading
import time
from collections import deque
from dataclasses import dataclass, field

from repro.observability import metrics
from repro.testing.faults import fault_point


class TaskFailure(Exception):
    """A task exhausted its retry budget."""


@dataclass
class Task:
    """One schedulable unit of work."""

    task_id: object
    fn: callable
    args: tuple = ()

    def run(self):
        return self.fn(*self.args)


@dataclass
class _Attempt:
    task: Task
    attempt: int
    speculative: bool = False
    started_at: float = field(default=0.0)


class _StageState:
    """Bookkeeping for one run_stage call."""

    def __init__(self, tasks):
        self.lock = threading.Lock()
        self.results = {}
        self.failures = {}
        self.attempts_launched = {t.task_id: 0 for t in tasks}
        self.running = {}  # task_id -> {attempt number: _Attempt}
        self.durations = []
        #: task_id -> {"seconds", "attempts", "speculative_won"} for the
        #: winning attempt (satellite: per-task wall time + attempts).
        self.task_stats = {}
        self.error = None
        self.done = threading.Event()
        self.remaining = {t.task_id for t in tasks}
        self.speculative_launches = 0
        self.speculative_wins = 0
        self.retries = 0


class TaskScheduler:
    """A pool of worker threads executing stages of tasks."""

    def __init__(self, num_workers: int, max_retries: int = 3,
                 speculation: bool = True, speculation_multiplier: float = 2.0,
                 speculation_min_seconds: float = 0.05,
                 injectors=(), stage_history: int = 256,
                 executor: str = "thread", task_timeout: float = 60.0):
        self._max_retries = max_retries
        self._speculation = speculation
        self._speculation_multiplier = speculation_multiplier
        self._speculation_min_seconds = speculation_min_seconds
        #: Callables ``(task_id, worker_id, attempt)`` run at task start;
        #: they may sleep (straggler) or raise (failure).
        self.injectors = list(injectors)

        self._queue = queue.Queue()
        self._workers = {}
        self._next_worker_id = 0
        self._shutdown = threading.Event()
        self._stage = None
        self._stage_lock = threading.Lock()
        #: Report of the most recent completed stage (see _stage_report).
        self.last_stage_report = None
        self._stage_records = deque(maxlen=stage_history)
        #: Execution backend for *operator shard stages*: "thread" runs
        #: them on this pool's threads; "process" routes them to a
        #: persistent forked worker pool (true multicore, §6.2).  The
        #: thread pool stays alive either way — closure-based stages
        #: (source reads) are not picklable and keep using it.
        self.executor = executor
        self.process_pool = None
        if executor == "process":
            from repro.cluster.process_pool import ProcessPool

            self.process_pool = ProcessPool(
                num_workers, max_retries=max_retries,
                task_timeout=task_timeout, scheduler=self)
        elif executor != "thread":
            raise ValueError(f"unknown executor {executor!r}")
        for _ in range(num_workers):
            self._add_worker()

    # ------------------------------------------------------------------
    # Worker management (rescaling, §2.3)
    # ------------------------------------------------------------------
    @property
    def num_workers(self) -> int:
        """Current live worker count."""
        return sum(1 for alive in self._workers.values() if alive["alive"])

    def _add_worker(self) -> int:
        worker_id = self._next_worker_id
        self._next_worker_id += 1
        record = {"alive": True}
        thread = threading.Thread(
            target=self._worker_loop, args=(worker_id, record),
            name=f"worker-{worker_id}", daemon=True,
        )
        record["thread"] = thread
        self._workers[worker_id] = record
        thread.start()
        return worker_id

    def add_workers(self, n: int) -> list:
        """Scale up by ``n`` workers; returns their ids."""
        return [self._add_worker() for _ in range(n)]

    def remove_workers(self, n: int) -> None:
        """Scale down by ``n`` workers (they exit after their current task)."""
        victims = [wid for wid, rec in self._workers.items() if rec["alive"]][:n]
        for wid in victims:
            self._workers[wid]["alive"] = False

    def shutdown(self) -> None:
        """Stop all workers (thread and process)."""
        self._shutdown.set()
        for rec in self._workers.values():
            rec["alive"] = False
        if self.process_pool is not None:
            self.process_pool.shutdown()

    def bind_engine(self, engine) -> None:
        """Attach a (re)built engine: the process pool re-forks against
        its compiled plan and state.  No-op for the thread executor."""
        if self.process_pool is not None:
            self.process_pool.bind(engine)

    # ------------------------------------------------------------------
    # Stage execution
    # ------------------------------------------------------------------
    def run_stage(self, tasks, timeout: float = 60.0) -> dict:
        """Run tasks to completion; returns ``{task_id: result}``.

        The returned dict is ordered by task **submission order**, not
        completion order, so iterating it (or zipping with the submitted
        task list) is deterministic under any worker timing.  Raises
        :class:`TaskFailure` if any task exhausts its retries.  Only one
        stage runs at a time (as within one microbatch epoch).
        """
        tasks = list(tasks)
        if not tasks:
            return {}
        with self._stage_lock:
            state = _StageState(tasks)
            self._stage = state
            started = time.monotonic()
            for task in tasks:
                self._enqueue(state, task)
            speculator = threading.Thread(
                target=self._speculation_loop, args=(state,), daemon=True
            )
            if self._speculation:
                speculator.start()
            finished = state.done.wait(timeout)
            self._stage = None
            if not finished:
                raise TimeoutError(f"stage did not finish within {timeout}s")
            if state.error is not None:
                raise state.error
            self._record_stage(state, tasks, time.monotonic() - started)
            return {t.task_id: state.results[t.task_id] for t in tasks}

    def _record_stage(self, state: _StageState, tasks, wall_seconds) -> None:
        report = {
            "num_tasks": len(tasks),
            "wall_seconds": wall_seconds,
            # Stringify ids: task_id may be any hashable (tuples here),
            # and the report is JSON-logged via EpochProgress.to_json.
            "tasks": [
                dict(state.task_stats[t.task_id], task_id=str(t.task_id))
                for t in tasks
            ],
            "retries": state.retries,
            "speculative_launched": state.speculative_launches,
            "speculative_won": state.speculative_wins,
        }
        self.last_stage_report = report
        self._stage_records.append(report)

    def record_stage_report(self, report: dict) -> None:
        """Record a stage report produced by an external executor (the
        process pool), in the same schema as :meth:`_record_stage`."""
        self.last_stage_report = report
        self._stage_records.append(report)

    @property
    def stage_reports(self) -> list:
        """Recorded per-stage reports, oldest first (bounded history)."""
        return list(self._stage_records)

    def stage_metrics(self) -> dict:
        """Summary across recorded stages (feeds straggler tuning and the
        progress reporter): p50/p95/max task wall time, total attempts,
        retries, speculations launched and won."""
        durations = []
        attempts = 0
        retries = 0
        spec_launched = 0
        spec_won = 0
        num_tasks = 0
        for report in self._stage_records:
            for stats in report["tasks"]:
                durations.append(stats["seconds"])
                attempts += stats["attempts"]
            num_tasks += report["num_tasks"]
            retries += report["retries"]
            spec_launched += report["speculative_launched"]
            spec_won += report["speculative_won"]
        durations.sort()

        def quantile(q: float):
            if not durations:
                return None
            return durations[min(int(q * len(durations)), len(durations) - 1)]

        return {
            "num_stages": len(self._stage_records),
            "num_tasks": num_tasks,
            "task_seconds_p50": quantile(0.50),
            "task_seconds_p95": quantile(0.95),
            "task_seconds_max": durations[-1] if durations else None,
            "attempts": attempts,
            "retries": retries,
            "speculative_launched": spec_launched,
            "speculative_won": spec_won,
        }

    def _enqueue(self, state: _StageState, task: Task,
                 speculative: bool = False) -> None:
        with state.lock:
            attempt = state.attempts_launched[task.task_id]
            state.attempts_launched[task.task_id] = attempt + 1
        self._queue.put((state, _Attempt(task, attempt, speculative)))

    # ------------------------------------------------------------------
    # Worker loop
    # ------------------------------------------------------------------
    def _worker_loop(self, worker_id: int, record: dict) -> None:
        while record["alive"] and not self._shutdown.is_set():
            try:
                state, attempt = self._queue.get(timeout=0.05)
            except queue.Empty:
                continue
            task = attempt.task
            with state.lock:
                if task.task_id not in state.remaining:
                    continue  # another attempt already finished it
                attempt.started_at = time.monotonic()
                state.running.setdefault(task.task_id, {})[attempt.attempt] = attempt
            metrics.count("scheduler.task_attempts")
            try:
                for injector in self.injectors:
                    injector(task.task_id, worker_id, attempt.attempt)
                fault_point("scheduler.task", task_id=task.task_id,
                            worker_id=worker_id, attempt=attempt.attempt)
                result = task.run()
            except Exception as exc:
                self._on_failure(state, task, attempt, exc)
            else:
                self._on_success(state, task, attempt, result)

    def _on_success(self, state: _StageState, task: Task, attempt: _Attempt, result) -> None:
        with state.lock:
            if task.task_id in state.remaining:
                state.remaining.discard(task.task_id)
                state.results[task.task_id] = result
                seconds = time.monotonic() - attempt.started_at
                state.durations.append(seconds)
                metrics.observe("scheduler.task_seconds", seconds)
                state.task_stats[task.task_id] = {
                    "seconds": seconds,
                    "attempts": state.attempts_launched[task.task_id],
                    "speculative_won": attempt.speculative,
                }
                if attempt.speculative:
                    state.speculative_wins += 1
                    metrics.count("scheduler.speculative_won")
            state.running.get(task.task_id, {}).pop(attempt.attempt, None)
            if not state.remaining:
                state.done.set()

    def _on_failure(self, state: _StageState, task: Task, attempt: _Attempt, exc) -> None:
        with state.lock:
            state.running.get(task.task_id, {}).pop(attempt.attempt, None)
            if task.task_id not in state.remaining:
                return  # a different attempt already succeeded
            failures = state.failures.get(task.task_id, 0) + 1
            state.failures[task.task_id] = failures
            if failures > self._max_retries:
                state.error = TaskFailure(
                    f"task {task.task_id} failed {failures} times: {exc}"
                )
                state.done.set()
                return
            state.retries += 1
        metrics.count("scheduler.retries")
        self._enqueue(state, task)  # fine-grained recovery: rerun just this task

    # ------------------------------------------------------------------
    # Speculation (straggler mitigation, §6.2)
    # ------------------------------------------------------------------
    def _speculation_loop(self, state: _StageState) -> None:
        while not state.done.wait(0.01):
            with state.lock:
                if not state.durations:
                    continue
                median = sorted(state.durations)[len(state.durations) // 2]
                threshold = max(
                    median * self._speculation_multiplier,
                    self._speculation_min_seconds,
                )
                now = time.monotonic()
                candidates = []
                for task_id in state.remaining:
                    attempts = state.running.get(task_id, {})
                    if len(attempts) != 1:
                        continue  # not running, or already speculated
                    (attempt,) = attempts.values()
                    if attempt.started_at and now - attempt.started_at > threshold:
                        candidates.append(attempt.task)
                if not self._queue.empty():
                    candidates = []  # workers are busy; no idle capacity
                for task in candidates:
                    state.speculative_launches += 1
                    metrics.count("scheduler.speculative_launched")
            for task in candidates:
                self._enqueue(state, task, speculative=True)
