"""Analytical cluster scaling model, calibrated by measurement (Fig 6b).

The paper runs the Yahoo! benchmark on 1–20 EC2 c3.2xlarge nodes
(8 virtual cores each) and observes near-linear scaling: 11.5M records/s
on one node to 225M records/s on twenty.  A single laptop cannot host
that cluster, so — per the reproduction's substitution rule — the
multi-node numbers come from this model, *calibrated* by measuring the
real single-core throughput of each engine implementation on this
machine.

The model captures the two effects the paper's execution design implies:

* work parallelizes across ``nodes * cores_per_node`` cores because the
  benchmark pipeline is a map + a keyed aggregation whose partial
  aggregates parallelize perfectly (one Kafka partition per core, §9.1);
* per-epoch coordination (driver bookkeeping, commit barrier) grows
  mildly with the cluster size, costing a small efficiency factor.
"""

from __future__ import annotations


class ClusterPerformanceModel:
    """Max stable throughput as a function of cluster size."""

    def __init__(self, per_core_records_per_second: float,
                 cores_per_node: int = 8,
                 coordination_overhead_per_node: float = 0.0015,
                 shuffle_overhead_fraction: float = 0.02):
        if per_core_records_per_second <= 0:
            raise ValueError("per-core rate must be positive")
        self.per_core_rate = per_core_records_per_second
        self.cores_per_node = cores_per_node
        #: Fractional efficiency lost per extra node (epoch barrier cost).
        self.coordination_overhead_per_node = coordination_overhead_per_node
        #: Fractional cost of the map->reduce shuffle on multi-node runs.
        self.shuffle_overhead_fraction = shuffle_overhead_fraction

    def efficiency(self, nodes: int) -> float:
        """Parallel efficiency in (0, 1] for a cluster of ``nodes``."""
        if nodes < 1:
            raise ValueError("need at least one node")
        coordination = self.coordination_overhead_per_node * (nodes - 1)
        shuffle = self.shuffle_overhead_fraction if nodes > 1 else 0.0
        return 1.0 / (1.0 + coordination + shuffle)

    def max_throughput(self, nodes: int) -> float:
        """Records/second at max stable load for ``nodes`` nodes."""
        return nodes * self.cores_per_node * self.per_core_rate * self.efficiency(nodes)

    def sweep(self, node_counts) -> list:
        """[(nodes, records_per_second)] for a list of cluster sizes."""
        return [(n, self.max_throughput(n)) for n in node_counts]

    def speedup(self, nodes: int) -> float:
        """Throughput relative to a single node."""
        return self.max_throughput(nodes) / self.max_throughput(1)
