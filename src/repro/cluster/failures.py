"""Fault and straggler injection for scheduler tests (§2.3, §7.5).

Injectors are callables the scheduler invokes at task start; they decide
whether this (task, worker, attempt) should fail or run slowly.  Keeping
them separate from the scheduler makes failure scenarios declarative in
tests and benchmarks.
"""

from __future__ import annotations

import threading
import time


class FailureInjector:
    """Fail specific task attempts.

    ``plan`` maps ``task_id -> number of times it should fail`` before
    succeeding; a worker set restricts failures to those workers.
    """

    def __init__(self, plan: dict, on_workers=None):
        self._remaining = dict(plan)
        self._on_workers = set(on_workers) if on_workers is not None else None
        self._lock = threading.Lock()
        self.injected = []

    def __call__(self, task_id, worker_id: int, attempt: int) -> None:
        if self._on_workers is not None and worker_id not in self._on_workers:
            return
        with self._lock:
            remaining = self._remaining.get(task_id, 0)
            if remaining <= 0:
                return
            self._remaining[task_id] = remaining - 1
            self.injected.append((task_id, worker_id, attempt))
        raise RuntimeError(f"injected failure: task {task_id} on worker {worker_id}")


class SlowdownInjector:
    """Make specific (task, worker) combinations stragglers.

    ``delay`` seconds of extra sleep are added when a slow worker picks
    up a matching task — the scheduler's speculation should launch a
    backup copy elsewhere and use whichever finishes first (§6.2).
    """

    def __init__(self, slow_workers, delay: float, task_ids=None):
        self._slow_workers = set(slow_workers)
        self._delay = delay
        self._task_ids = set(task_ids) if task_ids is not None else None
        self.slowed = []
        self._lock = threading.Lock()

    def __call__(self, task_id, worker_id: int, attempt: int) -> None:
        if worker_id not in self._slow_workers:
            return
        if self._task_ids is not None and task_id not in self._task_ids:
            return
        with self._lock:
            self.slowed.append((task_id, worker_id, attempt))
        time.sleep(self._delay)
