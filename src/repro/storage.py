"""Filesystem helpers: JSON-lines data files and atomic writes.

The paper's deployments use Parquet on S3/HDFS; our durable format is
JSON-lines (human-readable, like the paper's write-ahead log, §1) with
atomic rename-based commits, preserving the properties the engine relies
on: durability, atomic visibility of a completed file, and idempotent
re-writes.
"""

from __future__ import annotations

import json
import os
import tempfile

from repro.observability import metrics
from repro.testing.faults import fault_point


def atomic_write_text(path: str, text: str) -> None:
    """Write a file so readers never observe a partial write.

    Writes to a temp file in the same directory, fsyncs, then renames —
    the same recipe the real Structured Streaming HDFS log uses.  The
    three fault points bracket the protocol's crash windows: content
    written but unsynced, synced but invisible, and visible.
    """
    atomic_write_stream(path, (text,))


def atomic_write_stream(path: str, chunks) -> None:
    """Atomic write from an iterable of text chunks.

    Same protocol and fault points as :func:`atomic_write_text`, but the
    content streams through a bounded buffer — the tiered state store's
    sorted runs can be far larger than its memtable budget, so they must
    never exist as one in-memory string.
    """
    directory = os.path.dirname(path) or "."
    os.makedirs(directory, exist_ok=True)
    fd, tmp_path = tempfile.mkstemp(dir=directory, prefix=".tmp-")
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as f:
            for chunk in chunks:
                f.write(chunk)
            f.flush()
            fault_point("storage.write", path=path, tmp_path=tmp_path)
            os.fsync(f.fileno())
            metrics.count("storage.fsyncs")
        fault_point("storage.fsync", path=path, tmp_path=tmp_path)
        os.replace(tmp_path, path)
        fault_point("storage.rename", path=path)
        metrics.count("storage.atomic_writes")
    except BaseException:
        if os.path.exists(tmp_path):
            os.unlink(tmp_path)
        raise


def atomic_write_json(path: str, payload) -> None:
    """Atomically write a JSON document (pretty-printed, human-readable)."""
    atomic_write_text(path, json.dumps(payload, indent=2, sort_keys=True))


def read_json(path: str):
    """Read one JSON document."""
    with open(path, encoding="utf-8") as f:
        return json.load(f)


def write_jsonl(path: str, rows) -> None:
    """Atomically write rows as JSON-lines."""
    atomic_write_text(path, "".join(json.dumps(row) + "\n" for row in rows))


def read_jsonl(path: str) -> list:
    """Read a JSON-lines file into a list of dicts."""
    rows = []
    with open(path, encoding="utf-8") as f:
        for line in f:
            line = line.strip()
            if line:
                rows.append(json.loads(line))
    return rows


def repair_torn_tail(directory: str, suffix: str = ".json") -> list:
    """Remove the newest file in ``directory`` if it is unreadable JSON.

    Under the atomic-write protocol only the file in flight at a crash
    can be torn, and it is always the newest entry of its log; a torn
    *older* entry is real corruption, so only the tail is quarantined —
    recovery then treats the write as never having happened.  Returns
    the paths removed (0 or 1).
    """
    names = list_files(directory, suffix)
    if not names:
        return []
    path = os.path.join(directory, names[-1])
    try:
        read_json(path)
    except (ValueError, OSError):
        os.unlink(path)
        return [path]
    return []


def list_files(directory: str, suffix: str = "") -> list:
    """Sorted non-hidden files in a directory (empty if missing)."""
    if not os.path.isdir(directory):
        return []
    names = [
        n for n in os.listdir(directory)
        if not n.startswith(".") and n.endswith(suffix)
    ]
    return sorted(names)
