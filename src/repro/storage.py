"""Filesystem helpers: JSON-lines data files and atomic writes.

The paper's deployments use Parquet on S3/HDFS; our durable format is
JSON-lines (human-readable, like the paper's write-ahead log, §1) with
atomic rename-based commits, preserving the properties the engine relies
on: durability, atomic visibility of a completed file, and idempotent
re-writes.
"""

from __future__ import annotations

import json
import os
import tempfile
import threading
from contextlib import contextmanager

from repro.observability import metrics
from repro.testing.faults import fault_point

#: Thread-local fsync deferral (see :func:`deferred_fsync`): when a
#: :class:`SyncGroup` is installed on the current thread, atomic writes
#: skip their per-file fsync and register their parent directory with
#: the group instead.  Durability then arrives at ``group.sync()``.
_deferral = threading.local()


def fsync_dir(path: str) -> None:
    """fsync a directory, making its completed renames durable.

    On POSIX filesystems an ``os.replace`` into a directory is durable
    once the *directory* is synced; one directory fsync therefore covers
    every rename batched into it since the last sync — the group-commit
    protocol the pipelined engine uses (§6.1 latency optimizations).
    """
    fd = os.open(path, os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


class SyncGroup:
    """Batches the durability step of many atomic-visibility writes.

    Writers rename files into place immediately (readers see completed
    files, exactly as with :func:`atomic_write_text`) and register each
    destination directory here; :meth:`sync` then fsyncs every distinct
    pending directory once.  Crash semantics are unchanged in kind —
    only the in-flight temp file of the *current* write can be torn, and
    it is always the newest entry of its log, so ``repair_torn_tail``
    applies identically — but the window of renamed-yet-unsynced files
    is bounded by the caller's sync cadence instead of being empty.

    Thread-safe: the pipelined engine's background flusher and the
    engine thread may note paths into one group concurrently.
    """

    def __init__(self):
        self._dirs = set()
        self._lock = threading.Lock()

    def note(self, path: str) -> None:
        """Record that ``path`` was renamed into place and awaits sync."""
        with self._lock:
            self._dirs.add(os.path.dirname(path) or ".")

    @property
    def pending_dirs(self) -> list:
        with self._lock:
            return sorted(self._dirs)

    def sync(self) -> int:
        """fsync every pending directory once; returns how many."""
        with self._lock:
            dirs = sorted(self._dirs)
            self._dirs.clear()
        for directory in dirs:
            fsync_dir(directory)
        if dirs:
            metrics.count("storage.fsyncs", len(dirs))
            metrics.count("storage.group_syncs")
        return len(dirs)


@contextmanager
def deferred_fsync(group: SyncGroup):
    """Defer this thread's atomic-write fsyncs into ``group``.

    Within the block, :func:`atomic_write_stream` (and everything built
    on it) skips the per-file fsync and notes the destination directory
    with ``group``; the caller owns the later ``group.sync()``.  Used by
    the pipelined engine for state-checkpoint and sink writes whose
    durability may lag their visibility (the recovery contract replays
    them from the WAL).
    """
    previous = getattr(_deferral, "group", None)
    _deferral.group = group
    try:
        yield group
    finally:
        _deferral.group = previous


def group_write_text(path: str, text: str, group: SyncGroup,
                     extra_point: str = None, **ctx) -> None:
    """Atomic-visibility write whose durability is deferred to ``group``.

    Same temp-file + rename protocol (and the same ``storage.*`` fault
    points) as :func:`atomic_write_text`, but the file fsync is replaced
    by registering the parent directory with ``group`` — one directory
    fsync at ``group.sync()`` then covers every write batched since the
    previous sync.  ``extra_point`` names an additional fault point fired
    while the temp file is in flight (the WAL's group-commit window).
    """
    directory = os.path.dirname(path) or "."
    os.makedirs(directory, exist_ok=True)
    fd, tmp_path = tempfile.mkstemp(dir=directory, prefix=".tmp-")
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as f:
            f.write(text)
            f.flush()
        fault_point("storage.write", path=path, tmp_path=tmp_path)
        if extra_point is not None:
            fault_point(extra_point, path=path, tmp_path=tmp_path, **ctx)
        # No file fsync here (that is the point), but the crash window it
        # marks still exists — fire the same point so every schedule that
        # tears or drops a sequential write can hit the grouped one too.
        fault_point("storage.fsync", path=path, tmp_path=tmp_path)
        os.replace(tmp_path, path)
        fault_point("storage.rename", path=path)
        group.note(path)
        metrics.count("storage.atomic_writes")
    except BaseException:
        if os.path.exists(tmp_path):
            os.unlink(tmp_path)
        raise


def atomic_write_text(path: str, text: str) -> None:
    """Write a file so readers never observe a partial write.

    Writes to a temp file in the same directory, fsyncs, then renames —
    the same recipe the real Structured Streaming HDFS log uses.  The
    three fault points bracket the protocol's crash windows: content
    written but unsynced, synced but invisible, and visible.
    """
    atomic_write_stream(path, (text,))


def atomic_write_stream(path: str, chunks) -> None:
    """Atomic write from an iterable of text chunks.

    Same protocol and fault points as :func:`atomic_write_text`, but the
    content streams through a bounded buffer — the tiered state store's
    sorted runs can be far larger than its memtable budget, so they must
    never exist as one in-memory string.
    """
    directory = os.path.dirname(path) or "."
    os.makedirs(directory, exist_ok=True)
    # A thread-local SyncGroup (see deferred_fsync) replaces the
    # per-file fsync with one later directory fsync; the rename-based
    # visibility protocol and its fault points are unchanged.
    group = getattr(_deferral, "group", None)
    fd, tmp_path = tempfile.mkstemp(dir=directory, prefix=".tmp-")
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as f:
            for chunk in chunks:
                f.write(chunk)
            f.flush()
            fault_point("storage.write", path=path, tmp_path=tmp_path)
            if group is None:
                os.fsync(f.fileno())
                metrics.count("storage.fsyncs")
        fault_point("storage.fsync", path=path, tmp_path=tmp_path)
        os.replace(tmp_path, path)
        fault_point("storage.rename", path=path)
        if group is not None:
            group.note(path)
        metrics.count("storage.atomic_writes")
    except BaseException:
        if os.path.exists(tmp_path):
            os.unlink(tmp_path)
        raise


def atomic_write_json(path: str, payload) -> None:
    """Atomically write a JSON document (pretty-printed, human-readable)."""
    atomic_write_text(path, json.dumps(payload, indent=2, sort_keys=True))


def read_json(path: str):
    """Read one JSON document."""
    with open(path, encoding="utf-8") as f:
        return json.load(f)


def write_jsonl(path: str, rows) -> None:
    """Atomically write rows as JSON-lines."""
    atomic_write_text(path, "".join(json.dumps(row) + "\n" for row in rows))


def read_jsonl(path: str) -> list:
    """Read a JSON-lines file into a list of dicts."""
    rows = []
    with open(path, encoding="utf-8") as f:
        for line in f:
            line = line.strip()
            if line:
                rows.append(json.loads(line))
    return rows


def repair_torn_tail(directory: str, suffix: str = ".json") -> list:
    """Remove the newest file in ``directory`` if it is unreadable JSON.

    Under the atomic-write protocol only the file in flight at a crash
    can be torn, and it is always the newest entry of its log; a torn
    *older* entry is real corruption, so only the tail is quarantined —
    recovery then treats the write as never having happened.  Returns
    the paths removed (0 or 1).
    """
    names = list_files(directory, suffix)
    if not names:
        return []
    path = os.path.join(directory, names[-1])
    try:
        read_json(path)
    except (ValueError, OSError):
        os.unlink(path)
        return [path]
    return []


def list_files(directory: str, suffix: str = "") -> list:
    """Sorted non-hidden files in a directory (empty if missing)."""
    if not os.path.isdir(directory):
        return []
    names = [
        n for n in os.listdir(directory)
        if not n.startswith(".") and n.endswith(suffix)
    ]
    return sorted(names)
