"""Reproduction of "Structured Streaming: A Declarative API for
Real-Time Applications in Apache Spark" (SIGMOD 2018).

Quickstart::

    from repro import Session, functions as F

    session = Session()
    data = session.read_stream.json("/in", schema)
    counts = data.group_by("country").count()
    query = (counts.write_stream.format("file").option("path", "/counts")
             .output_mode("complete").start("/checkpoints/counts"))
    query.process_all_available()

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-figure reproductions.
"""

from repro.sql import functions
from repro.sql.session import Session
from repro.sql.types import StructField, StructType
from repro.bus import Broker
from repro.sources import MemoryStream

__all__ = [
    "Broker",
    "MemoryStream",
    "Session",
    "StructField",
    "StructType",
    "functions",
]

__version__ = "1.0.0"
