"""Text dashboard over a query's structured event log (§7.4).

Every epoch appends one JSON line to ``<checkpoint>/events.jsonl``
(see :mod:`repro.streaming.progress`); this tool turns that log into
the monitoring view the paper says operators need (§2.3): processing
rate, backlog, state size, watermarks and their lag, plus — when the
observability layer was enabled — the engine's per-phase time
breakdown, per-operator row counts, scheduler task stats and
continuous-mode latency percentiles.

Usable as a CLI::

    python -m repro.tools.monitor <checkpoint-dir-or-events.jsonl>
    python -m repro.tools.monitor <path> --follow   # live, like top(1)
    python -m repro.tools.monitor <path> --window 50
    python -m repro.tools.monitor <path> --serve --port 9464  # OpenMetrics

A ``postmortem.json`` path works anywhere ``events.jsonl`` does: the
dashboard (and the bottleneck panel) then replays the flight recorder's
last epochs instead of the live log.

or programmatically: ``render(load_events(path))`` returns the
dashboard as a string.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

from repro.observability import bottleneck as bottleneck_model


def resolve_events_path(path: str) -> str:
    """Accept either an ``events.jsonl`` file or a checkpoint dir."""
    if os.path.isdir(path):
        return os.path.join(path, "events.jsonl")
    return path


def load_events(path: str) -> list:
    """Parse the event log into a list of per-epoch dicts.

    Accepts an ``events.jsonl`` file, a checkpoint directory containing
    one, or a ``postmortem.json`` flight-recorder dump (whose buffered
    epochs replay through the same dashboard).  Tolerates a torn final
    line (the query may be appending while we read) by skipping
    unparseable lines.
    """
    path = resolve_events_path(path)
    events = []
    if not os.path.exists(path):
        return events
    if path.endswith(".json"):
        from repro.observability.flightrec import load_postmortem

        doc = load_postmortem(path)
        return list(doc.get("epochs", ())) if doc else []
    with open(path, encoding="utf-8") as f:
        for line in f:
            line = line.strip()
            if not line:
                continue
            try:
                events.append(json.loads(line))
            except ValueError:
                continue
    return events


# ----------------------------------------------------------------------
# Formatting helpers
# ----------------------------------------------------------------------
def _fmt_rate(value) -> str:
    if value is None:
        return "-"
    if value >= 1e6:
        return f"{value / 1e6:.2f}M/s"
    if value >= 1e3:
        return f"{value / 1e3:.1f}k/s"
    return f"{value:.1f}/s"


def _fmt_count(value) -> str:
    if value is None:
        return "-"
    if value >= 1e6:
        return f"{value / 1e6:.2f}M"
    if value >= 1e4:
        return f"{value / 1e3:.1f}k"
    return str(int(value))


def _fmt_seconds(value) -> str:
    if value is None:
        return "-"
    if value >= 1.0:
        return f"{value:.2f}s"
    if value >= 0.001:
        return f"{value * 1e3:.1f}ms"
    return f"{value * 1e6:.0f}us"


def _fmt_bytes(value) -> str:
    if value is None:
        return "-"
    if value >= 1e9:
        return f"{value / 1e9:.2f}GB"
    if value >= 1e6:
        return f"{value / 1e6:.1f}MB"
    if value >= 1e3:
        return f"{value / 1e3:.1f}kB"
    return f"{int(value)}B"


def _bar(fraction: float, width: int = 20) -> str:
    filled = int(round(max(0.0, min(1.0, fraction)) * width))
    return "#" * filled + "." * (width - filled)


# ----------------------------------------------------------------------
# Dashboard
# ----------------------------------------------------------------------
def render(events: list, window: int = 20) -> str:
    """Render the dashboard for ``events`` (newest epochs dominate)."""
    if not events:
        return "no epochs recorded yet\n"
    recent = events[-window:]
    last = events[-1]
    lines = []

    total_in = sum(e.get("numInputRows", 0) for e in recent)
    # Retract-mode epochs deliver delete+insert delta rows; the *net*
    # row count (sum of weights) is the true table growth, so rates are
    # computed from it when present — a retraction-heavy window used to
    # read as inflated throughput.
    total_out = sum(
        e.get("numOutputRowsNet", e.get("numOutputRows", 0)) for e in recent
    )
    total_delivered = sum(e.get("numOutputRows", 0) for e in recent)
    total_seconds = sum(e.get("durationSeconds", 0.0) for e in recent)
    rate = total_in / total_seconds if total_seconds > 0 else None
    lines.append(
        f"epoch {last.get('epoch', '?')}  "
        f"({len(events)} epochs logged, window={len(recent)})"
    )
    out_note = ""
    if total_delivered != total_out:
        out_note = f" ({_fmt_count(total_delivered)} delivered)"
    lines.append(
        f"  input rate    {_fmt_rate(rate):>10}   "
        f"rows in/out {_fmt_count(total_in)}/{_fmt_count(total_out)}"
        f"{out_note}   "
        f"epoch time {_fmt_seconds(last.get('durationSeconds'))}"
    )
    lines.append(
        f"  backlog       {_fmt_count(last.get('backlogRows')):>10}   "
        f"state keys {_fmt_count(last.get('stateKeys'))}   "
        f"late dropped {_fmt_count(sum(e.get('lateRowsDropped', 0) for e in recent))}"
    )

    watermarks = last.get("watermarks", {})
    if isinstance(watermarks, dict) and watermarks.get("watermarks"):
        watermarks = watermarks["watermarks"]
    if watermarks:
        trigger_time = last.get("triggerTime")
        for column, value in sorted(watermarks.items()):
            lag = ""
            if (isinstance(value, (int, float))
                    and isinstance(trigger_time, (int, float))
                    and 0 <= trigger_time - value < 10 * 365 * 86400):
                lag = f"   lag {_fmt_seconds(trigger_time - value)}"
            lines.append(f"  watermark     {column} = {value}{lag}")

    # End-to-end event-time lag (ingest -> this stage's epoch end),
    # propagated through stream-table cascades.
    lags = sorted(
        e["eventTimeLagSeconds"] for e in recent
        if isinstance(e.get("eventTimeLagSeconds"), (int, float))
    )
    if lags:
        def _pct(q):
            return lags[min(len(lags) - 1, int(q * len(lags)))]
        newest = next(
            e["eventTimeLagSeconds"] for e in reversed(recent)
            if isinstance(e.get("eventTimeLagSeconds"), (int, float))
        )
        lines.append(
            f"  event-time lag  p50 {_fmt_seconds(_pct(0.50))}   "
            f"p95 {_fmt_seconds(_pct(0.95))}   "
            f"p99 {_fmt_seconds(_pct(0.99))}   "
            f"last {_fmt_seconds(newest)}"
        )

    # Where is the time going? (bottleneck attribution over the window;
    # requires stage timings, i.e. observability on when recorded.)
    attribution = bottleneck_model.attribute_events(recent)
    if attribution:
        lines.append(
            f"  bottleneck    {attribution['name']}  "
            f"({100 * attribution['share']:.1f}% of "
            f"{_fmt_seconds(attribution['total_seconds'])} over "
            f"{attribution['epochs']} epochs)"
        )
        for entry in attribution["breakdown"][:5]:
            lines.append(
                f"    {entry['name']:<22} {_bar(entry['share'])} "
                f"{_fmt_seconds(entry['seconds']):>8}  "
                f"{100 * entry['share']:5.1f}%"
            )

    # Engine phase breakdown (requires REPRO_METRICS/observability on).
    phase_totals = {}
    for event in recent:
        for phase, seconds in event.get("stageTimings", {}).items():
            phase_totals[phase] = phase_totals.get(phase, 0.0) + seconds
    if phase_totals:
        lines.append("  stage time breakdown (window total):")
        grand = sum(phase_totals.values()) or 1.0
        for phase, seconds in sorted(
                phase_totals.items(), key=lambda kv: -kv[1]):
            lines.append(
                f"    {phase:<14} {_bar(seconds / grand)} "
                f"{_fmt_seconds(seconds):>8}  {100 * seconds / grand:5.1f}%"
            )

    op_totals = {}
    for event in recent:
        for op, stats in event.get("operatorMetrics", {}).items():
            slot = op_totals.setdefault(op, {"rows_out": 0, "seconds": 0.0})
            slot["rows_out"] += stats.get("rows_out", 0)
            slot["seconds"] += stats.get("seconds", 0.0)
    if op_totals:
        lines.append("  operators (window total):")
        for op, stats in sorted(
                op_totals.items(), key=lambda kv: -kv[1]["seconds"]):
            lines.append(
                f"    {op:<14} rows_out {_fmt_count(stats['rows_out']):>8}  "
                f"time {_fmt_seconds(stats['seconds'])}"
            )

    tasks = last.get("taskMetrics", {})
    if tasks.get("tasks"):
        seconds = sorted(t["seconds"] for t in tasks["tasks"])
        lines.append(
            f"  tasks         {tasks.get('num_tasks', len(seconds))} per stage   "
            f"slowest {_fmt_seconds(seconds[-1])}   "
            f"retries {tasks.get('retries', 0)}   "
            f"speculated {tasks.get('speculative_launched', 0)}"
            f" (won {tasks.get('speculative_won', 0)})"
        )

    # Process-executor stats (taskMetrics carry an "executor" section
    # when the stage ran on the process pool).
    executor = tasks.get("executor") or {}
    if executor:
        ipc_window = sum(
            (e.get("taskMetrics") or {}).get("executor", {}).get(
                "ipc_bytes", 0)
            for e in recent
        )
        epoch_seconds = last.get("durationSeconds")
        overhead = ""
        ship = executor.get("ship_seconds", 0.0)
        merge = executor.get("merge_seconds", 0.0)
        if isinstance(epoch_seconds, (int, float)) and epoch_seconds > 0:
            overhead = (f"   ipc overhead {100 * (ship + merge) / epoch_seconds:.1f}%"
                        " of epoch")
        lines.append(
            f"  executor      {executor.get('type', '?')} x "
            f"{executor.get('num_workers', '?')} workers   "
            f"ipc {_fmt_bytes(ipc_window)} (window)   "
            f"ship {_fmt_seconds(ship)}   merge {_fmt_seconds(merge)}   "
            f"deaths {executor.get('worker_deaths', 0)}{overhead}"
        )
        for stats in executor.get("workers", []):
            util = stats.get("utilization", 0.0)
            lines.append(
                f"    worker {stats.get('worker', '?')} "
                f"gen{stats.get('generation', '?')}  {_bar(util)} "
                f"{100 * util:5.1f}%  tasks {stats.get('tasks', 0)}  "
                f"busy {_fmt_seconds(stats.get('busy_seconds'))}"
            )

    latency = last.get("latencyPercentiles", {})
    if latency:
        lines.append(
            f"  record latency  p50 {_fmt_seconds(latency.get('p50'))}   "
            f"p95 {_fmt_seconds(latency.get('p95'))}   "
            f"p99 {_fmt_seconds(latency.get('p99'))}   "
            f"(n={_fmt_count(latency.get('count'))})"
        )
    return "\n".join(lines) + "\n"


# ----------------------------------------------------------------------
# OpenMetrics replay/export
# ----------------------------------------------------------------------
def registry_from_events(events: list, window: int = 20):
    """Synthesize a :class:`MetricsRegistry` from logged epochs.

    Lets ``--serve`` expose a Prometheus endpoint for a query that ran
    without a live registry (or crashed): counters accumulate over all
    events, gauges take the newest value, and per-epoch durations and
    event-time lags fill the standard histograms — same metric names as
    the live engine's, so dashboards work unchanged.
    """
    from repro.observability.metrics import MetricsRegistry

    registry = MetricsRegistry()
    for event in events:
        registry.counter("engine.epochs").inc()
        registry.counter("engine.rows_in").inc(event.get("numInputRows", 0))
        registry.counter("engine.rows_out").inc(event.get("numOutputRows", 0))
        registry.counter("engine.late_rows_dropped").inc(
            event.get("lateRowsDropped", 0))
        duration = event.get("durationSeconds")
        if isinstance(duration, (int, float)):
            registry.histogram("engine.epoch_seconds").record(duration)
        lag = event.get("eventTimeLagSeconds")
        if isinstance(lag, (int, float)):
            registry.histogram("engine.event_time_lag_seconds").record(lag)
            registry.gauge("engine.event_time_lag").set(lag)
        registry.gauge("engine.backlog_rows").set(event.get("backlogRows"))
        registry.gauge("engine.state_keys").set(event.get("stateKeys"))
        trigger_time = event.get("triggerTime")
        watermarks = event.get("watermarks") or {}
        if isinstance(watermarks, dict) and watermarks.get("watermarks"):
            watermarks = watermarks["watermarks"]
        for column, value in watermarks.items():
            if isinstance(value, (int, float)) \
                    and isinstance(trigger_time, (int, float)):
                registry.gauge(f"engine.watermark_lag.{column}").set(
                    max(0.0, trigger_time - value))
        for op, stats in (event.get("operatorMetrics") or {}).items():
            registry.counter(f"op.{op}.rows_out").inc(
                stats.get("rows_out", 0))
    attribution = bottleneck_model.attribute_events(events[-window:])
    if attribution:
        registry.gauge("engine.bottleneck_share").set(attribution["share"])
    return registry


def serve_events(path: str, port: int = 0, window: int = 20):
    """Serve ``path`` (events.jsonl / checkpoint dir / postmortem.json)
    as an OpenMetrics endpoint; re-reads the file on every scrape.
    Returns the running :class:`MetricsServer`."""
    from repro.observability.serve import MetricsServer

    def render_exposition():
        events = load_events(path)
        return registry_from_events(events, window=window).to_openmetrics()

    return MetricsServer(port=port, render=render_exposition)


def main(argv=None) -> str:
    """CLI entry point; returns the last rendered dashboard."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.tools.monitor",
        description="Dashboard over a streaming query's events.jsonl",
    )
    parser.add_argument("path", help="checkpoint directory, events.jsonl, "
                                     "or postmortem.json")
    parser.add_argument("--window", type=int, default=20,
                        help="epochs aggregated in the rolling view")
    parser.add_argument("--follow", action="store_true",
                        help="re-render every --interval seconds")
    parser.add_argument("--interval", type=float, default=2.0)
    parser.add_argument("--serve", action="store_true",
                        help="expose the event log as an OpenMetrics "
                             "(Prometheus) endpoint instead of rendering")
    parser.add_argument("--port", type=int, default=9464,
                        help="port for --serve (default 9464; 0 = free)")
    parser.add_argument("--serve-seconds", type=float, default=None,
                        help="with --serve: exit after this many seconds "
                             "(default: serve until interrupted)")
    args = parser.parse_args(argv)

    if args.serve:
        server = serve_events(args.path, port=args.port, window=args.window)
        url = server.url
        print(f"serving OpenMetrics at {url}")
        try:
            if args.serve_seconds is not None:
                time.sleep(args.serve_seconds)
            else:
                while True:
                    time.sleep(3600)
        except KeyboardInterrupt:
            pass
        finally:
            server.close()
        return url

    text = render(load_events(args.path), window=args.window)
    print(text, end="")
    while args.follow:
        try:
            time.sleep(args.interval)
        except KeyboardInterrupt:
            break
        text = render(load_events(args.path), window=args.window)
        print("\n" + text, end="")
    return text


if __name__ == "__main__":
    sys.exit(0 if main() else 1)
