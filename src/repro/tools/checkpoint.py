"""Checkpoint inspection and manual-rollback tooling (§7.2).

The paper stores the write-ahead log "in human-readable JSON format that
administrators can use to restart [an application] from an arbitrary
point".  This module is the administrator's side of that workflow:

* :func:`describe_checkpoint` — summarize a query's checkpoint: epochs,
  commit status, per-source offsets, watermarks, state-store versions
  and sizes;
* :func:`rollback_checkpoint` — discard epochs after a chosen point so
  the next restart recomputes from that prefix.

Also usable as a CLI::

    python -m repro.tools.checkpoint describe <checkpoint-dir>
    python -m repro.tools.checkpoint rollback <checkpoint-dir> <epoch>
"""

from __future__ import annotations

import json
import os
import sys

from repro.storage import list_files, read_json
from repro.streaming.wal import WriteAheadLog


def describe_checkpoint(checkpoint_dir: str) -> dict:
    """Summarize a checkpoint directory as a JSON-friendly dict."""
    wal = WriteAheadLog(checkpoint_dir)
    logged = wal.logged_epochs()
    committed = set(wal.committed_epochs())

    epochs = []
    for epoch in logged:
        entry = wal.read_offsets(epoch)
        epochs.append({
            "epoch": epoch,
            "committed": epoch in committed,
            "sources": entry.get("sources", {}),
            "watermarks": entry.get("watermarks", {}).get("watermarks", {}),
            "trigger_time": entry.get("trigger_time"),
        })

    state = {}
    state_dir = os.path.join(checkpoint_dir, "state")
    if os.path.isdir(state_dir):
        for operator in sorted(os.listdir(state_dir)):
            op_dir = os.path.join(state_dir, operator)
            if not os.path.isdir(op_dir):
                continue
            checkpoints = list_files(op_dir, ".json")
            versions = sorted({
                int(name.split(".")[0]) for name in checkpoints
            })
            snapshots = [n for n in checkpoints if ".snapshot." in n]
            latest_keys = None
            if snapshots:
                latest_keys = len(
                    read_json(os.path.join(op_dir, snapshots[-1]))["data"]
                )
            state[operator] = {
                "versions": versions,
                "num_checkpoints": len(checkpoints),
                "keys_at_last_snapshot": latest_keys,
            }

    return {
        "checkpoint_dir": checkpoint_dir,
        "metadata": wal.read_metadata(),
        "num_epochs": len(logged),
        "latest_epoch": logged[-1] if logged else None,
        "latest_committed": wal.latest_committed_epoch(),
        "uncommitted": [e for e in logged if e not in committed],
        "epochs": epochs,
        "state": state,
    }


def rollback_checkpoint(checkpoint_dir: str, epoch: int) -> dict:
    """Roll the checkpoint back to ``epoch`` (§7.2 manual rollback).

    All log entries after ``epoch`` are discarded; the next query started
    on this checkpoint recomputes from that prefix.  Returns a summary of
    what was removed.  State checkpoints are left in place — restore
    picks the right version, and newer ones are simply unused.
    """
    wal = WriteAheadLog(checkpoint_dir)
    logged = wal.logged_epochs()
    if epoch >= 0 and epoch not in logged:
        raise ValueError(
            f"epoch {epoch} not found in the log (epochs: {logged})"
        )
    removed = [e for e in logged if e > epoch]
    wal.rollback_to(epoch)
    return {"rolled_back_to": epoch, "epochs_removed": removed}


def main(argv=None) -> int:
    """CLI entry point."""
    argv = list(sys.argv[1:] if argv is None else argv)
    if len(argv) >= 2 and argv[0] == "describe":
        print(json.dumps(describe_checkpoint(argv[1]), indent=2))
        return 0
    if len(argv) >= 3 and argv[0] == "rollback":
        print(json.dumps(rollback_checkpoint(argv[1], int(argv[2])), indent=2))
        return 0
    print(__doc__, file=sys.stderr)
    return 2


if __name__ == "__main__":
    raise SystemExit(main())
