"""Operator tooling for inspecting and administering checkpoints."""

from repro.tools.checkpoint import describe_checkpoint, rollback_checkpoint

__all__ = ["describe_checkpoint", "rollback_checkpoint"]
