"""A Kafka-like durable message bus (substrate for replayable sources).

The paper requires input sources to be *replayable*: partitioned logs with
stable offsets that can be re-read after a failure (§3, §6.1).  This
package provides exactly that contract in-process: topics divided into
append-only partitions, each a sequence of records addressable by integer
offset, with optional retention trimming.
"""

from repro.bus.broker import Broker, Topic, TopicPartition

__all__ = ["Broker", "Topic", "TopicPartition"]
