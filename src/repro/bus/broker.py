"""In-process partitioned log broker.

Semantics follow the subset of Kafka the paper depends on (§4.2's partial
order, §6.1's offset-based epochs):

* each topic has a fixed number of partitions;
* each partition is an append-only ordered log; records within a partition
  are totally ordered, records across partitions are not;
* consumers address data by ``(partition, offset)`` and can re-read any
  retained range — this is what makes sources replayable;
* ``trim(before)`` models retention: rollbacks are possible only while the
  log still holds the data (§7.2).

Storage is *chunked*, as in real Kafka (producers send record batches):
a chunk is either a list of record dicts or a columnar
:class:`~repro.sql.batch.RecordBatch` segment.  Consumers choose their
decode path — ``read`` materializes per-record objects (what a
record-at-a-time engine does with a fetched batch), while
``read_columnar`` slices columns directly (what a vectorized reader
does).  The decode asymmetry between the engines in the evaluation is
therefore architectural, not an artifact of the bus.

Thread safety: appends and reads take a per-partition lock so the
continuous-mode workers, the microbatch master and producers can share a
broker.
"""

from __future__ import annotations

import threading


class _Chunk:
    """One appended batch: row dicts or a columnar segment."""

    __slots__ = ("base_offset", "rows", "batch")

    def __init__(self, base_offset: int, rows=None, batch=None):
        self.base_offset = base_offset
        self.rows = rows
        self.batch = batch

    @property
    def length(self) -> int:
        return len(self.rows) if self.rows is not None else self.batch.num_rows

    @property
    def end_offset(self) -> int:
        return self.base_offset + self.length

    def slice_rows(self, lo: int, hi: int) -> list:
        """Records at chunk-relative positions [lo, hi) as dicts.

        For columnar segments this materializes one object per record —
        the per-record decode a row-at-a-time consumer performs on a
        fetched batch (kept as tight as Python allows so the baseline
        engines aren't penalized beyond their architecture).
        """
        if self.rows is not None:
            return self.rows[lo:hi]
        batch = self.batch.slice(lo, hi)
        names = batch.schema.names
        columns = [batch.columns[n].tolist() for n in names]
        return [dict(zip(names, values)) for values in zip(*columns)]

    def slice_batch(self, lo: int, hi: int, schema):
        """Records at chunk-relative positions [lo, hi) as a RecordBatch."""
        from repro.sql.batch import RecordBatch

        if self.batch is not None:
            batch = self.batch if (lo == 0 and hi == self.length) \
                else self.batch.slice(lo, hi)
            if schema is not None and batch.schema.names != schema.names:
                batch = batch.select(schema.names)
            return batch
        return RecordBatch.from_rows(self.rows[lo:hi], schema)


class TopicPartition:
    """One append-only log: the unit of ordering and parallelism."""

    def __init__(self, topic: str, index: int):
        self.topic = topic
        self.index = index
        self._chunks = []
        self._base_offset = 0  # oldest retained offset
        self._next_offset = 0
        self._lock = threading.Lock()

    @property
    def end_offset(self) -> int:
        """Offset one past the last record (the next offset to be written)."""
        with self._lock:
            return self._next_offset

    @property
    def begin_offset(self) -> int:
        """Oldest retained offset."""
        with self._lock:
            return self._base_offset

    # ------------------------------------------------------------------
    # Produce
    # ------------------------------------------------------------------
    def append(self, record) -> int:
        """Append one record; returns its offset."""
        with self._lock:
            offset = self._next_offset
            self._chunks.append(_Chunk(offset, rows=[record]))
            self._next_offset = offset + 1
            return offset

    def append_many(self, records) -> int:
        """Append a batch of record dicts; returns the new end offset."""
        records = list(records)
        if not records:
            return self.end_offset
        with self._lock:
            self._chunks.append(_Chunk(self._next_offset, rows=records))
            self._next_offset += len(records)
            return self._next_offset

    def append_batch(self, batch) -> int:
        """Append a columnar segment; returns the new end offset."""
        if batch.num_rows == 0:
            return self.end_offset
        with self._lock:
            self._chunks.append(_Chunk(self._next_offset, batch=batch))
            self._next_offset += batch.num_rows
            return self._next_offset

    # ------------------------------------------------------------------
    # Consume
    # ------------------------------------------------------------------
    def _chunk_ranges(self, start: int, end: int):
        """Yield (chunk, lo, hi) covering offsets [start, end)."""
        if start < self._base_offset:
            raise LookupError(
                f"offsets [{start}, {end}) of {self.topic}/{self.index} "
                f"trimmed (oldest retained: {self._base_offset})"
            )
        for chunk in self._chunks:
            if chunk.end_offset <= start:
                continue
            if chunk.base_offset >= end:
                break
            lo = max(start, chunk.base_offset) - chunk.base_offset
            hi = min(end, chunk.end_offset) - chunk.base_offset
            yield chunk, lo, hi

    def read(self, start: int, end: int) -> list:
        """Records in ``[start, end)`` as dicts (object decode path).

        Raises ``LookupError`` if part of the range has been trimmed —
        the engine treats this as "cannot roll back that far" (§7.2).
        """
        with self._lock:
            parts = list(self._chunk_ranges(start, end))
        rows = []
        for chunk, lo, hi in parts:
            rows.extend(chunk.slice_rows(lo, hi))
        return rows

    def read_columnar(self, start: int, end: int, schema):
        """Records in ``[start, end)`` as one RecordBatch (vectorized
        decode path: columnar segments are sliced, not re-parsed)."""
        from repro.sql.batch import RecordBatch

        with self._lock:
            parts = list(self._chunk_ranges(start, end))
        batches = [chunk.slice_batch(lo, hi, schema) for chunk, lo, hi in parts]
        if not batches:
            return RecordBatch.empty(schema)
        return RecordBatch.concat(batches, schema)

    # ------------------------------------------------------------------
    # Retention
    # ------------------------------------------------------------------
    def trim(self, before: int) -> None:
        """Discard records with offsets below ``before`` (retention).

        Trimming happens at chunk granularity, like Kafka's segment
        deletion: a chunk is dropped only when entirely below the mark.
        """
        with self._lock:
            keep = []
            new_base = self._base_offset
            for chunk in self._chunks:
                if chunk.end_offset <= before:
                    new_base = max(new_base, chunk.end_offset)
                else:
                    keep.append(chunk)
            self._chunks = keep
            self._base_offset = max(self._base_offset, min(before, new_base))


class Topic:
    """A named set of partitions."""

    def __init__(self, name: str, num_partitions: int):
        if num_partitions < 1:
            raise ValueError("a topic needs at least one partition")
        self.name = name
        self.partitions = [TopicPartition(name, i) for i in range(num_partitions)]

    @property
    def num_partitions(self) -> int:
        return len(self.partitions)

    def publish(self, record, key=None) -> int:
        """Publish one record, hash-partitioned by key (round-robin-ish
        by object identity when no key is given)."""
        index = hash(key) % len(self.partitions) if key is not None \
            else id(record) % len(self.partitions)
        return self.partitions[index].append(record)

    def publish_to(self, partition: int, records) -> int:
        """Append record dicts directly to one partition; returns the new
        end offset."""
        return self.partitions[partition].append_many(records)

    def publish_batch_to(self, partition: int, batch) -> int:
        """Append a columnar segment to one partition."""
        return self.partitions[partition].append_batch(batch)

    def end_offsets(self) -> dict:
        """Current end offset per partition, keyed by stringified index
        (JSON-friendly, matching the WAL format)."""
        return {str(p.index): p.end_offset for p in self.partitions}

    def total_records(self) -> int:
        """Number of retained records across partitions."""
        return sum(p.end_offset - p.begin_offset for p in self.partitions)


class Broker:
    """Registry of topics; the "cluster" handle applications share."""

    def __init__(self):
        self._topics = {}
        self._lock = threading.Lock()

    def create_topic(self, name: str, num_partitions: int = 1) -> Topic:
        """Create a topic (error if it exists)."""
        with self._lock:
            if name in self._topics:
                raise ValueError(f"topic {name!r} already exists")
            topic = Topic(name, num_partitions)
            self._topics[name] = topic
            return topic

    def topic(self, name: str) -> Topic:
        """Look up an existing topic."""
        with self._lock:
            try:
                return self._topics[name]
            except KeyError:
                raise LookupError(f"no such topic: {name!r}") from None

    def get_or_create(self, name: str, num_partitions: int = 1) -> Topic:
        """Look up a topic, creating it if missing."""
        with self._lock:
            if name not in self._topics:
                self._topics[name] = Topic(name, num_partitions)
            return self._topics[name]
