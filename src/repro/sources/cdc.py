"""CDC-style in-memory change stream: inserts, updates and deletes.

The weighted twin of :class:`repro.sources.memory.MemoryStream`: every
record carries a ``__weight__`` of ``+1`` (insert) or ``-1`` (delete);
an update is a delete/insert pair appended atomically.  Downstream, the
incrementalizer treats any plan fed by such a stream as a Z-set
pipeline (see :mod:`repro.streaming.zset`), maintaining aggregates,
distinct tables and joins under retraction.

Like MemoryStream, the object is its own descriptor, is fully retained
(any epoch can be replayed after a crash) and is single-partition.
"""

from __future__ import annotations

import threading
import time

from repro.sql.batch import RecordBatch
from repro.sql.types import StructType
from repro.sources.base import Source, SourceDescriptor, ingest_floor_from_segments
from repro.streaming.zset import WEIGHT_COLUMN, weighted_schema

PARTITION = "0"


class ChangeStream(Source, SourceDescriptor):
    """A single-partition, fully retained stream of weighted changes."""

    name = "cdc"

    def __init__(self, schema):
        #: Schema of the user's rows, without the weight column.
        self.data_schema = (
            schema if isinstance(schema, StructType) else StructType(tuple(schema))
        )
        if WEIGHT_COLUMN in self.data_schema:
            raise ValueError(
                f"the change stream schema must not contain {WEIGHT_COLUMN!r}; "
                "weights are attached by insert()/delete()/update()"
            )
        #: Schema the engine sees: user columns + ``__weight__``.
        self.schema = weighted_schema(self.data_schema)
        self._rows = []
        #: [(row count after append, ingest timestamp)] per producer call
        #: (an update's -1/+1 pairs share one segment, like one commit).
        self._ingest = []
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    # Producer API
    # ------------------------------------------------------------------
    def _stamp(self, rows, weight: int) -> list:
        stamped = []
        for row in rows:
            if WEIGHT_COLUMN in row:
                raise ValueError(
                    f"rows must not carry {WEIGHT_COLUMN!r} explicitly"
                )
            stamped.append({**row, WEIGHT_COLUMN: weight})
        return stamped

    def _append(self, stamped: list, ingest_time) -> None:
        with self._lock:
            self._rows.extend(stamped)
            if stamped:
                self._ingest.append((
                    len(self._rows),
                    time.time() if ingest_time is None else float(ingest_time),
                ))

    def insert(self, rows, ingest_time: float = None) -> None:
        """Append rows (list of dicts) with weight +1."""
        self._append(self._stamp(rows, 1), ingest_time)

    def delete(self, rows, ingest_time: float = None) -> None:
        """Retract rows previously inserted (matched by value), weight -1."""
        self._append(self._stamp(rows, -1), ingest_time)

    def update(self, old_rows, new_rows, ingest_time: float = None) -> None:
        """Replace ``old_rows`` with ``new_rows`` atomically: the -1/+1
        pairs land in one offset range, so no epoch ever observes the
        delete without its replacement."""
        self._append(
            self._stamp(old_rows, -1) + self._stamp(new_rows, 1), ingest_time)

    def ingest_floor(self, start: dict, end: dict):
        """Oldest ingest timestamp in ``[start, end)``, or None."""
        with self._lock:
            return ingest_floor_from_segments(
                self._ingest, start.get(PARTITION, 0), end.get(PARTITION, 0))

    # ------------------------------------------------------------------
    # Source / descriptor contract
    # ------------------------------------------------------------------
    def create(self) -> "ChangeStream":
        return self

    def partitions(self) -> list:
        return [PARTITION]

    def initial_offsets(self) -> dict:
        return {PARTITION: 0}

    def latest_offsets(self) -> dict:
        with self._lock:
            return {PARTITION: len(self._rows)}

    def get_partition_batch(self, partition: str, start: int, end: int) -> RecordBatch:
        with self._lock:
            rows = self._rows[start:end]
        return RecordBatch.from_rows(rows, self.schema)

    def get_batch(self, start: dict, end: dict) -> RecordBatch:
        return self.get_partition_batch(
            PARTITION, start.get(PARTITION, 0), end[PARTITION]
        )
