"""CDC-style in-memory change stream: inserts, updates and deletes.

The weighted twin of :class:`repro.sources.memory.MemoryStream`: every
record carries a ``__weight__`` of ``+1`` (insert) or ``-1`` (delete);
an update is a delete/insert pair appended atomically.  Downstream, the
incrementalizer treats any plan fed by such a stream as a Z-set
pipeline (see :mod:`repro.streaming.zset`), maintaining aggregates,
distinct tables and joins under retraction.

Like MemoryStream, the object is its own descriptor, is fully retained
(any epoch can be replayed after a crash) and is single-partition.
"""

from __future__ import annotations

import threading

from repro.sql.batch import RecordBatch
from repro.sql.types import StructType
from repro.sources.base import Source, SourceDescriptor
from repro.streaming.zset import WEIGHT_COLUMN, weighted_schema

PARTITION = "0"


class ChangeStream(Source, SourceDescriptor):
    """A single-partition, fully retained stream of weighted changes."""

    name = "cdc"

    def __init__(self, schema):
        #: Schema of the user's rows, without the weight column.
        self.data_schema = (
            schema if isinstance(schema, StructType) else StructType(tuple(schema))
        )
        if WEIGHT_COLUMN in self.data_schema:
            raise ValueError(
                f"the change stream schema must not contain {WEIGHT_COLUMN!r}; "
                "weights are attached by insert()/delete()/update()"
            )
        #: Schema the engine sees: user columns + ``__weight__``.
        self.schema = weighted_schema(self.data_schema)
        self._rows = []
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    # Producer API
    # ------------------------------------------------------------------
    def _stamp(self, rows, weight: int) -> list:
        stamped = []
        for row in rows:
            if WEIGHT_COLUMN in row:
                raise ValueError(
                    f"rows must not carry {WEIGHT_COLUMN!r} explicitly"
                )
            stamped.append({**row, WEIGHT_COLUMN: weight})
        return stamped

    def insert(self, rows) -> None:
        """Append rows (list of dicts) with weight +1."""
        stamped = self._stamp(rows, 1)
        with self._lock:
            self._rows.extend(stamped)

    def delete(self, rows) -> None:
        """Retract rows previously inserted (matched by value), weight -1."""
        stamped = self._stamp(rows, -1)
        with self._lock:
            self._rows.extend(stamped)

    def update(self, old_rows, new_rows) -> None:
        """Replace ``old_rows`` with ``new_rows`` atomically: the -1/+1
        pairs land in one offset range, so no epoch ever observes the
        delete without its replacement."""
        stamped = self._stamp(old_rows, -1) + self._stamp(new_rows, 1)
        with self._lock:
            self._rows.extend(stamped)

    # ------------------------------------------------------------------
    # Source / descriptor contract
    # ------------------------------------------------------------------
    def create(self) -> "ChangeStream":
        return self

    def partitions(self) -> list:
        return [PARTITION]

    def initial_offsets(self) -> dict:
        return {PARTITION: 0}

    def latest_offsets(self) -> dict:
        with self._lock:
            return {PARTITION: len(self._rows)}

    def get_partition_batch(self, partition: str, start: int, end: int) -> RecordBatch:
        with self._lock:
            rows = self._rows[start:end]
        return RecordBatch.from_rows(rows, self.schema)

    def get_batch(self, start: dict, end: dict) -> RecordBatch:
        return self.get_partition_batch(
            PARTITION, start.get(PARTITION, 0), end[PARTITION]
        )
