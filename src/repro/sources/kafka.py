"""Source reading from the in-process message bus (:mod:`repro.bus`).

Plays the role of the Kafka source in the paper's evaluation: topics are
presented as a series of partitions, each a log addressable by offset
(§6.1 step 1).  Records on the bus are plain dict rows; with
``records_are_json=True`` they are JSON strings and the source pays a
parse cost per record (used to model raw-JSON ingestion).
"""

from __future__ import annotations

import json

from repro.bus import Broker
from repro.sql.batch import RecordBatch
from repro.sql.types import StructType
from repro.sources.base import Source, SourceDescriptor


class KafkaSource(Source):
    """Replayable reader over one bus topic."""

    def __init__(self, broker: Broker, topic_name: str, schema: StructType,
                 records_are_json: bool = False):
        self._topic = broker.topic(topic_name)
        self.schema = schema
        self._records_are_json = records_are_json

    def partitions(self) -> list:
        return [str(p.index) for p in self._topic.partitions]

    def initial_offsets(self) -> dict:
        return {str(p.index): p.begin_offset for p in self._topic.partitions}

    def latest_offsets(self) -> dict:
        return self._topic.end_offsets()

    def get_partition_batch(self, partition: str, start: int, end: int) -> RecordBatch:
        """Vectorized decode: columnar bus segments are sliced directly;
        row chunks are converted (the decode cost a columnar reader pays
        once per fetch, not per operator)."""
        tp = self._topic.partitions[int(partition)]
        if self._records_are_json:
            rows = [json.loads(r) for r in tp.read(start, end)]
            return RecordBatch.from_rows(rows, self.schema)
        return tp.read_columnar(start, end, self.schema)

    def get_batch(self, start: dict, end: dict) -> RecordBatch:
        batches = []
        for partition in sorted(end):
            lo = start.get(partition, 0)
            hi = end[partition]
            if hi > lo:
                batches.append(self.get_partition_batch(partition, lo, hi))
        if not batches:
            return RecordBatch.empty(self.schema)
        return RecordBatch.concat(batches, self.schema)

    def commit(self, end: dict) -> None:
        """No-op: retention is managed by the broker, as with real Kafka."""


class KafkaSourceDescriptor(SourceDescriptor):
    """Recipe for attaching to a bus topic."""

    name = "kafka"

    def __init__(self, broker: Broker, topic_name: str, schema: StructType,
                 records_are_json: bool = False):
        self.broker = broker
        self.topic_name = topic_name
        self.schema = schema
        self.records_are_json = records_are_json

    def create(self) -> KafkaSource:
        return KafkaSource(
            self.broker, self.topic_name, self.schema, self.records_are_json
        )
