"""Directory-watching file source: the paper's quickstart scenario (§4.1).

New JSON-lines files continually appear in a directory; the source treats
the sorted file listing as a single-partition log whose offset is the
number of files.  Files must be added atomically (write-then-rename, as
:func:`repro.storage.write_jsonl` does) and never modified — the same
assumptions Spark's file source makes.
"""

from __future__ import annotations

import os

from repro.sql.batch import RecordBatch
from repro.sql.types import StructType
from repro.sources.base import Source, SourceDescriptor
from repro.storage import list_files, read_jsonl

PARTITION = "files"


class FileStreamSource(Source):
    """Replayable source over a growing directory of JSON-lines files."""

    def __init__(self, directory: str, schema: StructType, suffix: str = ".jsonl"):
        self._directory = directory
        self.schema = schema
        self._suffix = suffix

    def _listing(self) -> list:
        return list_files(self._directory, self._suffix)

    def partitions(self) -> list:
        return [PARTITION]

    def initial_offsets(self) -> dict:
        return {PARTITION: 0}

    def latest_offsets(self) -> dict:
        return {PARTITION: len(self._listing())}

    def get_partition_batch(self, partition: str, start: int, end: int) -> RecordBatch:
        rows = []
        for name in self._listing()[start:end]:
            rows.extend(read_jsonl(os.path.join(self._directory, name)))
        return RecordBatch.from_rows(rows, self.schema)

    def get_batch(self, start: dict, end: dict) -> RecordBatch:
        return self.get_partition_batch(
            PARTITION, start.get(PARTITION, 0), end[PARTITION]
        )


class FileSourceDescriptor(SourceDescriptor):
    """Recipe for watching a directory of JSON-lines files."""

    name = "file"

    def __init__(self, directory: str, schema: StructType, suffix: str = ".jsonl"):
        self.directory = directory
        self.schema = schema
        self.suffix = suffix

    def create(self) -> FileStreamSource:
        return FileStreamSource(self.directory, self.schema, self.suffix)
