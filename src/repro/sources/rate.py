"""Synthetic rate source: generates rows at a configurable rate.

Deterministically replayable by construction — row ``i`` always has
``value == i`` and ``timestamp == start + i / rows_per_second`` — making it
useful for load tests and the continuous-mode latency benchmark (§9.3).
"""

from __future__ import annotations

import time

import numpy as np

from repro.sql.batch import RecordBatch
from repro.sql.types import StructType
from repro.sources.base import Source, SourceDescriptor

PARTITION = "0"

RATE_SCHEMA = StructType((("timestamp", "timestamp"), ("value", "long")))


class RateSource(Source):
    """Generates ``rows_per_second`` rows per second from creation time."""

    def __init__(self, rows_per_second: float, clock=time.monotonic):
        self.schema = RATE_SCHEMA
        self._rate = float(rows_per_second)
        self._clock = clock
        self._start = clock()

    def partitions(self) -> list:
        return [PARTITION]

    def initial_offsets(self) -> dict:
        return {PARTITION: 0}

    def latest_offsets(self) -> dict:
        elapsed = self._clock() - self._start
        return {PARTITION: int(elapsed * self._rate)}

    def get_partition_batch(self, partition: str, start: int, end: int) -> RecordBatch:
        values = np.arange(start, end, dtype=np.int64)
        timestamps = self._start + values / self._rate
        return RecordBatch.from_columns(
            self.schema, timestamp=timestamps, value=values
        )

    def get_batch(self, start: dict, end: dict) -> RecordBatch:
        return self.get_partition_batch(
            PARTITION, start.get(PARTITION, 0), end[PARTITION]
        )


class RateSourceDescriptor(SourceDescriptor):
    """Recipe for a rate source (a fresh run restarts the clock)."""

    name = "rate"

    def __init__(self, rows_per_second: float):
        self.rows_per_second = rows_per_second
        self.schema = RATE_SCHEMA

    def create(self) -> RateSource:
        return RateSource(self.rows_per_second)
