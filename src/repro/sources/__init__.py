"""Streaming input sources.

All sources satisfy the paper's replayability contract (§3, §6.1): data is
addressed by per-partition integer offsets, and any retained offset range
can be re-read deterministically, which is what lets the engine recover
from failures and support manual rollback.
"""

from repro.sources.base import Source, SourceDescriptor
from repro.sources.kafka import KafkaSource, KafkaSourceDescriptor
from repro.sources.file import FileStreamSource, FileSourceDescriptor
from repro.sources.rate import RateSource, RateSourceDescriptor
from repro.sources.memory import MemoryStream
from repro.sources.cdc import ChangeStream

__all__ = [
    "ChangeStream",
    "FileSourceDescriptor",
    "FileStreamSource",
    "KafkaSource",
    "KafkaSourceDescriptor",
    "MemoryStream",
    "RateSource",
    "RateSourceDescriptor",
    "Source",
    "SourceDescriptor",
]
