"""In-memory test source, equivalent to Spark's ``MemoryStream``.

Tests and examples push rows with :meth:`MemoryStream.add_data`; the
engine reads them back by offset.  The stream retains everything, so any
epoch can be replayed — convenient for crash-recovery tests.
"""

from __future__ import annotations

import threading
import time

from repro.sql.batch import RecordBatch
from repro.sql.types import StructType
from repro.sources.base import Source, SourceDescriptor, ingest_floor_from_segments

PARTITION = "0"


class MemoryStream(Source, SourceDescriptor):
    """A single-partition, fully retained in-memory stream.

    Acts as its own descriptor: the object is shared between the test
    (producer) and the engine (consumer), surviving engine restarts the
    way an external message bus would.  Each append records its ingest
    timestamp, so the engine can report end-to-end event-time lag
    (``ingest_floor``); tests may pin ``ingest_time`` explicitly.
    """

    name = "memory"

    def __init__(self, schema):
        self.schema = schema if isinstance(schema, StructType) else StructType(tuple(schema))
        self._rows = []
        #: [(row count after append, ingest timestamp)] per add_data.
        self._ingest = []
        self._lock = threading.Lock()

    def add_data(self, rows, ingest_time: float = None) -> None:
        """Append rows (list of dicts) to the stream."""
        rows = list(rows)
        with self._lock:
            self._rows.extend(rows)
            if rows:
                self._ingest.append((
                    len(self._rows),
                    time.time() if ingest_time is None else float(ingest_time),
                ))

    def ingest_floor(self, start: dict, end: dict):
        """Oldest ingest timestamp in ``[start, end)``, or None."""
        with self._lock:
            return ingest_floor_from_segments(
                self._ingest, start.get(PARTITION, 0), end.get(PARTITION, 0))

    def create(self) -> "MemoryStream":
        return self

    def partitions(self) -> list:
        return [PARTITION]

    def initial_offsets(self) -> dict:
        return {PARTITION: 0}

    def latest_offsets(self) -> dict:
        with self._lock:
            return {PARTITION: len(self._rows)}

    def get_partition_batch(self, partition: str, start: int, end: int) -> RecordBatch:
        with self._lock:
            rows = self._rows[start:end]
        return RecordBatch.from_rows(rows, self.schema)

    def get_batch(self, start: dict, end: dict) -> RecordBatch:
        return self.get_partition_batch(
            PARTITION, start.get(PARTITION, 0), end[PARTITION]
        )
