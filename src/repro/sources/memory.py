"""In-memory test source, equivalent to Spark's ``MemoryStream``.

Tests and examples push rows with :meth:`MemoryStream.add_data`; the
engine reads them back by offset.  The stream retains everything, so any
epoch can be replayed — convenient for crash-recovery tests.
"""

from __future__ import annotations

import threading

from repro.sql.batch import RecordBatch
from repro.sql.types import StructType
from repro.sources.base import Source, SourceDescriptor

PARTITION = "0"


class MemoryStream(Source, SourceDescriptor):
    """A single-partition, fully retained in-memory stream.

    Acts as its own descriptor: the object is shared between the test
    (producer) and the engine (consumer), surviving engine restarts the
    way an external message bus would.
    """

    name = "memory"

    def __init__(self, schema):
        self.schema = schema if isinstance(schema, StructType) else StructType(tuple(schema))
        self._rows = []
        self._lock = threading.Lock()

    def add_data(self, rows) -> None:
        """Append rows (list of dicts) to the stream."""
        with self._lock:
            self._rows.extend(rows)

    def create(self) -> "MemoryStream":
        return self

    def partitions(self) -> list:
        return [PARTITION]

    def initial_offsets(self) -> dict:
        return {PARTITION: 0}

    def latest_offsets(self) -> dict:
        with self._lock:
            return {PARTITION: len(self._rows)}

    def get_partition_batch(self, partition: str, start: int, end: int) -> RecordBatch:
        with self._lock:
            rows = self._rows[start:end]
        return RecordBatch.from_rows(rows, self.schema)

    def get_batch(self, start: dict, end: dict) -> RecordBatch:
        return self.get_partition_batch(
            PARTITION, start.get(PARTITION, 0), end[PARTITION]
        )
