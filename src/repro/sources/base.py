"""Source interfaces.

A :class:`Source` exposes a partially ordered stream as per-partition
offset ranges (§4.2: records are totally ordered within a partition,
unordered across partitions).  The engine's contract with sources is:

* ``latest_offsets`` — what data exists right now (end of each partition);
* ``get_batch(start, end)`` — *replayable*: the same range must return the
  same records until ``commit`` allows their disposal;
* ``commit(end)`` — all data before ``end`` has been durably committed to
  the sink; the source may release it (e.g. retention trimming).

Offsets are ``{partition_name: int}`` dicts so they serialize directly
into the human-readable JSON write-ahead log (§1, §6.1).
"""

from __future__ import annotations

from repro.sql.batch import RecordBatch
from repro.sql.types import StructType


def ingest_floor_from_segments(segments, start: int, end: int):
    """Oldest ingest timestamp among rows with offsets in ``[start, end)``.

    ``segments`` is the append-time record the single-partition sources
    keep: ``[(row_count_after_append, ingest_timestamp), ...]`` — one
    entry per producer append, so segment ``i`` covers offsets
    ``[segments[i-1][0], segments[i][0])``.  Returns None when the range
    is empty or predates segment tracking.
    """
    if end <= start:
        return None
    floor = None
    previous = 0
    for upto, ingest_time in segments:
        if previous < end and upto > start and ingest_time is not None:
            if floor is None or ingest_time < floor:
                floor = ingest_time
        previous = upto
        if previous >= end:
            break
    return floor


class Source:
    """Base class for replayable streaming sources.

    Sources may additionally implement ``ingest_floor(start, end) ->
    float | None`` — the oldest wall-clock ingest timestamp in the
    offset range — which the engine uses (getattr-probed, optional) to
    report end-to-end event-time lag through cascades of stream tables.
    """

    schema: StructType

    def partitions(self) -> list:
        """Stable partition names."""
        raise NotImplementedError

    def initial_offsets(self) -> dict:
        """Offsets representing "before any data"."""
        raise NotImplementedError

    def latest_offsets(self) -> dict:
        """End offsets of all data currently available."""
        raise NotImplementedError

    def get_batch(self, start: dict, end: dict) -> RecordBatch:
        """Read records with offsets in ``[start, end)`` for each partition.

        Must be deterministic and repeatable for any retained range.
        """
        raise NotImplementedError

    def get_partition_batch(self, partition: str, start: int, end: int) -> RecordBatch:
        """Read one partition's range (used by per-partition task execution
        and the continuous engine)."""
        raise NotImplementedError

    def commit(self, end: dict) -> None:
        """Notify that data before ``end`` is durably processed (optional)."""

    def offsets_delta(self, start: dict, end: dict) -> int:
        """Number of records in ``[start, end)`` across partitions."""
        return sum(end[p] - start.get(p, 0) for p in end)


class SourceDescriptor:
    """A serializable-ish recipe for (re)attaching to a source.

    Logical plans hold descriptors rather than live sources so the same
    plan can be executed as a fresh application after a restart; the
    engine calls :meth:`create` once per run.
    """

    name = "source"

    def create(self) -> Source:
        """Instantiate (or re-attach to) the source."""
        raise NotImplementedError
