"""IoT sensor workload with configurable out-of-order arrival.

The paper motivates event time with "sensors, logs from mobile
applications, and the Internet of Things" whose records "may already
incur a delay just getting to the system" (§2.4).  This generator
produces sensor readings whose *arrival* order diverges from their
*event* order by a tunable lateness distribution — the stress case for
watermarks: with lateness below the threshold nothing should drop;
beyond it, exactly the too-late records should.
"""

from __future__ import annotations

import numpy as np

from repro.sql.types import StructType

IOT_SCHEMA = StructType((
    ("device_id", "long"),
    ("temperature", "double"),
    ("event_time", "timestamp"),
))


class IotWorkload:
    """Sensor readings with controlled delivery delays."""

    def __init__(self, num_devices: int = 20, seed: int = 17):
        self.num_devices = num_devices
        self._rng = np.random.default_rng(seed)
        self.schema = IOT_SCHEMA

    def readings(self, n: int, duration: float = 100.0,
                 max_delay: float = 0.0, late_fraction: float = 0.0,
                 late_by: float = 0.0) -> list:
        """Generate ``n`` readings in *arrival* order.

        * every record's delivery is delayed by Uniform(0, max_delay)
          (normal network jitter: out of order, within the threshold);
        * a ``late_fraction`` of records is additionally delayed by
          ``late_by`` seconds (the stragglers a watermark should drop
          once it passes them).

        Returns rows sorted by arrival time; each row's ``event_time``
        is when the reading happened.
        """
        rng = self._rng
        event_times = np.sort(rng.uniform(0.0, duration, n))
        delays = rng.uniform(0.0, max_delay, n) if max_delay > 0 \
            else np.zeros(n)
        if late_fraction > 0:
            straggler = rng.random(n) < late_fraction
            delays = delays + np.where(straggler, late_by, 0.0)
        arrival = event_times + delays
        order = np.argsort(arrival, kind="stable")
        devices = rng.integers(0, self.num_devices, n)
        temps = rng.normal(21.0, 4.0, n)
        return [
            {
                "device_id": int(devices[i]),
                "temperature": float(temps[i]),
                "event_time": float(event_times[i]),
            }
            for i in order
        ]

    def reference_window_counts(self, rows, window: float) -> dict:
        """window_start -> count over all readings (arrival-independent)."""
        counts = {}
        for row in rows:
            start = (row["event_time"] // window) * window
            counts[start] = counts.get(start, 0) + 1
        return counts

    def reference_device_stats(self, rows) -> dict:
        """device_id -> (count, mean temperature)."""
        sums, counts = {}, {}
        for row in rows:
            d = row["device_id"]
            sums[d] = sums.get(d, 0.0) + row["temperature"]
            counts[d] = counts.get(d, 0) + 1
        return {d: (counts[d], sums[d] / counts[d]) for d in counts}
