"""Benchmark and test workload generators."""

from repro.workloads.iot import IOT_SCHEMA, IotWorkload
from repro.workloads.yahoo import (
    YAHOO_EVENT_SCHEMA,
    YahooWorkload,
    structured_streaming_query,
)

__all__ = [
    "IOT_SCHEMA",
    "IotWorkload",
    "YAHOO_EVENT_SCHEMA",
    "YahooWorkload",
    "structured_streaming_query",
]
