"""The Yahoo! Streaming Benchmark workload (§9.1, [14] in the paper).

The benchmark: read ad events from Kafka, keep ``view`` events, project
``(ad_id, event_time)``, join against a static ad -> campaign table, and
count events per campaign in 10-second *event-time* windows.

Like the paper's setup (which replaced the original Redis table with an
engine-native table after finding Redis to be the bottleneck), the
campaign table here is an in-engine static relation.  Events carry the
original benchmark's fields; ids are integers so every engine gets an
equally efficient representation.
"""

from __future__ import annotations

import numpy as np

from repro.sql.types import StructType

YAHOO_EVENT_SCHEMA = StructType((
    ("user_id", "long"),
    ("page_id", "long"),
    ("ad_id", "long"),
    ("ad_type", "string"),
    ("event_type", "string"),
    ("event_time", "timestamp"),
))

CAMPAIGN_SCHEMA = StructType((("ad_id", "long"), ("campaign_id", "long")))

AD_TYPES = ("banner", "modal", "sponsored-search", "mail", "mobile")
EVENT_TYPES = ("view", "click", "purchase")
WINDOW_SECONDS = 10.0


class YahooWorkload:
    """Deterministic generator for benchmark events and the campaign table."""

    def __init__(self, num_campaigns: int = 100, ads_per_campaign: int = 10,
                 seed: int = 7):
        self.num_campaigns = num_campaigns
        self.ads_per_campaign = ads_per_campaign
        self.num_ads = num_campaigns * ads_per_campaign
        self._rng = np.random.default_rng(seed)

    # ------------------------------------------------------------------
    # Static side
    # ------------------------------------------------------------------
    def campaign_rows(self) -> list:
        """The static ad -> campaign mapping as rows."""
        return [
            {"ad_id": ad, "campaign_id": ad // self.ads_per_campaign}
            for ad in range(self.num_ads)
        ]

    def campaign_lookup(self) -> dict:
        """The same mapping as a dict (for the baseline engines)."""
        return {ad: ad // self.ads_per_campaign for ad in range(self.num_ads)}

    # ------------------------------------------------------------------
    # Event stream
    # ------------------------------------------------------------------
    def event_arrays(self, n: int, start_time: float = 0.0,
                     duration: float = 60.0) -> dict:
        """Generate ``n`` events as columnar numpy arrays."""
        rng = self._rng
        return {
            "user_id": rng.integers(0, 10_000, n),
            "page_id": rng.integers(0, 1_000, n),
            "ad_id": rng.integers(0, self.num_ads, n),
            "ad_type": rng.choice(np.array(AD_TYPES, dtype=object), n),
            "event_type": rng.choice(np.array(EVENT_TYPES, dtype=object), n),
            "event_time": np.sort(rng.uniform(start_time, start_time + duration, n)),
        }

    def event_rows(self, n: int, start_time: float = 0.0,
                   duration: float = 60.0) -> list:
        """Generate ``n`` events as row dicts (bus records)."""
        arrays = self.event_arrays(n, start_time, duration)
        names = list(arrays)
        columns = [arrays[name].tolist() for name in names]
        return [dict(zip(names, values)) for values in zip(*columns)]

    def publish(self, broker, topic_name: str, rows, partitions: int = 4) -> None:
        """Publish events round-robin across a topic's partitions
        (one partition per core in the paper's setup)."""
        topic = broker.get_or_create(topic_name, partitions)
        shards = [rows[i::partitions] for i in range(partitions)]
        for index, shard in enumerate(shards):
            topic.publish_to(index, shard)

    def publish_columnar(self, broker, topic_name: str, n: int,
                         partitions: int = 4, start_time: float = 0.0,
                         duration: float = 60.0) -> None:
        """Publish ``n`` events as columnar wire segments.

        Models Kafka producers batching records into segments; the
        vectorized engine slices these directly while record-at-a-time
        engines materialize per-record objects from them — the same
        decode asymmetry real readers have.
        """
        from repro.sql.batch import RecordBatch

        topic = broker.get_or_create(topic_name, partitions)
        arrays = self.event_arrays(n, start_time, duration)
        for index in range(partitions):
            shard = {name: arr[index::partitions] for name, arr in arrays.items()}
            batch = RecordBatch.from_columns(YAHOO_EVENT_SCHEMA, **shard)
            topic.publish_batch_to(index, batch)

    # ------------------------------------------------------------------
    # Reference result
    # ------------------------------------------------------------------
    def reference_counts(self, rows) -> dict:
        """(campaign_id, window_start) -> count, computed naively."""
        lookup = self.campaign_lookup()
        counts = {}
        for row in rows:
            if row["event_type"] != "view":
                continue
            campaign = lookup[row["ad_id"]]
            window_start = (row["event_time"] // WINDOW_SECONDS) * WINDOW_SECONDS
            key = (campaign, window_start)
            counts[key] = counts.get(key, 0) + 1
        return counts


def structured_streaming_query(session, broker, topic: str, workload: YahooWorkload,
                               watermark_delay: str = "10 seconds"):
    """Build the benchmark query with the reproduction's DataFrame API.

    This is the exact pipeline from §9.1, written declaratively — the
    engine incrementalizes it; no operator DAG is specified by hand.
    """
    from repro.sql.functions import col, count, window

    campaigns = session.create_dataframe(workload.campaign_rows(), CAMPAIGN_SCHEMA)
    events = session.read_stream.kafka(broker, topic, YAHOO_EVENT_SCHEMA)
    return (
        events
        .where(col("event_type") == "view")
        .select("ad_id", "event_time")
        .join(campaigns, on="ad_id")
        .with_watermark("event_time", watermark_delay)
        .group_by(col("campaign_id"), window(col("event_time"), WINDOW_SECONDS))
        .agg(count().alias("count"))
    )
