"""Equi-join kernels shared by the batch executor and streaming operators.

Two paths, mirroring how an analytical engine specializes joins:

* a vectorized fast path for joins against a build side with *unique* keys
  (the dimension-table pattern: the Yahoo! benchmark's ads -> campaigns
  join), implemented with sort + searchsorted;
* a general hash path supporting duplicate keys on both sides.
"""

from __future__ import annotations

import numpy as np

from repro.sql.batch import RecordBatch, promote_nullable
from repro.sql.types import StructType


def key_tuples(batch: RecordBatch, names) -> list:
    """Materialize join keys as a list of Python tuples (general path)."""
    arrays = [batch.columns[n] for n in names]
    if len(arrays) == 1:
        return arrays[0].tolist()
    return list(zip(*(a.tolist() for a in arrays)))


def _single_numeric_key(batch: RecordBatch, names) -> np.ndarray:
    """Return the key as one numeric array if eligible for the fast path."""
    if len(names) != 1:
        return None
    arr = batch.columns[names[0]]
    if arr.dtype == object:
        return None
    return arr


def join_indices(left: RecordBatch, right: RecordBatch, on, how: str = "inner"):
    """Compute matching row indices for an equi-join.

    Returns ``(left_idx, right_idx, left_unmatched, right_unmatched)``:
    aligned index arrays for matched pairs plus the unmatched row indices
    needed by the requested outer side (empty arrays otherwise).
    """
    left_key = _single_numeric_key(left, on)
    right_key = _single_numeric_key(right, on)
    if left_key is not None and right_key is not None and len(right_key):
        unique_keys = np.unique(right_key)
        if len(unique_keys) == len(right_key):
            return _unique_key_join(left_key, right_key, how)
    return _hash_join(left, right, on, how)


def _unique_key_join(left_key: np.ndarray, right_key: np.ndarray, how: str):
    """Vectorized join when the right side's keys are unique."""
    order = np.argsort(right_key, kind="stable")
    sorted_keys = right_key[order]
    pos = np.searchsorted(sorted_keys, left_key)
    pos_clipped = np.minimum(pos, len(sorted_keys) - 1)
    matched = sorted_keys[pos_clipped] == left_key
    left_idx = np.nonzero(matched)[0]
    right_idx = order[pos_clipped[matched]]

    left_unmatched = np.empty(0, dtype=np.int64)
    right_unmatched = np.empty(0, dtype=np.int64)
    if how == "left_outer":
        left_unmatched = np.nonzero(~matched)[0]
    elif how == "right_outer":
        hit = np.zeros(len(right_key), dtype=bool)
        hit[right_idx] = True
        right_unmatched = np.nonzero(~hit)[0]
    return left_idx, right_idx, left_unmatched, right_unmatched


def _hash_join(left: RecordBatch, right: RecordBatch, on, how: str):
    """General hash join supporting duplicate keys on both sides."""
    build = {}
    for i, key in enumerate(key_tuples(right, on)):
        build.setdefault(key, []).append(i)

    left_idx, right_idx = [], []
    left_unmatched = []
    hit_right = np.zeros(right.num_rows, dtype=bool)
    for i, key in enumerate(key_tuples(left, on)):
        matches = build.get(key)
        if matches:
            for j in matches:
                left_idx.append(i)
                right_idx.append(j)
                hit_right[j] = True
        elif how == "left_outer":
            left_unmatched.append(i)

    right_unmatched = np.nonzero(~hit_right)[0] if how == "right_outer" \
        else np.empty(0, dtype=np.int64)
    return (
        np.asarray(left_idx, dtype=np.int64),
        np.asarray(right_idx, dtype=np.int64),
        np.asarray(left_unmatched, dtype=np.int64),
        right_unmatched,
    )


def apply_time_bound(left: RecordBatch, right: RecordBatch, how: str, within,
                     left_idx, right_idx, left_unmatched, right_unmatched):
    """Filter matched pairs by ``|left.t - right.t2| <= skew`` and move
    rows whose every match failed the bound to the unmatched set (so
    outer joins emit them null-padded)."""
    left_col, right_col, skew = within
    if not len(left_idx):
        return left_idx, right_idx, left_unmatched, right_unmatched
    lt = np.asarray(left.columns[left_col], dtype=np.float64)[left_idx]
    rt = np.asarray(right.columns[right_col], dtype=np.float64)[right_idx]
    keep = np.abs(lt - rt) <= skew
    kept_left = left_idx[keep]
    kept_right = right_idx[keep]
    if how == "left_outer":
        had_match = np.zeros(left.num_rows, dtype=bool)
        had_match[kept_left] = True
        candidates = np.unique(left_idx[~keep])
        extra = candidates[~had_match[candidates]]
        left_unmatched = np.union1d(left_unmatched, extra).astype(np.int64)
    elif how == "right_outer":
        had_match = np.zeros(right.num_rows, dtype=bool)
        had_match[kept_right] = True
        candidates = np.unique(right_idx[~keep])
        extra = candidates[~had_match[candidates]]
        right_unmatched = np.union1d(right_unmatched, extra).astype(np.int64)
    return kept_left, kept_right, left_unmatched, right_unmatched


def _null_column(length: int, data_type) -> np.ndarray:
    """A column of nulls of the given (nullable-promoted) type."""
    if data_type.numpy_dtype is object:
        arr = np.empty(length, dtype=object)
        arr[:] = None
        return arr
    return np.full(length, np.nan, dtype=np.float64)


def assemble_join_output(left: RecordBatch, right: RecordBatch, on, how: str,
                         output_schema: StructType,
                         left_idx, right_idx, left_unmatched, right_unmatched) -> RecordBatch:
    """Materialize the join result batch given matched/unmatched indices.

    Join keys appear once; on outer joins, the unmatched side's columns are
    null-padded (numeric columns are promoted to double by the schema).
    """
    right_rest = [n for n in right.schema.names if n not in on]
    left_names = left.schema.names
    columns = {}

    for name in left_names:
        matched_part = left.columns[name][left_idx]
        parts = [matched_part]
        if len(left_unmatched):
            parts.append(left.columns[name][left_unmatched])
        if len(right_unmatched):
            if name in on:
                parts.append(right.columns[name][right_unmatched])
            else:
                parts.append(_null_column(len(right_unmatched), output_schema.type_of(name)))
        col = _concat_casted(parts, output_schema.type_of(name))
        columns[name] = col

    for name in right_rest:
        parts = [right.columns[name][right_idx]]
        if len(left_unmatched):
            parts.append(_null_column(len(left_unmatched), output_schema.type_of(name)))
        if len(right_unmatched):
            parts.append(right.columns[name][right_unmatched])
        columns[name] = _concat_casted(parts, output_schema.type_of(name))

    return RecordBatch(columns, output_schema)


def _concat_casted(parts, data_type) -> np.ndarray:
    """Concatenate parts, coercing to the output column type."""
    target = data_type.numpy_dtype
    if target is object:
        casted = []
        for p in parts:
            if p.dtype != object:
                out = np.empty(len(p), dtype=object)
                out[:] = p.tolist()
                p = out
            casted.append(p)
        return np.concatenate(casted) if casted else np.empty(0, dtype=object)
    casted = [p.astype(target) if p.dtype != target else p for p in parts]
    return np.concatenate(casted)


def execute_join(left: RecordBatch, right: RecordBatch, on, how: str) -> RecordBatch:
    """Full equi-join of two batches, producing the logical-plan schema."""
    from repro.sql.logical import Join
    from repro.sql.logical import Scan

    output_schema = Join(
        Scan(left.schema, None, False), Scan(right.schema, None, False), on, how
    ).schema
    indices = join_indices(left, right, on, how)
    return assemble_join_output(left, right, on, how, output_schema, *indices)
