"""Expression AST for the relational engine.

Every expression supports two evaluation strategies:

* ``eval_batch(batch)`` — vectorized evaluation over a columnar
  :class:`~repro.sql.batch.RecordBatch`.  Combined with the closure
  compiler in :mod:`repro.sql.codegen`, this is the reproduction's
  stand-in for Spark SQL's Tungsten code generation (§5.3 of the paper).
* ``eval_row(row)`` — interpreted evaluation on a single dict row.  Used
  by the per-record baseline engines and by the vectorized-vs-interpreted
  ablation benchmark.

Aggregate functions additionally implement an *incremental buffer*
protocol (init / update / merge / finish plus vectorized per-group
partials) so the streaming engine can maintain running aggregates in the
state store across epochs (§5.2).
"""

from __future__ import annotations

import math
import re

import numpy as np

from repro.sql import types as T
from repro.sql.types import DataType, StructType


class AnalysisError(Exception):
    """Raised when a query fails analysis (unresolved names, bad types,
    or a query/output-mode combination the engine does not support)."""


# ---------------------------------------------------------------------------
# Durations (used by windows, watermarks and timeouts)
# ---------------------------------------------------------------------------

_DURATION_RE = re.compile(
    r"^\s*(\d+(?:\.\d+)?)\s*(ms|milliseconds?|s|secs?|seconds?|m|mins?|minutes?|"
    r"h|hours?|d|days?)\s*$",
    re.IGNORECASE,
)

_DURATION_UNITS = {
    "ms": 0.001, "millisecond": 0.001, "milliseconds": 0.001,
    "s": 1.0, "sec": 1.0, "secs": 1.0, "second": 1.0, "seconds": 1.0,
    "m": 60.0, "min": 60.0, "mins": 60.0, "minute": 60.0, "minutes": 60.0,
    "h": 3600.0, "hour": 3600.0, "hours": 3600.0,
    "d": 86400.0, "day": 86400.0, "days": 86400.0,
}


def parse_duration(value) -> float:
    """Parse a duration into float seconds.

    Accepts numbers (seconds) or strings like ``"10 seconds"``, ``"5 min"``,
    ``"1 hour"`` or ``"250ms"``.
    """
    if isinstance(value, (int, float)):
        return float(value)
    match = _DURATION_RE.match(value)
    if not match:
        raise ValueError(f"cannot parse duration: {value!r}")
    amount, unit = match.groups()
    return float(amount) * _DURATION_UNITS[unit.lower()]


# ---------------------------------------------------------------------------
# Base expression
# ---------------------------------------------------------------------------

class Expression:
    """Base class for all scalar expressions."""

    children: tuple = ()

    def data_type(self, schema: StructType) -> DataType:
        """Resolve and return this expression's output type under ``schema``.

        Raises :class:`AnalysisError` for unresolved names or type errors.
        """
        raise NotImplementedError

    def references(self) -> set:
        """Names of all input columns this expression reads."""
        refs = set()
        for child in self.children:
            refs |= child.references()
        return refs

    def eval_batch(self, batch) -> np.ndarray:
        """Vectorized evaluation returning one array aligned with the batch."""
        raise NotImplementedError

    def eval_row(self, row):
        """Interpreted evaluation on one dict-like row."""
        raise NotImplementedError

    @property
    def output_name(self) -> str:
        """Default column name when this expression appears in a projection."""
        return str(self)

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        return type(self).__name__.lower()

    # Operator overloads let expressions compose naturally; the public
    # DataFrame API wraps these in `Column` (see repro.sql.dataframe).
    def _binop(self, other, cls, *args):
        return cls(self, _to_expr(other), *args)

    def __add__(self, other):
        return self._binop(other, Arithmetic, "+")

    def __radd__(self, other):
        return Arithmetic(_to_expr(other), self, "+")

    def __sub__(self, other):
        return self._binop(other, Arithmetic, "-")

    def __rsub__(self, other):
        return Arithmetic(_to_expr(other), self, "-")

    def __mul__(self, other):
        return self._binop(other, Arithmetic, "*")

    def __rmul__(self, other):
        return Arithmetic(_to_expr(other), self, "*")

    def __truediv__(self, other):
        return self._binop(other, Arithmetic, "/")

    def __mod__(self, other):
        return self._binop(other, Arithmetic, "%")

    def __eq__(self, other):  # type: ignore[override]
        return self._binop(other, Comparison, "==")

    def __ne__(self, other):  # type: ignore[override]
        return self._binop(other, Comparison, "!=")

    def __lt__(self, other):
        return self._binop(other, Comparison, "<")

    def __le__(self, other):
        return self._binop(other, Comparison, "<=")

    def __gt__(self, other):
        return self._binop(other, Comparison, ">")

    def __ge__(self, other):
        return self._binop(other, Comparison, ">=")

    def __and__(self, other):
        return self._binop(other, BooleanOp, "and")

    def __or__(self, other):
        return self._binop(other, BooleanOp, "or")

    def __invert__(self):
        return Not(self)

    def __hash__(self):  # needed because __eq__ is overloaded
        return id(self)

    def alias(self, name: str) -> "Alias":
        """Name this expression's output column."""
        return Alias(self, name)

    def cast(self, dtype) -> "Cast":
        """Cast to another data type (name or DataType instance)."""
        if isinstance(dtype, str):
            dtype = T.type_from_name(dtype)
        return Cast(self, dtype)

    def is_null(self) -> "IsNull":
        """True where the value is null (None/NaN)."""
        return IsNull(self)

    def is_not_null(self) -> "Not":
        """True where the value is not null."""
        return Not(IsNull(self))

    def isin(self, values) -> "In":
        """True where the value is one of ``values``."""
        return In(self, list(values))


def _to_expr(value) -> Expression:
    """Coerce Python literals (and Column wrappers) into expressions."""
    if isinstance(value, Expression):
        return value
    # Late import to avoid a cycle with repro.sql.dataframe.
    from repro.sql.dataframe import Column

    if isinstance(value, Column):
        return value.expr
    return Literal(value)


# ---------------------------------------------------------------------------
# Leaf expressions
# ---------------------------------------------------------------------------

class ColumnRef(Expression):
    """A reference to an input column by name."""

    def __init__(self, name: str):
        self.name = name

    def data_type(self, schema: StructType) -> DataType:
        if self.name not in schema:
            raise AnalysisError(
                f"cannot resolve column {self.name!r}; available: {schema.names}"
            )
        return schema.type_of(self.name)

    def references(self) -> set:
        return {self.name}

    def eval_batch(self, batch) -> np.ndarray:
        return batch.columns[self.name]

    def eval_row(self, row):
        return row[self.name]

    @property
    def output_name(self) -> str:
        return self.name

    def __str__(self) -> str:
        return self.name


class Literal(Expression):
    """A constant value."""

    def __init__(self, value, dtype: DataType = None):
        self.value = value
        self._dtype = dtype if dtype is not None else (
            T.infer_type(value) if value is not None else T.STRING
        )

    def data_type(self, schema: StructType) -> DataType:
        return self._dtype

    def eval_batch(self, batch) -> np.ndarray:
        if self._dtype.numpy_dtype is object:
            arr = np.empty(batch.num_rows, dtype=object)
            arr[:] = self.value
            return arr
        return np.full(batch.num_rows, self.value, dtype=self._dtype.numpy_dtype)

    def eval_row(self, row):
        return self.value

    def __str__(self) -> str:
        return repr(self.value)


class Alias(Expression):
    """Renames the output of its child; transparent for evaluation."""

    def __init__(self, child: Expression, name: str):
        self.child = child
        self.name = name
        self.children = (child,)

    def data_type(self, schema: StructType) -> DataType:
        return self.child.data_type(schema)

    def eval_batch(self, batch) -> np.ndarray:
        return self.child.eval_batch(batch)

    def eval_row(self, row):
        return self.child.eval_row(row)

    @property
    def output_name(self) -> str:
        return self.name

    def __str__(self) -> str:
        return f"{self.child} AS {self.name}"


# ---------------------------------------------------------------------------
# Scalar operators
# ---------------------------------------------------------------------------

_ARITH_BATCH = {
    "+": np.add, "-": np.subtract, "*": np.multiply,
    "/": np.true_divide, "%": np.mod,
}
_ARITH_ROW = {
    "+": lambda a, b: a + b, "-": lambda a, b: a - b,
    "*": lambda a, b: a * b, "/": lambda a, b: a / b,
    "%": lambda a, b: a % b,
}


class Arithmetic(Expression):
    """Binary arithmetic over numeric columns."""

    def __init__(self, left: Expression, right: Expression, op: str):
        if op not in _ARITH_BATCH:
            raise ValueError(f"unknown arithmetic operator {op!r}")
        self.left, self.right, self.op = left, right, op
        self.children = (left, right)

    def data_type(self, schema: StructType) -> DataType:
        lt = self.left.data_type(schema)
        rt = self.right.data_type(schema)
        if not isinstance(lt, T.NumericType) or not isinstance(rt, T.NumericType):
            raise AnalysisError(f"arithmetic {self.op!r} requires numeric types, got {lt}, {rt}")
        if self.op == "/":
            return T.DOUBLE
        return T.common_type(lt, rt)

    def eval_batch(self, batch) -> np.ndarray:
        with np.errstate(divide="ignore", invalid="ignore"):
            return _ARITH_BATCH[self.op](
                self.left.eval_batch(batch), self.right.eval_batch(batch)
            )

    def eval_row(self, row):
        left = self.left.eval_row(row)
        right = self.right.eval_row(row)
        if left is None or right is None:
            return None
        return _ARITH_ROW[self.op](left, right)

    def __str__(self) -> str:
        return f"({self.left} {self.op} {self.right})"


_CMP_BATCH = {
    "==": np.equal, "!=": np.not_equal, "<": np.less,
    "<=": np.less_equal, ">": np.greater, ">=": np.greater_equal,
}
_CMP_ROW = {
    "==": lambda a, b: a == b, "!=": lambda a, b: a != b,
    "<": lambda a, b: a < b, "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b, ">=": lambda a, b: a >= b,
}


class Comparison(Expression):
    """Binary comparison producing a boolean column."""

    def __init__(self, left: Expression, right: Expression, op: str):
        if op not in _CMP_BATCH:
            raise ValueError(f"unknown comparison operator {op!r}")
        self.left, self.right, self.op = left, right, op
        self.children = (left, right)

    def data_type(self, schema: StructType) -> DataType:
        lt = self.left.data_type(schema)
        rt = self.right.data_type(schema)
        both_numeric = isinstance(lt, T.NumericType) and isinstance(rt, T.NumericType)
        if lt != rt and not both_numeric:
            raise AnalysisError(f"cannot compare {lt} with {rt}")
        return T.BOOLEAN

    def eval_batch(self, batch) -> np.ndarray:
        result = _CMP_BATCH[self.op](
            self.left.eval_batch(batch), self.right.eval_batch(batch)
        )
        return np.asarray(result, dtype=bool)

    def eval_row(self, row):
        left = self.left.eval_row(row)
        right = self.right.eval_row(row)
        if left is None or right is None:
            return False
        return _CMP_ROW[self.op](left, right)

    def __str__(self) -> str:
        return f"({self.left} {self.op} {self.right})"


class BooleanOp(Expression):
    """Logical AND / OR of boolean expressions."""

    def __init__(self, left: Expression, right: Expression, op: str):
        if op not in ("and", "or"):
            raise ValueError(f"unknown boolean operator {op!r}")
        self.left, self.right, self.op = left, right, op
        self.children = (left, right)

    def data_type(self, schema: StructType) -> DataType:
        for side in (self.left, self.right):
            if side.data_type(schema) != T.BOOLEAN:
                raise AnalysisError(f"{self.op} requires boolean operands")
        return T.BOOLEAN

    def eval_batch(self, batch) -> np.ndarray:
        left = self.left.eval_batch(batch)
        right = self.right.eval_batch(batch)
        return (left & right) if self.op == "and" else (left | right)

    def eval_row(self, row):
        if self.op == "and":
            return bool(self.left.eval_row(row)) and bool(self.right.eval_row(row))
        return bool(self.left.eval_row(row)) or bool(self.right.eval_row(row))

    def __str__(self) -> str:
        return f"({self.left} {self.op.upper()} {self.right})"


class Not(Expression):
    """Logical negation."""

    def __init__(self, child: Expression):
        self.child = child
        self.children = (child,)

    def data_type(self, schema: StructType) -> DataType:
        if self.child.data_type(schema) != T.BOOLEAN:
            raise AnalysisError("NOT requires a boolean operand")
        return T.BOOLEAN

    def eval_batch(self, batch) -> np.ndarray:
        return ~self.child.eval_batch(batch)

    def eval_row(self, row):
        return not self.child.eval_row(row)

    def __str__(self) -> str:
        return f"(NOT {self.child})"


class IsNull(Expression):
    """True where the child is null (None for strings, NaN for doubles)."""

    def __init__(self, child: Expression):
        self.child = child
        self.children = (child,)

    def data_type(self, schema: StructType) -> DataType:
        self.child.data_type(schema)
        return T.BOOLEAN

    def eval_batch(self, batch) -> np.ndarray:
        values = self.child.eval_batch(batch)
        if values.dtype == object:
            return np.array([v is None for v in values], dtype=bool)
        if values.dtype.kind == "f":
            return np.isnan(values)
        return np.zeros(len(values), dtype=bool)

    def eval_row(self, row):
        value = self.child.eval_row(row)
        if value is None:
            return True
        return isinstance(value, float) and math.isnan(value)

    def __str__(self) -> str:
        return f"({self.child} IS NULL)"


class In(Expression):
    """Membership test against a literal set of values."""

    def __init__(self, child: Expression, values: list):
        self.child = child
        self.values = values
        self._value_set = set(values)
        self.children = (child,)

    def data_type(self, schema: StructType) -> DataType:
        self.child.data_type(schema)
        return T.BOOLEAN

    def eval_batch(self, batch) -> np.ndarray:
        values = self.child.eval_batch(batch)
        if values.dtype == object:
            return np.array([v in self._value_set for v in values], dtype=bool)
        return np.isin(values, list(self._value_set))

    def eval_row(self, row):
        return self.child.eval_row(row) in self._value_set

    def __str__(self) -> str:
        return f"({self.child} IN {tuple(self.values)})"


class Like(Expression):
    """SQL ``LIKE`` with ``%`` (any run) and ``_`` (any char) wildcards."""

    def __init__(self, child: Expression, pattern: str):
        self.child = child
        self.pattern = pattern
        regex = re.escape(pattern).replace("%", ".*").replace("_", ".")
        self._regex = re.compile(f"^{regex}$", re.DOTALL)
        self.children = (child,)

    def data_type(self, schema: StructType) -> DataType:
        if not isinstance(self.child.data_type(schema), T.StringType):
            raise AnalysisError("LIKE requires a string operand")
        return T.BOOLEAN

    def eval_batch(self, batch) -> np.ndarray:
        match = self._regex.match
        values = self.child.eval_batch(batch)
        return np.array(
            [v is not None and match(v) is not None for v in values.tolist()],
            dtype=bool,
        )

    def eval_row(self, row):
        value = self.child.eval_row(row)
        return value is not None and self._regex.match(value) is not None

    def __str__(self) -> str:
        return f"({self.child} LIKE {self.pattern!r})"


class Cast(Expression):
    """Type conversion."""

    def __init__(self, child: Expression, dtype: DataType):
        self.child = child
        self.dtype = dtype
        self.children = (child,)

    def data_type(self, schema: StructType) -> DataType:
        self.child.data_type(schema)
        return self.dtype

    def eval_batch(self, batch) -> np.ndarray:
        values = self.child.eval_batch(batch)
        target = self.dtype.numpy_dtype
        if target is object:
            out = np.empty(len(values), dtype=object)
            out[:] = [None if v is None else str(v) for v in values.tolist()]
            return out
        if values.dtype == object:
            caster = float if target is np.float64 else int
            return np.array(
                [caster(v) for v in values], dtype=target
            )
        return values.astype(target)

    def eval_row(self, row):
        value = self.child.eval_row(row)
        if value is None:
            return None
        if self.dtype.numpy_dtype is object:
            return str(value)
        if self.dtype.numpy_dtype is np.float64:
            return float(value)
        if self.dtype.numpy_dtype is np.bool_:
            return bool(value)
        return int(value)

    def __str__(self) -> str:
        return f"CAST({self.child} AS {self.dtype.simple_name})"


class CaseWhen(Expression):
    """SQL CASE WHEN ... THEN ... ELSE ... END."""

    def __init__(self, branches, otherwise: Expression = None):
        self.branches = [(cond, value) for cond, value in branches]
        self.otherwise = otherwise if otherwise is not None else Literal(None)
        self.children = tuple(
            e for pair in self.branches for e in pair
        ) + (self.otherwise,)

    def data_type(self, schema: StructType) -> DataType:
        result = None
        for cond, value in self.branches:
            if cond.data_type(schema) != T.BOOLEAN:
                raise AnalysisError("CASE WHEN conditions must be boolean")
            vt = value.data_type(schema)
            result = vt if result is None else T.common_type(result, vt)
        return result

    def eval_batch(self, batch) -> np.ndarray:
        result = np.array(self.otherwise.eval_batch(batch), copy=True)
        assigned = np.zeros(batch.num_rows, dtype=bool)
        for cond, value in self.branches:
            mask = cond.eval_batch(batch) & ~assigned
            if mask.any():
                result[mask] = value.eval_batch(batch)[mask]
            assigned |= mask
        return result

    def eval_row(self, row):
        for cond, value in self.branches:
            if cond.eval_row(row):
                return value.eval_row(row)
        return self.otherwise.eval_row(row)

    def __str__(self) -> str:
        parts = " ".join(f"WHEN {c} THEN {v}" for c, v in self.branches)
        return f"CASE {parts} ELSE {self.otherwise} END"


class Udf(Expression):
    """A user-defined scalar function applied row-at-a-time.

    UDFs are the escape hatch for logic the engine cannot express; they are
    evaluated with a Python loop even in the vectorized path (as in Spark,
    where Python UDFs break code generation).
    """

    def __init__(self, func, args, return_type: DataType, name: str = None):
        self.func = func
        self.args = [(a if isinstance(a, Expression) else _to_expr(a)) for a in args]
        self.return_type = return_type
        self.name = name or getattr(func, "__name__", "udf")
        self.children = tuple(self.args)

    def data_type(self, schema: StructType) -> DataType:
        for arg in self.args:
            arg.data_type(schema)
        return self.return_type

    def eval_batch(self, batch) -> np.ndarray:
        arg_arrays = [a.eval_batch(batch) for a in self.args]
        results = [self.func(*vals) for vals in zip(*arg_arrays)] if arg_arrays \
            else [self.func() for _ in range(batch.num_rows)]
        if self.return_type.numpy_dtype is object:
            out = np.empty(batch.num_rows, dtype=object)
            out[:] = results
            return out
        return np.asarray(results, dtype=self.return_type.numpy_dtype)

    def eval_row(self, row):
        return self.func(*(a.eval_row(row) for a in self.args))

    def __str__(self) -> str:
        return f"{self.name}({', '.join(map(str, self.args))})"


# ---------------------------------------------------------------------------
# Scalar function library (string + math builtins, §5.3's "new SQL
# functionality added to Spark" that streaming leverages automatically)
# ---------------------------------------------------------------------------

def _object_map(fn, *arrays):
    """Apply a Python function element-wise, producing an object array."""
    out = np.empty(len(arrays[0]), dtype=object)
    out[:] = [fn(*vals) for vals in zip(*(a.tolist() for a in arrays))]
    return out


def _null_safe(fn):
    """Wrap a row function so None inputs yield None."""
    def wrapped(*args):
        if any(a is None for a in args):
            return None
        return fn(*args)
    return wrapped


def _type_string(arg_types):
    return T.STRING


def _type_long(arg_types):
    return T.LONG


def _type_double(arg_types):
    return T.DOUBLE


def _type_boolean(arg_types):
    return T.BOOLEAN


def _type_same(arg_types):
    return arg_types[0]


def _require_string(name, arg_types, positions):
    for p in positions:
        if not isinstance(arg_types[p], T.StringType):
            raise AnalysisError(f"{name}() requires string argument {p}")


def _require_numeric(name, arg_types, positions):
    for p in positions:
        if not isinstance(arg_types[p], T.NumericType):
            raise AnalysisError(f"{name}() requires numeric argument {p}")


# name -> (arity, type_fn, row_fn, check_fn). Vectorization for string
# ops is a tight object-array map; numeric ops use numpy ufuncs below.
_SCALAR_FUNCTIONS = {
    "upper": (1, _type_string, _null_safe(str.upper),
              lambda ts: _require_string("upper", ts, [0])),
    "lower": (1, _type_string, _null_safe(str.lower),
              lambda ts: _require_string("lower", ts, [0])),
    "trim": (1, _type_string, _null_safe(str.strip),
             lambda ts: _require_string("trim", ts, [0])),
    "length": (1, _type_long, _null_safe(len),
               lambda ts: _require_string("length", ts, [0])),
    "concat": (2, _type_string, _null_safe(lambda a, b: a + b),
               lambda ts: _require_string("concat", ts, [0, 1])),
    "contains": (2, _type_boolean, _null_safe(lambda s, sub: sub in s),
                 lambda ts: _require_string("contains", ts, [0, 1])),
    "starts_with": (2, _type_boolean, _null_safe(str.startswith),
                    lambda ts: _require_string("starts_with", ts, [0, 1])),
    "ends_with": (2, _type_boolean, _null_safe(str.endswith),
                  lambda ts: _require_string("ends_with", ts, [0, 1])),
    "substring": (3, _type_string,
                  _null_safe(lambda s, start, n: s[int(start):int(start) + int(n)]),
                  lambda ts: _require_string("substring", ts, [0])),
    "split_part": (3, _type_string,
                   _null_safe(lambda s, sep, i: (s.split(sep) + [None] * 99)[int(i)]),
                   lambda ts: _require_string("split_part", ts, [0, 1])),
    "abs": (1, _type_same, _null_safe(abs),
            lambda ts: _require_numeric("abs", ts, [0])),
    "round": (2, _type_double, _null_safe(lambda x, d: float(round(x, int(d)))),
              lambda ts: _require_numeric("round", ts, [0, 1])),
    "floor": (1, _type_long, _null_safe(lambda x: int(math.floor(x))),
              lambda ts: _require_numeric("floor", ts, [0])),
    "ceil": (1, _type_long, _null_safe(lambda x: int(math.ceil(x))),
             lambda ts: _require_numeric("ceil", ts, [0])),
    "sqrt": (1, _type_double, _null_safe(math.sqrt),
             lambda ts: _require_numeric("sqrt", ts, [0])),
    "greatest": (2, _type_same, _null_safe(max),
                 lambda ts: _require_numeric("greatest", ts, [0, 1])),
    "least": (2, _type_same, _null_safe(min),
              lambda ts: _require_numeric("least", ts, [0, 1])),
}

# Numeric functions with true vectorized kernels.
_VECTOR_KERNELS = {
    "abs": np.abs,
    "floor": lambda a: np.floor(a).astype(np.int64),
    "ceil": lambda a: np.ceil(a).astype(np.int64),
    "sqrt": np.sqrt,
    "greatest": np.maximum,
    "least": np.minimum,
}


class ScalarFunction(Expression):
    """A built-in scalar function from the table above."""

    def __init__(self, name: str, args):
        if name not in _SCALAR_FUNCTIONS:
            raise AnalysisError(f"unknown scalar function {name!r}")
        arity = _SCALAR_FUNCTIONS[name][0]
        if len(args) != arity:
            raise AnalysisError(f"{name}() takes {arity} arguments, got {len(args)}")
        self.name = name
        self.args = [_to_expr(a) for a in args]
        self.children = tuple(self.args)

    def data_type(self, schema: StructType) -> DataType:
        arg_types = [a.data_type(schema) for a in self.args]
        _arity, type_fn, _row_fn, check = _SCALAR_FUNCTIONS[self.name]
        check(arg_types)
        return type_fn(arg_types)

    def eval_batch(self, batch) -> np.ndarray:
        arrays = [a.eval_batch(batch) for a in self.args]
        kernel = _VECTOR_KERNELS.get(self.name)
        if kernel is not None and all(a.dtype != object for a in arrays):
            return kernel(*arrays)
        row_fn = _SCALAR_FUNCTIONS[self.name][2]
        result = _object_map(row_fn, *arrays)
        # Boolean/long-returning string functions come back as object
        # arrays; densify when possible so filters can consume them.
        if result.dtype == object and len(result):
            sample = next((v for v in result if v is not None), None)
            if isinstance(sample, bool):
                return np.array([bool(v) if v is not None else False for v in result])
            if isinstance(sample, int) and all(v is not None for v in result):
                return np.array(result.tolist(), dtype=np.int64)
        return result

    def eval_row(self, row):
        row_fn = _SCALAR_FUNCTIONS[self.name][2]
        return row_fn(*(a.eval_row(row) for a in self.args))

    @property
    def output_name(self) -> str:
        return f"{self.name}({', '.join(str(a) for a in self.args)})"

    def __str__(self) -> str:
        return self.output_name


# ---------------------------------------------------------------------------
# Event-time windows (grouping expression; see §4.1 and §4.3.1)
# ---------------------------------------------------------------------------

class WindowExpr(Expression):
    """Assigns rows to fixed (tumbling) or sliding event-time windows.

    Only valid as a grouping expression.  The aggregate operator expands it
    into ``window_start`` / ``window_end`` output columns; with a slide
    shorter than the window size, each row belongs to multiple windows and
    is replicated.
    """

    def __init__(self, time_expr: Expression, duration, slide=None):
        self.time_expr = time_expr
        self.duration = parse_duration(duration)
        self.slide = parse_duration(slide) if slide is not None else self.duration
        if self.slide <= 0 or self.duration <= 0:
            raise ValueError("window duration and slide must be positive")
        if self.slide > self.duration:
            raise ValueError("window slide must not exceed window duration")
        self.children = (time_expr,)

    def data_type(self, schema: StructType) -> DataType:
        tt = self.time_expr.data_type(schema)
        if not isinstance(tt, T.NumericType):
            raise AnalysisError("window() requires a timestamp/numeric column")
        return T.TIMESTAMP

    @property
    def windows_per_record(self) -> int:
        """Max number of windows a single record can belong to."""
        return int(math.ceil(self.duration / self.slide))

    def assign_batch(self, batch):
        """Vectorized window assignment.

        Returns ``(row_indices, window_starts)``: for each (row, window)
        membership pair, the source row index and the window start time.
        """
        times = np.asarray(self.time_expr.eval_batch(batch), dtype=np.float64)
        n = len(times)
        max_start = np.floor(times / self.slide) * self.slide
        all_idx = []
        all_starts = []
        for k in range(self.windows_per_record):
            starts = max_start - k * self.slide
            mask = starts > times - self.duration
            # Tumbling windows (k == 0) always contain their record.
            if mask.all():
                all_idx.append(np.arange(n))
                all_starts.append(starts)
            else:
                idx = np.nonzero(mask)[0]
                all_idx.append(idx)
                all_starts.append(starts[idx])
        return np.concatenate(all_idx), np.concatenate(all_starts)

    def assign_row(self, row) -> list:
        """Row-at-a-time window assignment: list of window start times."""
        time = self.time_expr.eval_row(row)
        max_start = math.floor(time / self.slide) * self.slide
        starts = []
        for k in range(self.windows_per_record):
            start = max_start - k * self.slide
            if start > time - self.duration:
                starts.append(start)
        return starts

    def eval_batch(self, batch):
        raise AnalysisError("window() is only valid as a groupBy expression")

    def eval_row(self, row):
        raise AnalysisError("window() is only valid as a groupBy expression")

    @property
    def output_name(self) -> str:
        return "window"

    def __str__(self) -> str:
        return f"window({self.time_expr}, {self.duration}s, {self.slide}s)"


# ---------------------------------------------------------------------------
# Aggregate functions with an incremental buffer protocol
# ---------------------------------------------------------------------------

class AggregateFunction(Expression):
    """Base class for aggregates.

    The buffer protocol makes aggregates incrementally maintainable: the
    streaming engine stores one JSON-serializable buffer per group in the
    state store and merges per-epoch vectorized partials into it, so each
    trigger costs time proportional to the new data, not the stream so far
    (the incrementalization goal of §5.2).
    """

    #: Short SQL-ish name ("count", "sum", ...).
    func_name = "agg"

    #: True when the aggregate is additive enough to subtract a partial
    #: back out of a buffer (``retract``).  Only such aggregates can run
    #: over weighted (retraction) streams: Count/Sum/Avg qualify, while
    #: Min/Max/First/Last would need the full value history to undo.
    supports_retract = False

    def __init__(self, child: Expression = None):
        self.child = child
        self.children = (child,) if child is not None else ()

    # -- analysis ------------------------------------------------------
    def data_type(self, schema: StructType) -> DataType:
        raise NotImplementedError

    # -- buffer protocol ------------------------------------------------
    def init(self):
        """A fresh, JSON-serializable accumulator buffer."""
        raise NotImplementedError

    def update(self, buffer, value):
        """Fold one value into a buffer (row-at-a-time path)."""
        raise NotImplementedError

    def merge(self, left, right):
        """Merge two buffers (used to fold batch partials into state)."""
        raise NotImplementedError

    def retract(self, buffer, partial):
        """Subtract a partial buffer back out of ``buffer`` (Z-set -1
        rows).  Only meaningful when ``supports_retract`` is True."""
        raise NotImplementedError(
            f"{self.func_name}() cannot retract; it is not incrementally "
            "invertible"
        )

    def finish(self, buffer):
        """Extract the final aggregate value from a buffer."""
        raise NotImplementedError

    def batch_partials(self, batch, codes: np.ndarray, num_groups: int) -> list:
        """Vectorized: one partial buffer per group code for this batch."""
        raise NotImplementedError

    # -- helpers ---------------------------------------------------------
    def _values(self, batch) -> np.ndarray:
        return self.child.eval_batch(batch)

    @property
    def output_name(self) -> str:
        if self.child is None:
            return self.func_name
        return f"{self.func_name}({self.child})"

    def __str__(self) -> str:
        return self.output_name


def _valid_mask(values: np.ndarray) -> np.ndarray:
    """True where a value is non-null."""
    if values.dtype == object:
        return np.array([v is not None for v in values], dtype=bool)
    if values.dtype.kind == "f":
        return ~np.isnan(values)
    return np.ones(len(values), dtype=bool)


class Count(AggregateFunction):
    """``count(*)`` when child is None, else ``count(col)`` skipping nulls."""

    func_name = "count"
    supports_retract = True

    def data_type(self, schema: StructType) -> DataType:
        if self.child is not None:
            self.child.data_type(schema)
        return T.LONG

    def init(self):
        return 0

    def update(self, buffer, value):
        if self.child is not None and value is None:
            return buffer
        return buffer + 1

    def merge(self, left, right):
        return left + right

    def retract(self, buffer, partial):
        return buffer - partial

    def finish(self, buffer):
        return buffer

    def batch_partials(self, batch, codes, num_groups):
        if self.child is None:
            counts = np.bincount(codes, minlength=num_groups)
        else:
            mask = _valid_mask(self._values(batch))
            counts = np.bincount(codes[mask], minlength=num_groups)
        return counts.tolist()

    @property
    def output_name(self) -> str:
        return "count"


class Sum(AggregateFunction):
    """Sum of a numeric column, null-skipping; null (None) for empty groups."""

    func_name = "sum"
    supports_retract = True

    def data_type(self, schema: StructType) -> DataType:
        ct = self.child.data_type(schema)
        if not isinstance(ct, T.NumericType):
            raise AnalysisError(f"sum() requires a numeric column, got {ct}")
        return T.LONG if isinstance(ct, T.IntegralType) else T.DOUBLE

    def init(self):
        return [0, 0]  # [total, count-of-non-null]

    def update(self, buffer, value):
        if value is None:
            return buffer
        return [buffer[0] + value, buffer[1] + 1]

    def merge(self, left, right):
        return [left[0] + right[0], left[1] + right[1]]

    def retract(self, buffer, partial):
        return [buffer[0] - partial[0], buffer[1] - partial[1]]

    def finish(self, buffer):
        return buffer[0] if buffer[1] else None

    def batch_partials(self, batch, codes, num_groups):
        values = np.asarray(self._values(batch))
        mask = _valid_mask(values)
        if not mask.all():
            values, codes = values[mask], codes[mask]
        totals = np.bincount(codes, weights=values.astype(np.float64), minlength=num_groups)
        counts = np.bincount(codes, minlength=num_groups)
        if values.dtype.kind in "iu":
            totals = totals.astype(np.int64)
        return [[t, int(c)] for t, c in zip(totals.tolist(), counts.tolist())]


class Avg(AggregateFunction):
    """Arithmetic mean, maintained as (sum, count)."""

    func_name = "avg"
    supports_retract = True

    def data_type(self, schema: StructType) -> DataType:
        ct = self.child.data_type(schema)
        if not isinstance(ct, T.NumericType):
            raise AnalysisError(f"avg() requires a numeric column, got {ct}")
        return T.DOUBLE

    def init(self):
        return [0.0, 0]

    def update(self, buffer, value):
        if value is None:
            return buffer
        return [buffer[0] + value, buffer[1] + 1]

    def merge(self, left, right):
        return [left[0] + right[0], left[1] + right[1]]

    def retract(self, buffer, partial):
        return [buffer[0] - partial[0], buffer[1] - partial[1]]

    def finish(self, buffer):
        return buffer[0] / buffer[1] if buffer[1] else None

    def batch_partials(self, batch, codes, num_groups):
        values = np.asarray(self._values(batch), dtype=np.float64)
        mask = _valid_mask(values)
        if not mask.all():
            values, codes = values[mask], codes[mask]
        totals = np.bincount(codes, weights=values, minlength=num_groups)
        counts = np.bincount(codes, minlength=num_groups)
        return [[t, int(c)] for t, c in zip(totals.tolist(), counts.tolist())]


class _Extremum(AggregateFunction):
    """Shared implementation for Min and Max."""

    _better = staticmethod(min)

    def data_type(self, schema: StructType) -> DataType:
        return self.child.data_type(schema)

    def init(self):
        return None

    def update(self, buffer, value):
        if value is None:
            return buffer
        if buffer is None:
            return value
        return self._better(buffer, value)

    def merge(self, left, right):
        if left is None:
            return right
        if right is None:
            return left
        return self._better(left, right)

    def finish(self, buffer):
        return buffer

    def batch_partials(self, batch, codes, num_groups):
        values = self._values(batch)
        partials = [None] * num_groups
        if values.dtype == object:
            better = self._better
            for code, value in zip(codes.tolist(), values.tolist()):
                if value is None:
                    continue
                current = partials[code]
                partials[code] = value if current is None else better(current, value)
            return partials
        mask = _valid_mask(values)
        if not mask.all():
            values, codes = values[mask], codes[mask]
        order = np.argsort(codes, kind="stable")
        sorted_codes = codes[order]
        sorted_values = values[order]
        boundaries = np.nonzero(np.diff(sorted_codes))[0] + 1
        starts = np.concatenate(([0], boundaries))
        reducer = np.minimum if self._better is min else np.maximum
        if len(sorted_values):
            group_values = reducer.reduceat(sorted_values, starts)
            group_codes = sorted_codes[starts]
            for code, value in zip(group_codes.tolist(), group_values.tolist()):
                partials[code] = value
        return partials


class Min(_Extremum):
    """Minimum value; null-skipping."""

    func_name = "min"
    _better = staticmethod(min)


class Max(_Extremum):
    """Maximum value; null-skipping."""

    func_name = "max"
    _better = staticmethod(max)


class First(AggregateFunction):
    """First non-null value seen for the group (arrival order)."""

    func_name = "first"

    def data_type(self, schema: StructType) -> DataType:
        return self.child.data_type(schema)

    def init(self):
        return [False, None]  # [seen, value]

    def update(self, buffer, value):
        if buffer[0] or value is None:
            return buffer
        return [True, value]

    def merge(self, left, right):
        return left if left[0] else right

    def finish(self, buffer):
        return buffer[1]

    def batch_partials(self, batch, codes, num_groups):
        values = self._values(batch)
        partials = [[False, None] for _ in range(num_groups)]
        for code, value in zip(codes.tolist(), values.tolist()):
            slot = partials[code]
            if not slot[0] and value is not None:
                slot[0] = True
                slot[1] = value
        return partials


class Last(AggregateFunction):
    """Last non-null value seen for the group (arrival order)."""

    func_name = "last"

    def data_type(self, schema: StructType) -> DataType:
        return self.child.data_type(schema)

    def init(self):
        return [False, None]

    def update(self, buffer, value):
        if value is None:
            return buffer
        return [True, value]

    def merge(self, left, right):
        return right if right[0] else left

    def finish(self, buffer):
        return buffer[1]

    def batch_partials(self, batch, codes, num_groups):
        values = self._values(batch)
        partials = [[False, None] for _ in range(num_groups)]
        for code, value in zip(codes.tolist(), values.tolist()):
            if value is not None:
                partials[code] = [True, value]
        return partials


class CountDistinct(AggregateFunction):
    """Exact distinct count, maintained as a sorted value list.

    State grows with distinct values — the same caveat Spark's exact
    count-distinct has in streaming.
    """

    func_name = "count_distinct"

    def data_type(self, schema: StructType) -> DataType:
        self.child.data_type(schema)
        return T.LONG

    def init(self):
        return []

    def update(self, buffer, value):
        if value is None or value in buffer:
            return buffer
        return sorted(buffer + [value])

    def merge(self, left, right):
        return sorted(set(left) | set(right))

    def finish(self, buffer):
        return len(buffer)

    def batch_partials(self, batch, codes, num_groups):
        values = self._values(batch)
        partials = [set() for _ in range(num_groups)]
        for code, value in zip(codes.tolist(), values.tolist()):
            if value is not None:
                partials[code].add(value)
        return [sorted(p) for p in partials]


class ApproxCountDistinct(AggregateFunction):
    """Approximate distinct count with *bounded* state (HyperLogLog).

    Unlike :class:`CountDistinct`, the per-group buffer is a fixed-size
    sketch, so streaming state stays bounded no matter how many distinct
    values arrive — the state-size concern of §4.3.1 solved by sketching
    instead of watermarking.
    """

    func_name = "approx_count_distinct"

    def __init__(self, child: Expression = None, precision: int = 12):
        super().__init__(child)
        self.precision = precision

    def data_type(self, schema: StructType) -> DataType:
        self.child.data_type(schema)
        return T.LONG

    def _sketch(self, registers=None):
        from repro.sql.hll import HyperLogLog

        return HyperLogLog(self.precision, registers)

    def init(self):
        return self._sketch().to_json()

    def update(self, buffer, value):
        if value is None:
            return buffer
        sketch = self._sketch(buffer)
        sketch.add(value)
        return sketch.to_json()

    def merge(self, left, right):
        return self._sketch(left).merge(self._sketch(right)).to_json()

    def finish(self, buffer):
        return self._sketch(buffer).cardinality()

    def batch_partials(self, batch, codes, num_groups):
        from repro.sql.hll import HyperLogLog

        values = self._values(batch)
        sketches = [None] * num_groups
        for code, value in zip(codes.tolist(), values.tolist()):
            if value is None:
                continue
            if sketches[code] is None:
                sketches[code] = HyperLogLog(self.precision)
            sketches[code].add(value)
        return [
            (s.to_json() if s is not None else self.init()) for s in sketches
        ]


class CollectSet(AggregateFunction):
    """Distinct values of a column as a sorted list (bounded-state helper)."""

    func_name = "collect_set"

    def data_type(self, schema: StructType) -> DataType:
        self.child.data_type(schema)
        return T.STRING

    def init(self):
        return []

    def update(self, buffer, value):
        if value is None or value in buffer:
            return buffer
        return sorted(buffer + [value])

    def merge(self, left, right):
        return sorted(set(left) | set(right))

    def finish(self, buffer):
        return buffer

    def batch_partials(self, batch, codes, num_groups):
        values = self._values(batch)
        partials = [set() for _ in range(num_groups)]
        for code, value in zip(codes.tolist(), values.tolist()):
            if value is not None:
                partials[code].add(value)
        return [sorted(p) for p in partials]
