"""A SQL SELECT dialect over registered temp views.

The paper's API is "SQL or DataFrames" (§4.1); this parser provides the
SQL half for the subset of queries the engine supports::

    SELECT campaign_id, WINDOW(event_time, '10 seconds'), COUNT(*) AS n
    FROM events
    WHERE event_type = 'view'
    GROUP BY campaign_id, WINDOW(event_time, '10 seconds')
    ORDER BY n DESC
    LIMIT 10

Grammar (informal)::

    SELECT select_item [, ...]
    FROM view [ [LEFT|RIGHT] JOIN view USING (col [, ...]) ]*
    [WHERE expr] [GROUP BY expr [, ...]]
    [ORDER BY col [ASC|DESC] [, ...]] [LIMIT n]

Both batch views and streaming DataFrames can be registered; SQL over a
streaming view yields a streaming DataFrame, exactly as in Spark.
"""

from __future__ import annotations

import re

from repro.sql import expressions as E
from repro.sql import logical as L
from repro.sql.expressions import AnalysisError

_TOKEN_RE = re.compile(r"""
    \s*(?:
        (?P<number>\d+\.\d+|\d+)
      | (?P<string>'(?:[^']|'')*')
      | (?P<ident>[A-Za-z_][A-Za-z_0-9]*)
      | (?P<op><=|>=|<>|!=|=|<|>|\(|\)|,|\*|/|%|\+|-)
    )
""", re.VERBOSE)

_KEYWORDS = {
    "select", "from", "where", "group", "by", "order", "limit", "as",
    "and", "or", "not", "in", "is", "null", "join", "left", "right",
    "using", "asc", "desc", "distinct", "having", "true", "false",
    "between", "case", "when", "then", "else", "end", "like",
}

_AGGREGATES = {
    "count": E.Count, "sum": E.Sum, "avg": E.Avg, "min": E.Min, "max": E.Max,
    "collect_set": E.CollectSet, "first": E.First, "last": E.Last,
    "count_distinct": E.CountDistinct,
    "approx_count_distinct": E.ApproxCountDistinct,
}


class SqlParseError(AnalysisError):
    """Raised for malformed SQL."""


#: Sentinel for ``SELECT *`` (expressions overload ==, so use identity).
_STAR = object()


def _tokenize(text: str) -> list:
    tokens = []
    pos = 0
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if not match:
            if text[pos:].strip() == "":
                break
            raise SqlParseError(f"cannot tokenize SQL at: {text[pos:pos + 20]!r}")
        pos = match.end()
        if match.lastgroup == "number":
            value = match.group("number")
            tokens.append(("number", float(value) if "." in value else int(value)))
        elif match.lastgroup == "string":
            tokens.append(("string", match.group("string")[1:-1].replace("''", "'")))
        elif match.lastgroup == "ident":
            word = match.group("ident")
            if word.lower() in _KEYWORDS:
                tokens.append(("keyword", word.lower()))
            else:
                tokens.append(("ident", word))
        else:
            tokens.append(("op", match.group("op")))
    tokens.append(("eof", None))
    return tokens


class _Parser:
    """Recursive-descent parser producing a DataFrame."""

    def __init__(self, text: str, session):
        self._tokens = _tokenize(text)
        self._pos = 0
        self._session = session

    # -- token helpers ---------------------------------------------------
    def _peek(self):
        return self._tokens[self._pos]

    def _next(self):
        token = self._tokens[self._pos]
        self._pos += 1
        return token

    def _accept(self, kind: str, value=None):
        token = self._peek()
        if token[0] == kind and (value is None or token[1] == value):
            return self._next()
        return None

    def _expect(self, kind: str, value=None):
        token = self._accept(kind, value)
        if token is None:
            raise SqlParseError(
                f"expected {value or kind}, found {self._peek()[1]!r}"
            )
        return token

    # -- grammar ----------------------------------------------------------
    def parse(self):
        self._expect("keyword", "select")
        distinct = self._accept("keyword", "distinct") is not None
        items = self._select_list()
        self._expect("keyword", "from")
        df = self._table_source()
        plan = df.plan

        condition = None
        if self._accept("keyword", "where"):
            condition = self._expr()
            plan = L.Filter(condition, plan)

        grouping = None
        if self._accept("keyword", "group"):
            self._expect("keyword", "by")
            grouping = self._expr_list()

        having = None
        if self._accept("keyword", "having"):
            if grouping is None:
                raise SqlParseError("HAVING requires GROUP BY")
            having = self._expr()

        plan = self._apply_select(plan, items, grouping, distinct)
        if having is not None:
            # HAVING may reference select-list aliases (including
            # aggregate aliases), which exist after the re-projection.
            plan = L.Filter(having, plan)

        if self._accept("keyword", "order"):
            self._expect("keyword", "by")
            orders = []
            while True:
                name = self._expect("ident")[1]
                ascending = True
                if self._accept("keyword", "desc"):
                    ascending = False
                else:
                    self._accept("keyword", "asc")
                orders.append((name, ascending))
                if not self._accept("op", ","):
                    break
            plan = L.Sort(orders, plan)

        if self._accept("keyword", "limit"):
            plan = L.Limit(int(self._expect("number")[1]), plan)

        self._expect("eof")
        from repro.sql.dataframe import DataFrame

        return DataFrame(plan, self._session)

    def _table_source(self):
        name = self._expect("ident")[1]
        df = self._session.table(name)
        while True:
            how = "inner"
            if self._accept("keyword", "left"):
                how = "left_outer"
                self._expect("keyword", "join")
            elif self._accept("keyword", "right"):
                how = "right_outer"
                self._expect("keyword", "join")
            elif not self._accept("keyword", "join"):
                break
            other = self._session.table(self._expect("ident")[1])
            self._expect("keyword", "using")
            self._expect("op", "(")
            keys = [self._expect("ident")[1]]
            while self._accept("op", ","):
                keys.append(self._expect("ident")[1])
            self._expect("op", ")")
            df = df.join(other, on=keys, how=how)
        return df

    def _select_list(self) -> list:
        if self._accept("op", "*"):
            return [(_STAR, None)]
        items = []
        while True:
            expr = self._expr()
            alias = None
            if self._accept("keyword", "as"):
                alias = self._expect("ident")[1]
            elif self._peek()[0] == "ident":
                alias = self._next()[1]
            items.append((expr, alias))
            if not self._accept("op", ","):
                break
        return items

    def _apply_select(self, plan, items, grouping, distinct):
        # NOTE: expressions overload ``==`` to build comparisons, so the
        # star marker must be checked by identity, never equality.
        if len(items) == 1 and items[0][0] is _STAR:
            if grouping is not None:
                raise SqlParseError("SELECT * cannot be combined with GROUP BY")
            if distinct:
                return L.Deduplicate(plan.schema.names, plan)
            return plan

        has_aggregate = any(
            _contains_aggregate(expr) for expr, _alias in items
        )
        if grouping is None and not has_aggregate:
            exprs = [
                E.Alias(expr, alias) if alias else expr for expr, alias in items
            ]
            projected = L.Project(exprs, plan)
            if distinct:
                return L.Deduplicate(projected.schema.names, projected)
            return projected

        grouping = grouping or []
        grouping_keys = {str(g) for g in grouping}
        aggregates = []
        output = []  # (kind, payload) preserving select order
        for expr, alias in items:
            if _contains_aggregate(expr):
                if not isinstance(expr, E.AggregateFunction):
                    raise SqlParseError(
                        "aggregates cannot be nested in expressions in this dialect"
                    )
                name = alias or expr.output_name
                aggregates.append((expr, name))
                output.append(("agg", name))
            else:
                if str(expr) not in grouping_keys and not isinstance(expr, E.WindowExpr):
                    raise SqlParseError(
                        f"non-aggregate select item {expr} must appear in GROUP BY"
                    )
                output.append(("key", (expr, alias)))
        if not aggregates:
            raise SqlParseError("GROUP BY requires at least one aggregate")
        agg_plan = L.Aggregate(grouping, aggregates, plan)

        # Re-project to the user's select order / aliases.
        exprs = []
        for kind, payload in output:
            if kind == "agg":
                exprs.append(E.ColumnRef(payload))
            else:
                expr, alias = payload
                if isinstance(expr, E.WindowExpr):
                    exprs.append(E.ColumnRef("window_start"))
                    exprs.append(E.ColumnRef("window_end"))
                else:
                    ref = E.ColumnRef(expr.output_name)
                    exprs.append(E.Alias(ref, alias) if alias else ref)
        return L.Project(exprs, agg_plan)

    def _expr_list(self) -> list:
        exprs = [self._expr()]
        while self._accept("op", ","):
            exprs.append(self._expr())
        return exprs

    # -- expression grammar -----------------------------------------------
    def _expr(self):
        return self._or_expr()

    def _or_expr(self):
        left = self._and_expr()
        while self._accept("keyword", "or"):
            left = E.BooleanOp(left, self._and_expr(), "or")
        return left

    def _and_expr(self):
        left = self._not_expr()
        while self._accept("keyword", "and"):
            left = E.BooleanOp(left, self._not_expr(), "and")
        return left

    def _not_expr(self):
        if self._accept("keyword", "not"):
            return E.Not(self._not_expr())
        return self._comparison()

    _CMP_MAP = {"=": "==", "<>": "!=", "!=": "!=", "<": "<", "<=": "<=",
                ">": ">", ">=": ">="}

    def _comparison(self):
        left = self._additive()
        token = self._peek()
        if token[0] == "op" and token[1] in self._CMP_MAP:
            self._next()
            return E.Comparison(left, self._additive(), self._CMP_MAP[token[1]])
        if self._accept("keyword", "between"):
            low = self._additive()
            self._expect("keyword", "and")  # the AND belongs to BETWEEN
            high = self._additive()
            return E.BooleanOp(
                E.Comparison(left, low, ">="),
                E.Comparison(left, high, "<="), "and",
            )
        if self._accept("keyword", "like"):
            pattern = self._expect("string")[1]
            return E.Like(left, pattern)
        if self._accept("keyword", "not"):
            if self._accept("keyword", "like"):
                return E.Not(E.Like(left, self._expect("string")[1]))
            if self._accept("keyword", "in"):
                self._expect("op", "(")
                values = [self._literal_value()]
                while self._accept("op", ","):
                    values.append(self._literal_value())
                self._expect("op", ")")
                return E.Not(E.In(left, values))
            if self._accept("keyword", "between"):
                low = self._additive()
                self._expect("keyword", "and")
                high = self._additive()
                return E.Not(E.BooleanOp(
                    E.Comparison(left, low, ">="),
                    E.Comparison(left, high, "<="), "and",
                ))
            raise SqlParseError("expected LIKE, IN or BETWEEN after NOT")
        if self._accept("keyword", "is"):
            negated = self._accept("keyword", "not") is not None
            self._expect("keyword", "null")
            expr = E.IsNull(left)
            return E.Not(expr) if negated else expr
        if self._accept("keyword", "in"):
            self._expect("op", "(")
            values = [self._literal_value()]
            while self._accept("op", ","):
                values.append(self._literal_value())
            self._expect("op", ")")
            return E.In(left, values)
        return left

    def _literal_value(self):
        token = self._next()
        if token[0] in ("number", "string"):
            return token[1]
        if token == ("keyword", "true"):
            return True
        if token == ("keyword", "false"):
            return False
        raise SqlParseError(f"expected a literal, found {token[1]!r}")

    def _additive(self):
        left = self._multiplicative()
        while True:
            if self._accept("op", "+"):
                left = E.Arithmetic(left, self._multiplicative(), "+")
            elif self._accept("op", "-"):
                left = E.Arithmetic(left, self._multiplicative(), "-")
            else:
                return left

    def _multiplicative(self):
        left = self._unary()
        while True:
            if self._accept("op", "*"):
                left = E.Arithmetic(left, self._unary(), "*")
            elif self._accept("op", "/"):
                left = E.Arithmetic(left, self._unary(), "/")
            elif self._accept("op", "%"):
                left = E.Arithmetic(left, self._unary(), "%")
            else:
                return left

    def _unary(self):
        if self._accept("op", "-"):
            return E.Arithmetic(E.Literal(0), self._unary(), "-")
        return self._primary()

    def _primary(self):
        token = self._next()
        if token[0] == "number" or token[0] == "string":
            return E.Literal(token[1])
        if token == ("keyword", "true"):
            return E.Literal(True)
        if token == ("keyword", "false"):
            return E.Literal(False)
        if token == ("keyword", "null"):
            return E.Literal(None)
        if token == ("op", "("):
            inner = self._expr()
            self._expect("op", ")")
            return inner
        if token == ("keyword", "case"):
            return self._case_expression()
        if token[0] == "ident":
            name = token[1]
            if self._accept("op", "("):
                return self._function_call(name.lower())
            return E.ColumnRef(name)
        raise SqlParseError(f"unexpected token {token[1]!r}")

    def _function_call(self, name: str):
        if name == "window":
            time_expr = self._expr()
            self._expect("op", ",")
            duration = self._literal_value()
            slide = None
            if self._accept("op", ","):
                slide = self._literal_value()
            self._expect("op", ")")
            return E.WindowExpr(time_expr, duration, slide)
        if name in _AGGREGATES:
            if name == "count" and self._accept("op", "*"):
                self._expect("op", ")")
                return E.Count(None)
            arg = self._expr()
            self._expect("op", ")")
            return _AGGREGATES[name](arg)
        if name in E._SCALAR_FUNCTIONS:
            args = [self._expr()]
            while self._accept("op", ","):
                args.append(self._expr())
            self._expect("op", ")")
            return E.ScalarFunction(name, args)
        raise SqlParseError(f"unknown function {name!r}")

    def _case_expression(self):
        branches = []
        while self._accept("keyword", "when"):
            condition = self._expr()
            self._expect("keyword", "then")
            branches.append((condition, self._expr()))
        if not branches:
            raise SqlParseError("CASE requires at least one WHEN clause")
        otherwise = None
        if self._accept("keyword", "else"):
            otherwise = self._expr()
        self._expect("keyword", "end")
        return E.CaseWhen(branches, otherwise)


def _contains_aggregate(expr: E.Expression) -> bool:
    if isinstance(expr, E.AggregateFunction):
        return True
    return any(_contains_aggregate(c) for c in expr.children)


def parse_select(text: str, session):
    """Parse a SELECT statement into a DataFrame over the session catalog."""
    return _Parser(text, session).parse()
