"""Catalyst-style rule-based logical optimizer (§5.3).

Rules are plain functions ``plan -> plan-or-None`` (None meaning "no
change") applied bottom-up to a fixed point.  The rule set covers the
optimizations the paper calls out as applying to streaming automatically:
predicate pushdown, projection (column) pruning, expression simplification
and constant folding.
"""

from __future__ import annotations

from repro.sql import expressions as E
from repro.sql import logical as L

MAX_ITERATIONS = 20


# ---------------------------------------------------------------------------
# Expression rewriting helpers
# ---------------------------------------------------------------------------

def transform_expression(expr: E.Expression, fn):
    """Rebuild ``expr`` bottom-up, applying ``fn`` to every node.

    ``fn`` receives a node whose children have already been rewritten and
    returns a (possibly new) node.
    """
    rebuilt = _rebuild_with_children(
        expr, [transform_expression(c, fn) for c in expr.children]
    )
    return fn(rebuilt)


def _rebuild_with_children(expr: E.Expression, children):
    """Clone an expression with new children (no-op for leaves)."""
    if not expr.children:
        return expr
    if isinstance(expr, E.Alias):
        return E.Alias(children[0], expr.name)
    if isinstance(expr, E.Arithmetic):
        return E.Arithmetic(children[0], children[1], expr.op)
    if isinstance(expr, E.Comparison):
        return E.Comparison(children[0], children[1], expr.op)
    if isinstance(expr, E.BooleanOp):
        return E.BooleanOp(children[0], children[1], expr.op)
    if isinstance(expr, E.Not):
        return E.Not(children[0])
    if isinstance(expr, E.IsNull):
        return E.IsNull(children[0])
    if isinstance(expr, E.In):
        return E.In(children[0], expr.values)
    if isinstance(expr, E.Like):
        return E.Like(children[0], expr.pattern)
    if isinstance(expr, E.Cast):
        return E.Cast(children[0], expr.dtype)
    if isinstance(expr, E.Udf):
        return E.Udf(expr.func, children, expr.return_type, expr.name)
    if isinstance(expr, E.WindowExpr):
        return E.WindowExpr(children[0], expr.duration, expr.slide)
    if isinstance(expr, E.ScalarFunction):
        return E.ScalarFunction(expr.name, children)
    if isinstance(expr, E.CaseWhen):
        pairs = list(zip(children[:-1:2], children[1:-1:2]))
        return E.CaseWhen(pairs, children[-1])
    if isinstance(expr, E.ApproxCountDistinct):
        return E.ApproxCountDistinct(children[0], expr.precision)
    if isinstance(expr, E.AggregateFunction):
        return type(expr)(children[0])
    return expr


def substitute_columns(expr: E.Expression, mapping: dict) -> E.Expression:
    """Replace column references per ``{name: replacement_expression}``."""

    def replace(node):
        if isinstance(node, E.ColumnRef) and node.name in mapping:
            return mapping[node.name]
        return node

    return transform_expression(expr, replace)


def _is_foldable(expr: E.Expression) -> bool:
    return isinstance(expr, E.Literal) or (
        bool(expr.children)
        and not isinstance(expr, (E.Udf, E.AggregateFunction, E.WindowExpr))
        and all(_is_foldable(c) for c in expr.children)
    )


def fold_constants(expr: E.Expression) -> E.Expression:
    """Evaluate literal-only subtrees at plan time."""

    def fold(node):
        if not isinstance(node, E.Literal) and _is_foldable(node):
            value = node.eval_row({})
            if value is None or isinstance(value, (bool, int, float, str)):
                return E.Literal(value) if value is not None else node
        return node

    return transform_expression(expr, fold)


def unalias(expr: E.Expression) -> E.Expression:
    """Strip any Alias wrappers."""
    while isinstance(expr, E.Alias):
        expr = expr.child
    return expr


def contains_nondupable(expr: E.Expression) -> bool:
    """True if the expression holds a node unsafe/costly to duplicate
    below other operators (UDFs, windows, aggregates)."""
    if isinstance(expr, (E.Udf, E.WindowExpr, E.AggregateFunction)):
        return True
    return any(contains_nondupable(c) for c in expr.children)


def split_conjuncts(condition: E.Expression) -> list:
    """Flatten a condition into AND-ed conjuncts."""
    if isinstance(condition, E.BooleanOp) and condition.op == "and":
        return split_conjuncts(condition.left) + split_conjuncts(condition.right)
    return [condition]


def join_conjuncts(conjuncts) -> E.Expression:
    """Re-assemble conjuncts into a single AND expression."""
    result = conjuncts[0]
    for conjunct in conjuncts[1:]:
        result = E.BooleanOp(result, conjunct, "and")
    return result


# ---------------------------------------------------------------------------
# Rules
# ---------------------------------------------------------------------------

def combine_filters(plan: L.LogicalPlan):
    """Filter(a, Filter(b, x)) -> Filter(a AND b, x)."""
    if isinstance(plan, L.Filter) and isinstance(plan.child, L.Filter):
        merged = E.BooleanOp(plan.child.condition, plan.condition, "and")
        return L.Filter(merged, plan.child.child)
    return None


def simplify_filters(plan: L.LogicalPlan):
    """Drop always-true filters; fold constants inside conditions."""
    if not isinstance(plan, L.Filter):
        return None
    folded = fold_constants(plan.condition)
    if isinstance(folded, E.Literal) and folded.value is True:
        return plan.child
    if folded is not plan.condition:
        return L.Filter(folded, plan.child)
    return None


def push_filter_through_project(plan: L.LogicalPlan):
    """Move a filter below a projection when it only reads pass-through or
    deterministically computable columns."""
    if not (isinstance(plan, L.Filter) and isinstance(plan.child, L.Project)):
        return None
    project = plan.child
    mapping = {}
    for expr in project.exprs:
        target = unalias(expr)
        if contains_nondupable(target):
            continue  # not safe / not cheap to duplicate below
        mapping[expr.output_name] = target
    if not plan.condition.references() <= set(mapping):
        return None
    pushed = substitute_columns(plan.condition, mapping)
    return L.Project(project.exprs, L.Filter(pushed, project.child))


def push_filter_through_join(plan: L.LogicalPlan):
    """Push single-side conjuncts of a filter below an inner join."""
    if not (isinstance(plan, L.Filter) and isinstance(plan.child, L.Join)):
        return None
    join = plan.child
    if join.how != "inner":
        return None
    left_names = set(join.left.schema.names)
    right_names = set(join.right.schema.names)
    remaining, to_left, to_right = [], [], []
    for conjunct in split_conjuncts(plan.condition):
        refs = conjunct.references()
        if refs <= left_names:
            to_left.append(conjunct)
        elif refs <= right_names:
            to_right.append(conjunct)
        else:
            remaining.append(conjunct)
    if not to_left and not to_right:
        return None
    left = L.Filter(join_conjuncts(to_left), join.left) if to_left else join.left
    right = L.Filter(join_conjuncts(to_right), join.right) if to_right else join.right
    new_join = L.Join(left, right, join.on, join.how)
    if remaining:
        return L.Filter(join_conjuncts(remaining), new_join)
    return new_join


def push_filter_through_watermark(plan: L.LogicalPlan):
    """Filters commute with watermark declarations."""
    if isinstance(plan, L.Filter) and isinstance(plan.child, L.WithWatermark):
        wm = plan.child
        return L.WithWatermark(wm.column, wm.delay, L.Filter(plan.condition, wm.child))
    return None


def fold_project_constants(plan: L.LogicalPlan):
    """Constant-fold expressions inside projections."""
    if not isinstance(plan, L.Project):
        return None
    changed = False
    folded_exprs = []
    for expr in plan.exprs:
        folded = fold_constants(expr)
        if str(folded) == str(expr):
            folded_exprs.append(expr)
            continue
        changed = True
        if folded.output_name != expr.output_name:
            folded = E.Alias(unalias(folded), expr.output_name)
        folded_exprs.append(folded)
    if not changed:
        return None
    return L.Project(folded_exprs, plan.child)


def collapse_projects(plan: L.LogicalPlan):
    """Project(Project(x)) -> Project(x) by inlining column definitions."""
    if not (isinstance(plan, L.Project) and isinstance(plan.child, L.Project)):
        return None
    inner = plan.child
    mapping = {}
    for expr in inner.exprs:
        target = unalias(expr)
        if isinstance(target, E.AggregateFunction):
            return None
        mapping[expr.output_name] = target
    rewritten = []
    for expr in plan.exprs:
        name = expr.output_name
        new_body = substitute_columns(unalias(expr), mapping)
        if new_body.output_name == name and isinstance(new_body, E.ColumnRef):
            rewritten.append(new_body)
        else:
            rewritten.append(E.Alias(new_body, name))
    return L.Project(rewritten, inner.child)


def prune_columns(plan: L.LogicalPlan):
    """Insert projections above scans so only needed columns are read.

    Works top-down from nodes whose input requirements are known
    (Project, Aggregate, Filter-on-Project chains).
    """
    if isinstance(plan, (L.Project, L.Aggregate)):
        if isinstance(plan, L.Project):
            if all(isinstance(e, E.ColumnRef) for e in plan.exprs):
                return None  # already a pruning projection
            required = set()
            for expr in plan.exprs:
                required |= expr.references()
        else:
            required = set()
            for g in plan.grouping:
                required |= g.references()
            for fn, _name in plan.aggregates:
                required |= fn.references()
        pruned_child = _prune_into(plan.child, required)
        if pruned_child is not None:
            return plan.with_children((pruned_child,))
    return None


def _prune_into(plan: L.LogicalPlan, required: set):
    """Return a pruned version of ``plan`` producing only ``required``
    columns, or None if no pruning is possible/beneficial."""
    if isinstance(plan, L.Filter):
        child = _prune_into(plan.child, required | plan.condition.references())
        if child is not None:
            return L.Filter(plan.condition, child)
        return None
    if isinstance(plan, L.WithWatermark):
        child = _prune_into(plan.child, required | {plan.column})
        if child is not None:
            return L.WithWatermark(plan.column, plan.delay, child)
        return None
    if isinstance(plan, L.Scan):
        available = plan.schema.names
        keep = [n for n in available if n in required]
        if len(keep) < len(available) and keep:
            return L.Project([E.ColumnRef(n) for n in keep], plan)
        return None
    return None


ALL_RULES = (
    combine_filters,
    simplify_filters,
    push_filter_through_project,
    push_filter_through_join,
    push_filter_through_watermark,
    fold_project_constants,
    collapse_projects,
    prune_columns,
)


def _apply_bottom_up(plan: L.LogicalPlan, rule) -> L.LogicalPlan:
    new_children = tuple(_apply_bottom_up(c, rule) for c in plan.children)
    if any(n is not o for n, o in zip(new_children, plan.children)):
        plan = plan.with_children(new_children)
    replacement = rule(plan)
    return replacement if replacement is not None else plan


def optimize(plan: L.LogicalPlan, rules=ALL_RULES) -> L.LogicalPlan:
    """Apply all rules bottom-up until a fixed point (bounded iterations)."""
    for _round in range(MAX_ITERATIONS):
        before = plan.explain_string()
        for rule in rules:
            plan = _apply_bottom_up(plan, rule)
        if plan.explain_string() == before:
            break
    return plan
