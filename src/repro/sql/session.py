"""Session: the entry point, analogous to ``SparkSession``.

Holds the catalog of temp views, constructs batch and streaming
DataFrames, and runs SQL.  Batch and streaming queries share the same
DataFrame type — the paper's central usability claim (§2.2, §7.3)::

    session = Session()
    static = session.create_dataframe(rows, schema)
    stream = session.read_stream.kafka(broker, "events", schema)
    joined = stream.join(static, on="ad_id")   # one API for both
"""

from __future__ import annotations

import os

from repro.sql import logical as L
from repro.sql.batch import RecordBatch
from repro.sql.dataframe import DataFrame
from repro.sql.types import StructType
from repro.storage import list_files, read_jsonl


class _InMemoryProvider:
    """Batch scan provider over pre-materialized batches."""

    def __init__(self, batches):
        self._batches = list(batches)

    def read_batches(self):
        return self._batches


class _JsonDirectoryProvider:
    """Batch scan provider reading a JSON-lines file or directory."""

    def __init__(self, path: str, schema: StructType):
        self._path = path
        self._schema = schema

    def read_batches(self):
        if os.path.isdir(self._path):
            rows = []
            for name in list_files(self._path, ".jsonl"):
                rows.extend(read_jsonl(os.path.join(self._path, name)))
        else:
            rows = read_jsonl(self._path)
        return [RecordBatch.from_rows(rows, self._schema)]


class _FileSinkProvider:
    """Batch scan provider over a TransactionalFileSink's committed table."""

    def __init__(self, sink, schema: StructType):
        self._sink = sink
        self._schema = schema

    def read_batches(self):
        return [self._sink.read_batch(self._schema)]


class DataReader:
    """Builder for batch inputs (``session.read``)."""

    def __init__(self, session: "Session"):
        self._session = session

    def json(self, path: str, schema) -> DataFrame:
        """Read a JSON-lines file or directory of ``*.jsonl`` files."""
        schema = _as_schema(schema)
        scan = L.Scan(schema, _JsonDirectoryProvider(path, schema), False, name=path)
        return DataFrame(scan, self._session)

    def file_sink(self, sink, schema) -> DataFrame:
        """Read the committed contents of a transactional file sink —
        consistent snapshots of streaming output (§3)."""
        schema = _as_schema(schema)
        scan = L.Scan(schema, _FileSinkProvider(sink, schema), False, name="file_sink")
        return DataFrame(scan, self._session)

    def table(self, name: str) -> DataFrame:
        """Read a registered temp view."""
        return self._session.table(name)


class DataStreamReader:
    """Builder for streaming inputs (``session.read_stream``)."""

    def __init__(self, session: "Session"):
        self._session = session

    def _df(self, descriptor) -> DataFrame:
        scan = L.Scan(descriptor.schema, descriptor, True, name=descriptor.name)
        return DataFrame(scan, self._session)

    def kafka(self, broker, topic: str, schema, records_are_json: bool = False) -> DataFrame:
        """Stream from a bus topic (replayable, partitioned)."""
        from repro.sources.kafka import KafkaSourceDescriptor

        return self._df(KafkaSourceDescriptor(
            broker, topic, _as_schema(schema), records_are_json
        ))

    def json(self, directory: str, schema) -> DataFrame:
        """Stream from a growing directory of JSON-lines files (§4.1)."""
        from repro.sources.file import FileSourceDescriptor

        return self._df(FileSourceDescriptor(directory, _as_schema(schema)))

    def rate(self, rows_per_second: float) -> DataFrame:
        """Synthetic benchmark stream: (timestamp, value) rows."""
        from repro.sources.rate import RateSourceDescriptor

        return self._df(RateSourceDescriptor(rows_per_second))

    def memory(self, stream) -> DataFrame:
        """Stream from a :class:`repro.sources.memory.MemoryStream`."""
        return self._df(stream)

    def cdc(self, stream) -> DataFrame:
        """Stream from a :class:`repro.sources.cdc.ChangeStream`: rows
        carry ``__weight__`` (+1 insert / -1 delete) and the plan is
        maintained under retraction (Z-set semantics)."""
        return self._df(stream)

    def source(self, descriptor) -> DataFrame:
        """Stream from any custom :class:`SourceDescriptor`."""
        return self._df(descriptor)


class Session:
    """Entry point: catalog, data readers and SQL."""

    def __init__(self):
        self.catalog = {}
        self._streams = None
        #: name -> StreamTable: one query's result table feeding another
        #: (bronze -> silver cascades); see repro.streaming.stream_table.
        self.stream_tables = {}

    @property
    def streams(self):
        """The session's StreamingQueryManager (§1: manage multiple
        streaming queries dynamically)."""
        if self._streams is None:
            from repro.streaming.manager import StreamingQueryManager

            self._streams = StreamingQueryManager()
        return self._streams

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def create_dataframe(self, rows, schema=None) -> DataFrame:
        """Build a batch DataFrame from in-memory rows (list of dicts).

        Without an explicit schema, column types are inferred from the
        first row with a non-null value per field (every row must carry
        the same keys).
        """
        rows = list(rows)
        if schema is None:
            schema = _infer_schema(rows)
        schema = _as_schema(schema)
        batch = RecordBatch.from_rows(rows, schema)
        scan = L.Scan(schema, _InMemoryProvider([batch]), False, name="local")
        return DataFrame(scan, self)

    def from_batch(self, batch: RecordBatch) -> DataFrame:
        """Wrap an existing RecordBatch as a batch DataFrame."""
        scan = L.Scan(batch.schema, _InMemoryProvider([batch]), False, name="local")
        return DataFrame(scan, self)

    @property
    def read(self) -> DataReader:
        """Batch input builder."""
        return DataReader(self)

    @property
    def read_stream(self) -> DataStreamReader:
        """Streaming input builder."""
        return DataStreamReader(self)

    # ------------------------------------------------------------------
    # Catalog & SQL
    # ------------------------------------------------------------------
    def table(self, name: str) -> DataFrame:
        """Look up a registered temp view."""
        try:
            return self.catalog[name]
        except KeyError:
            raise KeyError(
                f"no such view {name!r}; registered: {sorted(self.catalog)}"
            ) from None

    def sql(self, text: str) -> DataFrame:
        """Run a SQL SELECT over registered temp views."""
        from repro.sql.parser import parse_select

        return parse_select(text, self)

    def read_stream_table(self, name: str) -> DataFrame:
        """Read another streaming query's result table as a stream.

        The table must have been created by a started query writing with
        ``write_stream.to_table(name)``; each of the upstream query's
        committed epochs becomes replayable input here, so a cascade of
        queries is maintained incrementally end to end with per-stage
        checkpoints and watermarks.
        """
        try:
            table = self.stream_tables[name]
        except KeyError:
            raise KeyError(
                f"no stream table {name!r}; started to_table() queries: "
                f"{sorted(self.stream_tables)}"
            ) from None
        if table.schema is None:
            raise ValueError(
                f"stream table {name!r} has no schema yet: start the "
                "query writing it before reading it"
            )
        return self.read_stream.source(table)


def _as_schema(schema) -> StructType:
    if isinstance(schema, StructType):
        return schema
    return StructType(tuple(schema))


def _infer_schema(rows) -> StructType:
    """Infer a schema from row dicts (first non-null value per field)."""
    from repro.sql.types import infer_type

    if not rows:
        raise ValueError("cannot infer a schema from zero rows")
    names = list(rows[0])
    fields = []
    for name in names:
        sample = next((r[name] for r in rows if r.get(name) is not None), None)
        if sample is None:
            raise ValueError(
                f"cannot infer a type for column {name!r}: all values null"
            )
        fields.append((name, infer_type(sample)))
    return StructType(tuple(fields))
