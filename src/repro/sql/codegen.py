"""Closure compilation of expression trees: the "code generation" layer.

Spark SQL compiles operator chains to Java bytecode over the Tungsten
binary format (§5.3).  The closest faithful analogue in pure Python is to
*pre-compile* an expression tree into a tree of fused closures over numpy
arrays: all per-node dispatch (isinstance checks, attribute lookups, type
resolution) happens once at plan time, and evaluation is a single call per
batch running vectorized kernels.

The ablation benchmark (``benchmarks/test_ablation_vectorized.py``)
compares this path against interpreted row-at-a-time evaluation
(``Expression.eval_row`` in a Python loop) to reproduce the paper's claim
that execution-engine optimizations dominate streaming throughput.
"""

from __future__ import annotations

import numpy as np

from repro.sql import expressions as E
from repro.sql.types import BOOLEAN, StructType


def compile_expression(expr: E.Expression, schema: StructType):
    """Compile ``expr`` into ``fn(batch) -> np.ndarray``.

    The returned closure captures all operator choices and constants; no
    AST traversal happens per batch.
    """
    expr.data_type(schema)  # fail fast on unresolved/ill-typed expressions

    if isinstance(expr, E.Alias):
        return compile_expression(expr.child, schema)

    if isinstance(expr, E.ColumnRef):
        name = expr.name
        return lambda batch: batch.columns[name]

    if isinstance(expr, E.Literal):
        value, dtype = expr.value, expr._dtype

        def constant(batch):
            if dtype.numpy_dtype is object:
                out = np.empty(batch.num_rows, dtype=object)
                out[:] = value
                return out
            return np.full(batch.num_rows, value, dtype=dtype.numpy_dtype)

        return constant

    if isinstance(expr, E.Arithmetic):
        left = compile_expression(expr.left, schema)
        right = compile_expression(expr.right, schema)
        op = E._ARITH_BATCH[expr.op]

        def arithmetic(batch):
            with np.errstate(divide="ignore", invalid="ignore"):
                return op(left(batch), right(batch))

        return arithmetic

    if isinstance(expr, E.Comparison):
        left = compile_expression(expr.left, schema)
        right = compile_expression(expr.right, schema)
        op = E._CMP_BATCH[expr.op]
        return lambda batch: np.asarray(op(left(batch), right(batch)), dtype=bool)

    if isinstance(expr, E.BooleanOp):
        left = compile_expression(expr.left, schema)
        right = compile_expression(expr.right, schema)
        if expr.op == "and":
            return lambda batch: left(batch) & right(batch)
        return lambda batch: left(batch) | right(batch)

    if isinstance(expr, E.Not):
        child = compile_expression(expr.child, schema)
        return lambda batch: ~child(batch)

    if isinstance(expr, E.In):
        child = compile_expression(expr.child, schema)
        value_set = expr._value_set
        value_list = list(value_set)

        def membership(batch):
            values = child(batch)
            if values.dtype == object:
                return np.array([v in value_set for v in values], dtype=bool)
            return np.isin(values, value_list)

        return membership

    # IsNull, Cast, CaseWhen, Udf and anything future fall back to the
    # node's own vectorized evaluator (still batch-at-a-time).
    return expr.eval_batch


def compile_predicate(expr: E.Expression, schema: StructType):
    """Compile a boolean expression into ``fn(batch) -> bool mask``."""
    if expr.data_type(schema) != BOOLEAN:
        raise E.AnalysisError(f"filter condition must be boolean: {expr}")
    return compile_expression(expr, schema)


def compile_projection(exprs, schema: StructType):
    """Compile a list of expressions into ``fn(batch) -> list[np.ndarray]``."""
    compiled = [compile_expression(e, schema) for e in exprs]

    def project(batch):
        return [fn(batch) for fn in compiled]

    return project
