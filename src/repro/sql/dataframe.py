"""The DataFrame API: declarative relational queries over tables and streams.

This mirrors Spark's DataFrame API (§4.1): users express a static query and
— if any input is a stream — the engine incrementalizes it automatically.
The same DataFrame methods work for batch and streaming plans; only the
final write step differs (``write`` vs ``write_stream``)::

    data = session.read_stream.json("/in")
    counts = data.group_by("country").count()
    query = (counts.write_stream.format("memory").query_name("counts")
             .output_mode("complete").start())
"""

from __future__ import annotations

from repro.sql import expressions as E
from repro.sql import logical as L
from repro.sql.expressions import AnalysisError
from repro.sql.types import StructType


class Column:
    """A user-facing expression handle with operator overloading.

    Wraps an :class:`~repro.sql.expressions.Expression`; all Python
    operators build new expressions, so ``col("a") + 1 > col("b")`` works.
    """

    __slots__ = ("expr",)

    def __init__(self, expr: E.Expression):
        self.expr = expr

    def _wrap(self, expr) -> "Column":
        return Column(expr)

    # Arithmetic / comparison / boolean operators delegate to Expression.
    def __add__(self, other):
        return self._wrap(self.expr + _expr(other))

    def __radd__(self, other):
        return self._wrap(_expr(other) + self.expr)

    def __sub__(self, other):
        return self._wrap(self.expr - _expr(other))

    def __rsub__(self, other):
        return self._wrap(_expr(other) - self.expr)

    def __mul__(self, other):
        return self._wrap(self.expr * _expr(other))

    def __rmul__(self, other):
        return self._wrap(_expr(other) * self.expr)

    def __truediv__(self, other):
        return self._wrap(self.expr / _expr(other))

    def __mod__(self, other):
        return self._wrap(self.expr % _expr(other))

    def __eq__(self, other):  # type: ignore[override]
        return self._wrap(self.expr == _expr(other))

    def __ne__(self, other):  # type: ignore[override]
        return self._wrap(self.expr != _expr(other))

    def __lt__(self, other):
        return self._wrap(self.expr < _expr(other))

    def __le__(self, other):
        return self._wrap(self.expr <= _expr(other))

    def __gt__(self, other):
        return self._wrap(self.expr > _expr(other))

    def __ge__(self, other):
        return self._wrap(self.expr >= _expr(other))

    def __and__(self, other):
        return self._wrap(self.expr & _expr(other))

    def __or__(self, other):
        return self._wrap(self.expr | _expr(other))

    def __invert__(self):
        return self._wrap(~self.expr)

    def __hash__(self):
        return id(self)

    def alias(self, name: str) -> "Column":
        """Name the output column."""
        return self._wrap(self.expr.alias(name))

    def cast(self, dtype) -> "Column":
        """Cast to another type (name or DataType)."""
        return self._wrap(self.expr.cast(dtype))

    def is_null(self) -> "Column":
        return self._wrap(self.expr.is_null())

    def is_not_null(self) -> "Column":
        return self._wrap(self.expr.is_not_null())

    def isin(self, values) -> "Column":
        return self._wrap(self.expr.isin(values))

    def like(self, pattern: str) -> "Column":
        """SQL LIKE with % and _ wildcards."""
        return self._wrap(E.Like(self.expr, pattern))

    def when(self, condition, value) -> "Column":
        """Extend a CASE WHEN chain started with ``functions.when``."""
        if not isinstance(self.expr, E.CaseWhen):
            raise AnalysisError(".when() only follows functions.when()")
        branches = self.expr.branches + [(_expr(condition), _expr(value))]
        return self._wrap(E.CaseWhen(branches))

    def otherwise(self, value) -> "Column":
        """Finish a CASE WHEN chain with a default value."""
        if not isinstance(self.expr, E.CaseWhen):
            raise AnalysisError(".otherwise() only follows functions.when()")
        return self._wrap(E.CaseWhen(self.expr.branches, _expr(value)))

    def __repr__(self) -> str:
        return f"Column<{self.expr}>"


def _expr(value) -> E.Expression:
    """Coerce a Column / string column name / literal into an expression."""
    if isinstance(value, Column):
        return value.expr
    if isinstance(value, E.Expression):
        return value
    return E.Literal(value)


def _name_or_column(value) -> E.Expression:
    """Like ``_expr`` but interprets bare strings as column references."""
    if isinstance(value, str):
        return E.ColumnRef(value)
    return _expr(value)


class DataFrame:
    """An immutable, lazily evaluated relational query.

    A DataFrame wraps a logical plan.  Transformations return new
    DataFrames; actions (``collect``, ``show``) analyze, optimize and run
    the plan.  If the plan reads any streaming source, actions are
    disallowed — use :attr:`write_stream` to start a streaming query.
    """

    def __init__(self, plan: L.LogicalPlan, session):
        self._plan = plan
        self._session = session

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def plan(self) -> L.LogicalPlan:
        """The underlying logical plan."""
        return self._plan

    @property
    def schema(self) -> StructType:
        """The resolved output schema."""
        return self._plan.schema

    @property
    def columns(self) -> list:
        """Output column names."""
        return self.schema.names

    @property
    def is_streaming(self) -> bool:
        """True when the plan reads at least one streaming source."""
        return self._plan.is_streaming

    def explain(self, extended: bool = False) -> str:
        """Return (and print) the logical plan tree.

        ``extended=True`` also shows the optimized plan (§5.3) — useful
        for seeing predicate pushdown and column pruning at work.
        """
        text = self._plan.explain_string()
        if extended:
            from repro.sql.analysis import analyze
            from repro.sql.optimizer import optimize

            optimized = optimize(analyze(self._plan))
            text = (
                "== Analyzed logical plan ==\n" + text +
                "\n== Optimized logical plan ==\n" + optimized.explain_string()
            )
        print(text)
        return text

    # ------------------------------------------------------------------
    # Transformations
    # ------------------------------------------------------------------
    def _derive(self, plan: L.LogicalPlan) -> "DataFrame":
        return DataFrame(plan, self._session)

    def select(self, *columns) -> "DataFrame":
        """Project columns/expressions (SELECT clause)."""
        exprs = [_name_or_column(c) for c in columns]
        return self._derive(L.Project(exprs, self._plan))

    def where(self, condition) -> "DataFrame":
        """Filter rows by a boolean Column (WHERE clause)."""
        return self._derive(L.Filter(_expr(condition), self._plan))

    filter = where

    def with_column(self, name: str, column) -> "DataFrame":
        """Add or replace a column."""
        exprs = []
        replaced = False
        for existing in self.columns:
            if existing == name:
                exprs.append(_expr(column).alias(name))
                replaced = True
            else:
                exprs.append(E.ColumnRef(existing))
        if not replaced:
            exprs.append(_expr(column).alias(name))
        return self._derive(L.Project(exprs, self._plan))

    def with_column_renamed(self, old: str, new: str) -> "DataFrame":
        """Rename one column."""
        exprs = [
            E.ColumnRef(n).alias(new) if n == old else E.ColumnRef(n)
            for n in self.columns
        ]
        return self._derive(L.Project(exprs, self._plan))

    def drop(self, *names) -> "DataFrame":
        """Remove columns."""
        keep = [n for n in self.columns if n not in names]
        return self.select(*keep)

    def group_by(self, *columns) -> "GroupedData":
        """Group by columns and/or a ``window()`` expression."""
        return GroupedData([_name_or_column(c) for c in columns], self)

    def agg(self, *aggregates) -> "DataFrame":
        """Global (ungrouped) aggregation over the whole relation."""
        grouped = GroupedData([E.Literal(1).alias("__all__")], self)
        result = grouped.agg(*aggregates)
        keep = [n for n in result.columns if n != "__all__"]
        return result.select(*keep)

    def group_by_key(self, *key_columns) -> "KeyedData":
        """Group by key columns for custom stateful processing (§4.3.2)."""
        return KeyedData(list(key_columns), self)

    def join(self, other: "DataFrame", on, how: str = "inner",
             within=None) -> "DataFrame":
        """Equi-join with another DataFrame on shared column names.

        ``within=(left_time_col, right_time_col, max_skew)`` adds the
        event-time condition ``|left.t - right.t2| <= max_skew``; for
        stream-stream joins this is what bounds state and enables outer
        results (§5.2).
        """
        return self._derive(L.Join(self._plan, other._plan, on, how,
                                   within=within))

    def union(self, other: "DataFrame") -> "DataFrame":
        """Concatenate with another DataFrame of the same schema."""
        return self._derive(L.Union(self._plan, other._plan))

    def distinct(self) -> "DataFrame":
        """Drop fully duplicate rows."""
        return self._derive(L.Deduplicate(self.columns, self._plan))

    def drop_duplicates(self, subset=None) -> "DataFrame":
        """Drop rows duplicated on a subset of columns (first wins)."""
        return self._derive(L.Deduplicate(subset or self.columns, self._plan))

    def order_by(self, *orders) -> "DataFrame":
        """Sort by column names; prefix with ``-`` for descending."""
        parsed = []
        for order in orders:
            if isinstance(order, str) and order.startswith("-"):
                parsed.append((order[1:], False))
            elif isinstance(order, str):
                parsed.append((order, True))
            else:
                name, ascending = order
                parsed.append((name, ascending))
        return self._derive(L.Sort(parsed, self._plan))

    sort = order_by

    def limit(self, n: int) -> "DataFrame":
        """Keep the first n rows."""
        return self._derive(L.Limit(n, self._plan))

    def with_watermark(self, column: str, delay) -> "DataFrame":
        """Declare an event-time column with a lateness threshold (§4.3.1)."""
        return self._derive(L.WithWatermark(column, delay, self._plan))

    # ------------------------------------------------------------------
    # Actions (batch only)
    # ------------------------------------------------------------------
    def _require_batch(self, action: str) -> None:
        if self.is_streaming:
            raise AnalysisError(
                f"{action}() is not supported on a streaming DataFrame; "
                "start it with write_stream instead"
            )

    def to_batch(self):
        """Execute and return the result as a RecordBatch."""
        self._require_batch("to_batch")
        from repro.sql.analysis import analyze
        from repro.sql.optimizer import optimize
        from repro.sql.physical import execute

        plan = optimize(analyze(self._plan))
        return execute(plan)

    def collect(self) -> list:
        """Execute and return the result as a list of Rows."""
        return self.to_batch().to_rows()

    def count_rows(self) -> int:
        """Execute and return the number of result rows."""
        return self.to_batch().num_rows

    def take(self, n: int) -> list:
        """Execute and return the first n rows."""
        return self.limit(n).collect()

    def first(self):
        """Execute and return the first row (None if empty)."""
        rows = self.take(1)
        return rows[0] if rows else None

    def is_empty(self) -> bool:
        """True if the result has no rows."""
        return self.first() is None

    def cache(self) -> "DataFrame":
        """Materialize the result once and return a DataFrame over it.

        Useful when one intermediate result feeds several interactive
        queries (the §8.1 analyst workflow).  Batch only.
        """
        return self._session.from_batch(self.to_batch())

    def show(self, n: int = 20) -> None:
        """Print up to n result rows."""
        for row in self.collect()[:n]:
            print(row)

    def create_or_replace_temp_view(self, name: str) -> None:
        """Register this DataFrame in the session catalog for SQL access."""
        self._session.catalog[name] = self

    # ------------------------------------------------------------------
    # Output
    # ------------------------------------------------------------------
    @property
    def write(self):
        """Batch writer (JSON-lines directories, tables)."""
        from repro.sql.writer import DataFrameWriter

        self._require_batch("write")
        return DataFrameWriter(self)

    @property
    def write_stream(self):
        """Streaming writer: configure sink/mode/trigger, then ``start()``."""
        from repro.streaming.writer import DataStreamWriter

        if not self.is_streaming:
            raise AnalysisError(
                "write_stream requires a streaming DataFrame; use write instead"
            )
        return DataStreamWriter(self)


class GroupedData:
    """Result of ``DataFrame.group_by``: choose aggregates to compute."""

    def __init__(self, grouping, df: DataFrame):
        self._grouping = grouping
        self._df = df

    def agg(self, *aggregates) -> DataFrame:
        """Aggregate with explicit functions, e.g. ``agg(F.count(), F.avg("x"))``."""
        pairs = []
        for agg in aggregates:
            expr = _expr(agg)
            name = expr.output_name
            fn = expr.child if isinstance(expr, E.Alias) else expr
            if not isinstance(fn, E.AggregateFunction):
                raise AnalysisError(f"agg() arguments must be aggregates, got {expr}")
            pairs.append((fn, name))
        if not pairs:
            raise AnalysisError("agg() requires at least one aggregate")
        return self._df._derive(L.Aggregate(self._grouping, pairs, self._df._plan))

    def count(self) -> DataFrame:
        """Count rows per group."""
        return self.agg(Column(E.Count(None)))

    def sum(self, column) -> DataFrame:  # noqa: A003
        """Sum a column per group."""
        return self.agg(Column(E.Sum(_name_or_column(column))))

    def avg(self, column) -> DataFrame:
        """Average a column per group."""
        return self.agg(Column(E.Avg(_name_or_column(column))))

    def min(self, column) -> DataFrame:  # noqa: A003
        """Minimum of a column per group."""
        return self.agg(Column(E.Min(_name_or_column(column))))

    def max(self, column) -> DataFrame:  # noqa: A003
        """Maximum of a column per group."""
        return self.agg(Column(E.Max(_name_or_column(column))))


class KeyedData:
    """Result of ``DataFrame.group_by_key``: attach custom stateful logic."""

    def __init__(self, key_columns, df: DataFrame):
        self._key_columns = key_columns
        self._df = df

    def map_groups_with_state(self, func, output_schema, timeout: str = "none") -> DataFrame:
        """Track and update per-key state; one output row per updated key.

        ``func(key, rows, state)`` returns a dict of output values (merged
        with the key columns), as in Figure 3 of the paper.
        """
        schema = _as_schema(output_schema)
        return self._df._derive(L.MapGroupsWithState(
            self._key_columns, func, schema, self._df._plan,
            flat=False, timeout=timeout,
        ))

    def flat_map_groups_with_state(self, func, output_schema, timeout: str = "none") -> DataFrame:
        """Like ``map_groups_with_state`` but zero-or-more output rows."""
        schema = _as_schema(output_schema)
        return self._df._derive(L.MapGroupsWithState(
            self._key_columns, func, schema, self._df._plan,
            flat=True, timeout=timeout,
        ))


def _as_schema(schema) -> StructType:
    if isinstance(schema, StructType):
        return schema
    return StructType(tuple(schema))
