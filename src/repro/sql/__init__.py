"""Relational engine substrate: the "Spark SQL" layer of the reproduction.

This package implements the pieces of Spark SQL that Structured Streaming
(the paper's contribution, in :mod:`repro.streaming`) is built on:

* a type system and schemas (:mod:`repro.sql.types`),
* row and columnar batch representations (:mod:`repro.sql.row`,
  :mod:`repro.sql.batch`),
* an expression AST with both an interpreted row-at-a-time evaluator and a
  compiled vectorized evaluator standing in for Tungsten code generation
  (:mod:`repro.sql.expressions`, :mod:`repro.sql.codegen`),
* logical plans, an analyzer and a Catalyst-style rule optimizer
  (:mod:`repro.sql.logical`, :mod:`repro.sql.analysis`,
  :mod:`repro.sql.optimizer`),
* physical batch execution (:mod:`repro.sql.physical`),
* the user-facing DataFrame API and session entry point
  (:mod:`repro.sql.dataframe`, :mod:`repro.sql.session`), and
* a small SQL SELECT parser (:mod:`repro.sql.parser`).
"""

from repro.sql.types import (
    BooleanType,
    DataType,
    DoubleType,
    IntegerType,
    LongType,
    StringType,
    StructField,
    StructType,
    TimestampType,
)
from repro.sql.batch import RecordBatch
from repro.sql.dataframe import Column, DataFrame
from repro.sql import functions
from repro.sql.session import Session

__all__ = [
    "BooleanType",
    "Column",
    "DataFrame",
    "DataType",
    "DoubleType",
    "IntegerType",
    "LongType",
    "RecordBatch",
    "Session",
    "StringType",
    "StructField",
    "StructType",
    "TimestampType",
    "functions",
]
