"""Batch output writer (``df.write``).

Writes go through the same transactional file sink used by streaming
queries, so a batch backfill and a streaming job can target the same
table — the paper's hybrid batch/streaming story (§7.3).
"""

from __future__ import annotations


class DataFrameWriter:
    """Builder for writing a batch DataFrame."""

    def __init__(self, df):
        self._df = df
        self._mode = "append"

    def mode(self, mode: str) -> "DataFrameWriter":
        """``append`` (default) or ``overwrite``."""
        if mode not in ("append", "overwrite"):
            raise ValueError(f"unknown write mode {mode!r}")
        self._mode = mode
        return self

    def json(self, directory: str) -> None:
        """Write as a transactional JSON-lines table in ``directory``.

        Each call commits one epoch in the sink's manifest log; overwrite
        commits a complete-mode epoch that replaces prior data.
        """
        from repro.sinks.file import TransactionalFileSink

        sink = TransactionalFileSink(directory, writer_id="batch")
        last = sink.last_committed_epoch()
        epoch = (last + 1) if last is not None else 0
        sink_mode = "complete" if self._mode == "overwrite" else "append"
        sink.add_batch(epoch, self._df.to_batch(), sink_mode)

    def save_as_table(self, name: str) -> None:
        """Materialize and register as a temp view."""
        batch = self._df.to_batch()
        self._df._session.from_batch(batch).create_or_replace_temp_view(name)
