"""HyperLogLog sketches for approximate distinct counting.

Exact distinct counts need state proportional to the number of distinct
values — exactly the kind of unbounded state §4.3.1 warns about.  A
HyperLogLog sketch gives a fixed-size, mergeable summary, which is why
analytical engines (Spark's ``approx_count_distinct`` included) ship
one; the streaming engine can keep one small sketch per group in the
state store forever.

Implementation: classic Flajolet–Fu­sy–Gandouet–Meunier HLL with the
standard small-range (linear counting) correction.  Registers are a
plain list of small ints, so sketches serialize to JSON like every
other aggregation buffer.
"""

from __future__ import annotations

import hashlib
import math


class HyperLogLog:
    """A fixed-size sketch supporting add / merge / cardinality."""

    def __init__(self, precision: int = 12, registers=None):
        if not 4 <= precision <= 16:
            raise ValueError("precision must be in [4, 16]")
        self.precision = precision
        self.num_registers = 1 << precision
        self.registers = list(registers) if registers is not None \
            else [0] * self.num_registers
        if len(self.registers) != self.num_registers:
            raise ValueError("register count does not match precision")
        self._alpha = self._alpha_for(self.num_registers)

    @staticmethod
    def _alpha_for(m: int) -> float:
        if m == 16:
            return 0.673
        if m == 32:
            return 0.697
        if m == 64:
            return 0.709
        return 0.7213 / (1 + 1.079 / m)

    # ------------------------------------------------------------------
    def _hash(self, value) -> int:
        digest = hashlib.blake2b(
            repr(value).encode("utf-8"), digest_size=8
        ).digest()
        return int.from_bytes(digest, "big")

    def add(self, value) -> None:
        """Fold one value into the sketch."""
        h = self._hash(value)
        index = h >> (64 - self.precision)
        rest = h & ((1 << (64 - self.precision)) - 1)
        # Position of the leftmost 1-bit in the remaining bits.
        rank = (64 - self.precision) - rest.bit_length() + 1
        if rank > self.registers[index]:
            self.registers[index] = rank

    def merge(self, other: "HyperLogLog") -> "HyperLogLog":
        """Union of two sketches (register-wise max); returns a new one."""
        if other.precision != self.precision:
            raise ValueError("cannot merge sketches of different precision")
        merged = [max(a, b) for a, b in zip(self.registers, other.registers)]
        return HyperLogLog(self.precision, merged)

    def cardinality(self) -> int:
        """The estimated number of distinct values added."""
        m = self.num_registers
        raw = self._alpha * m * m / sum(2.0 ** -r for r in self.registers)
        if raw <= 2.5 * m:
            zeros = self.registers.count(0)
            if zeros:
                return int(round(m * math.log(m / zeros)))  # linear counting
        return int(round(raw))

    @property
    def relative_error(self) -> float:
        """The sketch's standard error (~1.04 / sqrt(m))."""
        return 1.04 / math.sqrt(self.num_registers)

    # ------------------------------------------------------------------
    def to_json(self) -> list:
        """JSON-serializable form (the register list)."""
        return self.registers

    @classmethod
    def from_json(cls, registers, precision: int = 12) -> "HyperLogLog":
        return cls(precision, registers)
