"""Logical query plans.

A user's DataFrame program builds a tree of these nodes.  The analyzer
(:mod:`repro.sql.analysis`) resolves and validates the tree, the optimizer
(:mod:`repro.sql.optimizer`) rewrites it, and then either the batch
executor (:mod:`repro.sql.physical`) or the streaming incrementalizer
(:mod:`repro.streaming.incrementalizer`) turns it into physical operators.

Schemas are computed lazily from children so plans can be assembled
bottom-up without a session; resolution errors surface as
:class:`~repro.sql.expressions.AnalysisError` when ``.schema`` is accessed
(normally during analysis).
"""

from __future__ import annotations

from repro.sql import expressions as E
from repro.sql.batch import promote_nullable
from repro.sql.expressions import AnalysisError
from repro.sql.types import WEIGHT_COLUMN, StructType

JOIN_TYPES = ("inner", "left_outer", "right_outer")


class LogicalPlan:
    """Base class for logical plan nodes."""

    children: tuple = ()

    @property
    def schema(self) -> StructType:
        """Output schema of this node (resolving expressions as needed)."""
        raise NotImplementedError

    @property
    def is_streaming(self) -> bool:
        """True if any leaf below this node is a streaming source."""
        return any(c.is_streaming for c in self.children)

    def with_children(self, children) -> "LogicalPlan":
        """Rebuild this node with new children (used by optimizer rules)."""
        raise NotImplementedError

    def describe(self) -> str:
        """One-line description used by ``explain()``."""
        return type(self).__name__

    def explain_string(self, indent: int = 0) -> str:
        """A readable tree rendering of the plan."""
        lines = ["  " * indent + ("+- " if indent else "") + self.describe()]
        for child in self.children:
            lines.append(child.explain_string(indent + 1))
        return "\n".join(lines)

    def collect_nodes(self, node_type=None) -> list:
        """All nodes in the subtree, optionally filtered by type."""
        found = []
        if node_type is None or isinstance(self, node_type):
            found.append(self)
        for child in self.children:
            found.extend(child.collect_nodes(node_type))
        return found


class Scan(LogicalPlan):
    """Leaf node: a batch relation or a streaming source.

    ``provider`` is interpreted by the execution layer:

    * batch — an object with ``read_batches() -> list[RecordBatch]``;
    * streaming — a :class:`repro.sources.base.SourceDescriptor` that the
      streaming engine instantiates into a replayable source.
    """

    def __init__(self, schema: StructType, provider, is_streaming: bool, name: str = "scan"):
        self._schema = schema
        self.provider = provider
        self._is_streaming = is_streaming
        self.name = name

    @property
    def schema(self) -> StructType:
        return self._schema

    @property
    def is_streaming(self) -> bool:
        return self._is_streaming

    def with_children(self, children) -> "Scan":
        assert not children
        return self

    def describe(self) -> str:
        kind = "StreamScan" if self._is_streaming else "Scan"
        return f"{kind} {self.name} {self._schema!r}"


class Project(LogicalPlan):
    """Compute a list of named expressions (SELECT clause)."""

    def __init__(self, exprs, child: LogicalPlan):
        self.exprs = list(exprs)
        self.child = child
        self.children = (child,)
        names = [e.output_name for e in self.exprs]
        duplicates = {n for n in names if names.count(n) > 1}
        if duplicates:
            raise AnalysisError(f"duplicate output columns in select: {sorted(duplicates)}")

    @property
    def schema(self) -> StructType:
        child_schema = self.child.schema
        return StructType(tuple(
            (e.output_name, e.data_type(child_schema)) for e in self.exprs
        ))

    def with_children(self, children) -> "Project":
        (child,) = children
        return Project(self.exprs, child)

    def describe(self) -> str:
        return "Project [" + ", ".join(str(e) for e in self.exprs) + "]"


class Filter(LogicalPlan):
    """Keep rows where the boolean condition holds (WHERE clause)."""

    def __init__(self, condition: E.Expression, child: LogicalPlan):
        self.condition = condition
        self.child = child
        self.children = (child,)

    @property
    def schema(self) -> StructType:
        from repro.sql.types import BOOLEAN

        if self.condition.data_type(self.child.schema) != BOOLEAN:
            raise AnalysisError(f"filter condition must be boolean: {self.condition}")
        return self.child.schema

    def with_children(self, children) -> "Filter":
        (child,) = children
        return Filter(self.condition, child)

    def describe(self) -> str:
        return f"Filter [{self.condition}]"


class Aggregate(LogicalPlan):
    """Grouped aggregation, possibly keyed by an event-time window.

    ``grouping`` is a list of expressions; a :class:`~repro.sql.expressions.
    WindowExpr` among them expands into ``window_start`` / ``window_end``
    output columns.  ``aggregates`` is a list of (AggregateFunction, name).
    """

    def __init__(self, grouping, aggregates, child: LogicalPlan):
        self.grouping = list(grouping)
        self.aggregates = [(fn, name) for fn, name in aggregates]
        self.child = child
        self.children = (child,)
        windows = [g for g in self.grouping if isinstance(g, E.WindowExpr)]
        if len(windows) > 1:
            raise AnalysisError("at most one window() expression per groupBy")
        self.window = windows[0] if windows else None
        self.plain_grouping = [g for g in self.grouping if not isinstance(g, E.WindowExpr)]

    @property
    def schema(self) -> StructType:
        child_schema = self.child.schema
        fields = []
        for g in self.plain_grouping:
            fields.append((g.output_name, g.data_type(child_schema)))
        if self.window is not None:
            self.window.data_type(child_schema)
            fields.append(("window_start", "timestamp"))
            fields.append(("window_end", "timestamp"))
        for fn, name in self.aggregates:
            fields.append((name, fn.data_type(child_schema)))
        return StructType(tuple(fields))

    @property
    def key_names(self) -> list:
        """Names of the output key columns (window columns last)."""
        names = [g.output_name for g in self.plain_grouping]
        if self.window is not None:
            names += ["window_start", "window_end"]
        return names

    def with_children(self, children) -> "Aggregate":
        (child,) = children
        return Aggregate(self.grouping, self.aggregates, child)

    def describe(self) -> str:
        keys = ", ".join(str(g) for g in self.grouping)
        aggs = ", ".join(f"{fn} AS {name}" for fn, name in self.aggregates)
        return f"Aggregate key=[{keys}] agg=[{aggs}]"


class Join(LogicalPlan):
    """Equi-join on named key columns, optionally time-bounded.

    ``on`` is a list of column names present on both sides (emitted once in
    the output, as with Spark's ``df.join(other, on=[...])``).  Supported
    join types follow §5.2: inner, left_outer, right_outer.

    ``within`` — ``(left_time_col, right_time_col, max_skew_seconds)`` —
    adds the event-time join condition ``|left.t - right.t2| <= skew``.
    For stream-stream joins this is what bounds state: a buffered row is
    provably unmatchable (and evictable, or outer-emittable) once the
    other side's watermark passes its time plus the skew (§4.3.1, §5.2:
    "the join condition must involve a watermarked column").
    """

    def __init__(self, left: LogicalPlan, right: LogicalPlan, on, how: str = "inner",
                 within=None):
        if how not in JOIN_TYPES:
            raise AnalysisError(f"unsupported join type {how!r}; use one of {JOIN_TYPES}")
        self.left = left
        self.right = right
        self.on = [on] if isinstance(on, str) else list(on)
        if not self.on:
            raise AnalysisError("join requires at least one key column")
        self.how = how
        if within is not None:
            left_col, right_col, skew = within
            within = (left_col, right_col, E.parse_duration(skew))
        self.within = within
        self.children = (left, right)

    @property
    def schema(self) -> StructType:
        left_schema = self.left.schema
        right_schema = self.right.schema
        if self.within is not None:
            left_col, right_col, _skew = self.within
            if left_col not in left_schema:
                raise AnalysisError(
                    f"within time column {left_col!r} not on the left side")
            if right_col not in right_schema:
                raise AnalysisError(
                    f"within time column {right_col!r} not on the right side")
        for key in self.on:
            if key not in left_schema or key not in right_schema:
                raise AnalysisError(
                    f"join key {key!r} must exist on both sides "
                    f"({left_schema.names} vs {right_schema.names})"
                )
            if left_schema.type_of(key) != right_schema.type_of(key):
                raise AnalysisError(f"join key {key!r} has mismatched types")
        right_rest = [n for n in right_schema.names if n not in self.on]
        if WEIGHT_COLUMN in left_schema and WEIGHT_COLUMN in right_rest:
            # Two weighted sides: the output carries ONE weight column
            # (the product of the sides' multiplicities, computed by the
            # physical join), in the left side's position.
            right_rest.remove(WEIGHT_COLUMN)
        overlap = set(left_schema.names) & set(right_rest)
        if overlap:
            raise AnalysisError(
                f"ambiguous non-key columns present on both join sides: {sorted(overlap)}"
            )
        left_part = left_schema
        right_part = right_schema.select(right_rest)
        if self.how == "left_outer":
            right_part = promote_nullable(right_part)
        elif self.how == "right_outer":
            keys = StructType(tuple(
                (n, left_schema.type_of(n)) for n in left_schema.names if n in self.on
            ))
            non_keys = StructType(tuple(
                (f.name, f.data_type) for f in left_schema if f.name not in self.on
            ))
            left_part = keys.merge(promote_nullable(non_keys))
            # Preserve original left column order.
            left_part = left_part.select(left_schema.names)
        return left_part.merge(right_part)

    def with_children(self, children) -> "Join":
        left, right = children
        return Join(left, right, self.on, self.how, within=self.within)

    def describe(self) -> str:
        label = f"Join {self.how} on={self.on}"
        if self.within is not None:
            left_col, right_col, skew = self.within
            label += f" within=|{left_col} - {right_col}| <= {skew}s"
        return label


class Sort(LogicalPlan):
    """Total ordering of the result (streaming: complete mode only, §5.1)."""

    def __init__(self, orders, child: LogicalPlan):
        # orders: list of (column_name, ascending)
        self.orders = [(name, bool(asc)) for name, asc in orders]
        self.child = child
        self.children = (child,)

    @property
    def schema(self) -> StructType:
        child_schema = self.child.schema
        for name, _asc in self.orders:
            if name not in child_schema:
                raise AnalysisError(f"cannot sort by unknown column {name!r}")
        return child_schema

    def with_children(self, children) -> "Sort":
        (child,) = children
        return Sort(self.orders, child)

    def describe(self) -> str:
        keys = ", ".join(f"{n} {'ASC' if a else 'DESC'}" for n, a in self.orders)
        return f"Sort [{keys}]"


class Limit(LogicalPlan):
    """Keep the first ``n`` rows."""

    def __init__(self, n: int, child: LogicalPlan):
        if n < 0:
            raise AnalysisError("limit must be non-negative")
        self.n = n
        self.child = child
        self.children = (child,)

    @property
    def schema(self) -> StructType:
        return self.child.schema

    def with_children(self, children) -> "Limit":
        (child,) = children
        return Limit(self.n, child)

    def describe(self) -> str:
        return f"Limit {self.n}"


class Deduplicate(LogicalPlan):
    """Drop duplicate rows by a subset of columns (SELECT DISTINCT).

    In streaming this becomes a stateful operator whose state is bounded by
    the watermark when one of the subset columns is watermarked.
    """

    def __init__(self, subset, child: LogicalPlan):
        self.subset = list(subset)
        self.child = child
        self.children = (child,)

    @property
    def schema(self) -> StructType:
        child_schema = self.child.schema
        for name in self.subset:
            if name not in child_schema:
                raise AnalysisError(f"cannot deduplicate by unknown column {name!r}")
        return child_schema

    def with_children(self, children) -> "Deduplicate":
        (child,) = children
        return Deduplicate(self.subset, child)

    def describe(self) -> str:
        return f"Deduplicate {self.subset}"


class Union(LogicalPlan):
    """Concatenation of two relations with identical schemas."""

    def __init__(self, left: LogicalPlan, right: LogicalPlan):
        self.left = left
        self.right = right
        self.children = (left, right)

    @property
    def schema(self) -> StructType:
        if self.left.schema.names != self.right.schema.names:
            raise AnalysisError(
                f"union requires matching schemas: {self.left.schema.names} "
                f"vs {self.right.schema.names}"
            )
        return self.left.schema

    def with_children(self, children) -> "Union":
        left, right = children
        return Union(left, right)


class WithWatermark(LogicalPlan):
    """Declare an event-time column with a lateness threshold (§4.3.1).

    The watermark for column C with delay t is ``max(C) - t`` over all data
    seen so far; it gates state eviction and append-mode emission.
    """

    def __init__(self, column: str, delay, child: LogicalPlan):
        self.column = column
        self.delay = E.parse_duration(delay)
        self.child = child
        self.children = (child,)

    @property
    def schema(self) -> StructType:
        child_schema = self.child.schema
        if self.column not in child_schema:
            raise AnalysisError(f"watermark column {self.column!r} not in schema")
        return child_schema

    def with_children(self, children) -> "WithWatermark":
        (child,) = children
        return WithWatermark(self.column, self.delay, child)

    def describe(self) -> str:
        return f"WithWatermark {self.column} delay={self.delay}s"


class MapGroupsWithState(LogicalPlan):
    """Custom per-key stateful processing (§4.3.2, Figure 3).

    ``func(key, rows, state) -> row-or-rows``: invoked once per key per
    trigger with the new rows for that key and a
    :class:`~repro.streaming.stateful.GroupState`.  ``flat`` distinguishes
    ``flat_map_groups_with_state`` (zero or more output rows per call) from
    ``map_groups_with_state`` (exactly one).
    """

    def __init__(self, key_columns, func, output_schema: StructType,
                 child: LogicalPlan, flat: bool = False,
                 timeout: str = "none"):
        if timeout not in ("none", "processing_time", "event_time"):
            raise AnalysisError(f"unknown timeout conf {timeout!r}")
        self.key_columns = list(key_columns)
        self.func = func
        self._output_schema = output_schema
        self.child = child
        self.flat = flat
        self.timeout = timeout
        self.children = (child,)

    @property
    def schema(self) -> StructType:
        child_schema = self.child.schema
        for name in self.key_columns:
            if name not in child_schema:
                raise AnalysisError(f"grouping column {name!r} not in schema")
        return self._output_schema

    def with_children(self, children) -> "MapGroupsWithState":
        (child,) = children
        return MapGroupsWithState(
            self.key_columns, self.func, self._output_schema, child,
            flat=self.flat, timeout=self.timeout,
        )

    def describe(self) -> str:
        kind = "FlatMapGroupsWithState" if self.flat else "MapGroupsWithState"
        return f"{kind} key={self.key_columns} timeout={self.timeout}"
