"""Columnar record batches: the engine's in-memory data format.

``RecordBatch`` plays the role of Spark's Tungsten rows: a compact format
that the compiled (vectorized) operators work on directly.  Each column is a
numpy array; numeric and boolean columns use native dtypes, strings use
object arrays.  The per-record baseline engines never use this module —
that difference is exactly the performance mechanism the paper attributes
its Yahoo!-benchmark advantage to (§9.1).

Null handling: strings may be ``None`` inside object arrays and doubles may
be NaN; integer and boolean columns are non-nullable.  Operators that can
introduce nulls into numeric columns (outer joins) promote them to double.
"""

from __future__ import annotations

import numpy as np

from repro.sql.types import DataType, DoubleType, StructType


def _column_array(values, data_type: DataType) -> np.ndarray:
    """Build a numpy column of the right dtype from an iterable of values."""
    if data_type.numpy_dtype is object:
        arr = np.empty(len(values), dtype=object)
        arr[:] = values
        return arr
    return np.asarray(values, dtype=data_type.numpy_dtype)


class RecordBatch:
    """An immutable-by-convention columnar chunk of rows with a schema.

    Columns are numpy arrays of equal length stored in a dict keyed by
    column name.  Mutating a batch's arrays in place is not supported;
    operators always build new batches.
    """

    __slots__ = ("columns", "schema", "num_rows")

    def __init__(self, columns: dict, schema: StructType):
        self.columns = columns
        self.schema = schema
        self.num_rows = len(next(iter(columns.values()))) if columns else 0
        if set(columns) != set(schema.names):
            raise ValueError(
                f"column/schema mismatch: {sorted(columns)} vs {schema.names}"
            )

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def empty(cls, schema: StructType) -> "RecordBatch":
        """An empty batch with the given schema."""
        cols = {
            f.name: np.empty(0, dtype=f.data_type.numpy_dtype) for f in schema
        }
        return cls(cols, schema)

    @classmethod
    def from_rows(cls, rows, schema: StructType) -> "RecordBatch":
        """Build a batch from an iterable of dict-like rows."""
        rows = list(rows)
        cols = {}
        for field in schema:
            values = [row.get(field.name) for row in rows]
            cols[field.name] = _column_array(values, field.data_type)
        return cls(cols, schema)

    @classmethod
    def from_columns(cls, schema: StructType, **named_arrays) -> "RecordBatch":
        """Build a batch from keyword numpy arrays, coercing dtypes."""
        cols = {}
        for field in schema:
            arr = named_arrays[field.name]
            if field.data_type.numpy_dtype is object:
                if not (isinstance(arr, np.ndarray) and arr.dtype == object):
                    out = np.empty(len(arr), dtype=object)
                    out[:] = list(arr)
                    arr = out
            else:
                arr = np.asarray(arr, dtype=field.data_type.numpy_dtype)
            cols[field.name] = arr
        return cls(cols, schema)

    @classmethod
    def concat(cls, batches, schema: StructType = None) -> "RecordBatch":
        """Concatenate batches that share a schema."""
        batches = list(batches)
        batches = [b for b in batches if b.num_rows > 0] or batches[:1]
        if not batches:
            if schema is None:
                raise ValueError("cannot concat zero batches without a schema")
            return cls.empty(schema)
        schema = batches[0].schema
        if len(batches) == 1:
            return batches[0]
        cols = {
            name: np.concatenate([b.columns[name] for b in batches])
            for name in schema.names
        }
        return cls(cols, schema)

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------
    def column(self, name: str) -> np.ndarray:
        """Return the column array for ``name``."""
        return self.columns[name]

    def to_rows(self) -> list:
        """Materialize as a list of :class:`repro.sql.row.Row`."""
        from repro.sql.row import Row

        names = self.schema.names
        cols = [self.columns[n] for n in names]
        out = []
        for i in range(self.num_rows):
            out.append(Row(zip(names, (self._pyvalue(c[i]) for c in cols))))
        return out

    @staticmethod
    def _pyvalue(value):
        """Convert a numpy scalar to the natural Python value."""
        if isinstance(value, np.generic):
            value = value.item()
        if isinstance(value, float) and value != value:  # NaN -> None
            return None
        return value

    # ------------------------------------------------------------------
    # Transformation
    # ------------------------------------------------------------------
    def select(self, names) -> "RecordBatch":
        """Keep only the named columns, in the given order."""
        schema = self.schema.select(names)
        return RecordBatch({n: self.columns[n] for n in names}, schema)

    def rename(self, mapping: dict) -> "RecordBatch":
        """Rename columns according to ``{old: new}``."""
        fields = []
        cols = {}
        for field in self.schema:
            new = mapping.get(field.name, field.name)
            fields.append((new, field.data_type, field.nullable))
            cols[new] = self.columns[field.name]
        return RecordBatch(cols, StructType(tuple(fields)))

    def with_column(self, name: str, array: np.ndarray, data_type: DataType) -> "RecordBatch":
        """Return a batch with one column added or replaced."""
        cols = dict(self.columns)
        cols[name] = array
        if name in self.schema:
            fields = tuple(
                (f.name, data_type if f.name == name else f.data_type)
                for f in self.schema
            )
            schema = StructType(fields)
        else:
            schema = self.schema.add(name, data_type)
        return RecordBatch(cols, schema)

    def filter(self, mask: np.ndarray) -> "RecordBatch":
        """Keep only the rows where ``mask`` is True."""
        if mask.all():
            return self
        cols = {n: a[mask] for n, a in self.columns.items()}
        return RecordBatch(cols, self.schema)

    def take(self, indices: np.ndarray) -> "RecordBatch":
        """Gather rows by integer position (repeats allowed)."""
        cols = {n: a[indices] for n, a in self.columns.items()}
        return RecordBatch(cols, self.schema)

    def slice(self, start: int, stop: int) -> "RecordBatch":
        """Rows in ``[start, stop)``."""
        cols = {n: a[start:stop] for n, a in self.columns.items()}
        return RecordBatch(cols, self.schema)

    def __len__(self) -> int:
        return self.num_rows

    def __repr__(self) -> str:
        return f"RecordBatch({self.num_rows} rows, {self.schema!r})"


def promote_nullable(schema: StructType) -> StructType:
    """Promote non-nullable numeric columns to double so they can hold NaN.

    Used by outer joins, which pad unmatched rows with nulls.
    """
    fields = []
    for f in schema:
        dtype = f.data_type
        if dtype.numpy_dtype is not object and not isinstance(dtype, DoubleType):
            dtype = DoubleType()
        fields.append((f.name, dtype, True))
    return StructType(tuple(fields))
